//! Offline subset of the `proptest` API.
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be fetched. This crate implements the slice of the API the
//! workspace's property tests use — the `proptest!` macro, `Strategy` with
//! `prop_map`, `any::<T>()`, numeric range strategies, tuple strategies,
//! `prop::collection::vec`, `prop_oneof!` (weighted), `ProptestConfig`, and
//! the `prop_assert*` macros — as a deterministic random tester.
//!
//! Differences from upstream: no shrinking (a failing case reports its seed
//! and values instead), and value streams differ from upstream's. Tests
//! only rely on the property-checking semantics, not on specific cases.

pub mod test_runner {
    use std::fmt;

    /// Runner configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to execute per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Failure raised by the `prop_assert*` macros.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        pub fn fail(message: String) -> Self {
            TestCaseError { message }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }
}

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Object safe (the combinators are `Self: Sized`), so heterogeneous
    /// strategies can be unified as `Box<dyn Strategy<Value = T>>`.
    pub trait Strategy {
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Erases a strategy's concrete type (used by `prop_oneof!`).
    pub fn boxed_dyn<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn sample(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, G);

    /// Weighted choice between boxed strategies; built by `prop_oneof!`.
    pub struct OneOf<T> {
        arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
        total: u64,
    }

    impl<T> OneOf<T> {
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! weights must not all be zero");
            OneOf { arms, total }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            let mut pick = rng.gen_range(0..self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.sample(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weight bookkeeping")
        }
    }

    /// Full-domain strategy returned by [`crate::arbitrary::any`].
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T> Any<T> {
        pub fn new() -> Self {
            Any {
                _marker: std::marker::PhantomData,
            }
        }
    }

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T: rand::Standard> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            rng.gen()
        }
    }
}

pub mod arbitrary {
    use super::strategy::Any;

    /// Strategy over the whole domain of `T` (its standard distribution).
    pub fn any<T>() -> Any<T> {
        Any::new()
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Element-count ranges accepted by [`vec`].
    pub trait SizeRange {
        fn sample_len(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    /// Strategy generating `Vec`s of `element` with lengths in `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = self.size.sample_len(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Seeds one deterministic case RNG; used by the `proptest!` expansion.
pub fn case_rng(test_name: &str, case: u32) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    rand::rngs::StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
}

/// Runs `body` for each random case, panicking with context on failure.
pub fn run_cases<F>(test_name: &str, config: &test_runner::ProptestConfig, mut body: F)
where
    F: FnMut(&mut rand::rngs::StdRng) -> Result<(), test_runner::TestCaseError>,
{
    for case in 0..config.cases {
        let mut rng = case_rng(test_name, case);
        if let Err(e) = body(&mut rng) {
            panic!(
                "proptest {test_name}: case {case}/{} failed: {e}",
                config.cases
            );
        }
    }
}

#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns!({ $config } $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(
            { $crate::test_runner::ProptestConfig::default() }
            $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ({ $config:expr } ) => {};
    (
        { $config:expr }
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            $crate::run_cases(stringify!($name), &config, |__rng| {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), __rng);)+
                $body
                ::std::result::Result::Ok(())
            });
        }
        $crate::__proptest_fns!({ $config } $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {
        match (&$lhs, &$rhs) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: {} == {} ({:?} vs {:?})",
                    stringify!($lhs),
                    stringify!($rhs),
                    __l,
                    __r
                );
            }
        }
    };
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {
        match (&$lhs, &$rhs) {
            (__l, __r) => {
                $crate::prop_assert!(*__l == *__r, $($fmt)+);
            }
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($weight as u32, $crate::strategy::boxed_dyn($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((1u32, $crate::strategy::boxed_dyn($strat))),+
        ])
    };
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Namespace mirror so `prop::collection::vec(...)` resolves.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in 0usize..=4, f in -1.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn tuples_and_map(v in (0u32..10, 0u32..10).prop_map(|(a, b)| a + b)) {
            prop_assert!(v <= 18);
        }

        #[test]
        fn vec_lengths(xs in prop::collection::vec(any::<u64>(), 1..20)) {
            prop_assert!(!xs.is_empty() && xs.len() < 20);
        }

        #[test]
        fn oneof_weighted(x in prop_oneof![4 => 0u32..10, 1 => 100u32..110]) {
            prop_assert!(x < 10 || (100..110).contains(&x));
        }
    }

    #[test]
    fn determinism() {
        use crate::strategy::Strategy;
        let strat = (0u64..1000, 0u64..1000).prop_map(|(a, b)| a * 1000 + b);
        let a: Vec<u64> = (0..10)
            .map(|c| strat.sample(&mut crate::case_rng("d", c)))
            .collect();
        let b: Vec<u64> = (0..10)
            .map(|c| strat.sample(&mut crate::case_rng("d", c)))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "case")]
    fn failing_property_panics() {
        crate::run_cases(
            "always_fails",
            &crate::test_runner::ProptestConfig::with_cases(1),
            |_rng| {
                crate::prop_assert!(1 == 2);
                Ok(())
            },
        );
    }
}
