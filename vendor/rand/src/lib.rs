//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment for this repository has no network access, so the
//! real `rand` crate cannot be fetched from crates.io. This vendored crate
//! re-implements exactly the slice of the 0.8 API the workspace uses —
//! `StdRng`, `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`
//! and `seq::SliceRandom::{shuffle, choose}` — on top of a SplitMix64 core.
//!
//! Determinism is the only contract: the same seed always yields the same
//! stream. Streams do **not** match upstream `rand` (which uses ChaCha12 for
//! `StdRng`); every consumer in this workspace only relies on per-seed
//! determinism and statistical uniformity, never on specific values.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness. Object safe; everything else builds on it.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding support; only the `seed_from_u64` entry point is provided.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

// Unbiased-enough uniform integer in [0, n) via 128-bit multiply-shift; the
// residual bias is < 2^-64 per draw, far below anything the simulations can
// observe.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator with a SplitMix64 core.
    ///
    /// Not the upstream ChaCha12 `StdRng` — see the crate docs. SplitMix64
    /// passes BigCrush and is more than adequate for simulation workloads.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // Pre-mix so that consecutive raw seeds land in decorrelated
            // regions of the SplitMix64 sequence.
            let mut rng = StdRng {
                state: state ^ 0x6A09_E667_F3BC_C909,
            };
            let _ = rng.next_u64();
            rng
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Slice helpers mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        /// Uniformly random element, or `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(super::uniform_below(rng, self.len() as u64) as usize)
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5usize..=9);
            assert!((5..=9).contains(&w));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniformity_rough() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[rng.gen_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            assert!((9_000..11_000).contains(&b), "bucket {b}");
        }
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut xs: Vec<u32> = (0..100).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert!(xs.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "hits {hits}");
    }
}
