//! Offline subset of the `criterion` benchmarking API.
//!
//! The build environment cannot fetch the real `criterion` crate, so this
//! vendored stand-in keeps the `[[bench]]` targets compiling and runnable.
//! Instead of statistical sampling it executes each benchmark body a small
//! fixed number of times and prints the mean wall-clock time — enough for
//! coarse regression spotting, not for publication-quality numbers.

use std::fmt::Display;
use std::time::Instant;

const WARMUP_ITERS: u32 = 1;
const MEASURE_ITERS: u32 = 3;

/// Benchmark driver; handed to every function in a `criterion_group!`.
pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { _private: () }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, |b| f(b));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _criterion: self,
        }
    }
}

/// A named set of benchmarks (mirrors criterion's grouping API).
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling is fixed in this stub.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; measurement time is fixed.
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.0), |b| f(b));
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.0), |b| f(b, input));
        self
    }

    /// Ends the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter, both `Display`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    elapsed_ns: u128,
    iters: u32,
}

impl Bencher {
    /// Runs `routine` a fixed number of times, timing the measured passes.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..MEASURE_ITERS {
            std::hint::black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
        self.iters = MEASURE_ITERS;
    }
}

fn run_one<F: FnOnce(&mut Bencher)>(name: &str, f: F) {
    let mut b = Bencher {
        elapsed_ns: 0,
        iters: 0,
    };
    f(&mut b);
    if b.iters > 0 {
        let mean_ns = b.elapsed_ns / b.iters as u128;
        println!("bench {name:<56} {:>14} ns/iter", mean_ns);
    } else {
        println!("bench {name:<56} (no measurement)");
    }
}

/// Re-export expected by some criterion users; prefer `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_run() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        c.bench_function("smoke", |b| b.iter(|| std::hint::black_box(1 + 1)));
        let mut g = c.benchmark_group("g");
        g.sample_size(10)
            .bench_with_input(BenchmarkId::new("x", 3), &3u32, |b, &n| {
                b.iter(|| {
                    runs += 1;
                    n * 2
                })
            });
        g.finish();
        assert!(runs > 0);
    }
}
