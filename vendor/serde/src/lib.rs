//! Offline subset of `serde`.
//!
//! The workspace only ever *derives* `Serialize` / `Deserialize` as API
//! markers — no serializer is ever instantiated — and the offline build
//! environment cannot fetch the real crate. The derive macros (re-exported
//! from the vendored `serde_derive` under the `derive` feature) expand to
//! nothing, so the traits here carry no methods.

/// Marker trait; the real bounds-carrying trait is not needed offline.
pub trait Serialize {}

/// Marker trait; the real bounds-carrying trait is not needed offline.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
