//! No-op `Serialize` / `Deserialize` derive macros.
//!
//! The workspace uses serde derives purely as markers (nothing is ever
//! serialized), and the offline build environment cannot fetch the real
//! `serde_derive`. These derives accept the usual `#[serde(...)]` helper
//! attributes and expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
