//! The headline robustness claim: a realistic workload over a lossy
//! control plane must reach quiescence with every connection in a
//! terminal state — retransmission with bounded backoff either lands a
//! transaction or degrades the connection, it never wedges.

use drt_core::ConnectionId;
use drt_experiments::config::ExperimentConfig;
use drt_net::Bandwidth;
use drt_proto::{ChaosConfig, ConnOutcome, ProtocolConfig, ProtocolSim, RetryConfig};
use drt_sim::SimDuration;
use std::sync::Arc;

#[test]
fn hundred_connections_at_ten_percent_drop_never_wedge() {
    // The paper's evaluation topology: 60-node Waxman graph.
    let cfg = ExperimentConfig::paper(3.0);
    let net = Arc::new(cfg.build_network().expect("paper topology"));
    let chaos = ChaosConfig {
        dup_prob: 0.02,
        max_jitter: SimDuration::from_micros(200),
        ..ChaosConfig::lossy(0.10, 2001)
    };
    let mut sim = ProtocolSim::with_chaos(
        Arc::clone(&net),
        ProtocolConfig::default(),
        RetryConfig::default(),
        chaos,
    );

    // Burst 100 setups at t=0 — maximal contention on top of the loss.
    let bw = Bandwidth::from_kbps(3_000);
    let mut rng = drt_sim::rng::stream(2001, "acceptance-pairs");
    let pattern = drt_sim::workload::TrafficPattern::ut();
    let mut submitted = Vec::new();
    let mut id = 0u64;
    while submitted.len() < 100 {
        let (src, dst) = pattern.sample_pair(net.num_nodes(), &mut rng);
        let Some(primary) = drt_net::algo::shortest_path_hops(&net, src, dst) else {
            continue;
        };
        let backup = drt_net::algo::shortest_path(&net, src, dst, |l| {
            if primary.contains_link(l) {
                None
            } else {
                Some(1.0)
            }
        })
        .map(|(_, r)| r);
        let conn = ConnectionId::new(id);
        id += 1;
        sim.establish(conn, bw, primary, backup.into_iter().collect());
        submitted.push(conn);
    }
    sim.run_to_quiescence();

    // Zero Pending: every connection ended terminal. Exhausted retries
    // surface as Degraded (established, unprotected) or Rejected (the
    // setup itself gave up) — never as a silent wedge.
    let mut tally = std::collections::BTreeMap::new();
    for &conn in &submitted {
        let outcome = sim.outcome(conn).expect("submitted");
        assert_ne!(outcome, ConnOutcome::Pending, "{conn} wedged");
        *tally.entry(format!("{outcome:?}")).or_insert(0u32) += 1;
    }
    let established = *tally.get("Established").unwrap_or(&0);
    assert!(
        established > 50,
        "most setups must land despite 10% loss: {tally:?}"
    );

    // 10% per-hop loss over multi-hop walks forces real retransmission.
    let (retx_msgs, _) = sim.counters().retransmitted();
    assert!(retx_msgs > 0, "a lossy plane must cost retries");

    // Any transaction that ran out of attempts must be visible in the
    // exhaustion ledger AND accounted for by a degraded/rejected
    // connection — exhaustion is never swallowed.
    let exhausted: u64 = sim.exhausted().map(|(_, n)| n).sum();
    let degraded = *tally.get("Degraded").unwrap_or(&0);
    let rejected = *tally.get("Rejected").unwrap_or(&0);
    if exhausted > 0 {
        assert!(
            degraded + rejected > 0,
            "{exhausted} exhaustions with no degraded/rejected connection: {tally:?}"
        );
    }
}
