//! The paper's worked examples (Figures 1–3), encoded as integration
//! tests over the full public API.

use drt_core::multiplex::{ActivationPool, MultiplexConfig, SparePolicy};
use drt_core::routing::{DLsr, RouteRequest, Scripted};
use drt_core::{ConnectionId, DrtpManager};
use drt_net::{topology, Bandwidth, Network, NodeId, Route};
use std::sync::Arc;

const BW: Bandwidth = Bandwidth::from_kbps(3_000);

fn req(id: u64, src: u32, dst: u32) -> drt_core::routing::RouteRequest {
    RouteRequest::new(
        ConnectionId::new(id),
        NodeId::new(src),
        NodeId::new(dst),
        BW,
    )
}

fn route(net: &Network, nodes: &[u32]) -> Route {
    let ids: Vec<NodeId> = nodes.iter().map(|&n| NodeId::new(n)).collect();
    Route::from_nodes(net, &ids).expect("mesh routes")
}

/// The mesh of Figure 1 (nodes row-major):
/// ```text
///   0 - 1 - 2
///   |   |   |
///   3 - 4 - 5
///   |   |   |
///   6 - 7 - 8
/// ```
fn fig1_mesh() -> Arc<Network> {
    Arc::new(topology::mesh(3, 3, Bandwidth::from_mbps(10)).expect("3x3 mesh"))
}

/// Figure 1, L9: "Because the primary channels P1 and P2 do not overlap,
/// any single link failure can cause at most one of these primaries to be
/// switched to its backup. Thus, B1 and B2 will never contend for the
/// reserved resources […] backup multiplexing successfully reduces the
/// resource overhead without affecting the fault-tolerance capability."
#[test]
fn figure1_safe_multiplexing() {
    let net = fig1_mesh();
    let mut mgr = DrtpManager::new(Arc::clone(&net));
    let mut script = Scripted::new();
    script.push(route(&net, &[0, 1, 2]), Some(route(&net, &[0, 3, 4, 5, 2])));
    script.push(route(&net, &[6, 7, 8]), Some(route(&net, &[6, 3, 4, 5, 8])));
    mgr.request_connection(&mut script, req(1, 0, 2)).unwrap();
    mgr.request_connection(&mut script, req(2, 6, 8)).unwrap();

    // The backups share the middle-row links, yet one connection's worth
    // of spare suffices everywhere.
    let shared = net.find_link(NodeId::new(3), NodeId::new(4)).unwrap();
    assert_eq!(mgr.aplv(shared).max_count(), 1);
    assert_eq!(mgr.link_resources(shared).spare(), BW);

    // Every single link failure is fully recoverable.
    let sample = mgr.sweep_single_failures(7);
    assert_eq!(sample.p_act_bk(), Some(1.0));
    mgr.assert_invariants();
}

/// Figure 1, L7: conflicting backups (primaries overlap) multiplexed over
/// fixed spare lose a connection when the shared primary link fails; with
/// Section 5's spare growth, both survive.
#[test]
fn figure1_conflicting_multiplexing() {
    let net = fig1_mesh();
    let overlap_link = net.find_link(NodeId::new(1), NodeId::new(2)).unwrap();
    let mut rng = drt_sim::rng::stream(3, "fig1");

    let build = |cfg: MultiplexConfig| {
        let mut mgr = DrtpManager::with_config(Arc::clone(&net), cfg);
        let mut script = Scripted::new();
        // D1: top row; backup through the middle row.
        script.push(route(&net, &[0, 1, 2]), Some(route(&net, &[0, 3, 4, 5, 2])));
        // D3: overlaps P1 on L(1->2); backup shares B1's tail.
        script.push(route(&net, &[1, 2]), Some(route(&net, &[1, 4, 5, 2])));
        mgr.request_connection(&mut script, req(1, 0, 2)).unwrap();
        mgr.request_connection(&mut script, req(3, 1, 2)).unwrap();
        mgr
    };

    // Paper policy: the conflict is detected and the spare pool doubles.
    let mgr = build(MultiplexConfig::paper());
    let contested = net.find_link(NodeId::new(4), NodeId::new(5)).unwrap();
    assert_eq!(mgr.aplv(contested).count(overlap_link), 2);
    assert_eq!(mgr.link_resources(contested).spare(), BW * 2);
    let probe = mgr.probe_single_failure(overlap_link, &mut rng);
    assert_eq!((probe.affected(), probe.activated()), (2, 2));

    // Without spare growth (and spare-only activation), the conflict costs
    // exactly what the paper warns about.
    let strict = build(MultiplexConfig {
        spare: SparePolicy::NeverGrow,
        activation: ActivationPool::SpareOnly,
        ..MultiplexConfig::paper()
    });
    let probe = strict.probe_single_failure(overlap_link, &mut rng);
    assert_eq!(probe.affected(), 2);
    assert_eq!(probe.activated(), 0, "no spare at all was reserved");
    mgr.assert_invariants();
    strict.assert_invariants();
}

/// Figure 2: the conflict vector of a link is exactly the support of its
/// APLV, and D-LSR's cost term counts the overlap with a primary's LSET.
#[test]
fn figure2_conflict_vector() {
    let net = fig1_mesh();
    let mut mgr = DrtpManager::new(Arc::clone(&net));
    let mut script = Scripted::new();
    let p1 = route(&net, &[0, 1, 2]);
    let b1 = route(&net, &[0, 3, 4, 5, 2]);
    let p2 = route(&net, &[6, 7, 8]);
    let b2 = route(&net, &[6, 3, 4, 5, 8]);
    script.push(p1.clone(), Some(b1));
    script.push(p2.clone(), Some(b2));
    mgr.request_connection(&mut script, req(1, 0, 2)).unwrap();
    mgr.request_connection(&mut script, req(2, 6, 8)).unwrap();

    // L(3->4) carries both backups: its CV must be the union of both
    // primaries' link sets, bit for bit.
    let shared = net.find_link(NodeId::new(3), NodeId::new(4)).unwrap();
    let cv = mgr.aplv(shared).conflict_vector(net.num_links());
    for link in net.links() {
        let expected = p1.contains_link(link.id()) || p2.contains_link(link.id());
        assert_eq!(cv.get(link.id()), expected, "bit {}", link.id());
    }
    assert_eq!(cv.ones() as usize, p1.len() + p2.len());
    // D-LSR's cost of using this link for a backup whose primary is P1:
    assert_eq!(
        mgr.view().conflict_count(shared, p1.links()),
        p1.len() as u32
    );
    mgr.assert_invariants();
}

/// Figure 3: "(L9, L4, L2, L5) is selected as the backup channel route
/// B3' […] if L13 fails, both connections fail simultaneously. However,
/// since the backup routes are disjoint, both connections can recover.
/// B3' offers better fault-tolerance than B3, although it has a longer
/// distance."
#[test]
fn figure3_dlsr_detours_around_conflict() {
    let net = fig1_mesh();
    let mut mgr = DrtpManager::new(Arc::clone(&net));
    let mut script = Scripted::new();
    let b1 = route(&net, &[0, 3, 4, 5, 2]);
    script.push(route(&net, &[0, 1, 2]), Some(b1.clone()));
    mgr.request_connection(&mut script, req(1, 0, 2)).unwrap();

    // D3's primary overlaps P1 on L(1->2). The naive backup (1-4-5-2, two
    // conflicts with B1) is shorter; D-LSR must pay hops to shed
    // conflicts.
    let mut dlsr = DLsr::new();
    let rep = mgr.request_connection(&mut dlsr, req(3, 1, 2)).unwrap();
    let b3 = rep.backup().unwrap();
    let naive = route(&net, &[1, 4, 5, 2]);
    assert!(b3.len() > naive.len(), "the detour is longer: {b3}");
    assert!(
        b3.overlap(&b1) < naive.overlap(&b1),
        "and has strictly fewer conflicts"
    );

    // The payoff: when the shared primary link fails, both connections
    // recover even under spare-only activation pools.
    let overlap_link = net.find_link(NodeId::new(1), NodeId::new(2)).unwrap();
    let mut rng = drt_sim::rng::stream(5, "fig3");
    let probe = mgr.probe_single_failure(overlap_link, &mut rng);
    assert_eq!((probe.affected(), probe.activated()), (2, 2));
    mgr.assert_invariants();
}

/// The paper's Section 2 cost statement: "equipping each DR-connection
/// even with a single backup disjoint from its primary reduces the network
/// capacity by at least 50%" — dedicated backups must at least double the
/// per-connection footprint that multiplexed backups avoid.
#[test]
fn dedicated_costs_at_least_double() {
    let net = fig1_mesh();
    let mut ded = DrtpManager::new(Arc::clone(&net));
    let mut mux = DrtpManager::new(Arc::clone(&net));
    let mut dedicated = drt_core::routing::DedicatedDisjoint::new();
    let mut dlsr = DLsr::new();

    ded.request_connection(&mut dedicated, req(0, 3, 5))
        .unwrap();
    mux.request_connection(&mut dlsr, req(0, 3, 5)).unwrap();

    let hard_ded = ded.total_prime();
    let hard_mux = mux.total_prime();
    let spare_mux = mux.total_spare();
    assert!(hard_ded >= hard_mux * 2, "{hard_ded} vs {hard_mux}");
    // Multiplexed spare for a single connection equals the backup length
    // but is *shared* — subsequent disjoint-primary connections ride free
    // (figure1_safe_multiplexing above).
    assert!(spare_mux > Bandwidth::ZERO);
    ded.assert_invariants();
    mux.assert_invariants();
}
