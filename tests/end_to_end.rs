//! End-to-end integration: small-scale versions of the paper's campaigns,
//! asserting the orderings the figures exhibit.

use drt_experiments::config::ExperimentConfig;
use drt_experiments::runner::{replay, run_matrix, SchemeKind};
use drt_experiments::{capacity, fault_tolerance, overhead};
use drt_sim::workload::TrafficPattern;
use std::sync::Arc;

fn small_cfg() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick(3.0);
    cfg.nodes = 30;
    cfg.duration = drt_sim::SimDuration::from_minutes(70);
    cfg.warmup = drt_sim::SimDuration::from_minutes(35);
    cfg.snapshots = 2;
    cfg
}

#[test]
fn figure4_orderings_hold_at_load() {
    let cfg = small_cfg();
    let net = Arc::new(cfg.build_network().unwrap());
    let scenario = cfg
        .scenario_config(0.4, TrafficPattern::ut())
        .generate(cfg.nodes);

    let dlsr = replay(&net, &scenario, SchemeKind::DLsr, &cfg);
    let plsr = replay(&net, &scenario, SchemeKind::PLsr, &cfg);
    let bf = replay(&net, &scenario, SchemeKind::Bf, &cfg);

    // "D-LSR offers the best fault-tolerance among all the cases
    // considered and BF the least in most cases."
    assert!(
        dlsr.p_act_bk() >= bf.p_act_bk(),
        "{} vs {}",
        dlsr.p_act_bk(),
        bf.p_act_bk()
    );
    assert!(plsr.p_act_bk() >= bf.p_act_bk());
    // "fault-tolerance of 87% or higher"
    for m in [&dlsr, &plsr, &bf] {
        assert!(m.p_act_bk() >= 0.80, "{}: {}", m.scheme, m.p_act_bk());
    }
}

#[test]
fn figure4_higher_connectivity_helps() {
    // "All three routing schemes provided higher fault-tolerance when the
    // network connectivity E is high."
    let mut cfg3 = small_cfg();
    cfg3.degree = 3.0;
    let mut cfg4 = small_cfg();
    cfg4.degree = 4.0;
    for kind in SchemeKind::paper_schemes() {
        let run = |cfg: &ExperimentConfig| {
            let net = Arc::new(cfg.build_network().unwrap());
            let scenario = cfg
                .scenario_config(0.4, TrafficPattern::ut())
                .generate(cfg.nodes);
            replay(&net, &scenario, kind, cfg).p_act_bk()
        };
        let p3 = run(&cfg3);
        let p4 = run(&cfg4);
        assert!(p4 >= p3 - 0.01, "{kind}: E=4 ({p4}) should beat E=3 ({p3})");
    }
}

#[test]
fn figure5_overhead_bounded_and_ordered() {
    let cfg = small_cfg();
    let net = Arc::new(cfg.build_network().unwrap());
    let scenario = cfg
        .scenario_config(0.5, TrafficPattern::ut())
        .generate(cfg.nodes);

    let nobackup = replay(&net, &scenario, SchemeKind::NoBackup, &cfg);
    let dlsr = replay(&net, &scenario, SchemeKind::DLsr, &cfg);
    let dedicated = replay(&net, &scenario, SchemeKind::Dedicated, &cfg);

    let metrics = vec![nobackup.clone(), dlsr.clone(), dedicated.clone()];
    let mux = capacity::overhead_percent(&metrics, "D-LSR", "UT", 0.5).unwrap();
    let ded = capacity::overhead_percent(&metrics, "Dedicated", "UT", 0.5).unwrap();

    // Multiplexing pays: bounded overhead, far below the dedicated
    // strawman, which the paper pegs at >= ~50% in saturation.
    assert!(mux > 0.0, "backups are not free: {mux}");
    assert!(mux < 40.0, "multiplexed overhead out of range: {mux}");
    assert!(
        ded > mux + 10.0,
        "dedicated ({ded}) must clearly exceed multiplexed ({mux})"
    );
}

#[test]
fn overhead_profiles_match_cost_models() {
    let cfg = small_cfg();
    let net = Arc::new(cfg.build_network().unwrap());
    let scenario = cfg
        .scenario_config(0.3, TrafficPattern::ut())
        .generate(cfg.nodes);

    let dlsr = replay(&net, &scenario, SchemeKind::DLsr, &cfg);
    let plsr = replay(&net, &scenario, SchemeKind::PLsr, &cfg);
    let bf = replay(&net, &scenario, SchemeKind::Bf, &cfg);

    // BF is on-demand: tiny per-request message cost. LSR floods LSAs.
    assert!(bf.msgs_per_conn * 5.0 < plsr.msgs_per_conn);
    // D-LSR's entries carry conflict vectors: more bytes than P-LSR.
    assert!(dlsr.bytes_per_conn > plsr.bytes_per_conn);
}

#[test]
fn full_matrix_smoke() {
    let mut cfg = small_cfg();
    cfg.nodes = 20;
    cfg.snapshots = 1;
    let kinds = [SchemeKind::DLsr, SchemeKind::Bf, SchemeKind::NoBackup];
    let metrics = run_matrix(
        &cfg,
        &[0.2, 0.4],
        &kinds,
        &[("UT", TrafficPattern::ut()), ("NT", cfg.nt_pattern())],
    );
    assert_eq!(metrics.len(), 2 * 2 * 3);

    // The render paths consume matrices without panicking and mention
    // every λ.
    let f4 = fault_tolerance::render(&metrics, &cfg);
    let f5 = capacity::render(&metrics, &cfg);
    let ov = overhead::render(&metrics, &cfg);
    for text in [&f4, &f5, &ov] {
        assert!(text.contains("0.2"));
        assert!(text.contains("0.4"));
    }
    // Overhead defined against the NoBackup baseline for every cell.
    for pattern in ["UT", "NT"] {
        for lambda in [0.2, 0.4] {
            assert!(
                capacity::overhead_percent(&metrics, "D-LSR", pattern, lambda).is_some(),
                "{pattern} λ={lambda}"
            );
        }
    }
}

#[test]
fn orderings_are_robust_across_topology_seeds() {
    // The headline ordering (conflict-aware LSR >= BF in fault tolerance)
    // must not be an artifact of one lucky topology.
    for topo_seed in [7u64, 21, 99] {
        let mut cfg = small_cfg();
        cfg.topo_seed = topo_seed;
        cfg.seed = topo_seed + 1;
        let net = Arc::new(cfg.build_network().unwrap());
        let scenario = cfg
            .scenario_config(0.4, TrafficPattern::ut())
            .generate(cfg.nodes);
        let dlsr = replay(&net, &scenario, SchemeKind::DLsr, &cfg).p_act_bk();
        let bf = replay(&net, &scenario, SchemeKind::Bf, &cfg).p_act_bk();
        assert!(
            dlsr >= bf - 0.01,
            "seed {topo_seed}: D-LSR {dlsr} vs BF {bf}"
        );
        assert!(dlsr >= 0.9, "seed {topo_seed}: D-LSR {dlsr}");
    }
}

#[test]
fn scenario_files_replay_identically() {
    // The paper's methodology: record a scenario, replay it bit-identically.
    let cfg = small_cfg();
    let net = Arc::new(cfg.build_network().unwrap());
    let scenario = cfg
        .scenario_config(0.3, TrafficPattern::ut())
        .generate(cfg.nodes);
    let text = scenario.to_text();
    let reloaded = drt_sim::workload::Scenario::from_text(&text).unwrap();
    let a = replay(&net, &scenario, SchemeKind::DLsr, &cfg);
    let b = replay(&net, &reloaded, SchemeKind::DLsr, &cfg);
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}
