//! Integration tests of the full DRTP lifecycle: establish → fail →
//! switch → re-protect → repair → release, across schemes and failure
//! models.

use drt_core::multiplex::{FailureModel, MultiplexConfig};
use drt_core::routing::{BoundedFlooding, DLsr, PLsr, RouteRequest, RoutingScheme};
use drt_core::{ConnectionId, ConnectionState, DrtpManager};
use drt_net::{topology, Bandwidth, LinkId};
use std::sync::Arc;

const BW: Bandwidth = Bandwidth::from_kbps(3_000);

fn establish_some(
    mgr: &mut DrtpManager,
    scheme: &mut dyn RoutingScheme,
    n: u64,
    seed: u64,
) -> Vec<ConnectionId> {
    let mut rng = drt_sim::rng::stream(seed, "recovery-pairs");
    let pattern = drt_sim::workload::TrafficPattern::ut();
    let nodes = mgr.net().num_nodes();
    let mut out = Vec::new();
    for i in 0..n {
        let (src, dst) = pattern.sample_pair(nodes, &mut rng);
        if mgr
            .request_connection(
                scheme,
                RouteRequest::new(ConnectionId::new(i), src, dst, BW),
            )
            .is_ok()
        {
            out.push(ConnectionId::new(i));
        }
    }
    out
}

#[test]
fn full_cycle_under_every_scheme() {
    let net = Arc::new(
        topology::WaxmanConfig::new(40, 4.0)
            .capacity(Bandwidth::from_mbps(100))
            .seed(21)
            .build()
            .unwrap(),
    );
    let schemes: Vec<Box<dyn RoutingScheme>> = vec![
        Box::new(DLsr::new()),
        Box::new(PLsr::new()),
        Box::new(BoundedFlooding::new()),
    ];
    for mut scheme in schemes {
        let mut mgr = DrtpManager::new(Arc::clone(&net));
        let live = establish_some(&mut mgr, scheme.as_mut(), 40, 1);
        assert!(!live.is_empty());
        let mut rng = drt_sim::rng::stream(2, "cycle");

        // Fail three random links, recovering after each.
        for link_idx in [0u32, 33, 71] {
            let link = LinkId::new(link_idx);
            if mgr.is_failed(link) {
                continue;
            }
            let report = mgr.inject_failure(link, &mut rng).unwrap();
            for id in report.switched.iter().chain(&report.unprotected) {
                let _ = mgr.reestablish_backup(scheme.as_mut(), *id);
            }
            mgr.assert_invariants();
        }
        // Repair everything.
        for link_idx in [0u32, 33, 71] {
            let _ = mgr.repair_link(LinkId::new(link_idx));
        }
        // Release everything; books must be empty.
        for id in live {
            mgr.release(id).unwrap();
        }
        mgr.assert_invariants();
        assert_eq!(
            mgr.total_prime(),
            Bandwidth::ZERO,
            "{} left resources behind",
            scheme.name()
        );
        assert_eq!(mgr.total_spare(), Bandwidth::ZERO);
    }
}

#[test]
fn recovered_connection_survives_second_failure_after_reprotection() {
    let net = Arc::new(topology::mesh(4, 4, Bandwidth::from_mbps(100)).unwrap());
    let mut mgr = DrtpManager::new(Arc::clone(&net));
    let mut scheme = DLsr::new();
    let rep = mgr
        .request_connection(
            &mut scheme,
            RouteRequest::new(
                ConnectionId::new(0),
                drt_net::NodeId::new(4),
                drt_net::NodeId::new(7),
                BW,
            ),
        )
        .unwrap();
    let mut rng = drt_sim::rng::stream(9, "double");

    // First failure: switch to backup, then re-protect.
    let l1 = rep.primary.links()[0];
    let report = mgr.inject_failure(l1, &mut rng).unwrap();
    assert_eq!(report.switched, vec![ConnectionId::new(0)]);
    mgr.reestablish_backup(&mut scheme, ConnectionId::new(0))
        .unwrap();
    assert_eq!(
        mgr.connection(ConnectionId::new(0)).unwrap().state(),
        ConnectionState::Protected
    );

    // Second failure on the *new* primary: recover again.
    let new_primary_link = mgr
        .connection(ConnectionId::new(0))
        .unwrap()
        .primary()
        .links()[0];
    let report = mgr.inject_failure(new_primary_link, &mut rng).unwrap();
    assert_eq!(
        report.switched,
        vec![ConnectionId::new(0)],
        "re-established protection must cover the second failure"
    );
    mgr.assert_invariants();
}

#[test]
fn duplex_pair_failure_kills_both_directions_of_traffic() {
    let net = Arc::new(topology::mesh(3, 3, Bandwidth::from_mbps(100)).unwrap());
    let mut cfg = MultiplexConfig::paper();
    cfg.failure_model = FailureModel::DuplexPair;
    let mut mgr = DrtpManager::with_config(Arc::clone(&net), cfg);
    let mut scheme = DLsr::new();

    // Two opposite-direction connections across the same physical pair.
    let a = drt_net::NodeId::new(3);
    let b = drt_net::NodeId::new(5);
    mgr.request_connection(
        &mut scheme,
        RouteRequest::new(ConnectionId::new(0), a, b, BW),
    )
    .unwrap();
    mgr.request_connection(
        &mut scheme,
        RouteRequest::new(ConnectionId::new(1), b, a, BW),
    )
    .unwrap();

    // Fail a physical link both primaries traverse (in opposite
    // directions): the duplex model must see both as affected.
    let fwd = mgr
        .connection(ConnectionId::new(0))
        .unwrap()
        .primary()
        .links()[0];
    let mut rng = drt_sim::rng::stream(4, "duplex");
    let probe = mgr.probe_single_failure(fwd, &mut rng);
    assert_eq!(
        probe.affected(),
        2,
        "physical cut affects both directions: {probe:?}"
    );
    assert_eq!(probe.activated(), 2);
    mgr.assert_invariants();
}

#[test]
fn repair_restores_routability() {
    let net = Arc::new(topology::ring(6, Bandwidth::from_mbps(10)).unwrap());
    let mut mgr = DrtpManager::new(Arc::clone(&net));
    let mut scheme = DLsr::new();
    let mut rng = drt_sim::rng::stream(6, "repair");

    // Cut the ring twice: some pairs become unreachable.
    mgr.inject_failure(LinkId::new(0), &mut rng).unwrap();
    let l_far = net
        .find_link(drt_net::NodeId::new(3), drt_net::NodeId::new(4))
        .unwrap();
    mgr.inject_failure(l_far, &mut rng).unwrap();

    let req = RouteRequest::new(
        ConnectionId::new(0),
        drt_net::NodeId::new(0),
        drt_net::NodeId::new(4),
        BW,
    );
    // With two cuts the ring is split; 0 can still reach 4 one way at
    // most — and with both cuts between them, not at all. Establish must
    // fail or come back unprotected; after repair it succeeds protected.
    let before = mgr.request_connection(&mut scheme, req);
    mgr.repair_link(LinkId::new(0)).unwrap();
    mgr.repair_link(l_far).unwrap();
    let req2 = RouteRequest::new(
        ConnectionId::new(1),
        drt_net::NodeId::new(0),
        drt_net::NodeId::new(4),
        BW,
    );
    let after = mgr.request_connection(&mut scheme, req2).unwrap();
    assert!(after.backup().is_some(), "repaired ring offers both routes");
    // `before` may have failed or been unprotected; either way the books
    // stay consistent.
    let _ = before;
    mgr.assert_invariants();
}

#[test]
fn reestablish_backup_under_contention_is_best_effort_until_it_clears() {
    // Capacity exactly one connection per link: after a failure consumes
    // the shared spare pool, re-protection still succeeds — spare pools
    // grow only toward what is free — but the under-provisioned backup
    // cannot activate until the contention clears (the paper's P_act-bk
    // shortfall, repaired by reconfiguration).
    let net = Arc::new(topology::mesh(3, 3, BW).unwrap());
    let mut mgr = DrtpManager::new(Arc::clone(&net));
    let mut script = drt_core::routing::Scripted::new();
    let r = |nodes: &[u32]| {
        let ids: Vec<drt_net::NodeId> = nodes.iter().map(|&n| drt_net::NodeId::new(n)).collect();
        drt_net::Route::from_nodes(&net, &ids).unwrap()
    };
    // Disjoint primaries share one connection's worth of spare on the
    // middle row (figure 1's safe multiplexing).
    script.push(r(&[0, 1, 2]), Some(r(&[0, 3, 4, 5, 2])));
    script.push(r(&[6, 7, 8]), Some(r(&[6, 3, 4, 5, 8])));
    mgr.request_connection(
        &mut script,
        RouteRequest::new(
            ConnectionId::new(0),
            drt_net::NodeId::new(0),
            drt_net::NodeId::new(2),
            BW,
        ),
    )
    .unwrap();
    mgr.request_connection(
        &mut script,
        RouteRequest::new(
            ConnectionId::new(1),
            drt_net::NodeId::new(6),
            drt_net::NodeId::new(8),
            BW,
        ),
    )
    .unwrap();

    // Fail connection 0's primary: it switches onto the middle row,
    // converting the shared spare into its own prime reservation.
    let cut = net
        .find_link(drt_net::NodeId::new(1), drt_net::NodeId::new(2))
        .unwrap();
    let mut rng = drt_sim::rng::stream(11, "contention");
    let report = mgr.inject_failure(cut, &mut rng).unwrap();
    assert_eq!(report.switched, vec![ConnectionId::new(0)]);
    mgr.assert_invariants();

    // Every detour for connection 1 crosses links now fully held by
    // connection 0's promoted route: re-protection is accepted, but the
    // spare pool there cannot grow (no free capacity), so the new backup
    // is unactivatable — nominal protection, zero real fault tolerance.
    mgr.drop_backups(ConnectionId::new(1)).unwrap();
    let mut dlsr = DLsr::new();
    mgr.reestablish_backup(&mut dlsr, ConnectionId::new(1))
        .unwrap();
    assert_eq!(
        mgr.connection(ConnectionId::new(1)).unwrap().state(),
        ConnectionState::Protected
    );
    let contended = mgr.connection(ConnectionId::new(1)).unwrap().backups()[0].clone();
    assert!(
        contended
            .links()
            .iter()
            .any(|&l| mgr.link_resources(l).spare() == Bandwidth::ZERO
                && mgr.link_resources(l).free() == Bandwidth::ZERO),
        "the detour must cross a saturated link: {contended}"
    );
    let p1_link = mgr
        .connection(ConnectionId::new(1))
        .unwrap()
        .primary()
        .links()[0];
    let probe = mgr.probe_single_failure(p1_link, &mut rng);
    assert_eq!(
        (probe.affected(), probe.activated()),
        (1, 0),
        "under-provisioned spare cannot activate"
    );
    mgr.assert_invariants();

    // Releasing the contender frees the middle row; reconfiguration
    // (drop + re-establish) reprovisions the spare pool and protection
    // becomes real again, even though the original cut is unrepaired.
    mgr.release(ConnectionId::new(0)).unwrap();
    mgr.drop_backups(ConnectionId::new(1)).unwrap();
    mgr.reestablish_backup(&mut dlsr, ConnectionId::new(1))
        .unwrap();
    let backup = mgr.connection(ConnectionId::new(1)).unwrap().backups()[0].clone();
    assert!(
        backup
            .links()
            .iter()
            .all(|&l| mgr.link_resources(l).spare() >= BW),
        "spare pools must be fully provisioned after reconfiguration"
    );
    let probe = mgr.probe_single_failure(p1_link, &mut rng);
    assert_eq!((probe.affected(), probe.activated()), (1, 1));
    mgr.assert_invariants();
}

#[test]
fn reestablish_backup_after_duplex_pair_failure() {
    // Under the duplex failure model one physical cut downs both
    // directions; re-protection must bring both switched connections
    // back to Protected.
    let net = Arc::new(topology::mesh(3, 3, Bandwidth::from_mbps(100)).unwrap());
    let mut cfg = MultiplexConfig::paper();
    cfg.failure_model = FailureModel::DuplexPair;
    let mut mgr = DrtpManager::with_config(Arc::clone(&net), cfg);
    let mut scheme = DLsr::new();

    let a = drt_net::NodeId::new(3);
    let b = drt_net::NodeId::new(5);
    mgr.request_connection(
        &mut scheme,
        RouteRequest::new(ConnectionId::new(0), a, b, BW),
    )
    .unwrap();
    mgr.request_connection(
        &mut scheme,
        RouteRequest::new(ConnectionId::new(1), b, a, BW),
    )
    .unwrap();

    let fwd = mgr
        .connection(ConnectionId::new(0))
        .unwrap()
        .primary()
        .links()[0];
    let mut rng = drt_sim::rng::stream(12, "duplex-reprotect");
    let report = mgr.inject_failure(fwd, &mut rng).unwrap();
    assert_eq!(
        report.switched.len() + report.unprotected.len() + report.lost.len(),
        2,
        "the physical cut must affect both directions: {report:?}"
    );

    for id in report.switched.iter().chain(&report.unprotected) {
        mgr.reestablish_backup(&mut scheme, *id).unwrap();
        assert_eq!(
            mgr.connection(*id).unwrap().state(),
            ConnectionState::Protected,
            "{id} must be re-protected after the duplex cut"
        );
    }
    assert!(report.lost.is_empty(), "capacity is ample: {report:?}");
    mgr.assert_invariants();

    // The re-established protection is real: cut one of the new
    // primaries (duplex again) and the affected side still recovers.
    let second = mgr
        .connection(ConnectionId::new(0))
        .unwrap()
        .primary()
        .links()[0];
    let report = mgr.inject_failure(second, &mut rng).unwrap();
    assert!(
        report.lost.is_empty(),
        "re-protection covered the repeat cut"
    );
    mgr.assert_invariants();
}
