//! Walks through the paper's worked examples (Figures 1–3) on a 3×3 mesh,
//! printing the APLV/Conflict-Vector state at each step.
//!
//! The scanned paper's exact link numbering is not recoverable, so the
//! routes below realise the same *structure* the figures describe:
//! backups that share spare safely (disjoint primaries), backups that
//! conflict (overlapping primaries), and D-LSR's conflict-free detour.
//!
//! Run with: `cargo run --example paper_figures`

use drt_core::multiplex::{ActivationPool, MultiplexConfig, SparePolicy};
use drt_core::routing::{DLsr, RouteRequest, Scripted};
use drt_core::{ConnectionId, DrtpManager};
use drt_net::{topology, Bandwidth, NodeId, Route};
use std::error::Error;
use std::sync::Arc;

const BW: Bandwidth = Bandwidth::from_kbps(3_000);

fn req(id: u64, src: u32, dst: u32) -> RouteRequest {
    RouteRequest::new(
        ConnectionId::new(id),
        NodeId::new(src),
        NodeId::new(dst),
        BW,
    )
}

fn route(net: &drt_net::Network, nodes: &[u32]) -> Route {
    let ids: Vec<NodeId> = nodes.iter().map(|&n| NodeId::new(n)).collect();
    Route::from_nodes(net, &ids).expect("figure routes are valid on the mesh")
}

fn main() -> Result<(), Box<dyn Error>> {
    // The mesh of Figure 1, nodes numbered row-major:
    //   0 - 1 - 2
    //   |   |   |
    //   3 - 4 - 5
    //   |   |   |
    //   6 - 7 - 8
    let net = Arc::new(topology::mesh(3, 3, Bandwidth::from_mbps(10))?);
    println!("Figure 1 mesh: {net}\n");

    // ------------------------------------------------------------------
    // Figure 1, lesson one: B1 and B2 share links, but P1 and P2 are
    // disjoint — multiplexing their spare is safe.
    // ------------------------------------------------------------------
    let mut mgr = DrtpManager::new(Arc::clone(&net));
    let mut script = Scripted::new();
    // D1: top row primary, backup through the middle row.
    script.push(route(&net, &[0, 1, 2]), Some(route(&net, &[0, 3, 4, 5, 2])));
    // D2: bottom row primary, backup through the same middle-row links.
    script.push(route(&net, &[6, 7, 8]), Some(route(&net, &[6, 3, 4, 5, 8])));
    mgr.request_connection(&mut script, req(1, 0, 2))?;
    mgr.request_connection(&mut script, req(2, 6, 8))?;

    let shared = net
        .find_link(NodeId::new(3), NodeId::new(4))
        .expect("mesh link");
    println!("shared backup link {shared}: {}", mgr.aplv(shared));
    println!(
        "  max simultaneous activations after any single failure: {}",
        mgr.aplv(shared).max_count()
    );
    println!(
        "  spare reserved: {} (one connection's worth covers both backups)\n",
        mgr.link_resources(shared).spare()
    );

    // ------------------------------------------------------------------
    // Figure 1, lesson two: D3's primary overlaps P1, and a conflict-blind
    // backup shares B1's links — one failure now needs twice the spare.
    // ------------------------------------------------------------------
    let mut script = Scripted::new();
    // D3: primary shares link 1->2 with P1; backup shares 4->5, 5->2 with B1.
    script.push(route(&net, &[1, 2]), Some(route(&net, &[1, 4, 5, 2])));
    mgr.request_connection(&mut script, req(3, 1, 2))?;

    let contested = net
        .find_link(NodeId::new(4), NodeId::new(5))
        .expect("mesh link");
    let overlap_link = net
        .find_link(NodeId::new(1), NodeId::new(2))
        .expect("mesh link");
    println!("after the conflicting D3 arrives:");
    println!("  {contested}: {}", mgr.aplv(contested));
    println!(
        "  a failure of {overlap_link} activates {} backups here",
        mgr.aplv(contested).count(overlap_link)
    );
    println!(
        "  Section 5 response: spare on {contested} grew to {}",
        mgr.link_resources(contested).spare()
    );

    // Under the paper's policy the grown spare absorbs the conflict:
    let mut rng = drt_sim::rng::stream(1, "figures");
    let probe = mgr.probe_single_failure(overlap_link, &mut rng);
    println!(
        "  probe of {overlap_link}: {}/{} backups activate (spare grew in time)\n",
        probe.activated(),
        probe.affected()
    );

    // ...but if spare cannot grow (the L7 situation of Figure 1), the
    // conflict costs a connection:
    let mut constrained = DrtpManager::with_config(
        Arc::clone(&net),
        MultiplexConfig {
            spare: SparePolicy::NeverGrow,
            activation: ActivationPool::SpareOnly,
            ..MultiplexConfig::paper()
        },
    );
    let mut script = Scripted::new();
    script.push(route(&net, &[0, 1, 2]), Some(route(&net, &[0, 3, 4, 5, 2])));
    script.push(route(&net, &[1, 2]), Some(route(&net, &[1, 4, 5, 2])));
    constrained.request_connection(&mut script, req(1, 0, 2))?;
    constrained.request_connection(&mut script, req(3, 1, 2))?;
    let probe = constrained.probe_single_failure(overlap_link, &mut rng);
    println!(
        "figure 1's L7 lesson (no spare growth): only {}/{} backups activate\n",
        probe.activated(),
        probe.affected()
    );

    // ------------------------------------------------------------------
    // Figure 2: the Conflict Vector is the bit-pattern of the APLV.
    // ------------------------------------------------------------------
    let cv = mgr.aplv(contested).conflict_vector(net.num_links());
    println!(
        "Figure 2: CV of {contested} has {} set bits ({} bytes on the wire):",
        cv.ones(),
        cv.wire_bytes()
    );
    let bits: String = net
        .links()
        .map(|l| if cv.get(l.id()) { '1' } else { '0' })
        .collect();
    println!("  ({bits})\n");

    // ------------------------------------------------------------------
    // Figure 3: D-LSR reads the conflict vectors and detours D3's backup
    // around B1 instead of colliding with it.
    // ------------------------------------------------------------------
    let mut mgr = DrtpManager::new(Arc::clone(&net));
    let mut script = Scripted::new();
    script.push(route(&net, &[0, 1, 2]), Some(route(&net, &[0, 3, 4, 5, 2])));
    mgr.request_connection(&mut script, req(1, 0, 2))?;
    let b1 = route(&net, &[0, 3, 4, 5, 2]);

    let mut dlsr = DLsr::new();
    let rep = mgr.request_connection(&mut dlsr, req(3, 1, 2))?;
    let b3 = rep
        .backup()
        .cloned()
        .expect("d-lsr always proposes a backup here");
    println!("Figure 3: D-LSR routes B3' as {b3}");
    println!(
        "  overlap with B1: {} links (the longer, conflict-free detour wins)",
        b3.overlap(&b1)
    );
    let probe = mgr.probe_single_failure(overlap_link, &mut rng);
    println!(
        "  probe of the shared primary link: {}/{} backups activate",
        probe.activated(),
        probe.affected()
    );
    Ok(())
}
