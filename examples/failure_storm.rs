//! Command-and-control under a failure storm: the paper's military C2
//! motivation.
//!
//! A degree-4 network carries a fixed set of DR-connections while links
//! fail one after another (without repair). After every failure the
//! surviving connections switch to their backups and re-establish
//! protection; the example tracks how service availability degrades as
//! the network loses edges — the regime where proactive spare allocation
//! earns its keep.
//!
//! Run with: `cargo run --release --example failure_storm`

use drt_core::routing::{PLsr, RouteRequest};
use drt_core::{ConnectionId, ConnectionState, DrtpManager};
use drt_net::{topology, Bandwidth, LinkId};
use rand::seq::SliceRandom;
use rand::Rng;
use std::error::Error;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn Error>> {
    let seed = 11;
    let net = Arc::new(
        topology::WaxmanConfig::new(60, 4.0)
            .capacity(Bandwidth::from_mbps(100))
            .seed(seed)
            .build()?,
    );
    let mut mgr = DrtpManager::new(Arc::clone(&net));
    let mut scheme = PLsr::new();
    let mut rng = drt_sim::rng::stream(seed, "storm");

    // 120 long-lived command links between random posts.
    let pattern = drt_sim::workload::TrafficPattern::ut();
    let mut established = Vec::new();
    for i in 0..120u64 {
        let (src, dst) = pattern.sample_pair(60, &mut rng);
        let req = RouteRequest::new(ConnectionId::new(i), src, dst, Bandwidth::from_kbps(3_000));
        if mgr.request_connection(&mut scheme, req).is_ok() {
            established.push(ConnectionId::new(i));
        }
    }
    println!(
        "established {} command links on {}",
        established.len(),
        *net
    );

    println!(
        "\n{:>6} {:>10} {:>10} {:>12} {:>12}",
        "fail#", "carrying", "protected", "switchovers", "lost-total"
    );
    let mut total_switched = 0usize;
    let mut total_lost = 0usize;
    for round in 1..=25 {
        // Fail a random still-alive link.
        let alive: Vec<LinkId> = net
            .links()
            .map(|l| l.id())
            .filter(|&l| !mgr.is_failed(l))
            .collect();
        if alive.is_empty() {
            break;
        }
        let victim = *alive.choose(&mut rng).expect("nonempty");
        let report = mgr.inject_failure(victim, &mut rng)?;
        total_switched += report.switched.len();
        total_lost += report.lost.len();

        // Resource reconfiguration: try to re-protect every connection the
        // failure left bare.
        for id in report.switched.iter().chain(&report.unprotected) {
            let _ = mgr.reestablish_backup(&mut scheme, *id);
        }

        let carrying = mgr.active_connections();
        let protected = mgr.protected_connections();
        println!(
            "{round:>6} {carrying:>10} {protected:>10} {:>12} {total_lost:>12}",
            report.switched.len()
        );
        // Sanity: the books must balance after every storm round.
        mgr.assert_invariants();
        let _ = rng.gen::<u64>();
    }

    println!(
        "\nstorm survived: {total_switched} switchovers, {total_lost} connections lost, \
         {} still carrying traffic",
        mgr.active_connections()
    );

    // Failed connections are counted; everything else still balances.
    let failed = mgr
        .connections()
        .filter(|c| c.state() == ConnectionState::Failed)
        .count();
    println!("failed connection records retained for audit: {failed}");
    Ok(())
}
