//! Multiple backup channels: DRTP defines a DR-connection as "one primary
//! and one *or more* backup channels" — the paper evaluates one. This
//! example quantifies what a second and third backup buy (and cost) under
//! the D-LSR scheme:
//!
//! * single-failure fault tolerance (`P_act-bk`) — extra backups rescue
//!   connections whose first backup happens to be bandwidth-squeezed;
//! * capacity cost — every extra backup joins (and grows) the spare pools;
//! * storm survival — under *sequential* failures without repair, extra
//!   backups keep connections protected after their first backup dies.
//!
//! Run with: `cargo run --release --example multi_backup`

use drt_experiments::config::ExperimentConfig;
use drt_experiments::runner::{replay, SchemeKind};
use drt_sim::workload::TrafficPattern;
use std::error::Error;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn Error>> {
    let mut base = ExperimentConfig::quick(3.0);
    base.duration = drt_sim::SimDuration::from_minutes(100);
    base.warmup = drt_sim::SimDuration::from_minutes(50);
    base.snapshots = 2;
    let net = Arc::new(base.build_network()?);
    let scenario = base
        .scenario_config(0.4, TrafficPattern::ut())
        .generate(base.nodes);
    println!("{scenario}");
    println!("topology: {net}\n");

    println!(
        "{:>8} {:>10} {:>10} {:>12} {:>13}",
        "backups", "P_act-bk", "active", "spare frac", "msgs/conn"
    );
    for k in [1u32, 2, 3] {
        let mut cfg = base.clone();
        cfg.backups_per_connection = k;
        let m = replay(&net, &scenario, SchemeKind::DLsr, &cfg);
        println!(
            "{k:>8} {:>10.4} {:>10.1} {:>11.1}% {:>13.0}",
            m.p_act_bk(),
            m.avg_active,
            100.0 * m.spare_fraction,
            m.msgs_per_conn,
        );
    }

    // Storm survival: long-lived connections, sequential failures, no
    // repair and no reconfiguration — how long does protection last?
    println!("\nsequential-failure storm (no repair, no re-protection):");
    println!(
        "{:>8} {:>22} {:>14}",
        "backups", "failures until 1st loss", "still protected"
    );
    for k in [1u32, 2, 3] {
        let mut mgr = drt_core::DrtpManager::new(Arc::clone(&net));
        let mut scheme = drt_core::routing::DLsr::new();
        let mut rng = drt_sim::rng::stream(17, "storm");
        let pattern = TrafficPattern::ut();
        use rand::seq::SliceRandom;
        for i in 0..80u64 {
            let (src, dst) = pattern.sample_pair(base.nodes, &mut rng);
            let _ = mgr.request_connection(
                &mut scheme,
                drt_core::routing::RouteRequest::new(
                    drt_core::ConnectionId::new(i),
                    src,
                    dst,
                    base.bw_req,
                )
                .with_backups(k),
            );
        }
        let mut first_loss = None;
        for round in 1..=30 {
            let alive: Vec<_> = net
                .links()
                .map(|l| l.id())
                .filter(|&l| !mgr.is_failed(l))
                .collect();
            let Some(&victim) = alive.choose(&mut rng) else {
                break;
            };
            let report = mgr.inject_failure(victim, &mut rng)?;
            if first_loss.is_none() && !report.lost.is_empty() {
                first_loss = Some(round);
            }
        }
        println!(
            "{k:>8} {:>22} {:>14}",
            first_loss.map_or("none in 30".to_string(), |r| r.to_string()),
            mgr.protected_connections(),
        );
    }
    Ok(())
}
