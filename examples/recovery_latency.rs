//! Switchover-latency distributions: the "speedy service recovery" DRTP
//! exists for.
//!
//! For every loaded single-link failure, every affected connection's
//! switchover latency is detection + report hops + backup activation hops
//! (see [`drt_core::failure::RecoveryLatencyModel`]). The scheme choice
//! shows up directly: BF's hop-bounded backups switch fastest, the LSR
//! schemes pay a little latency for their conflict-avoiding detours, and
//! every scheme stays three orders of magnitude below the "several
//! seconds or longer" the paper quotes for reactive re-establishment.
//!
//! Run with: `cargo run --release --example recovery_latency`

use drt_core::failure::RecoveryLatencyModel;
use drt_core::routing::RouteRequest;
use drt_core::{ConnectionId, DrtpManager};
use drt_experiments::config::ExperimentConfig;
use drt_sim::stats::OnlineStats;
use drt_sim::workload::TrafficPattern;
use std::error::Error;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn Error>> {
    let cfg = ExperimentConfig::quick(3.0);
    let net = Arc::new(cfg.build_network()?);
    let model = RecoveryLatencyModel::default();
    println!(
        "latency model: detection {}, per hop {}\n",
        model.detection, model.per_hop
    );
    println!(
        "{:<10} {:>10} {:>12} {:>11} {:>11} {:>12}",
        "scheme", "samples", "mean (ms)", "p50 (ms)", "p99 (ms)", "backup hops"
    );

    for kind in drt_experiments::runner::SchemeKind::paper_schemes() {
        // Load the network to a mid-load steady state.
        let mut mgr = DrtpManager::new(Arc::clone(&net));
        let mut scheme = kind.instantiate();
        let mut rng = drt_sim::rng::stream(23, "latency-load");
        let pattern = TrafficPattern::ut();
        for i in 0..600u64 {
            let (src, dst) = pattern.sample_pair(cfg.nodes, &mut rng);
            let _ = mgr.request_connection(
                scheme.as_mut(),
                RouteRequest::new(ConnectionId::new(i), src, dst, cfg.bw_req),
            );
        }

        // Sweep every failure unit; collect the latency of every would-be
        // switchover.
        let mut stats = OnlineStats::new();
        let mut hops = OnlineStats::new();
        let mut p50 = drt_sim::stats::P2Quantile::new(0.5);
        let mut p99 = drt_sim::stats::P2Quantile::new(0.99);
        for (idx, link) in mgr.failure_units().into_iter().enumerate() {
            let mut prng = drt_sim::rng::indexed_stream(23, "latency-probe", idx as u64);
            let outcome = mgr.probe_single_failure(link, &mut prng);
            for (id, won) in &outcome.details {
                let Some(backup_idx) = won else { continue };
                let conn = mgr.connection(*id).expect("probed connection");
                let latency = model
                    .switchover_latency(conn, link, *backup_idx)
                    .expect("winner implies failed on primary and valid backup");
                let ms = latency.as_secs_f64() * 1e3;
                stats.push(ms);
                p50.push(ms);
                p99.push(ms);
                hops.push(conn.backups()[*backup_idx].len() as f64);
            }
        }
        println!(
            "{:<10} {:>10} {:>12.2} {:>11.2} {:>11.2} {:>12.2}",
            kind.label(),
            stats.count(),
            stats.mean(),
            p50.estimate().unwrap_or(0.0),
            p99.estimate().unwrap_or(0.0),
            hops.mean(),
        );
    }

    println!(
        "\nfor contrast, the paper cites reactive re-establishment at\n\
         \"several seconds or longer, especially in heavily-loaded networks\"."
    );
    Ok(())
}
