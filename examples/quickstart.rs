//! Quickstart: establish dependable real-time connections, break a link,
//! and watch DRTP recover.
//!
//! Run with: `cargo run --example quickstart`

use drt_core::routing::{DLsr, RouteRequest};
use drt_core::{ConnectionId, DrtpManager};
use drt_net::{topology, Bandwidth, NodeId};
use std::error::Error;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn Error>> {
    // A 60-node Waxman network with average degree 3 — the paper's E = 3
    // configuration. 100 Mb/s links; 3 Mb/s per connection.
    let net = Arc::new(
        topology::WaxmanConfig::new(60, 3.0)
            .capacity(Bandwidth::from_mbps(100))
            .seed(7)
            .build()?,
    );
    println!("topology: {net}");

    let mut mgr = DrtpManager::new(Arc::clone(&net));
    let mut scheme = DLsr::new();
    let bw = Bandwidth::from_kbps(3_000);

    // Establish a handful of DR-connections with the deterministic
    // link-state scheme.
    for (id, (src, dst)) in [(0u32, 59u32), (5, 42), (17, 3), (30, 48), (11, 52)]
        .into_iter()
        .enumerate()
    {
        let report = mgr.request_connection(
            &mut scheme,
            RouteRequest::new(
                ConnectionId::new(id as u64),
                NodeId::new(src),
                NodeId::new(dst),
                bw,
            ),
        )?;
        println!(
            "established D{id}: primary {} hops, backup {} hops, conflicts: {}",
            report.primary.len(),
            report.backup().map_or(0, |b| b.len()),
            report.conflicted,
        );
    }
    println!("{mgr}");

    // How well would these connections survive any single link failure?
    let sample = mgr.sweep_single_failures(1);
    println!("fault-tolerance sweep: {sample}");

    // Now actually fail the first link of D0's primary channel.
    let victim = *mgr
        .connection(ConnectionId::new(0))
        .expect("established above")
        .primary()
        .links()
        .first()
        .expect("routes are nonempty");
    let mut rng = drt_sim::rng::stream(1, "quickstart");
    let report = mgr.inject_failure(victim, &mut rng)?;
    println!(
        "failed {victim}: switched {:?}, lost {:?}, newly unprotected {:?}",
        report.switched, report.lost, report.unprotected
    );

    // D0 now runs on its promoted backup; re-establish protection
    // (DRTP's resource-reconfiguration step).
    for id in report.switched.iter().chain(&report.unprotected) {
        match mgr.reestablish_backup(&mut scheme, *id) {
            Ok(_) => println!("{id}: protection restored"),
            Err(e) => println!("{id}: could not re-protect ({e})"),
        }
    }

    // Repair the link and release everything.
    mgr.repair_link(victim)?;
    for id in 0..5u64 {
        mgr.release(ConnectionId::new(id))?;
    }
    println!("after teardown: {mgr}");
    Ok(())
}
