//! The distributed protocol, end to end: establish a protected connection
//! with real signalling packets, fail a link, and watch DRTP's
//! detection → report → switch pipeline recover it — then cross-check the
//! *measured* switchover time against the analytic
//! [`drt_core::failure::RecoveryLatencyModel`].
//!
//! Run with: `cargo run --example protocol_trace`

use drt_core::failure::RecoveryLatencyModel;
use drt_core::ConnectionId;
use drt_net::{topology, Bandwidth, NodeId, Route};
use drt_proto::{ConnOutcome, ProtocolConfig, ProtocolSim};
use std::error::Error;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn Error>> {
    let net = Arc::new(topology::mesh(3, 3, Bandwidth::from_mbps(10))?);
    let route = |nodes: &[u32]| -> Route {
        let ids: Vec<NodeId> = nodes.iter().map(|&n| NodeId::new(n)).collect();
        Route::from_nodes(&net, &ids).expect("mesh routes")
    };
    let primary = route(&[0, 1, 2]);
    let backup = route(&[0, 3, 4, 5, 2]);
    let conn = ConnectionId::new(0);
    let cfg = ProtocolConfig::default();

    let mut sim = ProtocolSim::new(Arc::clone(&net), cfg);
    println!("establishing {conn}: primary {primary}, backup {backup}");
    sim.establish(
        conn,
        Bandwidth::from_kbps(3_000),
        primary.clone(),
        vec![backup.clone()],
    );
    sim.run_to_quiescence();
    println!(
        "  outcome after {}: {:?}",
        sim.now(),
        sim.outcome(conn).expect("submitted")
    );
    println!("  signalling so far: {}", sim.counters());
    for (kind, msgs, bytes) in sim.counters().iter() {
        println!("    {kind:<18} {msgs:>3} msgs {bytes:>5} B");
    }

    // Fail the second link of the primary.
    let failed = primary.links()[1];
    let before = sim.now();
    println!("\nfailing {failed} at {before} ...");
    sim.fail_link(failed);
    sim.run_to_quiescence();
    let elapsed = sim.now().saturating_since(before);
    assert_eq!(sim.outcome(conn), Some(ConnOutcome::Switched));
    println!("  switched onto the backup; pipeline quiesced after {elapsed}");

    // The analytic model predicts: detection + (report hops = 1) +
    // (activation hops = backup length, counting delivery of the first
    // data packet across the final link). In the message simulation the
    // last router activates after `backup.len() - 1` transit delays, data
    // crosses the final link one hop later, and the switch confirmation
    // spends another `backup.len()` hops returning to the source. The
    // recovery log records that confirmation as `resolved_at`; quiescence
    // itself lands later still, because the source then releases the
    // failed primary with a reliable walk of its own.
    let model = RecoveryLatencyModel {
        detection: cfg.detection_delay,
        per_hop: cfg.per_hop_delay,
    };
    let predicted = model.latency(1, backup.len());
    println!(
        "  analytic service-resumption latency: {predicted} \
         (confirmation adds {})",
        cfg.per_hop_delay.times(backup.len() as u64)
    );
    let rec = *sim.recovery_log().last().expect("one recovery episode");
    assert!(rec.recovered, "the switch must have succeeded");
    // resolved = detection + report + (len-1) activation transits
    //            + len confirmation transits
    // service  = detection + report + (len-1) activation transits
    //            + 1 data hop across the final link
    let resolved = rec.resolved_at.saturating_since(before);
    let measured_service =
        resolved - cfg.per_hop_delay.times(backup.len() as u64) + cfg.per_hop_delay;
    assert_eq!(
        measured_service, predicted,
        "message-level simulation must agree with the analytic model"
    );
    println!("  measured service resumption: {measured_service} — exact match");

    println!("\nfinal spare on the backup path (consumed by activation):");
    for &l in backup.links() {
        println!("    {l}: {}", sim.link_resources(l));
    }
    Ok(())
}
