//! Topology-imposed protectability: how many disjoint channels can each
//! node pair *ever* have?
//!
//! By Menger's theorem, the number of link-disjoint paths between two
//! nodes bounds the channels (primary + backups) a DR-connection between
//! them can hold disjointly — no routing scheme can beat the topology.
//! This analysis explains two facts of the evaluation: why the paper's
//! E = 4 networks are uniformly more fault tolerant than E = 3 (more pairs
//! with ≥ 3 disjoint paths means fewer forced conflicts), and why the
//! topology generator eliminates bridges (pairs with connectivity 1 are
//! unprotectable, capping `P_act-bk` regardless of scheme).
//!
//! Run with: `cargo run --release --example topology_protectability`

use drt_experiments::config::ExperimentConfig;
use drt_net::algo::{bridges, edge_connectivity};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    println!(
        "{:>3} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8}",
        "E", "k=1 (%)", "k=2 (%)", "k=3 (%)", "k>=4 (%)", "mean k", "bridges"
    );
    for degree in [3.0, 4.0] {
        let cfg = ExperimentConfig::paper(degree);
        let net = cfg.build_network()?;
        let mut buckets = [0u64; 4]; // k = 1, 2, 3, >= 4
        let mut total = 0u64;
        let mut sum_k = 0u64;
        for s in net.nodes() {
            for d in net.nodes() {
                if s >= d {
                    continue;
                }
                let k = edge_connectivity(&net, s, d);
                total += 1;
                sum_k += k;
                buckets[(k.clamp(1, 4) - 1) as usize] += 1;
            }
        }
        let pct = |c: u64| 100.0 * c as f64 / total as f64;
        println!(
            "{degree:>3} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.2} {:>8}",
            pct(buckets[0]),
            pct(buckets[1]),
            pct(buckets[2]),
            pct(buckets[3]),
            sum_k as f64 / total as f64,
            bridges(&net).len(),
        );
    }

    // The same analysis with bridge elimination disabled shows what the
    // generator protects the evaluation from.
    println!("\nwithout bridge elimination (raw spanning-tree Waxman):");
    let net = drt_net::topology::WaxmanConfig::new(60, 3.0)
        .capacity(drt_net::Bandwidth::from_mbps(100))
        .seed(60)
        .two_edge_connected(false)
        .build()?;
    let mut unprotectable = 0u64;
    let mut total = 0u64;
    for s in net.nodes() {
        for d in net.nodes() {
            if s >= d {
                continue;
            }
            total += 1;
            if edge_connectivity(&net, s, d) < 2 {
                unprotectable += 1;
            }
        }
    }
    println!(
        "  {} bridges; {:.1}% of pairs cannot have any disjoint backup",
        bridges(&net).len(),
        100.0 * unprotectable as f64 / total as f64
    );
    Ok(())
}
