//! Replays one identical scenario under every routing scheme and prints a
//! side-by-side comparison — the paper's methodology in miniature.
//!
//! Run with: `cargo run --release --example scheme_comparison`

use drt_experiments::config::ExperimentConfig;
use drt_experiments::runner::{replay, SchemeKind};
use drt_sim::workload::TrafficPattern;
use std::error::Error;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn Error>> {
    let mut cfg = ExperimentConfig::quick(3.0);
    cfg.duration = drt_sim::SimDuration::from_minutes(120);
    cfg.warmup = drt_sim::SimDuration::from_minutes(60);
    cfg.snapshots = 3;

    let net = Arc::new(cfg.build_network()?);
    let lambda = 0.4; // mid-load: differences are clearest here
    let scenario = cfg
        .scenario_config(lambda, TrafficPattern::ut())
        .generate(cfg.nodes);
    println!("{scenario}");
    println!("topology: {net}\n");

    println!(
        "{:<10} {:>9} {:>10} {:>10} {:>10} {:>11} {:>11} {:>10}",
        "scheme",
        "P_act-bk",
        "accepted",
        "active",
        "conflicts",
        "msgs/conn",
        "KiB/conn",
        "bkp hops"
    );
    for kind in [
        SchemeKind::DLsr,
        SchemeKind::PLsr,
        SchemeKind::Bf,
        SchemeKind::Spf,
        SchemeKind::Dedicated,
        SchemeKind::NoBackup,
    ] {
        let m = replay(&net, &scenario, kind, &cfg);
        println!(
            "{:<10} {:>9.4} {:>9.1}% {:>10.1} {:>9.1}% {:>11.0} {:>11.1} {:>10.2}",
            m.scheme,
            m.p_act_bk(),
            100.0 * m.acceptance(),
            m.avg_active,
            100.0 * m.conflicted_fraction,
            m.msgs_per_conn,
            m.bytes_per_conn / 1024.0,
            m.avg_backup_hops,
        );
    }

    println!(
        "\nreading guide: D-LSR/P-LSR buy the highest P_act-bk with large \
         link-state traffic;\nBF pays per-request flooding instead and gives \
         up some protection;\nSPF shows what conflict-blindness costs; \
         Dedicated is perfectly protected but\nadmits the fewest connections; \
         NoBackup is the capacity yardstick of Figure 5."
    );
    Ok(())
}
