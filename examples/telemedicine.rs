//! Telemedicine workload: the paper's motivating "remote medical
//! services" scenario.
//!
//! Ten regional hospitals (the NT hot set) receive half of all
//! consultation streams. The example generates a Poisson arrival scenario,
//! replays it under D-LSR, and reports admission, fault tolerance, and how
//! concentrated the spare capacity becomes around the hospital uplinks.
//!
//! Run with: `cargo run --release --example telemedicine`

use drt_core::routing::{DLsr, RouteRequest};
use drt_core::{ConnectionId, DrtpManager};
use drt_net::{topology, Bandwidth};
use drt_sim::process::UniformDuration;
use drt_sim::workload::{ScenarioConfig, TimelineEvent, TrafficPattern};
use drt_sim::SimDuration;
use std::error::Error;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn Error>> {
    let seed = 42;
    let nodes = 60;
    let net = Arc::new(
        topology::WaxmanConfig::new(nodes, 3.0)
            .capacity(Bandwidth::from_mbps(100))
            .seed(seed)
            .build()?,
    );

    // Ten hospitals receive 50% of all DR-connections (the paper's NT
    // pattern); each consultation is a 3 Mb/s stream lasting 20-60 min.
    let mut hotset_rng = drt_sim::rng::stream(seed, "hospitals");
    let pattern = TrafficPattern::nt_paper(nodes, &mut hotset_rng);
    println!("traffic: {pattern}");
    let hospitals = match &pattern {
        TrafficPattern::HotDestinations { hot, .. } => hot.clone(),
        _ => unreachable!("nt_paper builds a hot-destination pattern"),
    };

    let scenario = ScenarioConfig {
        arrival_rate: 0.4,
        duration: SimDuration::from_hours(2),
        lifetime: UniformDuration::new(
            SimDuration::from_minutes(20),
            SimDuration::from_minutes(60),
        ),
        pattern,
        bw_req: Bandwidth::from_kbps(3_000),
        seed,
        failures: None,
    }
    .generate(nodes);
    println!("{scenario}");

    let mut mgr = DrtpManager::new(Arc::clone(&net));
    let mut scheme = DLsr::new();
    let mut admitted = 0u64;
    let mut rejected = 0u64;
    for (t, ev) in scenario.timeline() {
        match ev {
            TimelineEvent::Arrive(rid) => {
                let r = scenario.request(rid).expect("valid id");
                let req = RouteRequest::new(
                    ConnectionId::new(rid.index() as u64),
                    r.src,
                    r.dst,
                    scenario.bw_req(),
                );
                match mgr.request_connection(&mut scheme, req) {
                    Ok(_) => admitted += 1,
                    Err(_) => rejected += 1,
                }
            }
            TimelineEvent::Depart(rid) => {
                let _ = mgr.release(ConnectionId::new(rid.index() as u64));
            }
            TimelineEvent::LinkFail(_) | TimelineEvent::LinkRepair(_) => {}
        }
        let _ = t;
    }
    println!(
        "admitted {admitted}, rejected {rejected} ({:.1}% acceptance)",
        100.0 * admitted as f64 / (admitted + rejected) as f64
    );
    println!("end state: {mgr}");

    // Fault tolerance of the consultations still active at the end.
    let sample = mgr.sweep_single_failures(seed);
    println!("single-link-failure sweep: {sample}");

    // Spare bandwidth concentrates on the hospital uplinks: compare the
    // average spare pool of links that touch a hospital against the rest.
    let (mut hosp_spare, mut hosp_n, mut other_spare, mut other_n) = (0u64, 0u64, 0u64, 0u64);
    for link in net.links() {
        let touches_hospital = hospitals.contains(&link.src()) || hospitals.contains(&link.dst());
        let spare = mgr.link_resources(link.id()).spare().kbps();
        if touches_hospital {
            hosp_spare += spare;
            hosp_n += 1;
        } else {
            other_spare += spare;
            other_n += 1;
        }
    }
    println!(
        "avg spare near hospitals: {:.1} Mb/s vs elsewhere: {:.1} Mb/s",
        hosp_spare as f64 / hosp_n.max(1) as f64 / 1000.0,
        other_spare as f64 / other_n.max(1) as f64 / 1000.0,
    );
    Ok(())
}
