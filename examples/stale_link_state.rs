//! Staleness of the link-state database: what periodic LSA dissemination
//! costs the LSR schemes.
//!
//! The paper's link-state schemes assume each router's database reflects
//! the network's current APLVs and available bandwidths; in practice the
//! "extended link-state packet … introduces additional routing traffic",
//! so operators would disseminate periodically. This experiment routes on
//! a [`drt_core::StateSnapshot`] refreshed every `T` seconds while
//! admission runs against live state — selections that staleness made
//! infeasible fail at setup, and conflict avoidance decays because the
//! APLVs consulted are old.
//!
//! Run with: `cargo run --release --example stale_link_state`

use drt_core::routing::{DLsr, RouteRequest, RoutingScheme};
use drt_core::{ConnectionId, DrtpManager};
use drt_experiments::config::ExperimentConfig;
use drt_sim::workload::{TimelineEvent, TrafficPattern};
use drt_sim::{SimDuration, SimTime};
use std::error::Error;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn Error>> {
    let mut cfg = ExperimentConfig::quick(3.0);
    cfg.duration = SimDuration::from_minutes(100);
    cfg.warmup = SimDuration::from_minutes(50);
    let net = Arc::new(cfg.build_network()?);
    let scenario = cfg
        .scenario_config(0.4, TrafficPattern::ut())
        .generate(cfg.nodes);
    println!("{scenario}");
    println!("topology: {net}\n");

    println!(
        "{:>12} {:>10} {:>14} {:>12} {:>10}",
        "refresh", "accepted", "setup-failed", "conflicted", "P_act-bk"
    );
    for refresh_secs in [0u64, 1, 10, 60, 300, 1800] {
        let mut mgr = DrtpManager::new(Arc::clone(&net));
        let mut scheme = DLsr::new();
        let refresh = SimDuration::from_secs(refresh_secs);
        let mut snapshot = mgr.snapshot();
        let mut snapshot_at = SimTime::ZERO;

        let mut admitted = 0u64;
        let mut setup_failed = 0u64;
        let mut _rejected = 0u64;
        let mut conflicted = 0u64;
        let probe_at = SimTime::ZERO + SimDuration::from_micros(cfg.duration.as_micros() * 3 / 4);
        let mut p_act_bk = None;

        for (t, ev) in scenario.timeline() {
            if p_act_bk.is_none() && t >= probe_at {
                p_act_bk = mgr.sweep_single_failures(cfg.seed).p_act_bk();
            }
            match ev {
                TimelineEvent::Arrive(rid) => {
                    if refresh_secs > 0 && t.saturating_since(snapshot_at) >= refresh {
                        snapshot = mgr.snapshot();
                        snapshot_at = t;
                    }
                    let r = scenario.request(rid).expect("valid id");
                    let req = RouteRequest::new(
                        ConnectionId::new(rid.index() as u64),
                        r.src,
                        r.dst,
                        scenario.bw_req(),
                    );
                    // Route on the (possibly stale) database; admit live.
                    let selection = if refresh_secs == 0 {
                        scheme.select_routes(&mgr.view(), &req)
                    } else {
                        scheme.select_routes(&snapshot.view(), &req)
                    };
                    match selection {
                        Err(_) => _rejected += 1,
                        Ok(pair) => match mgr.admit_routes(&req, pair) {
                            Ok(rep) => {
                                admitted += 1;
                                if rep.conflicted {
                                    conflicted += 1;
                                }
                            }
                            Err(_) => setup_failed += 1,
                        },
                    }
                }
                TimelineEvent::Depart(rid) => {
                    let _ = mgr.release(ConnectionId::new(rid.index() as u64));
                }
                TimelineEvent::LinkFail(_) | TimelineEvent::LinkRepair(_) => {}
            }
        }
        let p = p_act_bk.unwrap_or(1.0);
        let label = if refresh_secs == 0 {
            "live".to_string()
        } else {
            format!("{refresh_secs} s")
        };
        println!(
            "{label:>12} {:>9.1}% {:>13.1}% {:>11.1}% {:>10.4}",
            100.0 * admitted as f64 / scenario.len() as f64,
            100.0 * setup_failed as f64 / scenario.len() as f64,
            100.0 * conflicted as f64 / admitted.max(1) as f64,
            p
        );
    }
    println!(
        "\nreading guide: setup failures appear once the database lags the\n\
         admission state; conflict avoidance keeps working off old APLVs far\n\
         longer (conflicts change slowly), which is why the paper's schemes\n\
         remain practical with periodic dissemination."
    );
    Ok(())
}
