//! Facade crate re-exporting the DRTP reproduction workspace.

#![warn(missing_docs)]
#![deny(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub use drt_core as core;
pub use drt_experiments as experiments;
pub use drt_net as net;
pub use drt_proto as proto;
pub use drt_sim as sim;
