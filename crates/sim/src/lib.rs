//! Discrete-event simulation substrate for the DRTP reproduction.
//!
//! The paper runs its evaluation as a connection-level simulation: scenario
//! files (generated in Matlab) record DR-connection request and release
//! events, and the same scenario is replayed under each routing scheme (in
//! `ns`). This crate rebuilds that substrate in Rust:
//!
//! * [`SimTime`] / [`SimDuration`] — microsecond-resolution virtual time;
//! * [`EventQueue`] / [`Simulator`] — a deterministic event loop with
//!   FIFO tie-breaking;
//! * [`rng`] — reproducible, independently-seeded random streams;
//! * [`process`] — Poisson arrivals and uniform holding times
//!   (`λ ∈ {0.2 … 1.0}`, `t_req ~ U[20 min, 60 min]` in Table 1);
//! * [`workload`] — the UT (uniform) and NT (hot-destination) traffic
//!   patterns, and scenario files that can be saved, loaded, and replayed
//!   bit-identically across schemes;
//! * [`stats`] — online statistics (Welford), time-weighted averages, and
//!   histograms for the measurement phase.
//!
//! # Example
//!
//! ```
//! use drt_sim::{process::PoissonProcess, rng, SimTime};
//!
//! let mut arrivals = PoissonProcess::new(0.5, rng::stream(42, "arrivals"));
//! let mut t = SimTime::ZERO;
//! let mut count = 0;
//! while t < SimTime::from_secs(1000) {
//!     t += arrivals.next_interarrival();
//!     count += 1;
//! }
//! // rate 0.5/s over 1000 s ≈ 500 arrivals
//! assert!((300..700).contains(&count));
//! ```

#![warn(missing_docs)]
#![deny(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod event;
pub mod process;
pub mod rng;
pub mod stats;
mod time;
pub mod workload;

pub use event::{EventQueue, Scheduler, Simulator};
pub use time::{SimDuration, SimTime};
