//! Virtual time: microsecond-resolution instants and durations.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// An instant of virtual simulation time, in microseconds since the start
/// of the simulation.
///
/// Integer microseconds keep event ordering exact across the multi-hour
/// simulated horizons of the paper's evaluation (a 12-hour run is ~2³⁶ µs,
/// far inside `u64`).
///
/// # Example
///
/// ```
/// use drt_sim::{SimTime, SimDuration};
/// let t = SimTime::from_secs(10) + SimDuration::from_minutes(1);
/// assert_eq!(t.as_secs_f64(), 70.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// An instant that orders after every reachable simulation time.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates an instant from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Creates an instant from whole minutes.
    pub const fn from_minutes(mins: u64) -> Self {
        SimTime(mins * 60 * 1_000_000)
    }

    /// Creates an instant from (non-negative, finite) fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or too large for `u64`
    /// microseconds.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0 && secs <= u64::MAX as f64 / 1e6,
            "invalid simulation time: {secs}"
        );
        SimTime((secs * 1e6).round() as u64)
    }

    /// The instant in whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The instant in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier`, saturating at zero.
    pub const fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    /// # Panics
    /// Panics on `u64` overflow.
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("simulation time overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// # Panics
    /// Panics when `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("negative duration"))
    }
}

/// A span of virtual time, in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Creates a duration from whole minutes.
    pub const fn from_minutes(mins: u64) -> Self {
        SimDuration(mins * 60 * 1_000_000)
    }

    /// Creates a duration from whole hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3600 * 1_000_000)
    }

    /// Creates a duration from (non-negative, finite) fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or too large for `u64`
    /// microseconds.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0 && secs <= u64::MAX as f64 / 1e6,
            "invalid duration: {secs}"
        );
        SimDuration((secs * 1e6).round() as u64)
    }

    /// The duration in whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Multiplies the duration by an integer factor.
    pub const fn times(self, count: u64) -> SimDuration {
        SimDuration(self.0 * count)
    }

    /// Returns `true` if this is the empty duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    /// # Panics
    /// Panics on `u64` overflow.
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("duration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    /// # Panics
    /// Panics when `rhs > self`.
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("negative duration"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_micros(1_000_000));
        assert_eq!(SimTime::from_minutes(2), SimTime::from_secs(120));
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_minutes(60));
        assert_eq!(SimDuration::from_millis(1500).as_secs_f64(), 1.5);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(100);
        let d = SimDuration::from_secs(30);
        assert_eq!((t + d).as_secs_f64(), 130.0);
        assert_eq!((t + d) - t, d);
        assert_eq!(t.saturating_since(t + d), SimDuration::ZERO);
        assert_eq!((t + d).saturating_since(t), d);
    }

    #[test]
    fn fractional_seconds_roundtrip() {
        let t = SimTime::from_secs_f64(12.345678);
        assert!((t.as_secs_f64() - 12.345678).abs() < 1e-9);
        let d = SimDuration::from_secs_f64(0.25);
        assert_eq!(d.as_micros(), 250_000);
    }

    #[test]
    #[should_panic(expected = "invalid simulation time")]
    fn negative_time_rejected() {
        let _ = SimTime::from_secs_f64(-1.0);
    }

    #[test]
    #[should_panic(expected = "negative duration")]
    fn time_subtraction_underflow_panics() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }

    #[test]
    fn ordering_and_sum() {
        assert!(SimTime::ZERO < SimTime::from_micros(1));
        assert!(SimTime::from_secs(1) < SimTime::MAX);
        let total: SimDuration = (1..=3).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(6));
        assert!(SimDuration::ZERO.is_zero());
        assert_eq!(
            SimDuration::from_secs(2).times(3),
            SimDuration::from_secs(6)
        );
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_secs(1).to_string(), "t=1.000000s");
        assert_eq!(SimDuration::from_millis(500).to_string(), "0.500000s");
    }
}
