//! The paper's two traffic patterns.
//!
//! Section 6.1: "The simulation study uses two traffic patterns. One,
//! called UT, is uniform random selection of source and destination nodes.
//! The other, NT, is random pre-selection of 10 nodes as destinations for
//! 50% of DR-connections."

use drt_net::NodeId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How source/destination pairs of DR-connection requests are drawn.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TrafficPattern {
    /// `UT`: source and destination drawn uniformly (distinct).
    Uniform,
    /// `NT`: with probability `fraction` the destination is drawn from the
    /// pre-selected `hot` set; the source (and the remaining destinations)
    /// are uniform.
    HotDestinations {
        /// The pre-selected hot destination nodes.
        hot: Vec<NodeId>,
        /// Fraction of requests directed at a hot node (0..=1).
        fraction: f64,
    },
    /// `FC`: a flash crowd — a skew well past the paper's NT pattern,
    /// where a *single* destination draws most of the offered load (think
    /// a breaking-news origin server). The hostile-workload campaigns use
    /// it to concentrate backup contention onto one region.
    FlashCrowd {
        /// The node the crowd converges on.
        target: NodeId,
        /// Fraction of requests directed at the target (0..=1).
        fraction: f64,
    },
}

impl TrafficPattern {
    /// The paper's `UT` pattern.
    pub fn ut() -> Self {
        TrafficPattern::Uniform
    }

    /// The paper's `NT` pattern: `count` distinct random nodes (out of
    /// `num_nodes`) receive `fraction` of all connections.
    ///
    /// # Panics
    ///
    /// Panics when `count > num_nodes`, when `num_nodes == 0`, or when
    /// `fraction` is outside `[0, 1]`.
    pub fn nt(num_nodes: usize, count: usize, fraction: f64, rng: &mut StdRng) -> Self {
        assert!(num_nodes > 0, "need at least one node");
        assert!(count <= num_nodes, "more hot nodes than nodes");
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
        let mut ids: Vec<NodeId> = (0..num_nodes as u32).map(NodeId::new).collect();
        ids.shuffle(rng);
        ids.truncate(count);
        ids.sort();
        TrafficPattern::HotDestinations { hot: ids, fraction }
    }

    /// The paper's exact NT parameters: 10 hot nodes, 50% of connections.
    pub fn nt_paper(num_nodes: usize, rng: &mut StdRng) -> Self {
        Self::nt(num_nodes, 10.min(num_nodes), 0.5, rng)
    }

    /// A flash crowd converging on one random node with the given
    /// traffic fraction.
    ///
    /// # Panics
    ///
    /// Panics when `num_nodes == 0` or `fraction` is outside `[0, 1]`.
    pub fn flash_crowd(num_nodes: usize, fraction: f64, rng: &mut StdRng) -> Self {
        assert!(num_nodes > 0, "need at least one node");
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
        let target = NodeId::new(rng.gen_range(0..num_nodes as u32));
        TrafficPattern::FlashCrowd { target, fraction }
    }

    /// Short name used in reports ("UT" / "NT" / "FC").
    pub fn label(&self) -> &'static str {
        match self {
            TrafficPattern::Uniform => "UT",
            TrafficPattern::HotDestinations { .. } => "NT",
            TrafficPattern::FlashCrowd { .. } => "FC",
        }
    }

    /// Draws a `(source, destination)` pair with `source != destination`
    /// from a network of `num_nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics when `num_nodes < 2`.
    pub fn sample_pair(&self, num_nodes: usize, rng: &mut StdRng) -> (NodeId, NodeId) {
        assert!(num_nodes >= 2, "need at least two nodes to form a pair");
        let n = num_nodes as u32;
        let dst = match self {
            TrafficPattern::Uniform => NodeId::new(rng.gen_range(0..n)),
            TrafficPattern::HotDestinations { hot, fraction } => {
                if !hot.is_empty() && rng.gen::<f64>() < *fraction {
                    *hot.choose(rng).expect("hot set nonempty")
                } else {
                    NodeId::new(rng.gen_range(0..n))
                }
            }
            TrafficPattern::FlashCrowd { target, fraction } => {
                if rng.gen::<f64>() < *fraction {
                    *target
                } else {
                    NodeId::new(rng.gen_range(0..n))
                }
            }
        };
        // Uniform source distinct from the destination.
        let mut src = NodeId::new(rng.gen_range(0..n - 1));
        if src.index() >= dst.index() {
            src = NodeId::new(src.as_u32() + 1);
        }
        (src, dst)
    }
}

impl fmt::Display for TrafficPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrafficPattern::Uniform => write!(f, "UT (uniform)"),
            TrafficPattern::HotDestinations { hot, fraction } => write!(
                f,
                "NT ({} hot destinations, {:.0}% of traffic)",
                hot.len(),
                fraction * 100.0
            ),
            TrafficPattern::FlashCrowd { target, fraction } => write!(
                f,
                "FC (flash crowd on node {target}, {:.0}% of traffic)",
                fraction * 100.0
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    #[test]
    fn pairs_are_distinct_and_in_range() {
        let p = TrafficPattern::ut();
        let mut r = rng::stream(1, "traffic");
        for _ in 0..5_000 {
            let (s, d) = p.sample_pair(60, &mut r);
            assert_ne!(s, d);
            assert!(s.index() < 60);
            assert!(d.index() < 60);
        }
    }

    #[test]
    fn uniform_covers_all_nodes() {
        let p = TrafficPattern::ut();
        let mut r = rng::stream(2, "traffic");
        let mut seen_src = [false; 10];
        let mut seen_dst = [false; 10];
        for _ in 0..2_000 {
            let (s, d) = p.sample_pair(10, &mut r);
            seen_src[s.index()] = true;
            seen_dst[d.index()] = true;
        }
        assert!(seen_src.iter().all(|&b| b));
        assert!(seen_dst.iter().all(|&b| b));
    }

    #[test]
    fn nt_concentrates_half_the_traffic() {
        let mut setup = rng::stream(3, "hotset");
        let p = TrafficPattern::nt_paper(60, &mut setup);
        let TrafficPattern::HotDestinations { ref hot, fraction } = p else {
            panic!("expected NT");
        };
        assert_eq!(hot.len(), 10);
        assert_eq!(fraction, 0.5);

        let mut r = rng::stream(3, "traffic");
        let n = 20_000;
        let mut hot_hits = 0;
        for _ in 0..n {
            let (_, d) = p.sample_pair(60, &mut r);
            if hot.contains(&d) {
                hot_hits += 1;
            }
        }
        // 50% targeted + 10/60 of the uniform remainder ≈ 58.3%.
        let frac = hot_hits as f64 / n as f64;
        assert!((frac - (0.5 + 0.5 * 10.0 / 60.0)).abs() < 0.02, "{frac}");
    }

    #[test]
    fn nt_hot_nodes_are_distinct() {
        let mut r = rng::stream(4, "hotset");
        let p = TrafficPattern::nt(20, 10, 0.5, &mut r);
        let TrafficPattern::HotDestinations { hot, .. } = p else {
            panic!()
        };
        let set: std::collections::HashSet<_> = hot.iter().collect();
        assert_eq!(set.len(), 10);
    }

    #[test]
    fn labels() {
        let mut r = rng::stream(5, "hotset");
        assert_eq!(TrafficPattern::ut().label(), "UT");
        assert_eq!(TrafficPattern::nt_paper(60, &mut r).label(), "NT");
    }

    #[test]
    fn flash_crowd_concentrates_on_one_target() {
        let mut setup = rng::stream(9, "crowd");
        let p = TrafficPattern::flash_crowd(60, 0.8, &mut setup);
        let TrafficPattern::FlashCrowd { target, fraction } = p else {
            panic!("expected FC");
        };
        assert_eq!(fraction, 0.8);
        assert_eq!(p.label(), "FC");

        let mut r = rng::stream(9, "traffic");
        let n = 20_000;
        let mut hits = 0;
        for _ in 0..n {
            let (s, d) = p.sample_pair(60, &mut r);
            assert_ne!(s, d);
            if d == target {
                hits += 1;
            }
        }
        // 80% targeted + 1/60 of the uniform remainder ≈ 80.3%.
        let frac = hits as f64 / n as f64;
        assert!((frac - (0.8 + 0.2 / 60.0)).abs() < 0.02, "{frac}");
    }

    #[test]
    #[should_panic(expected = "more hot nodes than nodes")]
    fn nt_rejects_oversized_hot_set() {
        let mut r = rng::stream(6, "hotset");
        let _ = TrafficPattern::nt(5, 6, 0.5, &mut r);
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn sample_needs_two_nodes() {
        let mut r = rng::stream(7, "traffic");
        let _ = TrafficPattern::ut().sample_pair(1, &mut r);
    }

    #[test]
    fn zero_fraction_nt_behaves_like_ut() {
        let mut setup = rng::stream(8, "hotset");
        let p = TrafficPattern::nt(30, 5, 0.0, &mut setup);
        let mut r = rng::stream(8, "traffic");
        // Just verify it samples without bias crashes; distribution checks
        // are covered by the uniform tests.
        for _ in 0..100 {
            let (s, d) = p.sample_pair(30, &mut r);
            assert_ne!(s, d);
        }
    }
}
