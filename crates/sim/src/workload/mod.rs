//! Workload generation: traffic patterns, replayable scenario files, and
//! hostile workload geometry (regional storms, maintenance waves).

mod hostile;
mod scenario;
mod traffic;

pub use hostile::{maintenance_waves, regional_storm, rolling_restart_schedule};
pub use scenario::{
    ConnectionRequest, FailureProcess, RequestId, Scenario, ScenarioConfig, TimelineEvent,
};
pub use traffic::TrafficPattern;
