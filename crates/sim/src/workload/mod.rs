//! Workload generation: traffic patterns and replayable scenario files.

mod scenario;
mod traffic;

pub use scenario::{
    ConnectionRequest, FailureProcess, RequestId, Scenario, ScenarioConfig, TimelineEvent,
};
pub use traffic::TrafficPattern;
