//! Hostile and skewed workload geometry: regional failure storms and
//! rolling maintenance waves.
//!
//! The paper's fault model is a single random link or node failure. The
//! adversarial campaigns go past it in two directions the scheme
//! comparison must survive:
//!
//! * **regional storms** — every link inside a hop-radius ball around an
//!   epicenter fails at once, the geographically-correlated SRLG the
//!   paper's independent-failure assumption rules out;
//! * **maintenance waves** — the node population is partitioned into
//!   rolling waves taken down (and brought back) in sequence, a planned
//!   whole-network disturbance instead of a random one.
//!
//! Both are pure geometry over the network graph — which links, which
//! nodes — so the failure-injection machinery (`FailureEvent` batches in
//! `drt-core`) decides *what to do* with them, and the experiment
//! drivers decide *when*.

use drt_net::{LinkId, Network, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use std::collections::VecDeque;

/// Every link whose *both* endpoints lie within `radius` hops of
/// `epicenter`: the shared-risk group of a geographically-bounded
/// disaster. Radius 0 is just the epicenter (no links); radius 1 takes
/// out the links among the epicenter's immediate neighborhood; the
/// network diameter takes out everything. Links are returned in id order
/// so downstream injection is deterministic.
pub fn regional_storm(net: &Network, epicenter: NodeId, radius: usize) -> Vec<LinkId> {
    let mut dist = vec![usize::MAX; net.num_nodes()];
    dist[epicenter.index()] = 0;
    let mut queue = VecDeque::from([epicenter]);
    while let Some(n) = queue.pop_front() {
        let d = dist[n.index()];
        if d == radius {
            continue;
        }
        for next in net.neighbors(n) {
            if dist[next.index()] == usize::MAX {
                dist[next.index()] = d + 1;
                queue.push_back(next);
            }
        }
    }
    net.links()
        .filter(|l| dist[l.src().index()] <= radius && dist[l.dst().index()] <= radius)
        .map(|l| l.id())
        .collect()
}

/// Partitions all nodes into `waves` rolling maintenance groups of
/// near-equal size (difference at most one), in a random order drawn
/// from `rng`. Every node appears in exactly one wave; waves are
/// non-empty when `waves <= num_nodes`.
///
/// # Panics
///
/// Panics when `waves == 0`.
pub fn maintenance_waves(net: &Network, waves: usize, rng: &mut StdRng) -> Vec<Vec<NodeId>> {
    assert!(waves > 0, "need at least one wave");
    let mut ids: Vec<NodeId> = net.nodes().collect();
    ids.shuffle(rng);
    let mut out: Vec<Vec<NodeId>> = vec![Vec::new(); waves];
    for (i, n) in ids.into_iter().enumerate() {
        out[i % waves].push(n);
    }
    for wave in &mut out {
        wave.sort();
    }
    out
}

/// Flattens a maintenance-wave partition into a rolling restart order:
/// wave by wave, node by node — one router down at a time, the
/// change-management schedule behind the restart-storm campaigns. Nodes
/// in `exclude` are skipped (an experiment protects connection
/// endpoints so every restart lands on transit state, not on the
/// connections' own terminals). The wave partition itself comes from
/// [`maintenance_waves`], so the order is seed-deterministic.
///
/// # Panics
///
/// Panics when `waves == 0`.
pub fn rolling_restart_schedule(
    net: &Network,
    waves: usize,
    exclude: &[NodeId],
    rng: &mut StdRng,
) -> Vec<NodeId> {
    maintenance_waves(net, waves, rng)
        .into_iter()
        .flatten()
        .filter(|n| !exclude.contains(n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;
    use drt_net::{topology, Bandwidth};

    fn mesh() -> Network {
        topology::mesh(4, 4, Bandwidth::from_mbps(10)).unwrap()
    }

    #[test]
    fn storm_radius_zero_is_empty_and_diameter_is_everything() {
        let net = mesh();
        assert!(regional_storm(&net, NodeId::new(5), 0).is_empty());
        let all = regional_storm(&net, NodeId::new(5), 6);
        assert_eq!(all.len(), net.num_links());
    }

    #[test]
    fn storm_links_stay_inside_the_ball() {
        let net = mesh();
        // Mesh node ids are row-major: node 5 = (1,1); its radius-1 ball
        // is {5, 1, 4, 6, 9}. Links inside the ball all touch node 5
        // (the other four are pairwise non-adjacent): 4 neighbors × 2
        // directions = 8 links.
        let hit = regional_storm(&net, NodeId::new(5), 1);
        assert_eq!(hit.len(), 8);
        for l in hit {
            let link = net.link(l);
            assert!(
                link.src() == NodeId::new(5) || link.dst() == NodeId::new(5),
                "radius-1 storm link {l} must touch the epicenter"
            );
        }
    }

    #[test]
    fn storm_is_deterministic_and_sorted() {
        let net = mesh();
        let a = regional_storm(&net, NodeId::new(10), 2);
        let b = regional_storm(&net, NodeId::new(10), 2);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "id order");
    }

    #[test]
    fn waves_partition_every_node_once() {
        let net = mesh();
        let mut r = rng::stream(11, "maintenance");
        let waves = maintenance_waves(&net, 3, &mut r);
        assert_eq!(waves.len(), 3);
        let mut seen: Vec<NodeId> = waves.iter().flatten().copied().collect();
        seen.sort();
        let all: Vec<NodeId> = net.nodes().collect();
        assert_eq!(seen, all);
        // Near-equal sizes: 16 nodes over 3 waves = 6/5/5.
        let mut sizes: Vec<usize> = waves.iter().map(|w| w.len()).collect();
        sizes.sort();
        assert_eq!(sizes, vec![5, 5, 6]);
    }

    #[test]
    fn waves_are_seed_deterministic() {
        let net = mesh();
        let run = |seed| {
            let mut r = rng::stream(seed, "maintenance");
            maintenance_waves(&net, 4, &mut r)
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn rolling_schedule_covers_everything_but_the_excluded() {
        let net = mesh();
        let excluded = [NodeId::new(0), NodeId::new(15)];
        let mut r = rng::stream(17, "restart-storm");
        let order = rolling_restart_schedule(&net, 3, &excluded, &mut r);
        assert_eq!(order.len(), net.num_nodes() - excluded.len());
        for n in &excluded {
            assert!(!order.contains(n), "excluded {n} must not restart");
        }
        let mut seen = order.clone();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), order.len(), "each router restarts once");
        // Same seed, same storm; different seed, different rolling order.
        let mut r2 = rng::stream(17, "restart-storm");
        assert_eq!(order, rolling_restart_schedule(&net, 3, &excluded, &mut r2));
        let mut r3 = rng::stream(18, "restart-storm");
        assert_ne!(order, rolling_restart_schedule(&net, 3, &excluded, &mut r3));
    }

    #[test]
    #[should_panic(expected = "at least one wave")]
    fn zero_waves_rejected() {
        let net = mesh();
        let mut r = rng::stream(12, "maintenance");
        let _ = maintenance_waves(&net, 0, &mut r);
    }
}
