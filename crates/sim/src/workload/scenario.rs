//! Replayable scenario files.
//!
//! Section 6.1: "we use scenario files to record the connection request and
//! release events under various bw_req and λ values, and compare the
//! performance of the proposed schemes by simulating them using the same
//! scenario file." A [`Scenario`] is exactly that artifact: a reproducible,
//! serialisable list of [`ConnectionRequest`]s that every routing scheme
//! replays identically.

use crate::process::{PoissonProcess, UniformDuration};
use crate::workload::TrafficPattern;
use crate::{rng, SimDuration, SimTime};
use drt_net::{Bandwidth, LinkId, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Identifier of one DR-connection request within a scenario
/// (the paper's `conn-id`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RequestId(u64);

impl RequestId {
    /// Creates a request id from its dense index.
    pub const fn new(index: u64) -> Self {
        RequestId(index)
    }

    /// Returns the dense index as a `usize`.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D{}", self.0)
    }
}

/// One DR-connection request: who talks to whom, and when the connection
/// arrives and departs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConnectionRequest {
    /// The request's identifier (dense within its scenario).
    pub id: RequestId,
    /// Source (server) node.
    pub src: NodeId,
    /// Destination (client) node.
    pub dst: NodeId,
    /// When the connection is requested.
    pub arrival: SimTime,
    /// When the connection terminates and releases its resources.
    pub departure: SimTime,
}

impl ConnectionRequest {
    /// The connection's lifetime (`t_req`).
    pub fn lifetime(&self) -> SimDuration {
        self.departure - self.arrival
    }
}

/// A timeline entry produced by [`Scenario::timeline`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimelineEvent {
    /// A previously failed link comes back up.
    LinkRepair(LinkId),
    /// A link fails (the scenario's failure process, if configured).
    LinkFail(LinkId),
    /// The request arrives and should be admitted (or rejected).
    Arrive(RequestId),
    /// The connection (if admitted) terminates and releases resources.
    Depart(RequestId),
}

/// A dynamic link failure/repair process to record into a scenario.
///
/// Failures arrive network-wide as a Poisson process; each picks a
/// currently-up link uniformly at random and schedules its repair after an
/// exponential time-to-repair. This extends the paper's *static*
/// single-failure analysis (Figure 4's estimator) to a *dynamic* regime
/// where DRTP's recovery and reconfiguration actually run — the two must
/// agree (see `drt-experiments::availability`).
#[derive(Debug, Clone, Copy)]
pub struct FailureProcess {
    /// Network-wide link-failure rate, per hour.
    pub failures_per_hour: f64,
    /// Mean time to repair (exponentially distributed).
    pub mttr: SimDuration,
}

/// Parameters for scenario generation (the tunables of the paper's
/// Table 1).
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Network-wide DR-connection request arrival rate, per second.
    pub arrival_rate: f64,
    /// Length of the generated request stream.
    pub duration: SimDuration,
    /// Connection lifetime distribution (`t_req`).
    pub lifetime: UniformDuration,
    /// Source/destination sampling pattern.
    pub pattern: TrafficPattern,
    /// Constant per-connection bandwidth (`bw_req`).
    pub bw_req: Bandwidth,
    /// Master seed for all random streams.
    pub seed: u64,
    /// Optional dynamic failure/repair process to record.
    pub failures: Option<FailureProcess>,
}

impl ScenarioConfig {
    /// A configuration with the paper's Table-1 constants (3 Mb/s
    /// connections living 20–60 minutes under UT traffic) at the given
    /// arrival rate; adjust fields as needed.
    pub fn paper_defaults(arrival_rate: f64) -> Self {
        ScenarioConfig {
            arrival_rate,
            duration: SimDuration::from_hours(4),
            lifetime: UniformDuration::new(
                SimDuration::from_minutes(20),
                SimDuration::from_minutes(60),
            ),
            pattern: TrafficPattern::ut(),
            bw_req: Bandwidth::from_kbps(3_000),
            seed: 0,
            failures: None,
        }
    }

    /// Generates the scenario for a network of `num_nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics when `num_nodes < 2` (no source/destination pair exists) or
    /// when a [`FailureProcess`] is configured (link ids require the link
    /// count — use [`ScenarioConfig::generate_with_links`]).
    pub fn generate(&self, num_nodes: usize) -> Scenario {
        assert!(
            self.failures.is_none(),
            "failure processes need the link count; use generate_with_links"
        );
        self.generate_with_links(num_nodes, 0)
    }

    /// Generates the scenario, including the failure process over
    /// `num_links` unidirectional links.
    ///
    /// # Panics
    ///
    /// Panics when `num_nodes < 2`, or when a failure process is
    /// configured with `num_links == 0`.
    pub fn generate_with_links(&self, num_nodes: usize, num_links: usize) -> Scenario {
        let mut arrivals =
            PoissonProcess::new(self.arrival_rate, rng::stream(self.seed, "arrivals"));
        let mut lifetime_rng = rng::stream(self.seed, "lifetimes");
        let mut pair_rng = rng::stream(self.seed, "pairs");
        let mut lifetime = self.lifetime;

        let mut requests = Vec::new();
        let mut t = SimTime::ZERO;
        loop {
            t += arrivals.next_interarrival();
            if t.saturating_since(SimTime::ZERO) >= self.duration {
                break;
            }
            let (src, dst) = self.pattern.sample_pair(num_nodes, &mut pair_rng);
            let life = lifetime.sample(&mut lifetime_rng);
            requests.push(ConnectionRequest {
                id: RequestId::new(requests.len() as u64),
                src,
                dst,
                arrival: t,
                departure: t + life,
            });
        }
        // Record the failure/repair process, if configured.
        let mut failures = Vec::new();
        let mut repairs = Vec::new();
        if let Some(fp) = self.failures {
            assert!(num_links > 0, "failure process needs links");
            assert!(fp.failures_per_hour > 0.0, "failure rate must be positive");
            let mut fail_arrivals = PoissonProcess::new(
                fp.failures_per_hour / 3600.0,
                rng::stream(self.seed, "link-failures"),
            );
            let mut pick_rng = rng::stream(self.seed, "link-pick");
            let mut mttr_rng = rng::stream(self.seed, "link-repair");
            // (repair_time, link) for currently-down links.
            let mut down: Vec<(SimTime, u32)> = Vec::new();
            let mut t = SimTime::ZERO;
            loop {
                t += fail_arrivals.next_interarrival();
                if t.saturating_since(SimTime::ZERO) >= self.duration {
                    break;
                }
                down.retain(|&(repair_at, link)| {
                    if repair_at <= t {
                        repairs.push((repair_at, link));
                        false
                    } else {
                        true
                    }
                });
                if down.len() >= num_links {
                    continue; // everything is down; skip this failure
                }
                // Uniform pick among up links.
                let link = loop {
                    let cand = rand::Rng::gen_range(&mut pick_rng, 0..num_links as u32);
                    if !down.iter().any(|&(_, l)| l == cand) {
                        break cand;
                    }
                };
                failures.push((t, link));
                let u: f64 = rand::Rng::gen(&mut mttr_rng);
                let ttr = SimDuration::from_secs_f64(-(1.0 - u).ln() * fp.mttr.as_secs_f64());
                down.push((t + ttr, link));
            }
            // Repair everything still down (possibly after the horizon).
            for (repair_at, link) in down {
                repairs.push((repair_at, link));
            }
            repairs.sort();
        }
        Scenario {
            arrival_rate: self.arrival_rate,
            bw_req: self.bw_req,
            duration: self.duration,
            pattern_label: self.pattern.label().to_string(),
            seed: self.seed,
            requests,
            failures,
            repairs,
        }
    }
}

/// A generated, replayable stream of DR-connection requests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    arrival_rate: f64,
    bw_req: Bandwidth,
    duration: SimDuration,
    pattern_label: String,
    seed: u64,
    requests: Vec<ConnectionRequest>,
    /// Recorded link-failure instants.
    failures: Vec<(SimTime, u32)>,
    /// Recorded link-repair instants.
    repairs: Vec<(SimTime, u32)>,
}

impl Scenario {
    /// The arrival rate the scenario was generated with (λ, per second).
    pub fn arrival_rate(&self) -> f64 {
        self.arrival_rate
    }

    /// The constant per-connection bandwidth (`bw_req`).
    pub fn bw_req(&self) -> Bandwidth {
        self.bw_req
    }

    /// The generation horizon.
    pub fn duration(&self) -> SimDuration {
        self.duration
    }

    /// "UT" or "NT".
    pub fn pattern_label(&self) -> &str {
        &self.pattern_label
    }

    /// The master seed the scenario was generated from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// All requests in arrival order.
    pub fn requests(&self) -> &[ConnectionRequest] {
        &self.requests
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Returns `true` when the scenario contains no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Looks up a request by id.
    pub fn request(&self, id: RequestId) -> Option<&ConnectionRequest> {
        self.requests.get(id.index())
    }

    /// The interleaved event timeline, sorted by time. At equal instants
    /// the order is repairs, failures, arrivals, departures: a repair
    /// benefits a simultaneous arrival, a failure hits it, and departures
    /// free resources only for strictly later arrivals (the conservative
    /// choice).
    pub fn timeline(&self) -> Vec<(SimTime, TimelineEvent)> {
        let mut events =
            Vec::with_capacity(self.requests.len() * 2 + self.failures.len() + self.repairs.len());
        for r in &self.requests {
            events.push((r.arrival, TimelineEvent::Arrive(r.id)));
            events.push((r.departure, TimelineEvent::Depart(r.id)));
        }
        for &(t, l) in &self.failures {
            events.push((t, TimelineEvent::LinkFail(LinkId::new(l))));
        }
        for &(t, l) in &self.repairs {
            events.push((t, TimelineEvent::LinkRepair(LinkId::new(l))));
        }
        events.sort_by(|a, b| {
            a.0.cmp(&b.0).then_with(|| {
                let rank = |e: &TimelineEvent| match e {
                    TimelineEvent::LinkRepair(_) => 0,
                    TimelineEvent::LinkFail(_) => 1,
                    TimelineEvent::Arrive(_) => 2,
                    TimelineEvent::Depart(_) => 3,
                };
                rank(&a.1).cmp(&rank(&b.1))
            })
        });
        events
    }

    /// The recorded link failures as `(instant, link)` pairs.
    pub fn failures(&self) -> impl Iterator<Item = (SimTime, LinkId)> + '_ {
        self.failures.iter().map(|&(t, l)| (t, LinkId::new(l)))
    }

    /// The recorded link repairs as `(instant, link)` pairs.
    pub fn repairs(&self) -> impl Iterator<Item = (SimTime, LinkId)> + '_ {
        self.repairs.iter().map(|&(t, l)| (t, LinkId::new(l)))
    }

    /// Serialises the scenario to the line-oriented text format (see
    /// [`Scenario::from_text`]).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("# drt-scenario v1\n");
        out.push_str(&format!("lambda {}\n", self.arrival_rate));
        out.push_str(&format!("seed {}\n", self.seed));
        out.push_str(&format!("bw_req_kbps {}\n", self.bw_req.kbps()));
        out.push_str(&format!("duration_us {}\n", self.duration.as_micros()));
        out.push_str(&format!("pattern {}\n", self.pattern_label));
        for r in &self.requests {
            out.push_str(&format!(
                "req {} {} {} {} {}\n",
                r.id.index(),
                r.src.index(),
                r.dst.index(),
                r.arrival.as_micros(),
                r.departure.as_micros()
            ));
        }
        for &(t, l) in &self.failures {
            out.push_str(&format!("fail {} {}\n", t.as_micros(), l));
        }
        for &(t, l) in &self.repairs {
            out.push_str(&format!("repair {} {}\n", t.as_micros(), l));
        }
        out
    }

    /// Parses the text format produced by [`Scenario::to_text`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut arrival_rate = None;
        let mut seed = None;
        let mut bw = None;
        let mut duration = None;
        let mut pattern = None;
        let mut requests = Vec::new();
        let mut failures = Vec::new();
        let mut repairs = Vec::new();

        fn parse<T: FromStr>(tok: Option<&str>, what: &str, line_no: usize) -> Result<T, String> {
            tok.ok_or_else(|| format!("line {line_no}: missing {what}"))?
                .parse::<T>()
                .map_err(|_| format!("line {line_no}: invalid {what}"))
        }

        for (i, line) in text.lines().enumerate() {
            let line_no = i + 1;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut tok = line.split_whitespace();
            match tok.next() {
                Some("lambda") => arrival_rate = Some(parse::<f64>(tok.next(), "lambda", line_no)?),
                Some("seed") => seed = Some(parse::<u64>(tok.next(), "seed", line_no)?),
                Some("bw_req_kbps") => {
                    bw = Some(Bandwidth::from_kbps(parse(tok.next(), "bw", line_no)?))
                }
                Some("duration_us") => {
                    duration = Some(SimDuration::from_micros(parse(
                        tok.next(),
                        "duration",
                        line_no,
                    )?))
                }
                Some("pattern") => {
                    pattern = Some(
                        tok.next()
                            .ok_or_else(|| format!("line {line_no}: missing pattern"))?
                            .to_string(),
                    )
                }
                Some("req") => {
                    let id: u64 = parse(tok.next(), "request id", line_no)?;
                    let src: u32 = parse(tok.next(), "source", line_no)?;
                    let dst: u32 = parse(tok.next(), "destination", line_no)?;
                    let arrival: u64 = parse(tok.next(), "arrival", line_no)?;
                    let departure: u64 = parse(tok.next(), "departure", line_no)?;
                    if departure < arrival {
                        return Err(format!("line {line_no}: departure precedes arrival"));
                    }
                    if src == dst {
                        return Err(format!("line {line_no}: source equals destination"));
                    }
                    requests.push(ConnectionRequest {
                        id: RequestId::new(id),
                        src: NodeId::new(src),
                        dst: NodeId::new(dst),
                        arrival: SimTime::from_micros(arrival),
                        departure: SimTime::from_micros(departure),
                    });
                }
                Some("fail") => {
                    let t: u64 = parse(tok.next(), "failure time", line_no)?;
                    let l: u32 = parse(tok.next(), "failed link", line_no)?;
                    failures.push((SimTime::from_micros(t), l));
                }
                Some("repair") => {
                    let t: u64 = parse(tok.next(), "repair time", line_no)?;
                    let l: u32 = parse(tok.next(), "repaired link", line_no)?;
                    repairs.push((SimTime::from_micros(t), l));
                }
                Some(other) => return Err(format!("line {line_no}: unknown directive '{other}'")),
                None => unreachable!("empty lines are skipped"),
            }
        }

        Ok(Scenario {
            arrival_rate: arrival_rate.ok_or("missing lambda header")?,
            bw_req: bw.ok_or("missing bw_req_kbps header")?,
            duration: duration.ok_or("missing duration_us header")?,
            pattern_label: pattern.ok_or("missing pattern header")?,
            seed: seed.ok_or("missing seed header")?,
            requests,
            failures,
            repairs,
        })
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scenario: {} requests over {} (λ={}/s, {}, bw_req={})",
            self.requests.len(),
            self.duration,
            self.arrival_rate,
            self.pattern_label,
            self.bw_req
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> ScenarioConfig {
        let mut cfg = ScenarioConfig::paper_defaults(0.5);
        cfg.duration = SimDuration::from_minutes(30);
        cfg.seed = 42;
        cfg
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = small_config();
        let a = cfg.generate(60);
        let b = cfg.generate(60);
        assert_eq!(a, b);
    }

    #[test]
    fn request_count_tracks_rate() {
        let cfg = small_config();
        let s = cfg.generate(60);
        // 0.5/s over 1800 s ≈ 900 requests.
        assert!((700..1100).contains(&s.len()), "{}", s.len());
        assert_eq!(s.arrival_rate(), 0.5);
        assert_eq!(s.pattern_label(), "UT");
    }

    #[test]
    fn requests_are_ordered_and_well_formed() {
        let s = small_config().generate(60);
        let mut last = SimTime::ZERO;
        for (i, r) in s.requests().iter().enumerate() {
            assert_eq!(r.id.index(), i);
            assert!(r.arrival >= last);
            assert!(r.departure > r.arrival);
            assert_ne!(r.src, r.dst);
            let life = r.lifetime();
            assert!(life >= SimDuration::from_minutes(20));
            assert!(life <= SimDuration::from_minutes(60));
            last = r.arrival;
        }
    }

    #[test]
    fn timeline_is_sorted_with_arrivals_first() {
        let s = small_config().generate(10);
        let tl = s.timeline();
        assert_eq!(tl.len(), s.len() * 2);
        for w in tl.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        // Every request appears exactly once as arrive and once as depart.
        let mut arrives = vec![0u32; s.len()];
        let mut departs = vec![0u32; s.len()];
        for (_, e) in &tl {
            match e {
                TimelineEvent::Arrive(id) => arrives[id.index()] += 1,
                TimelineEvent::Depart(id) => departs[id.index()] += 1,
                TimelineEvent::LinkFail(_) | TimelineEvent::LinkRepair(_) => {
                    panic!("no failure process configured")
                }
            }
        }
        assert!(arrives.iter().all(|&c| c == 1));
        assert!(departs.iter().all(|&c| c == 1));
    }

    #[test]
    fn text_roundtrip() {
        let s = small_config().generate(60);
        let text = s.to_text();
        let parsed = Scenario::from_text(&text).unwrap();
        assert_eq!(s, parsed);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Scenario::from_text("").is_err()); // missing headers
        let good = small_config().generate(5).to_text();
        assert!(Scenario::from_text(&good.replace("lambda", "lambada")).is_err());
        assert!(Scenario::from_text(&format!("{good}req bad line\n")).is_err());
    }

    #[test]
    fn parse_rejects_inverted_times() {
        let text =
            "lambda 1\nseed 0\nbw_req_kbps 100\nduration_us 10\npattern UT\nreq 0 0 1 50 40\n";
        let err = Scenario::from_text(text).unwrap_err();
        assert!(err.contains("departure precedes arrival"), "{err}");
    }

    #[test]
    fn parse_rejects_self_pair() {
        let text = "lambda 1\nseed 0\nbw_req_kbps 100\nduration_us 10\npattern UT\nreq 0 3 3 1 4\n";
        assert!(Scenario::from_text(text).is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let s = small_config().generate(5);
        let text = format!("# leading comment\n\n{}\n# trailing\n", s.to_text());
        assert_eq!(Scenario::from_text(&text).unwrap(), s);
    }

    #[test]
    fn request_lookup() {
        let s = small_config().generate(20);
        let id = RequestId::new(0);
        assert_eq!(s.request(id).unwrap().id, id);
        assert!(s.request(RequestId::new(1_000_000)).is_none());
        assert!(!s.is_empty());
    }

    #[test]
    fn failure_process_generation_invariants() {
        let mut cfg = small_config();
        cfg.failures = Some(FailureProcess {
            failures_per_hour: 60.0,
            mttr: SimDuration::from_minutes(5),
        });
        let s = cfg.generate_with_links(20, 60);
        let fails: Vec<_> = s.failures().collect();
        let repairs: Vec<_> = s.repairs().collect();
        // 60/hour over 30 minutes ~ 30 failures.
        assert!((15..50).contains(&fails.len()), "{}", fails.len());
        assert_eq!(fails.len(), repairs.len(), "every failure gets repaired");
        // Links in range, failure times within the horizon, repairs after
        // their failures, and no link fails twice while down.
        let mut down: std::collections::HashMap<u32, SimTime> = Default::default();
        let mut repair_iter = repairs.clone();
        repair_iter.sort();
        for (t, l) in &fails {
            assert!(l.index() < 60);
            assert!(t.saturating_since(SimTime::ZERO) < cfg.duration);
            let repair = repairs
                .iter()
                .filter(|(rt, rl)| rl == l && *rt >= *t)
                .map(|(rt, _)| *rt)
                .min()
                .expect("matching repair");
            if let Some(prev_up) = down.get(&l.as_u32()) {
                assert!(t >= prev_up, "link failed while already down");
            }
            down.insert(l.as_u32(), repair);
        }
    }

    #[test]
    fn failure_process_text_roundtrip() {
        let mut cfg = small_config();
        cfg.failures = Some(FailureProcess {
            failures_per_hour: 30.0,
            mttr: SimDuration::from_minutes(3),
        });
        let s = cfg.generate_with_links(20, 40);
        assert!(s.failures().count() > 0);
        let parsed = Scenario::from_text(&s.to_text()).unwrap();
        assert_eq!(s, parsed);
    }

    #[test]
    fn timeline_orders_repair_fail_arrive_depart() {
        let text = "lambda 1\nseed 0\nbw_req_kbps 100\nduration_us 100\npattern UT\n\
                    req 0 0 1 50 60\nfail 50 3\nrepair 50 4\n";
        let s = Scenario::from_text(text).unwrap();
        let tl = s.timeline();
        assert_eq!(tl.len(), 4);
        assert!(matches!(tl[0].1, TimelineEvent::LinkRepair(_)));
        assert!(matches!(tl[1].1, TimelineEvent::LinkFail(_)));
        assert!(matches!(tl[2].1, TimelineEvent::Arrive(_)));
        assert!(matches!(tl[3].1, TimelineEvent::Depart(_)));
    }

    #[test]
    #[should_panic(expected = "use generate_with_links")]
    fn generate_rejects_failure_process_without_links() {
        let mut cfg = small_config();
        cfg.failures = Some(FailureProcess {
            failures_per_hour: 1.0,
            mttr: SimDuration::from_minutes(1),
        });
        let _ = cfg.generate(20);
    }

    #[test]
    fn nt_pattern_label_recorded() {
        let mut cfg = small_config();
        let mut r = crate::rng::stream(9, "hotset");
        cfg.pattern = TrafficPattern::nt_paper(60, &mut r);
        let s = cfg.generate(60);
        assert_eq!(s.pattern_label(), "NT");
    }
}
