//! Online statistics for the measurement phase.

use crate::{SimDuration, SimTime};
use std::fmt;

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// # Example
///
/// ```
/// use drt_sim::stats::OnlineStats;
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The sample mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divides by `n`); 0 when fewer than 2 samples.
    pub fn population_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by `n − 1`); 0 when fewer than 2 samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Half-width of the normal-approximation 95% confidence interval for
    /// the mean (`1.96 · s/√n`); 0 when fewer than 2 samples.
    pub fn ci95_halfwidth(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            1.96 * self.stddev() / (self.count as f64).sqrt()
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for OnlineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} ±{:.4} (sd {:.4})",
            self.count,
            self.mean(),
            self.ci95_halfwidth(),
            self.stddev()
        )
    }
}

/// Time-weighted average of a piecewise-constant signal (e.g. "number of
/// active DR-connections"), the estimator behind the paper's capacity
/// overhead measurements.
///
/// # Example
///
/// ```
/// use drt_sim::stats::TimeWeighted;
/// use drt_sim::SimTime;
///
/// let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
/// tw.update(SimTime::from_secs(10), 4.0); // value was 0 for 10 s
/// tw.update(SimTime::from_secs(30), 0.0); // value was 4 for 20 s
/// assert!((tw.average(SimTime::from_secs(40)) - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct TimeWeighted {
    last_time: SimTime,
    last_value: f64,
    weighted_sum: f64,
    start: SimTime,
}

impl TimeWeighted {
    /// Starts tracking at `start` with the initial value.
    pub fn new(start: SimTime, initial: f64) -> Self {
        TimeWeighted {
            last_time: start,
            last_value: initial,
            weighted_sum: 0.0,
            start,
        }
    }

    /// Records that the signal changed to `value` at instant `now`.
    ///
    /// # Panics
    ///
    /// Panics when `now` precedes the previous update.
    pub fn update(&mut self, now: SimTime, value: f64) {
        let dt = (now - self.last_time).as_secs_f64();
        self.weighted_sum += self.last_value * dt;
        self.last_time = now;
        self.last_value = value;
    }

    /// The current value of the signal.
    pub fn current(&self) -> f64 {
        self.last_value
    }

    /// Time-weighted average from the start instant to `now`.
    pub fn average(&self, now: SimTime) -> f64 {
        let tail = now.saturating_since(self.last_time).as_secs_f64();
        let total = now.saturating_since(self.start).as_secs_f64();
        // Exact-zero elapsed time (no step taken yet) would divide by
        // zero below; any nonzero duration is fine. lint:allow(float-eq)
        if total == 0.0 {
            self.last_value
        } else {
            (self.weighted_sum + self.last_value * tail) / total
        }
    }

    /// Forgets history before `now` (used to discard the warm-up phase).
    pub fn reset(&mut self, now: SimTime) {
        let value = self.last_value;
        *self = TimeWeighted::new(now, value);
    }
}

/// A fixed-bin histogram over `[lo, hi)` with overflow/underflow counters.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics when `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range is inverted");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let n = self.bins.len();
            let idx = ((x - self.lo) / (self.hi - self.lo) * n as f64) as usize;
            self.bins[idx.min(n - 1)] += 1;
        }
    }

    /// Per-bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range end.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total number of observations, including out-of-range ones.
    pub fn count(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// The smallest value `v` such that at least `q` (0..=1) of in-range
    /// observations fall below the end of `v`'s bin; `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total: u64 = self.bins.iter().sum();
        if total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let mut acc = 0;
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        for (i, &c) in self.bins.iter().enumerate() {
            acc += c;
            if acc >= target {
                return Some(self.lo + width * (i as f64 + 1.0));
            }
        }
        Some(self.hi)
    }
}

/// Streaming quantile estimator (the P² algorithm of Jain & Chlamtac,
/// 1985): estimates one fixed quantile in `O(1)` memory without storing
/// observations.
///
/// Used for latency-distribution tails where a [`Histogram`]'s fixed range
/// is awkward. Exact for the first five observations; thereafter the five
/// P² markers track the quantile with piecewise-parabolic interpolation.
///
/// # Example
///
/// ```
/// use drt_sim::stats::P2Quantile;
/// let mut q = P2Quantile::new(0.5);
/// for i in 1..=1001 {
///     q.push(i as f64);
/// }
/// let median = q.estimate().unwrap();
/// assert!((median - 501.0).abs() < 5.0);
/// ```
#[derive(Debug, Clone)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights (sorted estimates).
    heights: [f64; 5],
    /// Marker positions (1-based observation ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired-position increments per observation.
    increments: [f64; 5],
    count: usize,
}

impl P2Quantile {
    /// Creates an estimator for quantile `q` (clamped into `(0, 1)`).
    pub fn new(q: f64) -> Self {
        let q = q.clamp(1e-9, 1.0 - 1e-9);
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
        }
    }

    /// The tracked quantile.
    pub fn quantile(&self) -> f64 {
        self.q
    }

    /// Number of observations so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        if self.count < 5 {
            self.heights[self.count] = x;
            self.count += 1;
            if self.count == 5 {
                self.heights
                    .sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            }
            return;
        }
        self.count += 1;

        // Find the cell containing x and clamp the extremes.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            (0..4)
                .find(|&i| x < self.heights[i + 1])
                .expect("x is between the extremes")
        };

        for i in (k + 1)..5 {
            self.positions[i] += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.increments[i];
        }

        // Adjust the three interior markers.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right = self.positions[i + 1] - self.positions[i];
            let left = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0) {
                let d = d.signum();
                let candidate = self.parabolic(i, d);
                let new_h = if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                    candidate
                } else {
                    self.linear(i, d)
                };
                self.heights[i] = new_h;
                self.positions[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let p = &self.positions;
        let h = &self.heights;
        h[i] + d / (p[i + 1] - p[i - 1])
            * ((p[i] - p[i - 1] + d) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
                + (p[i + 1] - p[i] - d) * (h[i] - h[i - 1]) / (p[i] - p[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = (i as f64 + d) as usize;
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// The current quantile estimate; `None` before any observation.
    pub fn estimate(&self) -> Option<f64> {
        match self.count {
            0 => None,
            n if n < 5 => {
                let mut sorted = self.heights[..n].to_vec();
                sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                let rank = (self.q * (n - 1) as f64).round() as usize;
                Some(sorted[rank])
            }
            _ => Some(self.heights[2]),
        }
    }
}

/// Mean holding-time helper: converts a count of arrivals and a total
/// observation window into an offered-load figure `λ · E[t]` (Erlangs).
pub fn offered_load_erlangs(arrivals: u64, window: SimDuration, mean_holding: SimDuration) -> f64 {
    if window.is_zero() {
        return 0.0;
    }
    let lambda = arrivals as f64 / window.as_secs_f64();
    lambda * mean_holding.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_textbook_example() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert_eq!(s.mean(), 5.0);
        assert!((s.population_variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!(s.ci95_halfwidth() > 0.0);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.ci95_halfwidth(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = OnlineStats::new();
        xs.iter().for_each(|&x| all.push(x));
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        xs[..37].iter().for_each(|&x| left.push(x));
        xs[37..].iter().for_each(|&x| right.push(x));
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-9);
        assert!((left.sample_variance() - all.sample_variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        let b = OnlineStats::new();
        let mut c = a;
        c.merge(&b);
        assert_eq!(c, a);
        let mut d = OnlineStats::new();
        d.merge(&a);
        assert_eq!(d.mean(), 1.0);
    }

    #[test]
    fn time_weighted_average() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 1.0);
        tw.update(SimTime::from_secs(10), 3.0);
        // signal: 1.0 for [0,10), 3.0 for [10,20)
        assert!((tw.average(SimTime::from_secs(20)) - 2.0).abs() < 1e-12);
        assert_eq!(tw.current(), 3.0);
    }

    #[test]
    fn time_weighted_reset_discards_warmup() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 100.0);
        tw.update(SimTime::from_secs(50), 2.0);
        tw.reset(SimTime::from_secs(50));
        tw.update(SimTime::from_secs(60), 4.0);
        // After reset only [50,70) counts: 2.0 for 10 s, 4.0 for 10 s.
        assert!((tw.average(SimTime::from_secs(70)) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_zero_window() {
        let tw = TimeWeighted::new(SimTime::from_secs(5), 7.0);
        assert_eq!(tw.average(SimTime::from_secs(5)), 7.0);
    }

    #[test]
    fn histogram_bins_and_quantiles() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.push(i as f64 + 0.5);
        }
        h.push(-1.0);
        h.push(42.0);
        assert_eq!(h.count(), 12);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.bins().iter().sum::<u64>(), 10);
        assert_eq!(h.quantile(0.5), Some(5.0));
        assert_eq!(h.quantile(1.0), Some(10.0));
    }

    #[test]
    fn empty_histogram_quantile_none() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn p2_median_on_uniform_stream() {
        let mut q = P2Quantile::new(0.5);
        assert_eq!(q.estimate(), None);
        let mut rng_state = 88172645463325252u64;
        let mut xorshift = move || {
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            (rng_state % 10_000) as f64 / 10_000.0
        };
        for _ in 0..50_000 {
            q.push(xorshift());
        }
        let est = q.estimate().unwrap();
        assert!((est - 0.5).abs() < 0.02, "median estimate {est}");
        assert_eq!(q.count(), 50_000);
        assert_eq!(q.quantile(), 0.5);
    }

    #[test]
    fn p2_p99_on_skewed_stream() {
        let mut q = P2Quantile::new(0.99);
        // Exponential-ish data via inverse CDF over a deterministic grid.
        let n = 100_000;
        for i in 0..n {
            let u = (i as f64 + 0.5) / n as f64;
            q.push(-(1.0 - u).ln());
        }
        // True p99 of Exp(1) is -ln(0.01) ≈ 4.605.
        let est = q.estimate().unwrap();
        assert!((est - 4.605).abs() < 0.25, "p99 estimate {est}");
    }

    #[test]
    fn p2_small_samples_are_exact_order_statistics() {
        let mut q = P2Quantile::new(0.5);
        q.push(10.0);
        assert_eq!(q.estimate(), Some(10.0));
        q.push(2.0);
        q.push(7.0);
        // Sorted: [2, 7, 10]; median = 7.
        assert_eq!(q.estimate(), Some(7.0));
    }

    #[test]
    fn offered_load() {
        // 0.5 arrivals/s with 40-minute mean holding = 1200 Erlangs.
        let load = offered_load_erlangs(
            1800,
            SimDuration::from_hours(1),
            SimDuration::from_minutes(40),
        );
        assert!((load - 1200.0).abs() < 1e-9);
        assert_eq!(
            offered_load_erlangs(10, SimDuration::ZERO, SimDuration::from_secs(1)),
            0.0
        );
    }
}
