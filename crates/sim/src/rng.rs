//! Reproducible, independently-seeded random streams.
//!
//! Every stochastic component of the simulation (arrivals, lifetimes,
//! source/destination sampling, failure injection, contention tie-breaking)
//! draws from its *own* named stream derived from one master seed. This
//! gives two properties the paper's methodology needs:
//!
//! 1. **Replayability** — the same master seed reproduces the exact same
//!    scenario, so every routing scheme sees an identical event sequence.
//! 2. **Independence under change** — adding a draw to one component does
//!    not perturb any other component's stream, so ablations stay
//!    comparable.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 step, used to mix the master seed with a stream tag.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a hash of a byte string; stable across platforms and releases.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Derives the 64-bit sub-seed for stream `tag` under `master`.
///
/// Deterministic and platform-independent: the same `(master, tag)` pair
/// always yields the same sub-seed.
pub fn substream_seed(master: u64, tag: &str) -> u64 {
    let mut state = master ^ fnv1a(tag.as_bytes());
    // A couple of mixing rounds decorrelate master/tag structure.
    let a = splitmix64(&mut state);
    let b = splitmix64(&mut state);
    a ^ b.rotate_left(32)
}

/// Creates the RNG for stream `tag` under the master seed.
///
/// # Example
///
/// ```
/// use rand::Rng;
/// let mut arrivals = drt_sim::rng::stream(7, "arrivals");
/// let mut lifetimes = drt_sim::rng::stream(7, "lifetimes");
/// // Streams are deterministic...
/// let again: f64 = drt_sim::rng::stream(7, "arrivals").gen();
/// assert_eq!(arrivals.gen::<f64>(), again);
/// // ...and decorrelated from one another.
/// assert_ne!(arrivals.gen::<u64>(), lifetimes.gen::<u64>());
/// ```
pub fn stream(master: u64, tag: &str) -> StdRng {
    StdRng::seed_from_u64(substream_seed(master, tag))
}

/// Creates the RNG for an indexed stream (e.g. one stream per sampling
/// snapshot or per failure trial).
pub fn indexed_stream(master: u64, tag: &str, index: u64) -> StdRng {
    let mut state = substream_seed(master, tag) ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let s = splitmix64(&mut state);
    StdRng::seed_from_u64(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_tag() {
        let a: u64 = stream(1, "x").gen();
        let b: u64 = stream(1, "x").gen();
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_tags_decorrelate() {
        let a: u64 = stream(1, "x").gen();
        let b: u64 = stream(1, "y").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn distinct_masters_decorrelate() {
        let a: u64 = stream(1, "x").gen();
        let b: u64 = stream(2, "x").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn indexed_streams_distinct() {
        let a: u64 = indexed_stream(1, "trial", 0).gen();
        let b: u64 = indexed_stream(1, "trial", 1).gen();
        assert_ne!(a, b);
        let again: u64 = indexed_stream(1, "trial", 0).gen();
        assert_eq!(a, again);
    }

    #[test]
    fn substream_seed_is_stable() {
        // Pinned values guard against accidental algorithm changes, which
        // would silently invalidate recorded experiment outputs.
        assert_eq!(substream_seed(0, ""), substream_seed(0, ""));
        let reference = substream_seed(42, "arrivals");
        assert_eq!(substream_seed(42, "arrivals"), reference);
        assert_ne!(substream_seed(42, "arrivals "), reference);
    }

    #[test]
    fn seeds_spread_across_tag_space() {
        // No collisions among a few hundred common tags.
        let mut seen = std::collections::HashSet::new();
        for i in 0..300 {
            assert!(seen.insert(substream_seed(7, &format!("tag-{i}"))));
        }
    }
}
