//! Deterministic event queue and event loop.

use crate::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A time-ordered queue of events with FIFO tie-breaking.
///
/// Events scheduled for the same instant are delivered in insertion order,
/// which keeps every simulation fully deterministic for a given seed — a
/// prerequisite for the paper's methodology of replaying one scenario file
/// under several routing schemes.
///
/// # Example
///
/// ```
/// use drt_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2), "late");
/// q.push(SimTime::from_secs(1), "early");
/// q.push(SimTime::from_secs(1), "early-second");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "early-second")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for min-heap semantics.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at the absolute instant `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// The instant of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Iterates the pending events in **unspecified** order (the heap's
    /// internal layout). Callers that need a canonical view — such as a
    /// model checker fingerprinting the queue — must sort or combine the
    /// items order-independently.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, &E)> {
        self.heap.iter().map(|e| (e.at, &e.event))
    }

    /// Returns `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// Scheduling handle passed to event handlers while the [`Simulator`] loop
/// holds the queue.
#[derive(Debug)]
pub struct Scheduler<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
    stopped: &'a mut bool,
}

impl<E> Scheduler<'_, E> {
    /// The current simulation instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` after `delay`.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.queue.push(self.now + delay, event);
    }

    /// Schedules `event` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (before the current instant): the
    /// event loop never travels backward.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.queue.push(at, event);
    }

    /// Stops the event loop after the current handler returns; remaining
    /// events stay in the queue.
    pub fn stop(&mut self) {
        *self.stopped = true;
    }
}

/// A minimal deterministic event loop.
///
/// The experiments in `drt-experiments` drive most simulations directly off
/// an [`EventQueue`], but `Simulator` packages the common loop for examples
/// and tests.
///
/// # Example
///
/// ```
/// use drt_sim::{Simulator, SimDuration, SimTime};
///
/// #[derive(Debug)]
/// enum Ev { Tick(u32) }
///
/// let mut sim = Simulator::new();
/// sim.schedule_at(SimTime::ZERO, Ev::Tick(0));
/// let mut ticks = 0;
/// sim.run(|sched, ev| {
///     let Ev::Tick(n) = ev;
///     ticks += 1;
///     if n < 9 {
///         sched.schedule_in(SimDuration::from_secs(1), Ev::Tick(n + 1));
///     }
/// });
/// assert_eq!(ticks, 10);
/// ```
#[derive(Debug)]
pub struct Simulator<E> {
    queue: EventQueue<E>,
    now: SimTime,
}

impl<E> Simulator<E> {
    /// Creates a simulator at time zero with an empty queue.
    pub fn new() -> Self {
        Simulator {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
        }
    }

    /// The current simulation instant (the timestamp of the last delivered
    /// event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules an event at an absolute instant before the loop starts.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        self.queue.push(at, event);
    }

    /// Runs the loop to completion (or until [`Scheduler::stop`] is
    /// called), delivering each event to `handler`.
    pub fn run(&mut self, mut handler: impl FnMut(&mut Scheduler<'_, E>, E)) {
        while self.step(&mut handler) {}
    }

    /// Delivers exactly one event to `handler`. Returns `false` when the
    /// loop should end: the queue is empty, or the handler called
    /// [`Scheduler::stop`]. Gives external drivers — such as a model
    /// checker asserting invariants between events — full control of the
    /// loop.
    pub fn step(&mut self, mut handler: impl FnMut(&mut Scheduler<'_, E>, E)) -> bool {
        let Some((at, event)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(at >= self.now, "event queue went backward");
        self.now = at;
        let mut stopped = false;
        let mut sched = Scheduler {
            now: at,
            queue: &mut self.queue,
            stopped: &mut stopped,
        };
        handler(&mut sched, event);
        !stopped
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Iterates the pending events in **unspecified** order (see
    /// [`EventQueue::iter`]).
    pub fn pending_events(&self) -> impl Iterator<Item = (SimTime, &E)> {
        self.queue.iter()
    }

    /// Runs the loop, dropping every event scheduled after `horizon`.
    pub fn run_until(
        &mut self,
        horizon: SimTime,
        mut handler: impl FnMut(&mut Scheduler<'_, E>, E),
    ) {
        let mut stopped = false;
        while let Some(at) = self.queue.peek_time() {
            if at > horizon {
                break;
            }
            let (at, event) = self.queue.pop().expect("peeked");
            self.now = at;
            let mut sched = Scheduler {
                now: at,
                queue: &mut self.queue,
                stopped: &mut stopped,
            };
            handler(&mut sched, event);
            if stopped {
                break;
            }
        }
    }
}

impl<E> Default for Simulator<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_same_instant() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_secs(1), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((SimTime::from_secs(1), i)));
        }
    }

    #[test]
    fn time_ordering() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), 'c');
        q.push(SimTime::from_secs(1), 'a');
        q.push(SimTime::from_secs(2), 'b');
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn simulator_advances_time() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_secs(5), ());
        let mut seen = SimTime::ZERO;
        sim.run(|sched, ()| seen = sched.now());
        assert_eq!(seen, SimTime::from_secs(5));
        assert_eq!(sim.now(), SimTime::from_secs(5));
    }

    #[test]
    fn stop_halts_loop() {
        let mut sim = Simulator::new();
        for i in 0..10u32 {
            sim.schedule_at(SimTime::from_secs(i as u64), i);
        }
        let mut count = 0;
        sim.run(|sched, i| {
            count += 1;
            if i == 4 {
                sched.stop();
            }
        });
        assert_eq!(count, 5);
    }

    #[test]
    fn step_delivers_one_event_at_a_time() {
        let mut sim = Simulator::new();
        for i in 0..3u32 {
            sim.schedule_at(SimTime::from_secs(i as u64), i);
        }
        let mut seen = Vec::new();
        while sim.step(|_, i| seen.push(i)) {}
        assert_eq!(seen, vec![0, 1, 2]);
        assert_eq!(sim.pending(), 0);
        // An empty queue steps to false without invoking the handler.
        assert!(!sim.step(|_, _| panic!("no event to deliver")));
    }

    #[test]
    fn step_respects_stop() {
        let mut sim = Simulator::new();
        for i in 0..3u32 {
            sim.schedule_at(SimTime::from_secs(i as u64), i);
        }
        // The stopping event is delivered, then the loop reports done while
        // later events stay queued.
        assert!(!sim.step(|sched, _| sched.stop()));
        assert_eq!(sim.pending(), 2);
    }

    #[test]
    fn pending_events_expose_queue_contents() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_secs(2), 20u32);
        sim.schedule_at(SimTime::from_secs(1), 10u32);
        let mut pending: Vec<(SimTime, u32)> =
            sim.pending_events().map(|(at, &e)| (at, e)).collect();
        pending.sort();
        assert_eq!(
            pending,
            vec![(SimTime::from_secs(1), 10), (SimTime::from_secs(2), 20)]
        );
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut sim = Simulator::new();
        for i in 0..10u64 {
            sim.schedule_at(SimTime::from_secs(i), i);
        }
        let mut delivered = Vec::new();
        sim.run_until(SimTime::from_secs(4), |_, i| delivered.push(i));
        assert_eq!(delivered, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_secs(10), ());
        sim.run(|sched, ()| {
            sched.schedule_at(SimTime::from_secs(1), ());
        });
    }

    #[test]
    fn handler_driven_cascade() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::ZERO, 0u32);
        let mut total = 0;
        sim.run(|sched, n| {
            total += n;
            if n < 5 {
                sched.schedule_in(SimDuration::from_secs(1), n + 1);
            }
        });
        assert_eq!(total, 15);
        assert_eq!(sim.now(), SimTime::from_secs(5));
    }
}
