//! Stochastic processes: Poisson arrivals and uniform holding times.
//!
//! Table 1 of the paper: "DR-connection requests arrive as a Poisson
//! process with rate λ" and "each connection … has a uniformly-distributed
//! lifetime, t_req, between 20 and 60 minutes".

use crate::SimDuration;
use rand::rngs::StdRng;
use rand::Rng;

/// A homogeneous Poisson arrival process with rate `λ` per second.
///
/// Interarrival times are exponential with mean `1/λ`.
///
/// # Example
///
/// ```
/// use drt_sim::process::PoissonProcess;
///
/// let mut p = PoissonProcess::new(2.0, drt_sim::rng::stream(1, "demo"));
/// let mean = (0..10_000)
///     .map(|_| p.next_interarrival().as_secs_f64())
///     .sum::<f64>() / 10_000.0;
/// assert!((mean - 0.5).abs() < 0.05); // mean interarrival = 1/λ
/// ```
#[derive(Debug)]
pub struct PoissonProcess {
    rate_per_sec: f64,
    rng: StdRng,
}

impl PoissonProcess {
    /// Creates a process with the given arrival rate (events per second).
    ///
    /// # Panics
    ///
    /// Panics unless `rate_per_sec` is finite and positive.
    pub fn new(rate_per_sec: f64, rng: StdRng) -> Self {
        assert!(
            rate_per_sec.is_finite() && rate_per_sec > 0.0,
            "poisson rate must be positive, got {rate_per_sec}"
        );
        PoissonProcess { rate_per_sec, rng }
    }

    /// The arrival rate in events per second.
    pub fn rate_per_sec(&self) -> f64 {
        self.rate_per_sec
    }

    /// Draws the next interarrival time.
    pub fn next_interarrival(&mut self) -> SimDuration {
        // Inverse-CDF sampling; 1 - u avoids ln(0).
        let u: f64 = self.rng.gen();
        let secs = -(1.0 - u).ln() / self.rate_per_sec;
        SimDuration::from_secs_f64(secs)
    }
}

/// Uniformly distributed durations over a closed range.
///
/// # Example
///
/// ```
/// use drt_sim::process::UniformDuration;
/// use drt_sim::SimDuration;
///
/// // Table 1: lifetimes uniform between 20 and 60 minutes.
/// let mut lifetimes = UniformDuration::new(
///     SimDuration::from_minutes(20),
///     SimDuration::from_minutes(60),
/// );
/// let mut rng = drt_sim::rng::stream(1, "lifetimes");
/// let t = lifetimes.sample(&mut rng);
/// assert!(t >= SimDuration::from_minutes(20));
/// assert!(t <= SimDuration::from_minutes(60));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct UniformDuration {
    lo: SimDuration,
    hi: SimDuration,
}

impl UniformDuration {
    /// Creates a distribution over `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics when `lo > hi`.
    pub fn new(lo: SimDuration, hi: SimDuration) -> Self {
        assert!(lo <= hi, "uniform range is inverted");
        UniformDuration { lo, hi }
    }

    /// The lower bound.
    pub fn lo(&self) -> SimDuration {
        self.lo
    }

    /// The upper bound.
    pub fn hi(&self) -> SimDuration {
        self.hi
    }

    /// The distribution mean.
    pub fn mean(&self) -> SimDuration {
        SimDuration::from_micros((self.lo.as_micros() + self.hi.as_micros()) / 2)
    }

    /// Draws a duration.
    pub fn sample(&mut self, rng: &mut StdRng) -> SimDuration {
        if self.lo == self.hi {
            return self.lo;
        }
        SimDuration::from_micros(rng.gen_range(self.lo.as_micros()..=self.hi.as_micros()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    #[test]
    fn poisson_mean_matches_rate() {
        for rate in [0.2, 1.0, 5.0] {
            let mut p = PoissonProcess::new(rate, rng::stream(3, "poisson"));
            let n = 20_000;
            let mean: f64 = (0..n)
                .map(|_| p.next_interarrival().as_secs_f64())
                .sum::<f64>()
                / n as f64;
            assert!(
                (mean - 1.0 / rate).abs() < 0.05 / rate,
                "rate {rate}: mean {mean}"
            );
            assert_eq!(p.rate_per_sec(), rate);
        }
    }

    #[test]
    fn poisson_variance_is_exponential() {
        let mut p = PoissonProcess::new(1.0, rng::stream(4, "poisson"));
        let n = 20_000;
        let xs: Vec<f64> = (0..n)
            .map(|_| p.next_interarrival().as_secs_f64())
            .collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        // Exponential: variance = mean².
        assert!((var - mean * mean).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "poisson rate must be positive")]
    fn zero_rate_rejected() {
        let _ = PoissonProcess::new(0.0, rng::stream(0, "x"));
    }

    #[test]
    fn uniform_within_bounds_and_covers_range() {
        let lo = SimDuration::from_minutes(20);
        let hi = SimDuration::from_minutes(60);
        let mut d = UniformDuration::new(lo, hi);
        let mut rng = rng::stream(5, "lifetimes");
        let mut min = SimDuration::from_hours(100);
        let mut max = SimDuration::ZERO;
        let mut total = 0.0;
        let n = 10_000;
        for _ in 0..n {
            let t = d.sample(&mut rng);
            assert!((lo..=hi).contains(&t));
            min = min.min(t);
            max = max.max(t);
            total += t.as_secs_f64();
        }
        // Hits close to both ends and the mean of 40 minutes.
        assert!(min < SimDuration::from_minutes(21));
        assert!(max > SimDuration::from_minutes(59));
        assert!((total / n as f64 - 2400.0).abs() < 30.0);
        assert_eq!(d.mean(), SimDuration::from_minutes(40));
    }

    #[test]
    fn degenerate_uniform_is_constant() {
        let v = SimDuration::from_secs(5);
        let mut d = UniformDuration::new(v, v);
        let mut rng = rng::stream(6, "x");
        assert_eq!(d.sample(&mut rng), v);
        assert_eq!(d.lo(), d.hi());
    }

    #[test]
    #[should_panic(expected = "uniform range is inverted")]
    fn inverted_range_rejected() {
        let _ = UniformDuration::new(SimDuration::from_secs(2), SimDuration::from_secs(1));
    }
}
