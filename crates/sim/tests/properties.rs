//! Property-based tests for the simulation substrate.

use drt_sim::process::UniformDuration;
use drt_sim::stats::OnlineStats;
use drt_sim::workload::{Scenario, ScenarioConfig, TimelineEvent, TrafficPattern};
use drt_sim::{EventQueue, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn event_queue_pops_in_order(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_micros(t), i);
        }
        let mut last_time = SimTime::ZERO;
        let mut popped = 0;
        let mut seq_at_time = std::collections::HashMap::<u64, usize>::new();
        while let Some((t, idx)) = q.pop() {
            prop_assert!(t >= last_time);
            // FIFO among equal timestamps: indices increase.
            if let Some(&prev) = seq_at_time.get(&t.as_micros()) {
                prop_assert!(idx > prev);
            }
            seq_at_time.insert(t.as_micros(), idx);
            last_time = t;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    #[test]
    fn scenario_text_roundtrip(
        lambda in 0.05f64..2.0,
        seed in any::<u64>(),
        minutes in 1u64..20,
        nt in any::<bool>(),
    ) {
        let mut cfg = ScenarioConfig::paper_defaults(lambda);
        cfg.duration = SimDuration::from_minutes(minutes);
        cfg.seed = seed;
        if nt {
            let mut r = drt_sim::rng::stream(seed, "hotset");
            cfg.pattern = TrafficPattern::nt_paper(30, &mut r);
        }
        let s = cfg.generate(30);
        let parsed = Scenario::from_text(&s.to_text()).unwrap();
        prop_assert_eq!(s, parsed);
    }

    #[test]
    fn scenario_invariants(lambda in 0.1f64..1.0, seed in any::<u64>()) {
        let mut cfg = ScenarioConfig::paper_defaults(lambda);
        cfg.duration = SimDuration::from_minutes(10);
        cfg.seed = seed;
        let s = cfg.generate(12);
        let mut last = SimTime::ZERO;
        for r in s.requests() {
            prop_assert!(r.arrival >= last);
            prop_assert!(r.departure > r.arrival);
            prop_assert!(r.src != r.dst);
            prop_assert!(r.src.index() < 12 && r.dst.index() < 12);
            last = r.arrival;
        }
        // Timeline conservation: active count returns to zero.
        let mut active: i64 = 0;
        for (_, e) in s.timeline() {
            match e {
                TimelineEvent::Arrive(_) => active += 1,
                TimelineEvent::Depart(_) => active -= 1,
                TimelineEvent::LinkFail(_) | TimelineEvent::LinkRepair(_) => {}
            }
            prop_assert!(active >= 0);
        }
        prop_assert_eq!(active, 0);
    }

    #[test]
    fn online_stats_matches_naive(xs in prop::collection::vec(-1e3f64..1e3, 2..100)) {
        let mut s = OnlineStats::new();
        xs.iter().for_each(|&x| s.push(x));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        prop_assert!((s.mean() - mean).abs() < 1e-6);
        prop_assert!((s.sample_variance() - var).abs() < 1e-4);
        prop_assert_eq!(s.min().unwrap(), xs.iter().cloned().fold(f64::INFINITY, f64::min));
        prop_assert_eq!(s.max().unwrap(), xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max));
    }

    #[test]
    fn uniform_duration_in_range(lo_s in 0u64..100, extra in 0u64..100, seed in any::<u64>()) {
        let lo = SimDuration::from_secs(lo_s);
        let hi = SimDuration::from_secs(lo_s + extra);
        let mut d = UniformDuration::new(lo, hi);
        let mut rng = drt_sim::rng::stream(seed, "u");
        for _ in 0..50 {
            let v = d.sample(&mut rng);
            prop_assert!(v >= lo && v <= hi);
        }
    }
}
