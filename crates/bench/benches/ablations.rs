//! Ablation benches for the design choices called out in `DESIGN.md`:
//! spare-sizing policy, activation pool, failure model, and the
//! conflict-oblivious SPF baseline. Each reports the *metric* being
//! ablated through `black_box` so the numbers appear alongside the
//! timings in criterion's output when run with `--verbose`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drt_core::multiplex::{ActivationPool, FailureModel, MultiplexConfig, SparePolicy};
use drt_core::routing::RouteRequest;
use drt_core::{ConnectionId, DrtpManager};
use drt_experiments::config::ExperimentConfig;
use drt_experiments::runner::{replay, SchemeKind};
use drt_sim::workload::TrafficPattern;
use std::sync::Arc;

fn bench_cfg() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick(3.0);
    cfg.nodes = 30;
    cfg.duration = drt_sim::SimDuration::from_minutes(50);
    cfg.warmup = drt_sim::SimDuration::from_minutes(25);
    cfg.snapshots = 1;
    cfg
}

/// Builds a loaded manager under the given config and sweeps failures.
fn loaded_sweep(cfg_mx: MultiplexConfig) -> Option<f64> {
    let cfg = bench_cfg();
    let net = Arc::new(cfg.build_network().expect("topology"));
    let mut mgr = DrtpManager::with_config(net, cfg_mx);
    let mut scheme = SchemeKind::DLsr.instantiate();
    let mut rng = drt_sim::rng::stream(4, "ablation-load");
    let pattern = TrafficPattern::ut();
    for i in 0..300u64 {
        let (src, dst) = pattern.sample_pair(cfg.nodes, &mut rng);
        let _ = mgr.request_connection(
            scheme.as_mut(),
            RouteRequest::new(ConnectionId::new(i), src, dst, cfg.bw_req),
        );
    }
    mgr.sweep_single_failures(11).p_act_bk()
}

fn ablation_multiplexing(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_spare_policy");
    group.sample_size(10);
    for (label, spare) in [
        ("grow", SparePolicy::GrowToRequirement),
        ("never_grow", SparePolicy::NeverGrow),
    ] {
        let cfg_mx = MultiplexConfig {
            spare,
            ..MultiplexConfig::paper()
        };
        group.bench_with_input(BenchmarkId::from_parameter(label), &cfg_mx, |b, &cfg| {
            b.iter(|| std::hint::black_box(loaded_sweep(cfg)))
        });
    }
    group.finish();
}

fn ablation_activation_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_activation_pool");
    group.sample_size(10);
    for (label, activation) in [
        ("spare_and_free", ActivationPool::SpareAndFree),
        ("spare_only", ActivationPool::SpareOnly),
    ] {
        let cfg_mx = MultiplexConfig {
            activation,
            ..MultiplexConfig::paper()
        };
        group.bench_with_input(BenchmarkId::from_parameter(label), &cfg_mx, |b, &cfg| {
            b.iter(|| std::hint::black_box(loaded_sweep(cfg)))
        });
    }
    group.finish();
}

fn ablation_failure_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_failure_model");
    group.sample_size(10);
    for (label, failure_model) in [
        ("directed", FailureModel::DirectedLink),
        ("duplex", FailureModel::DuplexPair),
    ] {
        let cfg_mx = MultiplexConfig {
            failure_model,
            ..MultiplexConfig::paper()
        };
        group.bench_with_input(BenchmarkId::from_parameter(label), &cfg_mx, |b, &cfg| {
            b.iter(|| std::hint::black_box(loaded_sweep(cfg)))
        });
    }
    group.finish();
}

fn ablation_conflict_awareness(c: &mut Criterion) {
    // D-LSR vs the conflict-oblivious SPF baseline on the same scenario:
    // the fault-tolerance gap is the value of the paper's contribution.
    let cfg = bench_cfg();
    let net = Arc::new(cfg.build_network().expect("topology"));
    let scenario = cfg
        .scenario_config(0.5, TrafficPattern::ut())
        .generate(cfg.nodes);
    let mut group = c.benchmark_group("ablation_conflict_awareness");
    group.sample_size(10);
    for kind in [SchemeKind::DLsr, SchemeKind::Spf] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &scenario,
            |b, scenario| {
                b.iter(|| std::hint::black_box(replay(&net, scenario, kind, &cfg).p_act_bk()))
            },
        );
    }
    group.finish();
}

fn ablation_multi_backup(c: &mut Criterion) {
    // One vs two vs three backups per connection: the DRTP extension the
    // paper mentions but does not evaluate.
    let base = bench_cfg();
    let net = Arc::new(base.build_network().expect("topology"));
    let scenario = base
        .scenario_config(0.4, TrafficPattern::ut())
        .generate(base.nodes);
    let mut group = c.benchmark_group("ablation_multi_backup");
    group.sample_size(10);
    for k in [1u32, 2, 3] {
        let mut cfg = base.clone();
        cfg.backups_per_connection = k;
        group.bench_with_input(BenchmarkId::from_parameter(k), &cfg, |b, cfg| {
            b.iter(|| {
                std::hint::black_box(replay(&net, &scenario, SchemeKind::DLsr, cfg).p_act_bk())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    ablation_multiplexing,
    ablation_activation_pool,
    ablation_failure_model,
    ablation_conflict_awareness,
    ablation_multi_backup
);
criterion_main!(benches);
