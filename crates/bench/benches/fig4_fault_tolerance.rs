//! Figure 4 regeneration bench: replays the fault-tolerance campaign cell
//! by cell (reduced horizon; the `fig4` binary produces the full-scale
//! figures).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drt_experiments::config::ExperimentConfig;
use drt_experiments::runner::{replay, SchemeKind};
use drt_sim::workload::TrafficPattern;
use std::sync::Arc;

fn bench_cfg() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick(3.0);
    cfg.nodes = 30;
    cfg.duration = drt_sim::SimDuration::from_minutes(60);
    cfg.warmup = drt_sim::SimDuration::from_minutes(30);
    cfg.snapshots = 2;
    cfg
}

fn fig4_cells(c: &mut Criterion) {
    let cfg = bench_cfg();
    let net = Arc::new(cfg.build_network().expect("topology"));
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    for &lambda in &[0.2, 0.4] {
        let scenario = cfg
            .scenario_config(lambda, TrafficPattern::ut())
            .generate(cfg.nodes);
        for kind in SchemeKind::paper_schemes() {
            group.bench_with_input(
                BenchmarkId::new(kind.label(), lambda),
                &scenario,
                |b, scenario| {
                    b.iter(|| {
                        let m = replay(&net, scenario, kind, &cfg);
                        std::hint::black_box(m.p_act_bk())
                    })
                },
            );
        }
    }
    group.finish();
}

fn fig4_probe_sweep(c: &mut Criterion) {
    // The estimator itself: one full single-link-failure sweep on a loaded
    // paper-scale (60-node, E=3) manager.
    let cfg = ExperimentConfig::quick(3.0);
    let net = Arc::new(cfg.build_network().expect("topology"));
    let scenario = cfg
        .scenario_config(0.4, TrafficPattern::ut())
        .generate(cfg.nodes);
    // Load the manager by replaying up to the warmup point.
    let mut mgr =
        drt_core::DrtpManager::with_config(Arc::clone(&net), SchemeKind::DLsr.manager_config());
    let mut scheme = SchemeKind::DLsr.instantiate();
    for r in scenario.requests().iter().take(600) {
        let _ = mgr.request_connection(
            scheme.as_mut(),
            drt_core::routing::RouteRequest::new(
                drt_core::ConnectionId::new(r.id.index() as u64),
                r.src,
                r.dst,
                scenario.bw_req(),
            ),
        );
    }
    c.bench_function("fig4/probe_sweep_60n", |b| {
        b.iter(|| std::hint::black_box(mgr.sweep_single_failures(7)))
    });
}

criterion_group!(benches, fig4_cells, fig4_probe_sweep);
criterion_main!(benches);
