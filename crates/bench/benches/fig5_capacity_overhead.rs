//! Figure 5 regeneration bench: the capacity-overhead measurement (scheme
//! replay against the no-backup baseline) at reduced horizon.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drt_experiments::capacity;
use drt_experiments::config::ExperimentConfig;
use drt_experiments::runner::{replay, SchemeKind};
use drt_sim::workload::TrafficPattern;
use std::sync::Arc;

fn bench_cfg() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick(3.0);
    cfg.nodes = 30;
    cfg.duration = drt_sim::SimDuration::from_minutes(60);
    cfg.warmup = drt_sim::SimDuration::from_minutes(30);
    cfg.snapshots = 1;
    cfg
}

fn fig5_overhead(c: &mut Criterion) {
    let cfg = bench_cfg();
    let net = Arc::new(cfg.build_network().expect("topology"));
    // Saturating load so overhead is visible.
    let scenario = cfg
        .scenario_config(0.6, TrafficPattern::ut())
        .generate(cfg.nodes);

    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    for kind in [
        SchemeKind::DLsr,
        SchemeKind::PLsr,
        SchemeKind::Bf,
        SchemeKind::NoBackup,
        SchemeKind::Dedicated,
    ] {
        group.bench_with_input(
            BenchmarkId::new("replay", kind.label()),
            &scenario,
            |b, scenario| {
                b.iter(|| std::hint::black_box(replay(&net, scenario, kind, &cfg).avg_active))
            },
        );
    }
    group.bench_function("overhead_pair", |b| {
        b.iter(|| {
            let base = replay(&net, &scenario, SchemeKind::NoBackup, &cfg);
            let run = replay(&net, &scenario, SchemeKind::DLsr, &cfg);
            let metrics = vec![base, run];
            std::hint::black_box(capacity::overhead_percent(&metrics, "D-LSR", "UT", 0.6))
        })
    });
    group.finish();
}

criterion_group!(benches, fig5_overhead);
criterion_main!(benches);
