//! Benchmarks of the indexed failure-analysis engine: the Figure-4
//! single-failure sweep and the vulnerability report on a loaded manager,
//! with the incidence-indexed, workspace-backed probe engine vs. the
//! full-scan `naive_baseline()`.
//!
//! These are the criterion twins of the `sweep_single_failures*` and
//! `vulnerability` targets in `campaign --bench-json`; that mode exists
//! so CI can extract medians without criterion's full run time.

use criterion::{criterion_group, criterion_main, Criterion};
use drt_core::routing::{RouteRequest, RoutingScheme};
use drt_core::{ConnectionId, DrtpManager};
use drt_experiments::config::ExperimentConfig;
use drt_experiments::failure_analysis::sweep_single_failures_jobs;
use drt_experiments::runner::SchemeKind;
use drt_sim::workload::{TimelineEvent, TrafficPattern};
use std::sync::Arc;

/// A manager loaded with `target` D-LSR connections at utilization
/// `load` — the same 250-connection shape the JSON harness probes, so
/// the two report comparable numbers.
fn loaded_manager(
    cfg: &ExperimentConfig,
    scheme: &mut dyn RoutingScheme,
    load: f64,
    target: usize,
) -> DrtpManager {
    let net = Arc::new(cfg.build_network().expect("experiment topology"));
    let mut mgr = DrtpManager::with_config(Arc::clone(&net), SchemeKind::DLsr.manager_config());
    let scenario = cfg
        .scenario_config(load, TrafficPattern::ut())
        .generate(cfg.nodes);
    let mut admitted = 0usize;
    for (_, ev) in scenario.timeline() {
        let TimelineEvent::Arrive(rid) = ev else {
            continue;
        };
        let r = scenario.request(rid).expect("valid id");
        let req = RouteRequest::new(
            ConnectionId::new(rid.index() as u64),
            r.src,
            r.dst,
            scenario.bw_req(),
        )
        .with_backups(cfg.backups_per_connection);
        if admitted >= target {
            break;
        }
        if mgr.request_connection(&mut *scheme, req).is_ok() {
            admitted += 1;
        }
    }
    mgr
}

fn sweep(c: &mut Criterion) {
    let cfg = ExperimentConfig::quick(3.0);
    let mut scheme = SchemeKind::DLsr.instantiate();
    let mgr = loaded_manager(&cfg, scheme.as_mut(), 0.7, 250);
    let mut group = c.benchmark_group("sweep_single_failures");
    group.sample_size(20);
    group.bench_function("indexed", |b| {
        b.iter(|| std::hint::black_box(mgr.sweep_single_failures(7).aggregate.trials))
    });
    group.bench_function("naive_baseline", |b| {
        b.iter(|| {
            std::hint::black_box(
                mgr.naive_baseline()
                    .sweep_single_failures(7)
                    .aggregate
                    .trials,
            )
        })
    });
    group.bench_function("indexed_jobs2", |b| {
        b.iter(|| std::hint::black_box(sweep_single_failures_jobs(&mgr, 7, 2).aggregate.trials))
    });
    group.finish();
}

fn vulnerability(c: &mut Criterion) {
    let cfg = ExperimentConfig::quick(3.0);
    let mut scheme = SchemeKind::DLsr.instantiate();
    let mgr = loaded_manager(&cfg, scheme.as_mut(), 0.7, 250);
    let mut group = c.benchmark_group("vulnerability");
    group.sample_size(20);
    group.bench_function("indexed", |b| {
        b.iter(|| std::hint::black_box(drt_core::analysis::vulnerability(&mgr, 7).trials()))
    });
    group.bench_function("naive_baseline", |b| {
        b.iter(|| std::hint::black_box(drt_core::analysis::vulnerability_naive(&mgr, 7).trials()))
    });
    group.finish();
}

criterion_group!(benches, sweep, vulnerability);
criterion_main!(benches);
