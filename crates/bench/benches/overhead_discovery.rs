//! Route-discovery overhead bench: the cost of one route selection under
//! each scheme on the paper-scale topologies, plus the flooding-parameter
//! sweep the paper describes ("increasing the flooding area beyond this
//! barely improves the performance").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drt_core::routing::{BoundedFlooding, DLsr, FloodingParams, PLsr, RouteRequest, RoutingScheme};
use drt_core::{ConnectionId, DrtpManager};
use drt_experiments::config::ExperimentConfig;
use drt_net::NodeId;
use std::sync::Arc;

fn loaded_manager(degree: f64) -> DrtpManager {
    let cfg = ExperimentConfig::quick(degree);
    let net = Arc::new(cfg.build_network().expect("topology"));
    let mut mgr = DrtpManager::new(net);
    let mut scheme = DLsr::new();
    let mut rng = drt_sim::rng::stream(9, "bench-load");
    let pattern = drt_sim::workload::TrafficPattern::ut();
    for i in 0..400u64 {
        let (src, dst) = pattern.sample_pair(cfg.nodes, &mut rng);
        let _ = mgr.request_connection(
            &mut scheme,
            RouteRequest::new(ConnectionId::new(i), src, dst, cfg.bw_req),
        );
    }
    mgr
}

fn selection_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("discovery");
    for degree in [3.0, 4.0] {
        let mgr = loaded_manager(degree);
        let req = RouteRequest::new(
            ConnectionId::new(u64::MAX),
            NodeId::new(0),
            NodeId::new(59),
            drt_net::Bandwidth::from_kbps(3_000),
        );
        group.bench_with_input(BenchmarkId::new("D-LSR", degree), &mgr, |b, mgr| {
            let mut s = DLsr::new();
            b.iter(|| std::hint::black_box(s.select_routes(&mgr.view(), &req).ok()))
        });
        group.bench_with_input(BenchmarkId::new("P-LSR", degree), &mgr, |b, mgr| {
            let mut s = PLsr::new();
            b.iter(|| std::hint::black_box(s.select_routes(&mgr.view(), &req).ok()))
        });
        group.bench_with_input(BenchmarkId::new("BF", degree), &mgr, |b, mgr| {
            let mut s = BoundedFlooding::new();
            b.iter(|| std::hint::black_box(s.select_routes(&mgr.view(), &req).ok()))
        });
    }
    group.finish();
}

fn flooding_parameter_sweep(c: &mut Criterion) {
    let mgr = loaded_manager(4.0);
    let req = RouteRequest::new(
        ConnectionId::new(u64::MAX),
        NodeId::new(3),
        NodeId::new(42),
        drt_net::Bandwidth::from_kbps(3_000),
    );
    let mut group = c.benchmark_group("flood_bound");
    for rho_offset in [0u32, 2, 4] {
        let params = FloodingParams {
            rho_offset,
            ..FloodingParams::paper()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(rho_offset),
            &params,
            |b, &params| {
                let mut s = BoundedFlooding::with_params(params);
                b.iter(|| std::hint::black_box(s.select_routes(&mgr.view(), &req).ok()))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, selection_cost, flooding_parameter_sweep);
criterion_main!(benches);
