//! Microbenchmarks of the primitives every scheme leans on: Dijkstra with
//! APLV costs, APLV maintenance, conflict-vector queries, topology
//! generation, and the all-pairs hop tables behind bounded flooding.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drt_core::Aplv;
use drt_net::algo::{shortest_path, suurballe, AllPairsHops};
use drt_net::topology::WaxmanConfig;
use drt_net::{Bandwidth, LinkId, NodeId};

fn paper_net(degree: f64) -> drt_net::Network {
    WaxmanConfig::new(60, degree)
        .capacity(Bandwidth::from_mbps(100))
        .seed(60)
        .build()
        .expect("topology")
}

fn dijkstra_costs(c: &mut Criterion) {
    let mut group = c.benchmark_group("dijkstra");
    for degree in [3.0, 4.0] {
        let net = paper_net(degree);
        group.bench_with_input(BenchmarkId::new("unit_costs", degree), &net, |b, net| {
            b.iter(|| {
                std::hint::black_box(shortest_path(net, NodeId::new(0), NodeId::new(59), |_| {
                    Some(1.0)
                }))
            })
        });
        group.bench_with_input(BenchmarkId::new("suurballe", degree), &net, |b, net| {
            b.iter(|| {
                std::hint::black_box(suurballe(net, NodeId::new(0), NodeId::new(59), |_| {
                    Some(1.0)
                }))
            })
        });
    }
    group.finish();
}

fn aplv_ops(c: &mut Criterion) {
    // A typical primary LSET of ~4-5 links.
    let lset: Vec<LinkId> = (10u32..15).map(LinkId::new).collect();
    let bw = Bandwidth::from_kbps(3_000);
    c.bench_function("aplv/register_unregister", |b| {
        b.iter(|| {
            let mut aplv = Aplv::new();
            for _ in 0..100 {
                aplv.register(&lset, bw);
            }
            for _ in 0..100 {
                aplv.unregister(&lset, bw);
            }
            std::hint::black_box(aplv.is_empty())
        })
    });

    let mut loaded = Aplv::new();
    for i in 0..200u32 {
        loaded.register(&[LinkId::new(i % 30), LinkId::new((i + 7) % 30)], bw);
    }
    c.bench_function("aplv/conflicts_with", |b| {
        b.iter(|| std::hint::black_box(loaded.conflicts_with(&lset)))
    });
    c.bench_function("aplv/conflict_vector_180", |b| {
        b.iter(|| std::hint::black_box(loaded.conflict_vector(180).ones()))
    });
}

fn hop_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("all_pairs_hops");
    for degree in [3.0, 4.0] {
        let net = paper_net(degree);
        group.bench_with_input(BenchmarkId::from_parameter(degree), &net, |b, net| {
            b.iter(|| std::hint::black_box(AllPairsHops::compute(net).diameter()))
        });
    }
    group.finish();
}

fn topology_generation(c: &mut Criterion) {
    c.bench_function("waxman_60n_e3", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            std::hint::black_box(
                WaxmanConfig::new(60, 3.0)
                    .seed(seed)
                    .build()
                    .expect("topology")
                    .num_links(),
            )
        })
    });
}

criterion_group!(
    benches,
    dijkstra_costs,
    aplv_ops,
    hop_tables,
    topology_generation
);
criterion_main!(benches);
