//! Signalling-plane benches: how fast the message-level protocol
//! processes DRTP's management and recovery pipelines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drt_core::ConnectionId;
use drt_net::{topology, Bandwidth, NodeId, Route};
use drt_proto::{ProtocolConfig, ProtocolSim};
use std::sync::Arc;

const BW: Bandwidth = Bandwidth::from_kbps(3_000);

fn establish_release_cycle(c: &mut Criterion) {
    let net = Arc::new(
        topology::WaxmanConfig::new(60, 4.0)
            .capacity(Bandwidth::from_mbps(100))
            .seed(60)
            .build()
            .expect("topology"),
    );
    // Pre-compute a batch of disjoint route pairs.
    let mut pairs = Vec::new();
    let mut rng = drt_sim::rng::stream(5, "bench-pairs");
    let pattern = drt_sim::workload::TrafficPattern::ut();
    while pairs.len() < 50 {
        let (src, dst) = pattern.sample_pair(60, &mut rng);
        let Some(primary) = drt_net::algo::shortest_path_hops(&net, src, dst) else {
            continue;
        };
        let backup = drt_net::algo::shortest_path(&net, src, dst, |l| {
            if primary.contains_link(l) {
                None
            } else {
                Some(1.0)
            }
        });
        if let Some((_, backup)) = backup {
            pairs.push((primary, backup));
        }
    }

    c.bench_function("proto/establish_release_50", |b| {
        b.iter(|| {
            let mut sim = ProtocolSim::new(Arc::clone(&net), ProtocolConfig::default());
            for (i, (p, bk)) in pairs.iter().enumerate() {
                sim.establish(ConnectionId::new(i as u64), BW, p.clone(), vec![bk.clone()]);
            }
            sim.run_to_quiescence();
            for i in 0..pairs.len() {
                sim.release(ConnectionId::new(i as u64));
            }
            sim.run_to_quiescence();
            std::hint::black_box(sim.counters().total())
        })
    });
}

fn recovery_pipeline(c: &mut Criterion) {
    let net = Arc::new(topology::mesh(4, 4, Bandwidth::from_mbps(100)).expect("mesh"));
    let primary = Route::from_nodes(
        &net,
        &[
            NodeId::new(4),
            NodeId::new(5),
            NodeId::new(6),
            NodeId::new(7),
        ],
    )
    .expect("route");
    let backup = Route::from_nodes(
        &net,
        &[
            NodeId::new(4),
            NodeId::new(0),
            NodeId::new(1),
            NodeId::new(2),
            NodeId::new(3),
            NodeId::new(7),
        ],
    )
    .expect("route");

    let mut group = c.benchmark_group("proto/recovery");
    for conns in [1usize, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(conns), &conns, |b, &conns| {
            b.iter(|| {
                let mut sim = ProtocolSim::new(Arc::clone(&net), ProtocolConfig::default());
                for i in 0..conns {
                    sim.establish(
                        ConnectionId::new(i as u64),
                        BW,
                        primary.clone(),
                        vec![backup.clone()],
                    );
                }
                sim.run_to_quiescence();
                sim.fail_link(primary.links()[1]);
                sim.run_to_quiescence();
                std::hint::black_box(sim.outcome(ConnectionId::new(0)))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, establish_release_cycle, recovery_pipeline);
criterion_main!(benches);
