//! Benchmarks of the incremental conflict-cost engine and the reusable
//! SPF workspace: per-request D-LSR routing with the dense bitset engine
//! vs. the sparse per-request recomputation baseline, workspace-backed
//! shortest-path trees, failure injection, and whole-scenario replay.
//!
//! These are the criterion twins of `campaign --bench-json`; that mode
//! exists so CI can extract medians without criterion's full run time.

use criterion::{criterion_group, criterion_main, Criterion};
use drt_core::failure::FailureEvent;
use drt_core::routing::{DLsr, RouteRequest, RoutingScheme};
use drt_core::{ConnectionId, DrtpManager};
use drt_experiments::config::ExperimentConfig;
use drt_experiments::runner::SchemeKind;
use drt_net::algo::shortest_path_tree;
use drt_net::NodeId;
use drt_sim::workload::{TimelineEvent, TrafficPattern};
use std::sync::Arc;

/// A manager loaded with `target` D-LSR connections from the standard
/// workload at utilization `load`, plus one further request to replay per
/// iteration. Heavy load matters: on a light manager the APLVs are nearly
/// empty and the sparse baseline is vacuously cheap.
fn loaded_manager(
    cfg: &ExperimentConfig,
    scheme: &mut dyn RoutingScheme,
    load: f64,
    target: usize,
) -> (DrtpManager, RouteRequest) {
    let net = Arc::new(cfg.build_network().expect("experiment topology"));
    let mut mgr = DrtpManager::with_config(Arc::clone(&net), SchemeKind::DLsr.manager_config());
    let scenario = cfg
        .scenario_config(load, TrafficPattern::ut())
        .generate(cfg.nodes);
    let mut spare: Option<RouteRequest> = None;
    let mut admitted = 0usize;
    for (_, ev) in scenario.timeline() {
        let TimelineEvent::Arrive(rid) = ev else {
            continue;
        };
        let r = scenario.request(rid).expect("valid id");
        let req = RouteRequest::new(
            ConnectionId::new(rid.index() as u64),
            r.src,
            r.dst,
            scenario.bw_req(),
        )
        .with_backups(cfg.backups_per_connection);
        if admitted >= target {
            spare = Some(req);
            break;
        }
        if mgr.request_connection(&mut *scheme, req).is_ok() {
            admitted += 1;
        }
    }
    (mgr, spare.expect("workload outlasts the target"))
}

fn dlsr_request(c: &mut Criterion) {
    let cfg = ExperimentConfig::quick(3.0);
    let mut group = c.benchmark_group("dlsr_request");
    let variants: [(&str, Box<dyn RoutingScheme>); 2] = [
        ("dense", Box::new(DLsr::new())),
        ("sparse_baseline", Box::new(DLsr::sparse_baseline())),
    ];
    for (name, mut scheme) in variants {
        let (mut mgr, spare) = loaded_manager(&cfg, scheme.as_mut(), 0.7, 250);
        let mut next_id = 1_000_000u64;
        group.bench_function(name, |b| {
            b.iter(|| {
                let id = ConnectionId::new(next_id);
                next_id += 1;
                let req = RouteRequest { id, ..spare };
                if mgr.request_connection(scheme.as_mut(), req).is_ok() {
                    mgr.release(id).expect("just admitted");
                }
            })
        });
    }
    group.finish();
}

fn spf_tree(c: &mut Criterion) {
    let cfg = ExperimentConfig::quick(3.0);
    let net = cfg.build_network().expect("experiment topology");
    c.bench_function("shortest_path_tree/workspace", |b| {
        b.iter(|| {
            let tree = shortest_path_tree(&net, NodeId::new(0), |_| Some(1.0));
            std::hint::black_box(tree.distance(NodeId::new(1)))
        })
    });
}

fn inject_event(c: &mut Criterion) {
    let cfg = ExperimentConfig::quick(3.0);
    let mut scheme = SchemeKind::DLsr.instantiate();
    let (mgr, _) = loaded_manager(&cfg, scheme.as_mut(), 0.7, 250);
    let link = mgr
        .connections()
        .find(|conn| conn.state().is_carrying_traffic())
        .map(|conn| conn.primary().links()[0])
        .expect("loaded manager has live primaries");
    // The vendored criterion has no iter_batched, so the manager clone is
    // inside the timed region; `campaign --bench-json` times the
    // injection alone with untimed per-sample setup.
    c.bench_function("inject_event/link_plus_clone", |b| {
        b.iter(|| {
            let mut m = mgr.clone();
            let mut rng = drt_sim::rng::stream(7, "bench-inject");
            std::hint::black_box(m.inject_event(&FailureEvent::Link(link), &mut rng).ok())
        })
    });
}

fn replay_scenario(c: &mut Criterion) {
    let mut cfg = ExperimentConfig::quick(3.0);
    cfg.nodes = 20;
    cfg.duration = drt_sim::SimDuration::from_minutes(50);
    cfg.warmup = drt_sim::SimDuration::from_minutes(25);
    cfg.snapshots = 1;
    let net = Arc::new(cfg.build_network().expect("small topology"));
    let scenario = cfg
        .scenario_config(0.2, TrafficPattern::ut())
        .generate(cfg.nodes);
    let mut group = c.benchmark_group("replay");
    group.sample_size(10);
    group.bench_function("dlsr_small", |b| {
        b.iter(|| {
            let m = drt_experiments::runner::replay(&net, &scenario, SchemeKind::DLsr, &cfg);
            std::hint::black_box(m.admitted)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    dlsr_request,
    spf_tree,
    inject_event,
    replay_scenario
);
criterion_main!(benches);
