//! Benchmark support crate: all benchmark targets live in `benches/`.
//!
//! Each criterion target regenerates one artifact of the paper's
//! evaluation at reduced scale (criterion needs many iterations, so the
//! benches use [`drt_experiments::config::ExperimentConfig::quick`]-style
//! configurations); the `drt-experiments` binaries produce the full-scale
//! numbers recorded in `EXPERIMENTS.md`.

#![warn(missing_docs)]
#![deny(missing_debug_implementations)]
#![forbid(unsafe_code)]
