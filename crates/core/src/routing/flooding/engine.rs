//! The flooding engine: simulates one CDP flood at message granularity.

use crate::routing::flooding::{Candidate, Cdp, FloodingParams};
use crate::routing::{RouteRequest, RoutingOverhead};
use crate::ManagerView;
use drt_net::{NodeId, Route};
use std::collections::VecDeque;

/// Result of one bounded flood.
#[derive(Debug, Clone)]
pub struct FloodOutcome {
    /// The destination's candidate-route table (CRT), in arrival order.
    pub candidates: Vec<Candidate>,
    /// Messages and bytes the flood transmitted.
    pub overhead: RoutingOverhead,
    /// `true` when the defensive message cap cut the flood short.
    pub truncated: bool,
}

/// Simulates the bounded flood of one channel-discovery packet and returns
/// the destination's candidate routes plus the message cost.
///
/// Mechanics follow Section 4 exactly:
///
/// * the source bounds the flood at `hc_limit = ⌈ρ·D(src,dst)⌉ + ρ₀`;
/// * every forward from node `i` to neighbor `k` must pass the
///   **distance test** (`hc_curr + D_{dst,k} + 1 ≤ hc_limit`, consulting
///   the distance tables derived from [`ManagerView::hops`]), the
///   **loop-freedom test** (`k ∉ list`), and the **bandwidth test**
///   (`bw_req ≤ total − prime` on the link taken);
/// * a node that has already seen a copy of this connection's CDP applies
///   the **valid-detour test** `hc_curr ≤ α·min_dist + β` to incoming
///   copies first (its pending-connection-table entry holds `min_dist`);
/// * the destination records every arriving copy in its CRT (capped at
///   [`FloodingParams::max_candidates`]).
///
/// Messages are processed in FIFO order, which makes the flood — and thus
/// the whole scheme — deterministic.
pub fn flood(view: &ManagerView<'_>, req: &RouteRequest, params: FloodingParams) -> FloodOutcome {
    let net = view.net();
    let mut outcome = FloodOutcome {
        candidates: Vec::new(),
        overhead: RoutingOverhead::ZERO,
        truncated: false,
    };
    let Some(min_dist) = view.hops().hops(req.src, req.dst) else {
        return outcome; // destination unreachable
    };
    if req.src == req.dst {
        return outcome;
    }
    let hc_limit = (params.rho * min_dist as f64).ceil() as u32 + params.rho_offset;
    let bw = req.bandwidth();

    // Pending-connection-table state: min_dist per node for this flood.
    let mut pct_min: Vec<Option<u32>> = vec![None; net.num_nodes()];
    let mut queue: VecDeque<(NodeId, Cdp)> = VecDeque::new();

    // Forward all admissible copies out of `holder`.
    let forward =
        |holder: NodeId, m: &Cdp, queue: &mut VecDeque<(NodeId, Cdp)>, out: &mut FloodOutcome| {
            for &lid in net.out_links(holder) {
                let k = net.link(lid).dst();
                // Bandwidth test (includes liveness): the link must offer
                // backup headroom.
                if !view.usable_for_backup(lid, bw) {
                    continue;
                }
                // Loop-freedom test.
                if k == m.src || m.list.contains(&k) {
                    continue;
                }
                // Distance test: can the CDP still reach the destination
                // within the limit after taking this hop?
                let Some(rest) = view.hops().hops(k, m.dst) else {
                    continue;
                };
                if m.hc_curr + 1 + rest > m.hc_limit {
                    continue;
                }
                let child = m.forwarded(holder, lid, bw <= view.free(lid));
                out.overhead.messages += 1;
                out.overhead.bytes += child.wire_bytes();
                queue.push_back((k, child));
            }
        };

    // Source action (Section 4.2).
    let initial = Cdp::initial(req.id, req.src, req.dst, hc_limit, bw);
    forward(req.src, &initial, &mut queue, &mut outcome);
    pct_min[req.src.index()] = Some(0);

    // Message loop.
    while let Some((node, m)) = queue.pop_front() {
        if node == m.dst {
            // Destination action (Section 4.4): fill the CRT.
            if outcome.candidates.len() < params.max_candidates {
                if let Ok(route) = Route::new(net, m.path.clone()) {
                    outcome.candidates.push(Candidate {
                        route,
                        primary_flag: m.primary_flag,
                        hops: m.hc_curr,
                    });
                }
            }
            continue;
        }
        // Valid-detour test (Section 4.3) against this node's PCT entry.
        if let Some(best) = pct_min[node.index()] {
            if m.hc_curr as f64 > params.alpha * best as f64 + params.beta as f64 {
                continue;
            }
            pct_min[node.index()] = Some(best.min(m.hc_curr));
        } else {
            pct_min[node.index()] = Some(m.hc_curr);
        }
        if outcome.overhead.messages >= params.max_messages {
            outcome.truncated = true;
            break;
        }
        forward(node, &m, &mut queue, &mut outcome);
    }

    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConnectionId, DrtpManager};
    use drt_net::{topology, Bandwidth, NodeId};
    use std::sync::Arc;

    const BW: Bandwidth = Bandwidth::from_kbps(3_000);

    fn request(src: u32, dst: u32) -> RouteRequest {
        RouteRequest::new(ConnectionId::new(0), NodeId::new(src), NodeId::new(dst), BW)
    }

    fn mesh_manager(rows: usize, cols: usize) -> DrtpManager {
        DrtpManager::new(Arc::new(
            topology::mesh(rows, cols, Bandwidth::from_mbps(10)).unwrap(),
        ))
    }

    #[test]
    fn all_candidates_respect_the_bound() {
        let mgr = mesh_manager(3, 3);
        let out = flood(&mgr.view(), &request(0, 8), FloodingParams::paper());
        assert!(!out.candidates.is_empty());
        assert!(!out.truncated);
        // D(0,8) = 4, limit = 6.
        for c in &out.candidates {
            assert!(c.hops <= 6, "{} exceeds hc_limit", c.route);
            assert_eq!(c.route.source(), NodeId::new(0));
            assert_eq!(c.route.dest(), NodeId::new(8));
            assert!(c.route.is_simple(mgr.net()), "loop-freedom violated");
            assert_eq!(c.hops as usize, c.route.len());
        }
    }

    #[test]
    fn shortest_candidate_is_min_hop() {
        let mgr = mesh_manager(4, 4);
        let out = flood(&mgr.view(), &request(0, 15), FloodingParams::paper());
        let best = out.candidates.iter().map(|c| c.hops).min().unwrap();
        assert_eq!(best, 6);
    }

    #[test]
    fn bandwidth_test_prunes_saturated_links() {
        let mut mgr = mesh_manager(3, 3);
        // Saturate the direct top-row links with primaries so the flood
        // cannot use them at all (prime == capacity).
        let mut scheme = crate::routing::PrimaryOnly::new();
        let mut relaxed = DrtpManager::with_config(
            Arc::new(mgr.net().clone()),
            crate::multiplex::MultiplexConfig::no_backup_baseline(),
        );
        std::mem::swap(&mut mgr, &mut relaxed);
        let per_conn = Bandwidth::from_mbps(10); // fills a link completely
        let r = RouteRequest::new(
            ConnectionId::new(9),
            NodeId::new(0),
            NodeId::new(1),
            per_conn,
        );
        mgr.request_connection(&mut scheme, r).unwrap();

        let out = flood(&mgr.view(), &request(0, 2), FloodingParams::paper());
        let direct = mgr.net().find_link(NodeId::new(0), NodeId::new(1)).unwrap();
        for c in &out.candidates {
            assert!(
                !c.route.contains_link(direct),
                "flood crossed a saturated link"
            );
        }
    }

    #[test]
    fn primary_flag_reflects_free_bandwidth() {
        let mgr = mesh_manager(3, 3);
        let out = flood(&mgr.view(), &request(0, 2), FloodingParams::paper());
        // Empty network: every candidate can be a primary.
        assert!(out.candidates.iter().all(|c| c.primary_flag));
    }

    #[test]
    fn unreachable_destination_yields_nothing() {
        let mut b = drt_net::NetworkBuilder::with_nodes(4);
        b.add_duplex_link(NodeId::new(0), NodeId::new(1), Bandwidth::from_mbps(1))
            .unwrap();
        b.add_duplex_link(NodeId::new(2), NodeId::new(3), Bandwidth::from_mbps(1))
            .unwrap();
        let mgr = DrtpManager::new(Arc::new(b.build()));
        let out = flood(&mgr.view(), &request(0, 3), FloodingParams::paper());
        assert!(out.candidates.is_empty());
        assert_eq!(out.overhead.messages, 0);
    }

    #[test]
    fn message_cap_truncates() {
        let mgr = mesh_manager(5, 5);
        let out = flood(
            &mgr.view(),
            &request(0, 24),
            FloodingParams {
                max_messages: 10,
                ..FloodingParams::paper()
            },
        );
        assert!(out.truncated);
        assert!(out.overhead.messages <= 11);
    }

    #[test]
    fn wider_detour_slack_floods_more() {
        let mgr = mesh_manager(4, 4);
        let strict = flood(
            &mgr.view(),
            &request(0, 5),
            FloodingParams {
                beta: 0,
                ..FloodingParams::paper()
            },
        );
        let loose = flood(
            &mgr.view(),
            &request(0, 5),
            FloodingParams {
                beta: 2,
                ..FloodingParams::paper()
            },
        );
        assert!(loose.overhead.messages >= strict.overhead.messages);
    }

    #[test]
    fn candidate_cap_respected() {
        let mgr = mesh_manager(4, 4);
        let out = flood(
            &mgr.view(),
            &request(0, 15),
            FloodingParams {
                max_candidates: 3,
                ..FloodingParams::paper()
            },
        );
        assert_eq!(out.candidates.len(), 3);
    }
}
