//! Routing with bounded flooding (Section 4 of the paper).
//!
//! Unlike the link-state schemes, bounded flooding disseminates no
//! connection state at all. When a DR-connection is requested, the source
//! floods a *channel-discovery packet* (CDP) toward the destination;
//! intermediate nodes forward copies only while four tests pass (distance,
//! loop-freedom, bandwidth, valid-detour), which confines the flood to an
//! ellipse-like region around the source–destination pair. The destination
//! collects the surviving routes in a candidate-route table and picks the
//! primary and backup.

mod cdp;
mod engine;

pub use cdp::{Candidate, Cdp};
pub use engine::{flood, FloodOutcome};

use crate::routing::{RoutePair, RouteRequest, RoutingOverhead, RoutingScheme};
use crate::{DrtpError, ManagerView};
use drt_net::Route;

/// Tunables of the bounded-flooding scheme.
///
/// The flood bound is `hc_limit = ⌈ρ · D(src, dst)⌉ + ρ₀` and the
/// valid-detour test at an intermediate node that has already seen this
/// connection's CDP is `hc_curr ≤ α · min_dist + β`.
///
/// The paper reports choosing its four parameters "since increasing the
/// flooding area beyond this barely improves the performance"; the scanned
/// text renders the values ambiguously ("p = a = 1, p = 2, and p = 0").
/// [`FloodingParams::paper`] fixes `ρ = α = 1` and `β = 0` (the
/// unambiguous parts) and calibrates `ρ₀ = 3` by re-applying the paper's
/// own criterion on our topologies: candidate discovery plateaus at
/// `ρ₀ = 3` (see the `flood_bound` bench and DESIGN.md), while `ρ₀ = 2`
/// leaves ~18 % of E=3 node pairs with a single-candidate CRT — far below
/// the fault tolerance the paper's BF curves exhibit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FloodingParams {
    /// Multiplier on the min-hop distance in the flood bound (`ρ ≥ 1`).
    pub rho: f64,
    /// Additive slack in the flood bound (`ρ₀ ≥ 0`).
    pub rho_offset: u32,
    /// Multiplier in the valid-detour test (`α ≥ 1`).
    pub alpha: f64,
    /// Additive slack in the valid-detour test (`β ≥ 0`).
    pub beta: u32,
    /// Hard cap on forwarded CDPs per request (defensive; floods at the
    /// paper's parameters stay far below it).
    pub max_messages: u64,
    /// Cap on candidate routes retained at the destination.
    pub max_candidates: usize,
}

impl FloodingParams {
    /// The paper's parameter choice (`ρ = α = 1`, `β = 0`) with the flood
    /// bound offset calibrated to the discovery plateau (`ρ₀ = 3`); see
    /// the type-level docs.
    pub fn paper() -> Self {
        FloodingParams {
            rho: 1.0,
            rho_offset: 3,
            alpha: 1.0,
            beta: 0,
            max_messages: 200_000,
            max_candidates: 256,
        }
    }
}

impl Default for FloodingParams {
    fn default() -> Self {
        Self::paper()
    }
}

/// The bounded-flooding routing scheme (`BF` in the evaluation).
///
/// Per request, [`flood`] simulates the CDP exchange and the scheme then
/// performs the destination's selection (Section 4.4):
///
/// * **primary** — the shortest candidate with `primary_flag = 1` (enough
///   *free* bandwidth on every hop);
/// * **backup** — among the remaining candidates, the one that minimally
///   overlaps the primary, shortest first.
///
/// Its [`RoutingOverhead`] counts actual CDP forwards — the on-demand cost
/// profile that contrasts with the link-state schemes' dissemination cost.
#[derive(Debug, Clone, Copy, Default)]
pub struct BoundedFlooding {
    params: FloodingParams,
}

impl BoundedFlooding {
    /// Creates the scheme with the paper's parameters.
    pub fn new() -> Self {
        Self::with_params(FloodingParams::paper())
    }

    /// Creates the scheme with explicit parameters.
    pub fn with_params(params: FloodingParams) -> Self {
        BoundedFlooding { params }
    }

    /// The configured parameters.
    pub fn params(&self) -> FloodingParams {
        self.params
    }

    /// Destination-side backup selection: minimal overlap with the primary
    /// and every already-chosen backup, then shortest, then lexicographic
    /// for determinism. Routes identical to the primary or an existing
    /// backup are ineligible.
    fn pick_backup(candidates: &[Candidate], primary: &Route, existing: &[Route]) -> Option<Route> {
        candidates
            .iter()
            .filter(|c| {
                c.route.links() != primary.links()
                    && existing.iter().all(|e| c.route.links() != e.links())
            })
            .min_by_key(|c| {
                let overlap = c.route.overlap(primary)
                    + existing.iter().map(|e| c.route.overlap(e)).sum::<usize>();
                (overlap, c.hops, c.route.links().to_vec())
            })
            .map(|c| c.route.clone())
    }
}

impl RoutingScheme for BoundedFlooding {
    fn name(&self) -> &'static str {
        "BF"
    }

    fn select_routes(
        &mut self,
        view: &ManagerView<'_>,
        req: &RouteRequest,
    ) -> Result<RoutePair, DrtpError> {
        let outcome = flood(view, req, self.params);
        let primary = outcome
            .candidates
            .iter()
            .filter(|c| c.primary_flag)
            .min_by_key(|c| (c.hops, c.route.links().to_vec()))
            .map(|c| c.route.clone())
            .ok_or(DrtpError::NoPrimaryRoute(req.src, req.dst))?;
        // A lone candidate means no backup exists inside the flooded
        // region; the connection is then proposed unprotected (the manager
        // decides whether that is admissible). Multi-backup requests pick
        // further candidates greedily.
        let mut backups = Vec::new();
        for _ in 0..req.num_backups {
            match Self::pick_backup(&outcome.candidates, &primary, &backups) {
                Some(b) => backups.push(b),
                None => break,
            }
        }
        Ok(RoutePair {
            primary,
            backups,
            dedicated_backup: false,
            overhead: outcome.overhead,
        })
    }

    fn select_backup(
        &mut self,
        view: &ManagerView<'_>,
        req: &RouteRequest,
        primary: &Route,
        existing: &[Route],
    ) -> Result<(Route, RoutingOverhead), DrtpError> {
        let outcome = flood(view, req, self.params);
        let backup = Self::pick_backup(&outcome.candidates, primary, existing)
            .ok_or(DrtpError::NoBackupRoute(req.id))?;
        Ok((backup, outcome.overhead))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConnectionId, DrtpManager};
    use drt_net::{topology, Bandwidth, NodeId};
    use std::sync::Arc;

    const BW: Bandwidth = Bandwidth::from_kbps(3_000);

    fn req(id: u64, src: u32, dst: u32) -> RouteRequest {
        RouteRequest::new(
            ConnectionId::new(id),
            NodeId::new(src),
            NodeId::new(dst),
            BW,
        )
    }

    #[test]
    fn establishes_disjoint_pair_on_mesh() {
        let net = Arc::new(topology::mesh(3, 3, Bandwidth::from_mbps(10)).unwrap());
        let mut mgr = DrtpManager::new(net);
        let rep = mgr
            .request_connection(&mut BoundedFlooding::new(), req(0, 0, 8))
            .unwrap();
        let backup = rep.backup().unwrap();
        assert_eq!(rep.primary.len(), 4, "min-hop primary");
        assert_eq!(
            backup.overlap(&rep.primary),
            0,
            "mesh offers a disjoint backup"
        );
        assert!(rep.overhead.messages > 0, "flooding costs messages");
        mgr.assert_invariants();
    }

    #[test]
    fn hop_limit_restricts_backup_length() {
        let net = Arc::new(topology::mesh(3, 3, Bandwidth::from_mbps(10)).unwrap());
        let mut mgr = DrtpManager::new(net);
        let rep = mgr
            .request_connection(&mut BoundedFlooding::new(), req(0, 0, 4))
            .unwrap();
        // D(0, 4) = 2, hc_limit = 4: no candidate exceeds 4 hops.
        assert!(rep.primary.len() <= 4);
        assert!(rep.backup().unwrap().len() <= 4);
    }

    #[test]
    fn no_backup_on_bridge_topology() {
        // A path graph: the only route is the primary, no second candidate.
        // Default (paper) admission accepts the connection unprotected;
        // strict admission rejects it.
        let mut b = drt_net::NetworkBuilder::with_nodes(3);
        b.add_duplex_link(NodeId::new(0), NodeId::new(1), Bandwidth::from_mbps(10))
            .unwrap();
        b.add_duplex_link(NodeId::new(1), NodeId::new(2), Bandwidth::from_mbps(10))
            .unwrap();
        let net = Arc::new(b.build());
        let mut mgr = DrtpManager::new(Arc::clone(&net));
        let rep = mgr
            .request_connection(&mut BoundedFlooding::new(), req(0, 0, 2))
            .unwrap();
        assert!(rep.backup().is_none());
        assert_eq!(
            mgr.connection(ConnectionId::new(0)).unwrap().state(),
            crate::ConnectionState::Unprotected
        );

        let mut strict = DrtpManager::with_config(net, crate::multiplex::MultiplexConfig::strict());
        let err = strict
            .request_connection(&mut BoundedFlooding::new(), req(1, 0, 2))
            .unwrap_err();
        assert_eq!(err, DrtpError::NoBackupRoute(ConnectionId::new(1)));
    }

    #[test]
    fn larger_bound_finds_more_candidates() {
        let net = Arc::new(topology::mesh(4, 4, Bandwidth::from_mbps(10)).unwrap());
        let mgr = DrtpManager::new(net);
        let tight = flood(
            &mgr.view(),
            &req(0, 0, 15),
            FloodingParams {
                rho_offset: 0,
                ..FloodingParams::paper()
            },
        );
        let loose = flood(&mgr.view(), &req(0, 0, 15), FloodingParams::paper());
        assert!(loose.candidates.len() >= tight.candidates.len());
        assert!(loose.overhead.messages >= tight.overhead.messages);
    }

    #[test]
    fn name_and_params() {
        let s = BoundedFlooding::new();
        assert_eq!(s.name(), "BF");
        assert_eq!(s.params(), FloodingParams::paper());
    }
}
