//! The channel-discovery packet (CDP) and candidate routes.

use crate::ConnectionId;
use drt_net::{Bandwidth, LinkId, NodeId, Route};
use std::fmt;

/// A channel-discovery packet in flight (Section 4.1).
///
/// Field names follow the paper: `srce-id`/`dest-id`/`conn-id` identify
/// the request, `hc-limit`/`hc-curr` bound and track the hop count,
/// `bw-req` is the requested bandwidth, `primary-flag` records whether the
/// traversed route could serve as a primary, and `list` is the node trail
/// (used for loop-free flooding and final route construction). The `path`
/// field additionally records the traversed links — the paper
/// reconstructs them from `list`; carrying them directly is equivalent and
/// unambiguous in a multigraph-free network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cdp {
    /// The connection being discovered (`conn-id`).
    pub conn: ConnectionId,
    /// Source node of the connection (`srce-id`).
    pub src: NodeId,
    /// Destination node (`dest-id`).
    pub dst: NodeId,
    /// Maximum hop count this CDP may take (`hc-limit`).
    pub hc_limit: u32,
    /// Hops taken so far (`hc-curr`).
    pub hc_curr: u32,
    /// Requested bandwidth (`bw-req`).
    pub bw_req: Bandwidth,
    /// `true` while every traversed link had `total − (prime + spare) ≥
    /// bw_req` — the route can carry a *primary* channel.
    pub primary_flag: bool,
    /// Nodes traversed so far (`list`); the current holder is appended at
    /// each forward.
    pub list: Vec<NodeId>,
    /// Links traversed so far (parallel to `list`).
    pub path: Vec<LinkId>,
}

/// Fixed header size of a CDP on the wire: ids, hop counts, bandwidth,
/// flags (modelled after the field list of Section 4.1).
pub(crate) const CDP_HEADER_BYTES: u64 = 28;

impl Cdp {
    /// The initial CDP composed by the source (Section 4.2).
    pub fn initial(
        conn: ConnectionId,
        src: NodeId,
        dst: NodeId,
        hc_limit: u32,
        bw_req: Bandwidth,
    ) -> Self {
        Cdp {
            conn,
            src,
            dst,
            hc_limit,
            hc_curr: 0,
            bw_req,
            primary_flag: true,
            list: Vec::new(),
            path: Vec::new(),
        }
    }

    /// The copy forwarded from `holder` across `link`: hop count advances,
    /// `holder` joins the trail, and the primary flag is and-ed with this
    /// link's free-bandwidth test.
    pub fn forwarded(&self, holder: NodeId, link: LinkId, link_has_free_bw: bool) -> Self {
        let mut next = self.clone();
        next.hc_curr += 1;
        next.list.push(holder);
        next.path.push(link);
        next.primary_flag &= link_has_free_bw;
        next
    }

    /// Size of this packet on the wire (header + 4 bytes per trail entry).
    pub fn wire_bytes(&self) -> u64 {
        CDP_HEADER_BYTES + 4 * self.list.len() as u64
    }
}

impl fmt::Display for Cdp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CDP[{} {} -> {}, hc {}/{}, primary={}]",
            self.conn, self.src, self.dst, self.hc_curr, self.hc_limit, self.primary_flag
        )
    }
}

/// One entry of the destination's candidate-route table (CRT).
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// The discovered route.
    pub route: Route,
    /// Whether the route can carry a primary channel.
    pub primary_flag: bool,
    /// Hop count of the route.
    pub hops: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forwarding_updates_fields() {
        let base = Cdp::initial(
            ConnectionId::new(1),
            NodeId::new(0),
            NodeId::new(5),
            6,
            Bandwidth::from_kbps(3_000),
        );
        assert_eq!(base.hc_curr, 0);
        assert!(base.primary_flag);
        assert_eq!(base.wire_bytes(), CDP_HEADER_BYTES);

        let fwd = base.forwarded(NodeId::new(0), LinkId::new(3), true);
        assert_eq!(fwd.hc_curr, 1);
        assert_eq!(fwd.list, vec![NodeId::new(0)]);
        assert_eq!(fwd.path, vec![LinkId::new(3)]);
        assert!(fwd.primary_flag);

        let fwd2 = fwd.forwarded(NodeId::new(2), LinkId::new(9), false);
        assert!(!fwd2.primary_flag, "one saturated link clears the flag");
        // The flag never recovers.
        let fwd3 = fwd2.forwarded(NodeId::new(3), LinkId::new(1), true);
        assert!(!fwd3.primary_flag);
        assert_eq!(fwd3.wire_bytes(), CDP_HEADER_BYTES + 12);
    }

    #[test]
    fn display_shows_progress() {
        let c = Cdp::initial(
            ConnectionId::new(2),
            NodeId::new(1),
            NodeId::new(4),
            5,
            Bandwidth::from_kbps(100),
        );
        assert_eq!(c.to_string(), "CDP[D2 n1 -> n4, hc 0/5, primary=true]");
    }
}
