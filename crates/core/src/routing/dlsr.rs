//! D-LSR: deterministic avoidance of backup conflicts (Section 3.2).

use crate::routing::costs::{
    changed_links, lsa_overhead, lsr_backup, lsr_backups, min_hop_primary,
};
use crate::routing::{RoutePair, RouteRequest, RoutingOverhead, RoutingScheme};
use crate::{DrtpError, ManagerView};
use drt_net::Route;

/// The deterministic link-state routing scheme.
///
/// Every link advertises its *Conflict Vector* `CV_i` — an `N`-bit vector
/// whose bit `j` is set iff at least one primary through `L_j` has its
/// backup on `L_i`. After the new connection's primary `P_x` is fixed, the
/// cost of using `L_i` for the backup is the number of `P_x`'s links that
/// would deterministically conflict there:
///
/// `C_i = Q_i + Σ_{L_j ∈ LSET_{P_x}} c_{i,j} + ε`.
///
/// Compared with P-LSR's scalar norm, the conflict vector tells the router
/// *where* the conflicts lie, so two equally-loaded links can be told apart
/// — the paper's Figure 3 example, where D-LSR detours `B₃` along a longer
/// but conflict-free route that survives the shared failure of `L₁₃`.
///
/// The price is a larger link-state database: `⌈N/8⌉` bytes per link
/// instead of one integer (modelled by this scheme's
/// [`RoutingOverhead`]).
///
/// The cost term is evaluated on the manager's incrementally maintained
/// dense conflict bitsets: the primary's `LSET` is densified once per
/// request and every relaxed link pays one word-wise popcount
/// (`CV_i ∩ LSET_P`) instead of per-element sparse-map probes. The
/// pre-incremental path is preserved behind
/// [`DLsr::sparse_baseline`] so benchmarks and equivalence tests can
/// compare the two; both produce identical costs, hence identical routes.
#[derive(Debug, Clone, Copy, Default)]
pub struct DLsr {
    sparse: bool,
}

impl DLsr {
    /// Creates the scheme.
    pub fn new() -> Self {
        DLsr::default()
    }

    /// Creates the scheme with the pre-incremental cost evaluation that
    /// walks the sparse APLV maps on every relaxation — the baseline the
    /// routing benchmarks measure the incremental engine against. Routes
    /// are identical to [`DLsr::new`]; only the evaluation cost differs.
    pub fn sparse_baseline() -> Self {
        DLsr { sparse: true }
    }

    /// Bytes of one D-LSR link-state entry for a network of `num_links`
    /// links: link id (4) + available bandwidth (4) + the conflict vector.
    fn entry_bytes(num_links: usize) -> u64 {
        8 + num_links.div_ceil(8) as u64
    }
}

impl RoutingScheme for DLsr {
    fn name(&self) -> &'static str {
        "D-LSR"
    }

    fn select_routes(
        &mut self,
        view: &ManagerView<'_>,
        req: &RouteRequest,
    ) -> Result<RoutePair, DrtpError> {
        let primary = min_hop_primary(view, req.src, req.dst, req.bandwidth())?;
        let primary_lset = primary.links().to_vec();
        let lset_cv = view.densify_lset(&primary_lset);
        let backups = if self.sparse {
            lsr_backups(view, req, &primary, |l| {
                view.conflict_count(l, &primary_lset) as f64
            })?
        } else {
            lsr_backups(view, req, &primary, |l| {
                view.conflict_overlap(l, &lset_cv) as f64
            })?
        };
        let overhead = lsa_overhead(
            view.net().num_links(),
            changed_links(&primary, &backups),
            Self::entry_bytes(view.net().num_links()),
        );
        Ok(RoutePair {
            primary,
            backups,
            dedicated_backup: false,
            overhead,
        })
    }

    fn select_backup(
        &mut self,
        view: &ManagerView<'_>,
        req: &RouteRequest,
        primary: &Route,
        existing: &[Route],
    ) -> Result<(Route, RoutingOverhead), DrtpError> {
        let primary_lset = primary.links().to_vec();
        let lset_cv = view.densify_lset(&primary_lset);
        let backup = if self.sparse {
            lsr_backup(view, req, primary, existing, |l| {
                view.conflict_count(l, &primary_lset) as f64
            })?
        } else {
            lsr_backup(view, req, primary, existing, |l| {
                view.conflict_overlap(l, &lset_cv) as f64
            })?
        };
        let overhead = lsa_overhead(
            view.net().num_links(),
            backup.len(),
            Self::entry_bytes(view.net().num_links()),
        );
        Ok((backup, overhead))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConnectionId, DrtpManager};
    use drt_net::{topology, Bandwidth, NodeId};
    use std::sync::Arc;

    const BW: Bandwidth = Bandwidth::from_kbps(3_000);

    fn req(id: u64, src: u32, dst: u32) -> RouteRequest {
        RouteRequest::new(
            ConnectionId::new(id),
            NodeId::new(src),
            NodeId::new(dst),
            BW,
        )
    }

    #[test]
    fn avoids_deterministic_conflicts() {
        // 4x4 mesh, connections between the edge-middle nodes 4 and 7
        // (degree 3 each, so two fully disjoint detours exist around the
        // min-hop primary row 4-5-6-7). Two identical requests: their
        // primaries overlap completely, so D-LSR must route their backups
        // link-disjointly (one above the row, one below).
        let net = Arc::new(topology::mesh(4, 4, Bandwidth::from_mbps(100)).unwrap());
        let mut mgr = DrtpManager::new(net);
        let mut scheme = DLsr::new();
        let r0 = mgr.request_connection(&mut scheme, req(0, 4, 7)).unwrap();
        let r1 = mgr.request_connection(&mut scheme, req(1, 4, 7)).unwrap();
        let b0 = r0.backup().unwrap();
        let b1 = r1.backup().unwrap();
        assert_eq!(r0.primary.overlap(&r1.primary), 3);
        assert_eq!(
            b0.overlap(b1),
            0,
            "D-LSR must separate the backups of overlapping primaries: {b0} vs {b1}"
        );
        assert!(!r1.conflicted);
        mgr.assert_invariants();
    }

    #[test]
    fn detour_preferred_over_conflict() {
        // Paper Figure 3's lesson: a longer conflict-free backup beats a
        // shorter conflicting one. On a 3x3 mesh between the edge-middle
        // nodes 3 and 5, D0 takes one detour; D1 (same endpoints, fully
        // overlapping primary) must take the other detour even though the
        // conflicting route is equally short.
        let net = Arc::new(topology::mesh(3, 3, Bandwidth::from_mbps(100)).unwrap());
        let mut mgr = DrtpManager::new(net);
        let mut scheme = DLsr::new();
        let r0 = mgr.request_connection(&mut scheme, req(0, 3, 5)).unwrap();
        let r1 = mgr.request_connection(&mut scheme, req(1, 3, 5)).unwrap();
        let b1 = r1.backup().unwrap();
        assert_eq!(b1.overlap(r0.backup().unwrap()), 0);
        assert!(b1.len() >= 2);
        // No single link failure can activate two contending backups.
        for link in mgr.net().links() {
            assert!(mgr.aplv(link.id()).max_count() <= 1);
        }
    }

    #[test]
    fn forced_overlap_at_low_degree_endpoints_is_tolerated() {
        // Corner-to-corner on a mesh: node 0 has only two exits, one taken
        // by the primary, so *every* backup must share the other exit.
        // D-LSR accepts the unavoidable conflict (Q is a soft penalty)
        // rather than rejecting the connection.
        let net = Arc::new(topology::mesh(3, 3, Bandwidth::from_mbps(100)).unwrap());
        let mut mgr = DrtpManager::new(net);
        let mut scheme = DLsr::new();
        let r0 = mgr.request_connection(&mut scheme, req(0, 0, 2)).unwrap();
        let r1 = mgr.request_connection(&mut scheme, req(1, 0, 2)).unwrap();
        assert!(r1.conflicted, "corner exits force a conflict");
        let b0 = r0.backup().unwrap();
        let b1 = r1.backup().unwrap();
        // Overlap is confined to the two forced corner links.
        assert!(b0.overlap(b1) <= 2, "{b0} vs {b1}");
        mgr.assert_invariants();
    }

    #[test]
    fn entry_grows_with_network() {
        assert_eq!(DLsr::entry_bytes(8), 9);
        assert_eq!(DLsr::entry_bytes(180), 8 + 23);
        assert_eq!(DLsr::entry_bytes(240), 8 + 30);
    }

    #[test]
    fn name() {
        assert_eq!(DLsr::new().name(), "D-LSR");
    }

    #[test]
    fn sparse_baseline_selects_identical_routes() {
        let net = Arc::new(topology::mesh(4, 4, Bandwidth::from_mbps(100)).unwrap());
        let mut fast_mgr = DrtpManager::new(Arc::clone(&net));
        let mut slow_mgr = DrtpManager::new(net);
        let mut fast = DLsr::new();
        let mut slow = DLsr::sparse_baseline();
        for (id, (s, d)) in [(0, 15), (4, 7), (1, 14), (3, 12), (5, 10), (0, 15)]
            .into_iter()
            .enumerate()
        {
            let rf = fast_mgr.request_connection(&mut fast, req(id as u64, s, d));
            let rs = slow_mgr.request_connection(&mut slow, req(id as u64, s, d));
            match (rf, rs) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.primary, b.primary);
                    assert_eq!(a.backups, b.backups);
                }
                (a, b) => assert_eq!(a.is_err(), b.is_err()),
            }
        }
        fast_mgr.assert_invariants();
        assert_eq!(fast_mgr.fingerprint(), slow_mgr.fingerprint());
    }
}
