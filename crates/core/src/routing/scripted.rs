//! A scheme that returns caller-supplied routes, for tests and worked
//! examples.

use crate::routing::{RoutePair, RouteRequest, RoutingOverhead, RoutingScheme};
use crate::{DrtpError, ManagerView};
use drt_net::Route;
use std::collections::VecDeque;

/// Returns pre-scripted route pairs in FIFO order.
///
/// This exists so that the exact channel layouts of the paper's worked
/// examples (Figures 1–3) — and any regression scenario — can be pushed
/// through the full admission/multiplexing/recovery machinery without
/// depending on what a real scheme would pick.
///
/// # Example
///
/// ```
/// use drt_core::routing::{Scripted, RouteRequest, RoutingScheme};
/// use drt_core::{ConnectionId, DrtpManager};
/// use drt_net::{topology, Bandwidth, NodeId, Route};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = Arc::new(topology::ring(4, Bandwidth::from_mbps(10))?);
/// let primary = Route::from_nodes(&net, &[NodeId::new(0), NodeId::new(1)])?;
/// let backup = Route::from_nodes(
///     &net,
///     &[NodeId::new(0), NodeId::new(3), NodeId::new(2), NodeId::new(1)],
/// )?;
/// let mut scheme = Scripted::new();
/// scheme.push(primary.clone(), Some(backup));
///
/// let mut mgr = DrtpManager::new(net);
/// let rep = mgr.request_connection(
///     &mut scheme,
///     RouteRequest::new(ConnectionId::new(0), NodeId::new(0), NodeId::new(1),
///                       Bandwidth::from_kbps(3_000)),
/// )?;
/// assert_eq!(rep.primary, primary);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Scripted {
    pairs: VecDeque<RoutePair>,
}

impl Scripted {
    /// Creates an empty script.
    pub fn new() -> Self {
        Scripted::default()
    }

    /// Appends a primary/backup pair to the script (multiplexed backup).
    pub fn push(&mut self, primary: Route, backup: Option<Route>) -> &mut Self {
        self.pairs.push_back(RoutePair {
            primary,
            backups: backup.into_iter().collect(),
            dedicated_backup: false,
            overhead: RoutingOverhead::ZERO,
        });
        self
    }

    /// Appends a fully specified pair.
    pub fn push_pair(&mut self, pair: RoutePair) -> &mut Self {
        self.pairs.push_back(pair);
        self
    }

    /// Number of scripted pairs not yet consumed.
    pub fn remaining(&self) -> usize {
        self.pairs.len()
    }
}

impl RoutingScheme for Scripted {
    fn name(&self) -> &'static str {
        "Scripted"
    }

    fn select_routes(
        &mut self,
        _view: &ManagerView<'_>,
        req: &RouteRequest,
    ) -> Result<RoutePair, DrtpError> {
        self.pairs
            .pop_front()
            .ok_or_else(|| DrtpError::InvalidSelection(format!("script exhausted at {}", req.id)))
    }

    fn select_backup(
        &mut self,
        _view: &ManagerView<'_>,
        req: &RouteRequest,
        _primary: &Route,
        _existing: &[Route],
    ) -> Result<(Route, RoutingOverhead), DrtpError> {
        let pair = self.pairs.pop_front().ok_or_else(|| {
            DrtpError::InvalidSelection(format!("script exhausted at {}", req.id))
        })?;
        pair.backups
            .into_iter()
            .next()
            .map(|b| (b, pair.overhead))
            .ok_or(DrtpError::NoBackupRoute(req.id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConnectionId, DrtpManager};
    use drt_net::{topology, Bandwidth, NodeId};
    use std::sync::Arc;

    #[test]
    fn serves_pairs_in_order_then_errors() {
        let net = Arc::new(topology::ring(4, Bandwidth::from_mbps(10)).unwrap());
        let r01 = Route::from_nodes(&net, &[NodeId::new(0), NodeId::new(1)]).unwrap();
        let r12 = Route::from_nodes(&net, &[NodeId::new(1), NodeId::new(2)]).unwrap();
        let mut s = Scripted::new();
        s.push(r01.clone(), None).push(r12.clone(), None);
        assert_eq!(s.remaining(), 2);

        let mut mgr = DrtpManager::new(net);
        let req = |id: u64, a: u32, b: u32| {
            crate::routing::RouteRequest::new(
                ConnectionId::new(id),
                NodeId::new(a),
                NodeId::new(b),
                Bandwidth::from_kbps(100),
            )
        };
        assert_eq!(
            mgr.request_connection(&mut s, req(0, 0, 1))
                .unwrap()
                .primary,
            r01
        );
        assert_eq!(
            mgr.request_connection(&mut s, req(1, 1, 2))
                .unwrap()
                .primary,
            r12
        );
        assert!(matches!(
            mgr.request_connection(&mut s, req(2, 2, 3)),
            Err(DrtpError::InvalidSelection(_))
        ));
    }

    #[test]
    fn endpoint_mismatch_is_caught_by_manager() {
        let net = Arc::new(topology::ring(4, Bandwidth::from_mbps(10)).unwrap());
        let r01 = Route::from_nodes(&net, &[NodeId::new(0), NodeId::new(1)]).unwrap();
        let mut s = Scripted::new();
        s.push(r01, None);
        let mut mgr = DrtpManager::new(net);
        let req = crate::routing::RouteRequest::new(
            ConnectionId::new(0),
            NodeId::new(2),
            NodeId::new(3),
            Bandwidth::from_kbps(100),
        );
        assert!(matches!(
            mgr.request_connection(&mut s, req),
            Err(DrtpError::InvalidSelection(_))
        ));
    }
}
