//! P-LSR: probabilistic avoidance of backup conflicts (Section 3.1).

use crate::routing::costs::{
    changed_links, lsa_overhead, lsr_backup, lsr_backups, min_hop_primary,
};
use crate::routing::{RoutePair, RouteRequest, RoutingOverhead, RoutingScheme};
use crate::{DrtpError, ManagerView};
use drt_net::Route;

/// The probabilistic link-state routing scheme.
///
/// Every link advertises the single scalar `‖APLV_i‖₁` (plus its available
/// bandwidth) in its link-state entry. The paper shows that maximising the
/// probability of successful backup activation,
/// `Φ_B = Π_i q_{B,i}` with
/// `q_{B,i} = M^{‖APLV_i‖₁}`, `M = (N − |LSET_P|)/N < 1`,
/// is equivalent to finding the route minimising `Σ_i ‖APLV_i‖₁` — a plain
/// shortest-path problem with `‖APLV_i‖₁` as the link cost. The full link
/// cost is `C_i = Q_i + ‖APLV_i‖₁ + ε` (see [`crate::routing::Q`] and the
/// `ε` tie-break).
///
/// P-LSR needs the least link-state of the conflict-aware schemes — one
/// integer per link — but cannot tell *where* the conflicts of two
/// same-norm links lie, which is exactly the gap D-LSR closes (and why the
/// paper finds the D-LSR/P-LSR gap widens under hotspot traffic).
///
/// # Example
///
/// ```
/// use drt_core::routing::{PLsr, RouteRequest, RoutingScheme};
/// use drt_core::{ConnectionId, DrtpManager};
/// use drt_net::{topology, Bandwidth, NodeId};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = Arc::new(topology::mesh(3, 3, Bandwidth::from_mbps(10))?);
/// let mut mgr = DrtpManager::new(net);
/// let report = mgr.request_connection(
///     &mut PLsr::new(),
///     RouteRequest::new(ConnectionId::new(0), NodeId::new(0), NodeId::new(8),
///                       Bandwidth::from_kbps(3_000)),
/// )?;
/// let backup = report.backup().expect("mesh has disjoint routes");
/// assert_eq!(backup.overlap(&report.primary), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct PLsr {
    _private: (),
}

/// Bytes of one P-LSR link-state entry: link id (4) + `‖APLV‖₁` (4) +
/// available bandwidth (4).
const PLSR_ENTRY_BYTES: u64 = 12;

impl PLsr {
    /// Creates the scheme.
    pub fn new() -> Self {
        PLsr::default()
    }
}

impl RoutingScheme for PLsr {
    fn name(&self) -> &'static str {
        "P-LSR"
    }

    fn select_routes(
        &mut self,
        view: &ManagerView<'_>,
        req: &RouteRequest,
    ) -> Result<RoutePair, DrtpError> {
        let primary = min_hop_primary(view, req.src, req.dst, req.bandwidth())?;
        let backups = lsr_backups(view, req, &primary, |l| view.l1_norm(l) as f64)?;
        let overhead = lsa_overhead(
            view.net().num_links(),
            changed_links(&primary, &backups),
            PLSR_ENTRY_BYTES,
        );
        Ok(RoutePair {
            primary,
            backups,
            dedicated_backup: false,
            overhead,
        })
    }

    fn select_backup(
        &mut self,
        view: &ManagerView<'_>,
        req: &RouteRequest,
        primary: &Route,
        existing: &[Route],
    ) -> Result<(Route, RoutingOverhead), DrtpError> {
        let backup = lsr_backup(view, req, primary, existing, |l| view.l1_norm(l) as f64)?;
        let overhead = lsa_overhead(view.net().num_links(), backup.len(), PLSR_ENTRY_BYTES);
        Ok((backup, overhead))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConnectionId, DrtpManager};
    use drt_net::{topology, Bandwidth, NodeId};
    use std::sync::Arc;

    const BW: Bandwidth = Bandwidth::from_kbps(3_000);

    fn req(id: u64, src: u32, dst: u32) -> RouteRequest {
        RouteRequest::new(
            ConnectionId::new(id),
            NodeId::new(src),
            NodeId::new(dst),
            BW,
        )
    }

    #[test]
    fn backup_avoids_primary_when_possible() {
        let net = Arc::new(topology::mesh(4, 4, Bandwidth::from_mbps(100)).unwrap());
        let mut mgr = DrtpManager::new(net);
        let rep = mgr
            .request_connection(&mut PLsr::new(), req(0, 0, 15))
            .unwrap();
        let b = rep.backup().unwrap();
        assert_eq!(b.overlap(&rep.primary), 0);
        assert!(rep.overhead.messages > 0);
    }

    #[test]
    fn prefers_low_norm_links() {
        // Ring of 6: establish 0->3 (primary one way, backup the other).
        // A second 0->3 connection's backup must take the side with less
        // accumulated conflict mass — symmetric here, so just verify the
        // cost model avoids the primary's side.
        let net = Arc::new(topology::ring(6, Bandwidth::from_mbps(100)).unwrap());
        let mut mgr = DrtpManager::new(net);
        let rep = mgr
            .request_connection(&mut PLsr::new(), req(0, 0, 3))
            .unwrap();
        let b = rep.backup().unwrap();
        assert_eq!(b.overlap(&rep.primary), 0);
        assert_eq!(rep.primary.len() + b.len(), 6);
    }

    #[test]
    fn no_route_errors() {
        // Disconnect by exhausting bandwidth: capacity below the request.
        let net = Arc::new(topology::ring(4, Bandwidth::from_kbps(1)).unwrap());
        let mut mgr = DrtpManager::new(net);
        let err = mgr
            .request_connection(&mut PLsr::new(), req(0, 0, 2))
            .unwrap_err();
        assert!(matches!(err, DrtpError::NoPrimaryRoute(_, _)));
    }

    #[test]
    fn name() {
        assert_eq!(PLsr::new().name(), "P-LSR");
    }
}
