//! Baseline schemes the evaluation compares against.

use crate::routing::costs::{lsa_overhead, min_hop_primary, Q};
use crate::routing::{RoutePair, RouteRequest, RoutingOverhead, RoutingScheme};
use crate::{DrtpError, ManagerView};
use drt_net::algo::{shortest_path, suurballe};
use drt_net::Route;
use std::collections::BTreeSet;

/// Primary-only admission: no backup at all.
///
/// This is the calibration baseline of the paper's Figure 5 — "we define
/// the difference between the number of D-connections without backups and
/// that of each routing scheme as capacity overhead". Use it with
/// [`crate::multiplex::MultiplexConfig::no_backup_baseline`].
#[derive(Debug, Clone, Copy, Default)]
pub struct PrimaryOnly {
    _private: (),
}

impl PrimaryOnly {
    /// Creates the scheme.
    pub fn new() -> Self {
        PrimaryOnly::default()
    }
}

impl RoutingScheme for PrimaryOnly {
    fn name(&self) -> &'static str {
        "NoBackup"
    }

    fn select_routes(
        &mut self,
        view: &ManagerView<'_>,
        req: &RouteRequest,
    ) -> Result<RoutePair, DrtpError> {
        let primary = min_hop_primary(view, req.src, req.dst, req.bandwidth())?;
        // Plain QoS routing still advertises the changed available
        // bandwidths of the primary's links.
        let overhead = lsa_overhead(view.net().num_links(), primary.len(), 8);
        Ok(RoutePair {
            primary,
            backups: Vec::new(),
            dedicated_backup: false,
            overhead,
        })
    }

    fn select_backup(
        &mut self,
        _view: &ManagerView<'_>,
        req: &RouteRequest,
        _primary: &Route,
        _existing: &[Route],
    ) -> Result<(Route, RoutingOverhead), DrtpError> {
        Err(DrtpError::NoBackupRoute(req.id))
    }
}

/// Conflict-oblivious backup routing: the backup is simply the shortest
/// bandwidth-feasible route that avoids the primary's links. No APLV, no
/// conflict vectors.
///
/// This isolates the value of conflict awareness: the scheme reserves
/// multiplexed spare exactly like P-LSR/D-LSR but routes blindly, so the
/// fault-tolerance gap between `SpfBackup` and the LSR schemes is the
/// paper's contribution measured directly (the "more sophisticated routing
/// algorithm is necessary" conclusion).
#[derive(Debug, Clone, Copy, Default)]
pub struct SpfBackup {
    _private: (),
}

impl SpfBackup {
    /// Creates the scheme.
    pub fn new() -> Self {
        SpfBackup::default()
    }

    fn backup_route(
        view: &ManagerView<'_>,
        req: &RouteRequest,
        primary: &Route,
        avoid: &[Route],
    ) -> Result<Route, DrtpError> {
        let bw = req.bandwidth();
        let mut q_links: BTreeSet<_> = primary.links().iter().copied().collect();
        for r in avoid {
            q_links.extend(r.links().iter().copied());
        }
        shortest_path(view.net(), req.src, req.dst, |l| {
            if !view.alive(l) {
                return None;
            }
            let q = if q_links.contains(&l) || !view.usable_for_backup(l, bw) {
                Q
            } else {
                0.0
            };
            Some(q + 1.0)
        })
        .map(|(_, r)| r)
        .ok_or(DrtpError::NoBackupRoute(req.id))
    }
}

impl RoutingScheme for SpfBackup {
    fn name(&self) -> &'static str {
        "SPF"
    }

    fn select_routes(
        &mut self,
        view: &ManagerView<'_>,
        req: &RouteRequest,
    ) -> Result<RoutePair, DrtpError> {
        let primary = min_hop_primary(view, req.src, req.dst, req.bandwidth())?;
        let mut backups = Vec::new();
        for k in 0..req.num_backups {
            match Self::backup_route(view, req, &primary, &backups) {
                Ok(route) => {
                    if backups.contains(&route) {
                        break;
                    }
                    backups.push(route);
                }
                Err(e) if k == 0 => return Err(e),
                Err(_) => break,
            }
        }
        // Available-bandwidth-only link state (8-byte entries).
        let overhead = lsa_overhead(
            view.net().num_links(),
            crate::routing::costs::changed_links(&primary, &backups),
            8,
        );
        Ok(RoutePair {
            primary,
            backups,
            dedicated_backup: false,
            overhead,
        })
    }

    fn select_backup(
        &mut self,
        view: &ManagerView<'_>,
        req: &RouteRequest,
        primary: &Route,
        existing: &[Route],
    ) -> Result<(Route, RoutingOverhead), DrtpError> {
        let backup = Self::backup_route(view, req, primary, existing)?;
        let overhead = lsa_overhead(view.net().num_links(), backup.len(), 8);
        Ok((backup, overhead))
    }
}

/// Dedicated disjoint backups: the ≥50 %-overhead strawman.
///
/// "equipping each DR-connection even with a single backup disjoint from
/// its primary reduces the network capacity by at least 50 %, which is too
/// expensive to be practically useful" — this scheme reproduces that
/// statement. It reserves the backup's bandwidth *exclusively* (no
/// multiplexing) along the second route of the minimum-total-cost
/// link-disjoint pair (Suurballe's algorithm), so activation never fails,
/// at maximal cost.
#[derive(Debug, Clone, Copy, Default)]
pub struct DedicatedDisjoint {
    _private: (),
}

impl DedicatedDisjoint {
    /// Creates the scheme.
    pub fn new() -> Self {
        DedicatedDisjoint::default()
    }
}

impl RoutingScheme for DedicatedDisjoint {
    fn name(&self) -> &'static str {
        "Dedicated"
    }

    fn select_routes(
        &mut self,
        view: &ManagerView<'_>,
        req: &RouteRequest,
    ) -> Result<RoutePair, DrtpError> {
        let bw = req.bandwidth();
        // Both routes hold hard reservations, so both need free bandwidth.
        let pair = suurballe(view.net(), req.src, req.dst, |l| {
            view.usable_for_primary(l, bw).then_some(1.0)
        });
        let Some(pair) = pair else {
            // Distinguish "no route at all" from "no disjoint pair".
            return match min_hop_primary(view, req.src, req.dst, bw) {
                Ok(_) => Err(DrtpError::NoBackupRoute(req.id)),
                Err(e) => Err(e),
            };
        };
        // Further backups (k > 1): greedily shortest, hard-disjoint from
        // everything selected so far.
        let mut backups = vec![pair.backup];
        for _ in 1..req.num_backups {
            let mut taken: BTreeSet<_> = pair.primary.links().iter().copied().collect();
            for b in &backups {
                taken.extend(b.links().iter().copied());
            }
            let next = shortest_path(view.net(), req.src, req.dst, |l| {
                (view.usable_for_primary(l, bw) && !taken.contains(&l)).then_some(1.0)
            });
            match next {
                Some((_, r)) => backups.push(r),
                None => break,
            }
        }
        let overhead = lsa_overhead(
            view.net().num_links(),
            pair.primary.len() + backups.iter().map(|b| b.len()).sum::<usize>(),
            8,
        );
        Ok(RoutePair {
            primary: pair.primary,
            backups,
            dedicated_backup: true,
            overhead,
        })
    }

    fn select_backup(
        &mut self,
        view: &ManagerView<'_>,
        req: &RouteRequest,
        primary: &Route,
        existing: &[Route],
    ) -> Result<(Route, RoutingOverhead), DrtpError> {
        let bw = req.bandwidth();
        let mut taken: BTreeSet<_> = primary.links().iter().copied().collect();
        for r in existing {
            taken.extend(r.links().iter().copied());
        }
        let backup = shortest_path(view.net(), req.src, req.dst, |l| {
            (view.usable_for_primary(l, bw) && !taken.contains(&l)).then_some(1.0)
        })
        .map(|(_, r)| r)
        .ok_or(DrtpError::NoBackupRoute(req.id))?;
        let overhead = lsa_overhead(view.net().num_links(), backup.len(), 8);
        Ok((backup, overhead))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multiplex::MultiplexConfig;
    use crate::{ConnectionId, DrtpManager};
    use drt_net::{topology, Bandwidth, NodeId};
    use std::sync::Arc;

    const BW: Bandwidth = Bandwidth::from_kbps(3_000);

    fn req(id: u64, src: u32, dst: u32) -> RouteRequest {
        RouteRequest::new(
            ConnectionId::new(id),
            NodeId::new(src),
            NodeId::new(dst),
            BW,
        )
    }

    #[test]
    fn primary_only_reserves_no_spare() {
        let net = Arc::new(topology::mesh(3, 3, Bandwidth::from_mbps(10)).unwrap());
        let mut mgr = DrtpManager::with_config(net, MultiplexConfig::no_backup_baseline());
        let rep = mgr
            .request_connection(&mut PrimaryOnly::new(), req(0, 0, 8))
            .unwrap();
        assert!(rep.backup().is_none());
        assert_eq!(mgr.total_spare(), Bandwidth::ZERO);
        assert_eq!(mgr.total_prime(), BW.times(rep.primary.len() as u64));
    }

    #[test]
    fn spf_backup_is_disjoint_but_conflict_blind() {
        let net = Arc::new(topology::mesh(3, 3, Bandwidth::from_mbps(10)).unwrap());
        let mut mgr = DrtpManager::new(net);
        let mut scheme = SpfBackup::new();
        let r0 = mgr.request_connection(&mut scheme, req(0, 0, 2)).unwrap();
        let b0 = r0.backup().unwrap();
        assert_eq!(b0.overlap(&r0.primary), 0);
        // A second identical request: SPF picks the same shortest backup,
        // creating a conflict D-LSR would have avoided.
        let r1 = mgr.request_connection(&mut scheme, req(1, 0, 2)).unwrap();
        assert!(r1.conflicted, "SPF is expected to collide");
        mgr.assert_invariants();
    }

    #[test]
    fn dedicated_reserves_both_routes() {
        let net = Arc::new(topology::mesh(3, 3, Bandwidth::from_mbps(10)).unwrap());
        let mut mgr = DrtpManager::new(net);
        let rep = mgr
            .request_connection(&mut DedicatedDisjoint::new(), req(0, 0, 8))
            .unwrap();
        let backup = rep.backup().unwrap();
        assert!(rep.dedicated_backup);
        assert_eq!(backup.overlap(&rep.primary), 0);
        assert_eq!(
            mgr.total_prime(),
            BW.times((rep.primary.len() + backup.len()) as u64),
            "backup holds hard reservations"
        );
        assert_eq!(mgr.total_spare(), Bandwidth::ZERO);
        mgr.assert_invariants();
    }

    #[test]
    fn dedicated_fails_without_disjoint_pair() {
        // A path graph has no disjoint pair.
        let mut b = drt_net::NetworkBuilder::with_nodes(3);
        b.add_duplex_link(NodeId::new(0), NodeId::new(1), Bandwidth::from_mbps(10))
            .unwrap();
        b.add_duplex_link(NodeId::new(1), NodeId::new(2), Bandwidth::from_mbps(10))
            .unwrap();
        let net = Arc::new(b.build());
        let mut mgr = DrtpManager::new(net);
        let err = mgr
            .request_connection(&mut DedicatedDisjoint::new(), req(0, 0, 2))
            .unwrap_err();
        assert_eq!(err, DrtpError::NoBackupRoute(ConnectionId::new(0)));
    }

    #[test]
    fn names() {
        assert_eq!(PrimaryOnly::new().name(), "NoBackup");
        assert_eq!(SpfBackup::new().name(), "SPF");
        assert_eq!(DedicatedDisjoint::new().name(), "Dedicated");
    }
}
