//! Shared cost machinery of the link-state schemes.
//!
//! Both P-LSR and D-LSR assign each link the cost
//! `C_i = Q_i + conflict_term_i + ε` and run Dijkstra (Sections 3.1–3.2):
//!
//! * `Q` — "a very large constant (> max(APLV_i))" charged when the link
//!   lies on the new connection's primary route or lacks the bandwidth the
//!   QoS requires. It is a *soft* penalty: such links are taken only when
//!   no alternative exists at all.
//! * `ε` — "a small positive constant (< 1), used to select the shortest
//!   route … if there are several candidate routes with the same degree of
//!   channel overlapping". We use `ε = 1/(N+1)` so that even a full-length
//!   path accumulates less than one unit of ε-cost: hop count can break
//!   ties but can never outweigh a single conflict.

use crate::routing::RoutingOverhead;
use crate::{DrtpError, ManagerView};
use drt_net::algo::shortest_path;
use drt_net::{LinkId, Route};
use std::collections::BTreeSet;

/// The paper's "very large constant" `Q`. Any path containing a `Q`-link
/// costs more than any path free of them (`Q` exceeds the largest possible
/// conflict sum by many orders of magnitude).
pub const Q: f64 = 1e9;

/// The tie-breaking constant `ε` for a network with `num_links` links.
pub fn epsilon(num_links: usize) -> f64 {
    1.0 / (num_links as f64 + 1.0)
}

/// Selects the minimum-hop primary route among links that are alive and
/// can admit `bw` from their free pool.
pub(crate) fn min_hop_primary(
    view: &ManagerView<'_>,
    src: drt_net::NodeId,
    dst: drt_net::NodeId,
    bw: drt_net::Bandwidth,
) -> Result<Route, DrtpError> {
    shortest_path(view.net(), src, dst, |l| {
        view.usable_for_primary(l, bw).then_some(1.0)
    })
    .map(|(_, r)| r)
    .ok_or(DrtpError::NoPrimaryRoute(src, dst))
}

/// Selects a backup route by Dijkstra under the LSR cost model:
/// failed links are excluded outright; links on the primary, on any
/// already-selected backup of the same connection (`avoid`), or with
/// insufficient backup headroom cost `Q`; every link additionally costs
/// `conflict_term(l) + ε`.
pub(crate) fn lsr_backup(
    view: &ManagerView<'_>,
    req: &crate::routing::RouteRequest,
    primary: &Route,
    avoid: &[Route],
    conflict_term: impl Fn(LinkId) -> f64,
) -> Result<Route, DrtpError> {
    let eps = epsilon(view.net().num_links());
    let bw = req.bandwidth();
    let mut q_links: BTreeSet<LinkId> = primary.links().iter().copied().collect();
    for r in avoid {
        q_links.extend(r.links().iter().copied());
    }
    shortest_path(view.net(), req.src, req.dst, |l| {
        if !view.alive(l) {
            return None;
        }
        let q = if q_links.contains(&l) || !view.usable_for_backup(l, bw) {
            Q
        } else {
            0.0
        };
        Some(q + conflict_term(l) + eps)
    })
    .map(|(_, r)| r)
    .ok_or(DrtpError::NoBackupRoute(req.id))
}

/// Selects up to `req.num_backups` backups sequentially under the LSR cost
/// model, each avoiding the primary and all previously selected backups.
/// Stops early when a new selection would duplicate an earlier one (the
/// graph has run out of meaningfully distinct routes).
pub(crate) fn lsr_backups(
    view: &ManagerView<'_>,
    req: &crate::routing::RouteRequest,
    primary: &Route,
    conflict_term: impl Fn(LinkId) -> f64,
) -> Result<Vec<Route>, DrtpError> {
    let mut backups: Vec<Route> = Vec::new();
    for k in 0..req.num_backups {
        match lsr_backup(view, req, primary, &backups, &conflict_term) {
            Ok(route) => {
                if backups.contains(&route) {
                    break; // no further distinct route exists
                }
                backups.push(route);
            }
            Err(e) if k == 0 => return Err(e),
            Err(_) => break,
        }
    }
    Ok(backups)
}

/// Size, in bytes, of a link-state advertisement header (sequence number,
/// originating router, checksum — OSPF-like).
pub(crate) const LSA_HEADER_BYTES: u64 = 16;

/// Models the dissemination cost of the link-state schemes: every link
/// whose advertised state changed floods one LSA across all `num_links`
/// directed links of the network.
pub(crate) fn lsa_overhead(
    num_links: usize,
    changed_links: usize,
    entry_bytes: u64,
) -> RoutingOverhead {
    let messages = changed_links as u64 * num_links as u64;
    RoutingOverhead {
        messages,
        bytes: messages * (LSA_HEADER_BYTES + entry_bytes),
    }
}

/// The set of links whose advertised state an establishment changed: the
/// primary's links (available bandwidth moved) plus every backup's links
/// (APLV/CV and spare moved).
pub(crate) fn changed_links(primary: &Route, backups: &[Route]) -> usize {
    let mut set: BTreeSet<LinkId> = primary.links().iter().copied().collect();
    for b in backups {
        set.extend(b.links().iter().copied());
    }
    set.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_never_outweighs_a_conflict() {
        for n in [1usize, 10, 180, 240, 10_000] {
            // Even a path using every link accumulates < 1 of ε-cost.
            assert!(epsilon(n) * (n as f64) < 1.0);
        }
    }

    #[test]
    fn q_dominates_conflicts() {
        // The largest plausible conflict sum (every connection conflicting
        // on every link) stays far below Q.
        let worst_conflict_sum = 1e6;
        assert!(Q > worst_conflict_sum * 100.0);
    }

    #[test]
    fn lsa_cost_scales_with_changes_and_size() {
        let o = lsa_overhead(180, 7, 12);
        assert_eq!(o.messages, 7 * 180);
        assert_eq!(o.bytes, 7 * 180 * (16 + 12));
    }
}
