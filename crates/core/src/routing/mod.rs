//! Route selection schemes for primary and backup channels.
//!
//! All schemes implement [`RoutingScheme`]: given a read-only
//! [`crate::ManagerView`] of the network state and a [`RouteRequest`], they
//! propose a [`RoutePair`]. The schemes of the paper:
//!
//! * [`PLsr`] — Section 3.1, probabilistic conflict avoidance via
//!   `‖APLV‖₁` link costs;
//! * [`DLsr`] — Section 3.2, deterministic conflict avoidance via
//!   Conflict Vectors;
//! * [`BoundedFlooding`] — Section 4, on-demand discovery by bounded
//!   flooding of channel-discovery packets.
//!
//! Baselines used by the evaluation:
//!
//! * [`PrimaryOnly`] — no backup at all (calibrates capacity overhead);
//! * [`SpfBackup`] — conflict-oblivious shortest disjoint backup;
//! * [`DedicatedDisjoint`] — Suurballe pair with *dedicated* (non-
//!   multiplexed) backup reservations, the ≥50%-overhead strawman the
//!   paper cites.

mod baseline;
mod costs;
mod dlsr;
pub mod flooding;
mod plsr;
mod scripted;

pub use baseline::{DedicatedDisjoint, PrimaryOnly, SpfBackup};
pub use costs::{epsilon, Q};
pub use dlsr::DLsr;
pub use flooding::{BoundedFlooding, FloodingParams};
pub use plsr::PLsr;
pub use scripted::Scripted;

use crate::{ConnectionId, DrtpError, ManagerView, QosRequirement};
use drt_net::{Bandwidth, NodeId, Route};
use std::fmt;
use std::ops::AddAssign;

/// A request to establish one DR-connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteRequest {
    /// Caller-chosen identifier for the new connection.
    pub id: ConnectionId,
    /// Source (server) node.
    pub src: NodeId,
    /// Destination (client) node.
    pub dst: NodeId,
    /// QoS contract (bandwidth, optional hop cap).
    pub qos: QosRequirement,
    /// How many backup channels to establish (DRTP: "one primary and one
    /// or more backup channels"). Schemes provide as many as they can
    /// find, up to this count; 1 is the paper's evaluated setting.
    pub num_backups: u32,
}

impl RouteRequest {
    /// A bandwidth-only request with a single backup.
    pub fn new(id: ConnectionId, src: NodeId, dst: NodeId, bandwidth: Bandwidth) -> Self {
        RouteRequest {
            id,
            src,
            dst,
            qos: QosRequirement::bandwidth_only(bandwidth),
            num_backups: 1,
        }
    }

    /// Requests `k` backup channels instead of one.
    pub fn with_backups(mut self, k: u32) -> Self {
        self.num_backups = k;
        self
    }

    /// The requested bandwidth (`bw_req`).
    pub fn bandwidth(&self) -> Bandwidth {
        self.qos.bandwidth
    }
}

/// The routes a scheme proposes for a request.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutePair {
    /// The primary channel route.
    pub primary: Route,
    /// The backup channel routes in activation-priority order (possibly
    /// fewer than requested, possibly empty).
    pub backups: Vec<Route>,
    /// `true` when the backups must hold dedicated (non-multiplexed)
    /// reservations instead of joining the spare pools.
    pub dedicated_backup: bool,
    /// Control-plane cost of discovering these routes.
    pub overhead: RoutingOverhead,
}

impl RoutePair {
    /// The first (highest-priority) backup, if any.
    pub fn backup(&self) -> Option<&Route> {
        self.backups.first()
    }
}

/// Control-plane cost of route discovery, for the overhead experiment.
///
/// For the link-state schemes this models the link-state advertisements
/// triggered by the establishment (each changed link floods one LSA to
/// every directed link of the network); for bounded flooding it counts the
/// CDP forwards of the discovery flood.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoutingOverhead {
    /// Number of control messages transmitted (link traversals).
    pub messages: u64,
    /// Total control bytes transmitted.
    pub bytes: u64,
}

impl RoutingOverhead {
    /// No overhead.
    pub const ZERO: RoutingOverhead = RoutingOverhead {
        messages: 0,
        bytes: 0,
    };

    /// Creates an overhead record.
    pub fn new(messages: u64, bytes: u64) -> Self {
        RoutingOverhead { messages, bytes }
    }
}

impl AddAssign for RoutingOverhead {
    fn add_assign(&mut self, rhs: RoutingOverhead) {
        self.messages += rhs.messages;
        self.bytes += rhs.bytes;
    }
}

impl fmt::Display for RoutingOverhead {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} msgs / {} B", self.messages, self.bytes)
    }
}

/// A primary/backup route selection scheme.
///
/// Implementations must return structurally valid routes: correct
/// endpoints, alive links only. Soft constraints (conflict avoidance,
/// bandwidth headroom of backups) follow each scheme's own rules.
pub trait RoutingScheme {
    /// Short name used in reports ("P-LSR", "D-LSR", "BF", …).
    fn name(&self) -> &'static str;

    /// Selects primary and backup routes for `req`.
    ///
    /// # Errors
    ///
    /// [`DrtpError::NoPrimaryRoute`] when no bandwidth-feasible primary
    /// exists, [`DrtpError::NoBackupRoute`] when the scheme requires a
    /// backup and cannot find one.
    fn select_routes(
        &mut self,
        view: &ManagerView<'_>,
        req: &RouteRequest,
    ) -> Result<RoutePair, DrtpError>;

    /// Selects one additional backup for an existing primary — used by
    /// resource reconfiguration after a recovery (step 4 of DRTP) and to
    /// top up multi-backup connections. `existing` lists the backups
    /// already registered, which the new route should avoid.
    ///
    /// # Errors
    ///
    /// [`DrtpError::NoBackupRoute`] when no admissible backup exists.
    fn select_backup(
        &mut self,
        view: &ManagerView<'_>,
        req: &RouteRequest,
        primary: &Route,
        existing: &[Route],
    ) -> Result<(Route, RoutingOverhead), DrtpError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_helpers() {
        let r = RouteRequest::new(
            ConnectionId::new(1),
            NodeId::new(0),
            NodeId::new(5),
            Bandwidth::from_kbps(3000),
        );
        assert_eq!(r.bandwidth(), Bandwidth::from_kbps(3000));
        assert_eq!(r.qos.max_hops, None);
    }

    #[test]
    fn overhead_accumulates() {
        let mut o = RoutingOverhead::ZERO;
        o += RoutingOverhead::new(3, 120);
        o += RoutingOverhead::new(2, 80);
        assert_eq!(o, RoutingOverhead::new(5, 200));
        assert_eq!(o.to_string(), "5 msgs / 200 B");
    }
}
