//! Pure, side-effect-free invariant predicates over DRTP resource state.
//!
//! These are the ledger/spare-pool properties that
//! [`DrtpManager::assert_invariants`](crate::DrtpManager::assert_invariants)
//! enforces, factored out so external checkers (notably the `verify`
//! model checker) can evaluate them against *any* snapshot of per-link
//! state — including mid-protocol states the manager itself never
//! exposes — without panicking and without touching the state.
//!
//! Every function here is a pure predicate: no `&mut`, no interior
//! mutability, no I/O. A composed [`check_link`] bundles the per-link
//! checks and reports the first failed rule as a [`Violation`] suitable
//! for counterexample traces.

use crate::{Aplv, LinkResources};
use drt_net::{Bandwidth, LinkId};
use std::fmt;

/// A failed invariant: which rule broke and a human-readable detail
/// string for counterexample reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable rule identifier (e.g. `"capacity"`, `"spare-overshoot"`).
    pub rule: &'static str,
    /// What was observed vs. what was expected.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.rule, self.detail)
    }
}

/// Conservation: `prime + spare ≤ capacity`. The ledger's pools never
/// over-commit the link (Section 2.1's partition of `total_bw`).
pub fn ledger_within_capacity(link: &LinkResources) -> bool {
    link.prime() + link.spare() <= link.capacity()
}

/// The spare pool never exceeds what the APLV requires: growing is
/// bounded by `required_spare()` and shrinking tracks it, so
/// `spare ≤ max_j bandwidth_j`. (Equality need not hold — growth is
/// also bounded by the free pool.)
pub fn spare_within_requirement(link: &LinkResources, aplv: &Aplv) -> bool {
    link.spare() <= aplv.required_spare()
}

/// The hard-reservation pool equals the bandwidth sum implied by the
/// connection table (`expected` = Σ bandwidth of primaries — and
/// dedicated backups — crossing this link).
pub fn prime_matches(link: &LinkResources, expected: Bandwidth) -> bool {
    link.prime() == expected
}

/// The link's APLV is exactly what the registration set implies.
pub fn aplv_matches(actual: &Aplv, expected: &Aplv) -> bool {
    actual == expected
}

/// Folds a set of backup registrations — `(primary link-set, bandwidth)`
/// pairs — into the APLV they imply. Pure builder for the `expected`
/// side of [`aplv_matches`].
pub fn expected_aplv<'a, I>(registrations: I) -> Aplv
where
    I: IntoIterator<Item = (&'a [LinkId], Bandwidth)>,
{
    let mut aplv = Aplv::new();
    for (primary_lset, bw) in registrations {
        aplv.register(primary_lset, bw);
    }
    aplv
}

/// Runs every per-link invariant against one link's state, returning
/// the first violated rule. `expected_prime` and `expected_aplv` are
/// what the caller's connection table implies for this link (see
/// [`expected_aplv`]).
pub fn check_link(
    link: &LinkResources,
    aplv: &Aplv,
    expected_prime: Bandwidth,
    expected: &Aplv,
) -> Result<(), Violation> {
    if !aplv_matches(aplv, expected) {
        return Err(Violation {
            rule: "aplv-mismatch",
            detail: format!("aplv {aplv:?} != expected {expected:?}"),
        });
    }
    if !prime_matches(link, expected_prime) {
        return Err(Violation {
            rule: "prime-mismatch",
            detail: format!("prime {} != expected {}", link.prime(), expected_prime),
        });
    }
    if !spare_within_requirement(link, aplv) {
        return Err(Violation {
            rule: "spare-overshoot",
            detail: format!(
                "spare {} > required {}",
                link.spare(),
                aplv.required_spare()
            ),
        });
    }
    if !ledger_within_capacity(link) {
        return Err(Violation {
            rule: "capacity",
            detail: format!(
                "prime {} + spare {} > capacity {}",
                link.prime(),
                link.spare(),
                link.capacity()
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use drt_net::Bandwidth;

    fn mb(v: u64) -> Bandwidth {
        Bandwidth::from_mbps(v)
    }

    fn lid(i: u32) -> LinkId {
        LinkId::new(i)
    }

    #[test]
    fn fresh_link_passes_all_checks() {
        let link = LinkResources::new(mb(10));
        let aplv = Aplv::new();
        assert!(ledger_within_capacity(&link));
        assert!(spare_within_requirement(&link, &aplv));
        assert!(check_link(&link, &aplv, Bandwidth::ZERO, &Aplv::new()).is_ok());
    }

    #[test]
    fn spare_overshoot_is_flagged() {
        let mut link = LinkResources::new(mb(10));
        // Spare grown with no APLV entries backing it.
        link.grow_spare_toward(mb(3));
        let aplv = Aplv::new();
        assert!(!spare_within_requirement(&link, &aplv));
        let err = check_link(&link, &aplv, Bandwidth::ZERO, &Aplv::new()).unwrap_err();
        assert_eq!(err.rule, "spare-overshoot");
        assert!(err.to_string().contains("spare-overshoot"));
    }

    #[test]
    fn prime_mismatch_is_flagged() {
        let mut link = LinkResources::new(mb(10));
        link.admit_primary(mb(4)).unwrap();
        let err = check_link(&link, &Aplv::new(), mb(5), &Aplv::new()).unwrap_err();
        assert_eq!(err.rule, "prime-mismatch");
    }

    #[test]
    fn expected_aplv_folds_registrations() {
        let p1 = [lid(0), lid(1)];
        let p2 = [lid(1)];
        let expected = expected_aplv([(&p1[..], mb(2)), (&p2[..], mb(3))]);
        assert_eq!(expected.count(lid(1)), 2);
        assert_eq!(expected.bandwidth(lid(1)), mb(5));
        assert_eq!(expected.required_spare(), mb(5));
        let mut actual = Aplv::new();
        actual.register(&p1, mb(2));
        actual.register(&p2, mb(3));
        assert!(aplv_matches(&actual, &expected));
        actual.unregister(&p2, mb(3));
        assert!(!aplv_matches(&actual, &expected));
    }
}
