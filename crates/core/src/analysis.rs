//! Operator-facing analysis of a running DRTP deployment.
//!
//! These helpers answer the questions a network operator (or a paper
//! reviewer) asks after connections are up: *which single failures would
//! actually hurt?* (vulnerability), *where is the spare bandwidth
//! concentrated?* (spare summary), and *which links carry the most
//! conflict mass?* (hotspots — the links P-LSR/D-LSR steer around).

use crate::{ConnectionId, DrtpManager};
use drt_net::{Bandwidth, LinkId};
use std::collections::BTreeMap;
use std::fmt;

/// For each connection, the single-link failures it would not survive.
///
/// Produced by [`vulnerability`]; a connection absent from the map
/// survives *every* single link failure (given the current contention).
#[derive(Debug, Clone, Default)]
pub struct VulnerabilityReport {
    per_conn: BTreeMap<ConnectionId, Vec<LinkId>>,
    trials: u64,
}

impl VulnerabilityReport {
    /// Connections with at least one unsurvivable failure, with the
    /// offending links.
    pub fn vulnerable(&self) -> impl Iterator<Item = (ConnectionId, &[LinkId])> {
        self.per_conn.iter().map(|(&c, l)| (c, l.as_slice()))
    }

    /// Number of vulnerable connections.
    pub fn vulnerable_count(&self) -> usize {
        self.per_conn.len()
    }

    /// The unsurvivable failures of one connection (empty slice = fully
    /// protected).
    pub fn failures_killing(&self, conn: ConnectionId) -> &[LinkId] {
        self.per_conn.get(&conn).map_or(&[], |v| v.as_slice())
    }

    /// Number of failure units probed.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Merges a report covering a *later* contiguous chunk of the failure
    /// units into this one. Because unit enumeration is in link-id order
    /// and each per-connection list records links in probe order, merging
    /// in-order chunks reproduces the single-pass report exactly — the
    /// combinator behind the sharded parallel driver.
    pub fn merge(&mut self, other: VulnerabilityReport) {
        self.trials += other.trials;
        for (conn, links) in other.per_conn {
            self.per_conn.entry(conn).or_default().extend(links);
        }
    }
}

impl fmt::Display for VulnerabilityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} vulnerable connections over {} probed failures",
            self.per_conn.len(),
            self.trials
        )
    }
}

/// Probes every failure unit and records, per connection, the failures it
/// would not survive (no backup, dead backup, or lost contention).
///
/// Deterministic per `seed` (contention tie-breaking uses independent
/// per-trial streams, like [`DrtpManager::sweep_single_failures`]).
pub fn vulnerability(mgr: &DrtpManager, seed: u64) -> VulnerabilityReport {
    vulnerability_over(mgr, seed, &mgr.failure_units(), 0)
}

/// [`vulnerability`] over a contiguous slice of
/// [`DrtpManager::failure_units`] whose first element has global
/// enumeration index `base` — the shardable form. Each unit's RNG stream
/// is keyed by its global index, so probing `[a..b)` and `[b..c)`
/// separately and [`VulnerabilityReport::merge`]-ing the results is
/// bit-identical to one pass over `[a..c)`.
///
/// The probe loop reuses the thread-local probe workspace, so a full
/// report allocates only its own output map.
pub fn vulnerability_over(
    mgr: &DrtpManager,
    seed: u64,
    units: &[LinkId],
    base: u64,
) -> VulnerabilityReport {
    let mut report = VulnerabilityReport::default();
    crate::failure::with_probe_scratch(|ws| {
        for (k, &link) in units.iter().enumerate() {
            if mgr.is_failed(link) {
                continue;
            }
            let mut rng = drt_sim::rng::indexed_stream(seed, "vulnerability", base + k as u64);
            mgr.probe_unit_in(link, &mut rng, ws);
            if ws.decisions.is_empty() {
                continue;
            }
            report.trials += 1;
            for (conn, won) in &ws.decisions {
                if won.is_none() {
                    report.per_conn.entry(*conn).or_default().push(link);
                }
            }
        }
    });
    report
}

/// The full-scan reference for [`vulnerability`], probing through
/// [`DrtpManager::naive_baseline`] — used by the equivalence tests and
/// the benchmark harness.
pub fn vulnerability_naive(mgr: &DrtpManager, seed: u64) -> VulnerabilityReport {
    let naive = mgr.naive_baseline();
    let mut report = VulnerabilityReport::default();
    for (idx, link) in mgr.failure_units().into_iter().enumerate() {
        if mgr.is_failed(link) {
            continue;
        }
        let mut rng = drt_sim::rng::indexed_stream(seed, "vulnerability", idx as u64);
        let outcome = naive.probe_single_failure(link, &mut rng);
        if outcome.affected() == 0 {
            continue;
        }
        report.trials += 1;
        for (conn, won) in &outcome.details {
            if won.is_none() {
                report.per_conn.entry(*conn).or_default().push(link);
            }
        }
    }
    report
}

/// Distribution summary of the spare pools across links.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpareSummary {
    /// Total spare bandwidth across all links.
    pub total: Bandwidth,
    /// Largest single-link spare pool.
    pub max: Bandwidth,
    /// Links holding any spare at all.
    pub links_with_spare: usize,
    /// Links whose spare is below the APLV requirement (conflicting
    /// backups multiplexed on the same spare — the degraded case of
    /// Section 5).
    pub deficit_links: usize,
    /// Mean spare fraction of capacity over all links.
    pub mean_fraction: f64,
}

/// Summarises the spare pools of `mgr`'s links.
pub fn spare_summary(mgr: &DrtpManager) -> SpareSummary {
    let mut total = Bandwidth::ZERO;
    let mut max = Bandwidth::ZERO;
    let mut links_with_spare = 0;
    let mut fraction_sum = 0.0;
    let mut n = 0usize;
    for link in mgr.net().links() {
        let lr = mgr.link_resources(link.id());
        total += lr.spare();
        max = max.max(lr.spare());
        if !lr.spare().is_zero() {
            links_with_spare += 1;
        }
        fraction_sum += lr.spare().fraction_of(lr.capacity());
        n += 1;
    }
    SpareSummary {
        total,
        max,
        links_with_spare,
        deficit_links: mgr.spare_deficit_links(),
        mean_fraction: if n == 0 { 0.0 } else { fraction_sum / n as f64 },
    }
}

/// The `top_n` links by conflict mass (`‖APLV‖₁`), with their worst-case
/// simultaneous activation count — the hotspots conflict-aware routing
/// steers new backups around.
pub fn conflict_hotspots(mgr: &DrtpManager, top_n: usize) -> Vec<(LinkId, u64, u32)> {
    let mut all: Vec<(LinkId, u64, u32)> = mgr
        .net()
        .links()
        .map(|l| {
            let aplv = mgr.aplv(l.id());
            (l.id(), aplv.l1_norm(), aplv.max_count())
        })
        .filter(|&(_, l1, _)| l1 > 0)
        .collect(); // lint:allow(probe-alloc) — one-shot report, not the probe loop
    all.sort_by_key(|&(id, l1, _)| (std::cmp::Reverse(l1), id));
    all.truncate(top_n);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::{DLsr, PrimaryOnly, RouteRequest};
    use drt_net::{topology, NodeId};
    use std::sync::Arc;

    const BW: Bandwidth = Bandwidth::from_kbps(3_000);

    fn loaded_manager() -> DrtpManager {
        let net = Arc::new(topology::mesh(4, 4, Bandwidth::from_mbps(10)).unwrap());
        let mut mgr = DrtpManager::new(net);
        let mut scheme = DLsr::new();
        for (i, (s, d)) in [(4u32, 7u32), (4, 7), (8, 11), (1, 13)].iter().enumerate() {
            mgr.request_connection(
                &mut scheme,
                RouteRequest::new(
                    ConnectionId::new(i as u64),
                    NodeId::new(*s),
                    NodeId::new(*d),
                    BW,
                ),
            )
            .unwrap();
        }
        mgr
    }

    #[test]
    fn fully_protected_deployment_has_no_vulnerabilities() {
        let mgr = loaded_manager();
        let report = vulnerability(&mgr, 3);
        assert_eq!(report.vulnerable_count(), 0, "{report}");
        assert!(report.trials() > 0);
        assert!(report.failures_killing(ConnectionId::new(0)).is_empty());
    }

    #[test]
    fn unprotected_connection_is_flagged_per_primary_link() {
        let net = Arc::new(topology::mesh(3, 3, Bandwidth::from_mbps(10)).unwrap());
        let mut mgr = DrtpManager::new(net);
        let mut scheme = PrimaryOnly::new();
        let rep = mgr
            .request_connection(
                &mut scheme,
                RouteRequest::new(ConnectionId::new(0), NodeId::new(0), NodeId::new(8), BW),
            )
            .unwrap();
        let report = vulnerability(&mgr, 1);
        assert_eq!(report.vulnerable_count(), 1);
        let killing = report.failures_killing(ConnectionId::new(0));
        assert_eq!(killing.len(), rep.primary.len());
        for l in killing {
            assert!(rep.primary.contains_link(*l));
        }
        // The vulnerability agrees with the sweep's loss count.
        let sweep = mgr.sweep_single_failures(1);
        let agg = sweep.aggregate;
        assert_eq!(agg.affected - agg.activated, killing.len() as u64);
    }

    #[test]
    fn spare_summary_reflects_reservations() {
        let mgr = loaded_manager();
        let s = spare_summary(&mgr);
        assert_eq!(s.total, mgr.total_spare());
        assert!(s.links_with_spare > 0);
        assert!(s.max >= BW);
        assert_eq!(s.deficit_links, 0, "paper policy covers requirements");
        assert!(s.mean_fraction > 0.0 && s.mean_fraction < 1.0);
    }

    #[test]
    fn hotspots_are_sorted_and_bounded() {
        let mgr = loaded_manager();
        let hot = conflict_hotspots(&mgr, 5);
        assert!(!hot.is_empty());
        assert!(hot.len() <= 5);
        for w in hot.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        // The two identical 4->7 connections force a shared-fate hotspot
        // only if their backups overlap; either way l1 norms are positive.
        assert!(hot[0].1 >= 1);
        assert_eq!(conflict_hotspots(&mgr, 0).len(), 0);
    }
}
