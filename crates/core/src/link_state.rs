//! Per-link resource accounting.

use drt_net::Bandwidth;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Error returned when a link's pools cannot supply the requested
/// bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacityError;

impl fmt::Display for CapacityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("insufficient link capacity")
    }
}

impl Error for CapacityError {}

/// Resource ledger of one unidirectional link.
///
/// Capacity is partitioned into three exact, non-overlapping pools
/// (the notation of Section 2.1):
///
/// * `prime_bw` — hard reservations held by primary channels (and by
///   *dedicated*, non-multiplexed backups of the baseline scheme);
/// * `spare_bw` — the shared pool reserved for multiplexed backups;
/// * `free` — everything else (`total_bw − prime_bw − spare_bw`), usable by
///   best-effort traffic until claimed.
///
/// The invariant `prime + spare ≤ capacity` holds after every operation;
/// all arithmetic is integer-exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkResources {
    capacity: Bandwidth,
    prime: Bandwidth,
    spare: Bandwidth,
}

impl LinkResources {
    /// A fresh ledger for a link of the given capacity.
    pub fn new(capacity: Bandwidth) -> Self {
        LinkResources {
            capacity,
            prime: Bandwidth::ZERO,
            spare: Bandwidth::ZERO,
        }
    }

    /// Total capacity (`total_bw`).
    pub fn capacity(&self) -> Bandwidth {
        self.capacity
    }

    /// Bandwidth held by primary channels (`prime_bw`).
    pub fn prime(&self) -> Bandwidth {
        self.prime
    }

    /// Bandwidth reserved in the shared backup pool (`spare_bw`).
    pub fn spare(&self) -> Bandwidth {
        self.spare
    }

    /// Unreserved bandwidth (`total − prime − spare`).
    pub fn free(&self) -> Bandwidth {
        self.capacity - self.prime - self.spare
    }

    /// Bandwidth a *backup* route may count on at activation time:
    /// everything not held by primaries (`total − prime`). This is the
    /// "available bandwidth (the sum of the un-allocated bandwidth and the
    /// spare bandwidth shared by the backup channels)" of Section 3.1, and
    /// the bound used by the flooding scheme's forwarding bandwidth test.
    pub fn backup_headroom(&self) -> Bandwidth {
        self.capacity - self.prime
    }

    /// Returns `true` when a primary of size `bw` can be admitted from the
    /// free pool.
    pub fn can_admit_primary(&self, bw: Bandwidth) -> bool {
        bw <= self.free()
    }

    /// Reserves `bw` for a primary channel from the free pool.
    ///
    /// # Errors
    ///
    /// Returns [`CapacityError`] (leaving the ledger untouched) when the
    /// free pool is too small.
    pub fn admit_primary(&mut self, bw: Bandwidth) -> Result<(), CapacityError> {
        if self.can_admit_primary(bw) {
            self.prime += bw;
            Ok(())
        } else {
            Err(CapacityError)
        }
    }

    /// Releases `bw` of primary reservation.
    ///
    /// # Panics
    ///
    /// Panics when more is released than is held — corrupted bookkeeping.
    pub fn release_primary(&mut self, bw: Bandwidth) {
        assert!(bw <= self.prime, "primary release underflow");
        self.prime -= bw;
    }

    /// Grows the spare pool toward `target`, limited by the free pool.
    /// Returns the bandwidth actually added (possibly zero). Never shrinks.
    pub fn grow_spare_toward(&mut self, target: Bandwidth) -> Bandwidth {
        if target <= self.spare {
            return Bandwidth::ZERO;
        }
        let want = target - self.spare;
        let add = want.min(self.free());
        self.spare += add;
        add
    }

    /// Shrinks the spare pool to at most `target`, returning the released
    /// amount to the free pool.
    pub fn shrink_spare_to(&mut self, target: Bandwidth) -> Bandwidth {
        if self.spare <= target {
            return Bandwidth::ZERO;
        }
        let give_back = self.spare - target;
        self.spare -= give_back;
        give_back
    }

    /// Converts activation demand into a primary reservation: takes `bw`
    /// from the spare pool first, then from the free pool, and adds it to
    /// `prime`. Used when a backup is promoted to primary after a failure.
    ///
    /// # Errors
    ///
    /// Returns [`CapacityError`] (ledger untouched) when
    /// `spare + free < bw`.
    pub fn promote_from_pools(&mut self, bw: Bandwidth) -> Result<(), CapacityError> {
        if bw > self.spare + self.free() {
            return Err(CapacityError);
        }
        let from_spare = bw.min(self.spare);
        self.spare -= from_spare;
        self.prime += bw;
        Ok(())
    }

    /// Fraction of capacity currently reserved (prime + spare).
    pub fn utilisation(&self) -> f64 {
        (self.prime + self.spare).fraction_of(self.capacity)
    }
}

impl fmt::Display for LinkResources {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "prime {} + spare {} + free {} = {}",
            self.prime,
            self.spare,
            self.free(),
            self.capacity
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mb(v: u64) -> Bandwidth {
        Bandwidth::from_mbps(v)
    }

    #[test]
    fn fresh_ledger() {
        let r = LinkResources::new(mb(100));
        assert_eq!(r.capacity(), mb(100));
        assert_eq!(r.free(), mb(100));
        assert_eq!(r.backup_headroom(), mb(100));
        assert_eq!(r.utilisation(), 0.0);
    }

    #[test]
    fn primary_admission_and_release() {
        let mut r = LinkResources::new(mb(10));
        assert!(r.admit_primary(mb(6)).is_ok());
        assert_eq!(r.prime(), mb(6));
        assert_eq!(r.free(), mb(4));
        assert!(r.admit_primary(mb(5)).is_err());
        assert_eq!(r.prime(), mb(6), "failed admission leaves state intact");
        r.release_primary(mb(6));
        assert_eq!(r.free(), mb(10));
    }

    #[test]
    #[should_panic(expected = "primary release underflow")]
    fn over_release_panics() {
        let mut r = LinkResources::new(mb(10));
        r.release_primary(mb(1));
    }

    #[test]
    fn spare_growth_is_bounded_by_free() {
        let mut r = LinkResources::new(mb(10));
        r.admit_primary(mb(7)).unwrap();
        // want 5, only 3 free
        assert_eq!(r.grow_spare_toward(mb(5)), mb(3));
        assert_eq!(r.spare(), mb(3));
        assert_eq!(r.free(), Bandwidth::ZERO);
        // target below current: no change
        assert_eq!(r.grow_spare_toward(mb(1)), Bandwidth::ZERO);
        assert_eq!(r.spare(), mb(3));
    }

    #[test]
    fn spare_shrink_returns_to_free() {
        let mut r = LinkResources::new(mb(10));
        assert_eq!(r.grow_spare_toward(mb(6)), mb(6));
        assert_eq!(r.shrink_spare_to(mb(2)), mb(4));
        assert_eq!(r.spare(), mb(2));
        assert_eq!(r.free(), mb(8));
        assert_eq!(r.shrink_spare_to(mb(5)), Bandwidth::ZERO);
    }

    #[test]
    fn backup_headroom_ignores_spare() {
        let mut r = LinkResources::new(mb(10));
        r.admit_primary(mb(4)).unwrap();
        r.grow_spare_toward(mb(3));
        // Backups can multiplex into the spare pool, so headroom counts it.
        assert_eq!(r.backup_headroom(), mb(6));
        assert_eq!(r.free(), mb(3));
    }

    #[test]
    fn promotion_consumes_spare_then_free() {
        let mut r = LinkResources::new(mb(10));
        r.grow_spare_toward(mb(3));
        assert!(r.promote_from_pools(mb(5)).is_ok());
        assert_eq!(r.prime(), mb(5));
        assert_eq!(r.spare(), Bandwidth::ZERO);
        assert_eq!(r.free(), mb(5));
        // Too much:
        assert!(r.promote_from_pools(mb(6)).is_err());
        assert_eq!(r.prime(), mb(5), "failed promotion leaves state intact");
    }

    #[test]
    fn conservation_invariant_random_walk() {
        let mut r = LinkResources::new(mb(100));
        let ops: [fn(&mut LinkResources); 5] = [
            |r| {
                let _ = r.admit_primary(mb(7));
            },
            |r| {
                if r.prime() >= mb(7) {
                    r.release_primary(mb(7));
                }
            },
            |r| {
                let _ = r.grow_spare_toward(mb(30));
            },
            |r| {
                let _ = r.shrink_spare_to(mb(5));
            },
            |r| {
                let _ = r.promote_from_pools(mb(3));
            },
        ];
        for i in 0..1000 {
            ops[i % ops.len()](&mut r);
            assert!(r.prime() + r.spare() <= r.capacity());
            assert_eq!(r.free() + r.prime() + r.spare(), r.capacity());
        }
    }

    #[test]
    fn display_shows_all_pools() {
        let mut r = LinkResources::new(mb(10));
        r.admit_primary(mb(2)).unwrap();
        r.grow_spare_toward(mb(3));
        assert_eq!(
            r.to_string(),
            "prime 2 Mb/s + spare 3 Mb/s + free 5 Mb/s = 10 Mb/s"
        );
    }
}
