//! The link-incidence index: which connections does a link failure touch?
//!
//! Every failure-analysis question — the Figure-4 probe, destructive
//! injection, the vulnerability report — starts with "which connections
//! have a *primary* across this link, and which have a *backup* across
//! it?". Answering that by scanning the connection table makes each probe
//! O(connections), and the single-failure sweep O(units × connections):
//! exactly the cost profile fast-reroute systems avoid by precomputing
//! per-link protection state.
//!
//! [`IncidenceIndex`] keeps, per link, the sorted list of connection ids
//! whose primary crosses it and (as a multiset — a connection may hold
//! several backups over one link) whose backups cross it. The index is
//! maintained *by delta* at the same admit/register/promote/teardown choke
//! points that already keep the dense [`crate::ConflictState`] digests in
//! lockstep with the sparse APLVs, so a probe touches only the O(affected)
//! connections incident to the failed unit.
//!
//! Only *carrying* connections are indexed: a connection torn down by a
//! failure leaves the index in the same mutation that marks it
//! [`crate::ConnectionState::Failed`]. Like the conflict engine, the index
//! ships its own reference reconstruction ([`IncidenceIndex::rebuild`])
//! and divergence probe ([`IncidenceIndex::first_divergence`]), wired into
//! [`crate::DrtpManager::assert_invariants`] and the property tests.

use crate::{ConnectionId, ConnectionState, DrConnection};
use drt_net::LinkId;

/// Per-link incidence lists over the carrying connections, maintained
/// incrementally by [`crate::DrtpManager`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IncidenceIndex {
    /// Per link: ids of connections whose primary crosses it, sorted.
    primary: Vec<Vec<ConnectionId>>,
    /// Per link: ids of connections with a backup across it, sorted, one
    /// entry per (backup route, link) crossing — a multiset, since two
    /// backups of one connection may share a link.
    backup: Vec<Vec<ConnectionId>>,
}

impl IncidenceIndex {
    /// An empty index for a network of `num_links` links.
    pub fn new(num_links: usize) -> Self {
        IncidenceIndex {
            primary: vec![Vec::new(); num_links],
            backup: vec![Vec::new(); num_links],
        }
    }

    /// Number of links covered.
    pub fn num_links(&self) -> usize {
        self.primary.len()
    }

    /// Ids of the carrying connections whose primary crosses `l`, in
    /// ascending id order.
    pub fn primaries_on(&self, l: LinkId) -> &[ConnectionId] {
        &self.primary[l.index()]
    }

    /// Ids of the carrying connections with a backup route across `l`, in
    /// ascending id order. A connection appears once per backup crossing,
    /// so consumers that need a set must dedup.
    pub fn backups_on(&self, l: LinkId) -> &[ConnectionId] {
        &self.backup[l.index()]
    }

    fn insert(list: &mut Vec<ConnectionId>, id: ConnectionId) {
        let pos = list.partition_point(|&x| x < id);
        list.insert(pos, id);
    }

    fn remove(list: &mut Vec<ConnectionId>, id: ConnectionId) {
        let pos = list.partition_point(|&x| x < id);
        debug_assert_eq!(list.get(pos), Some(&id), "incidence removal of absent id");
        list.remove(pos);
    }

    /// Records `id`'s primary as crossing every link in `links`.
    pub(crate) fn add_primary(&mut self, links: &[LinkId], id: ConnectionId) {
        for &l in links {
            Self::insert(&mut self.primary[l.index()], id);
        }
    }

    /// Reverses [`IncidenceIndex::add_primary`].
    pub(crate) fn remove_primary(&mut self, links: &[LinkId], id: ConnectionId) {
        for &l in links {
            Self::remove(&mut self.primary[l.index()], id);
        }
    }

    /// Records one backup route of `id` as crossing every link in `links`.
    pub(crate) fn add_backup(&mut self, links: &[LinkId], id: ConnectionId) {
        for &l in links {
            Self::insert(&mut self.backup[l.index()], id);
        }
    }

    /// Reverses [`IncidenceIndex::add_backup`] for one backup route.
    pub(crate) fn remove_backup(&mut self, links: &[LinkId], id: ConnectionId) {
        for &l in links {
            Self::remove(&mut self.backup[l.index()], id);
        }
    }

    /// Rebuilds the index from a connection table — the reference the
    /// incremental path is checked against by
    /// [`crate::DrtpManager::assert_invariants`] and the proptests.
    pub fn rebuild<'a>(
        num_links: usize,
        conns: impl Iterator<Item = &'a DrConnection>,
    ) -> IncidenceIndex {
        let mut idx = IncidenceIndex::new(num_links);
        for conn in conns {
            if conn.state() == ConnectionState::Failed {
                continue;
            }
            idx.add_primary(conn.primary().links(), conn.id());
            for b in conn.backups() {
                idx.add_backup(b.links(), conn.id());
            }
        }
        idx
    }

    /// Returns the first link whose incidence lists disagree with
    /// `reference`, or `None` when the indices match everywhere.
    pub fn first_divergence(&self, reference: &IncidenceIndex) -> Option<LinkId> {
        (0..self.primary.len().max(reference.primary.len()))
            .map(|i| LinkId::new(i as u32))
            .find(|&l| {
                self.primary.get(l.index()) != reference.primary.get(l.index())
                    || self.backup.get(l.index()) != reference.backup.get(l.index())
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u32) -> LinkId {
        LinkId::new(i)
    }

    fn c(i: u64) -> ConnectionId {
        ConnectionId::new(i)
    }

    #[test]
    fn lists_stay_sorted() {
        let mut idx = IncidenceIndex::new(4);
        idx.add_primary(&[l(1), l(2)], c(7));
        idx.add_primary(&[l(1)], c(3));
        idx.add_primary(&[l(1)], c(5));
        assert_eq!(idx.primaries_on(l(1)), &[c(3), c(5), c(7)]);
        assert_eq!(idx.primaries_on(l(2)), &[c(7)]);
        assert!(idx.primaries_on(l(0)).is_empty());
        idx.remove_primary(&[l(1)], c(5));
        assert_eq!(idx.primaries_on(l(1)), &[c(3), c(7)]);
    }

    #[test]
    fn backup_lists_are_multisets() {
        // Two backups of the same connection over one link: both crossings
        // are recorded, and each removal drops exactly one.
        let mut idx = IncidenceIndex::new(2);
        idx.add_backup(&[l(0)], c(1));
        idx.add_backup(&[l(0)], c(1));
        assert_eq!(idx.backups_on(l(0)), &[c(1), c(1)]);
        idx.remove_backup(&[l(0)], c(1));
        assert_eq!(idx.backups_on(l(0)), &[c(1)]);
        idx.remove_backup(&[l(0)], c(1));
        assert!(idx.backups_on(l(0)).is_empty());
    }

    #[test]
    fn divergence_is_detected() {
        let mut a = IncidenceIndex::new(3);
        let b = IncidenceIndex::new(3);
        assert_eq!(a.first_divergence(&b), None);
        a.add_backup(&[l(2)], c(9));
        assert_eq!(a.first_divergence(&b), Some(l(2)));
    }
}
