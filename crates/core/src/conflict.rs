//! The incremental conflict-state engine.
//!
//! D-LSR's per-link cost term `Σ_{L_j ∈ LSET_P} c_{i,j}` and P-LSR's
//! `‖APLV_i‖₁` are both functions of the per-link [`Aplv`]s, which change
//! only when a backup is registered or released. Recomputing them from the
//! per-link APLVs on every routing call (per relaxed link, per Dijkstra
//! relaxation) dominates route-selection time once thousands of backups are
//! in play.
//!
//! [`ConflictState`] keeps two dense digests in lockstep with the APLVs:
//!
//! * one [`ConflictVector`] bitset per link (`CV_i`, `N` bits each), kept
//!   current through the 0→1 / 1→0 transition callbacks of
//!   [`Aplv::register_with`] / [`Aplv::unregister_with`] — a register or
//!   release touches only the affected `(i, j)` bits;
//! * the cached `‖APLV_i‖₁` scalar per link.
//!
//! With the primary's `LSET` densified once per request
//! ([`ConflictVector::from_links`]), D-LSR's cost becomes a popcount over
//! `CV_i ∩ LSET_P` — `O(N/64)` words instead of `O(|LSET|·log |APLV|)` map
//! probes — and P-LSR's cost an array read.

use crate::{Aplv, ConflictVector};
use drt_net::LinkId;

/// Dense per-link conflict digests, maintained incrementally alongside the
/// per-link APLVs by [`crate::DrtpManager`].
#[derive(Debug, Clone, PartialEq)]
pub struct ConflictState {
    cvs: Vec<ConflictVector>,
    l1: Vec<u64>,
    num_links: usize,
}

impl ConflictState {
    /// All-zero state for a network of `num_links` links.
    pub fn new(num_links: usize) -> Self {
        ConflictState {
            cvs: vec![ConflictVector::zeros(num_links); num_links],
            l1: vec![0; num_links],
            num_links,
        }
    }

    /// Number of links covered.
    pub fn num_links(&self) -> usize {
        self.num_links
    }

    /// The dense `CV_i` of link `l`.
    pub fn cv(&self, l: LinkId) -> &ConflictVector {
        &self.cvs[l.index()]
    }

    /// The cached `‖APLV_l‖₁`.
    pub fn l1_norm(&self, l: LinkId) -> u64 {
        self.l1[l.index()]
    }

    /// Applies one backup-registration delta on link `l`: bits that flipped
    /// 0→1 are in `became_set` (from [`Aplv::register_with`]), and `‖APLV‖₁`
    /// grew by `lset_len`.
    pub fn apply_register(&mut self, l: LinkId, became_set: &[LinkId], lset_len: usize) {
        let cv = &mut self.cvs[l.index()];
        for &j in became_set {
            cv.set(j);
        }
        self.l1[l.index()] += lset_len as u64;
    }

    /// Applies one backup-release delta on link `l`: bits that flipped 1→0
    /// are in `became_clear`, and `‖APLV‖₁` shrank by `lset_len`.
    pub fn apply_unregister(&mut self, l: LinkId, became_clear: &[LinkId], lset_len: usize) {
        let cv = &mut self.cvs[l.index()];
        for &j in became_clear {
            cv.clear(j);
        }
        self.l1[l.index()] -= lset_len as u64;
    }

    /// Rebuilds the dense state from scratch — the reference the
    /// incremental path is checked against by
    /// [`crate::DrtpManager::assert_invariants`] and the proptests.
    pub fn rebuild(aplvs: &[Aplv], num_links: usize) -> Self {
        ConflictState {
            cvs: aplvs.iter().map(|a| a.conflict_vector(num_links)).collect(),
            l1: aplvs.iter().map(Aplv::l1_norm).collect(),
            num_links,
        }
    }

    /// Returns the first link whose incremental digest disagrees with the
    /// APLV it shadows, or `None` when everything is in lockstep.
    pub fn first_divergence(&self, aplvs: &[Aplv]) -> Option<LinkId> {
        (0..self.num_links)
            .map(|i| LinkId::new(i as u32))
            .find(|&l| {
                let a = &aplvs[l.index()];
                self.l1[l.index()] != a.l1_norm()
                    || self.cvs[l.index()] != a.conflict_vector(self.num_links)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drt_net::Bandwidth;

    const BW: Bandwidth = Bandwidth::from_kbps(3_000);

    fn l(i: u32) -> LinkId {
        LinkId::new(i)
    }

    /// Drives an (aplv, conflict-state) pair through the same delta the
    /// manager performs for one backup link.
    fn register(aplvs: &mut [Aplv], cs: &mut ConflictState, i: LinkId, lset: &[LinkId]) {
        let mut set = Vec::new();
        aplvs[i.index()].register_with(lset, BW, |j| set.push(j));
        cs.apply_register(i, &set, lset.len());
    }

    fn unregister(aplvs: &mut [Aplv], cs: &mut ConflictState, i: LinkId, lset: &[LinkId]) {
        let mut clear = Vec::new();
        aplvs[i.index()].unregister_with(lset, BW, |j| clear.push(j));
        cs.apply_unregister(i, &clear, lset.len());
    }

    #[test]
    fn incremental_matches_rebuild() {
        const N: usize = 16;
        let mut aplvs = vec![Aplv::new(); N];
        let mut cs = ConflictState::new(N);
        register(&mut aplvs, &mut cs, l(7), &[l(8), l(12), l(13)]);
        register(&mut aplvs, &mut cs, l(7), &[l(11), l(13)]);
        register(&mut aplvs, &mut cs, l(3), &[l(8)]);
        assert_eq!(cs.first_divergence(&aplvs), None);
        assert_eq!(cs, ConflictState::rebuild(&aplvs, N));
        assert_eq!(cs.l1_norm(l(7)), 5);
        assert!(cs.cv(l(7)).get(l(13)));

        unregister(&mut aplvs, &mut cs, l(7), &[l(8), l(12), l(13)]);
        assert_eq!(cs.first_divergence(&aplvs), None);
        // a_{7,13} went 2→1: the bit must survive the partial release.
        assert!(cs.cv(l(7)).get(l(13)));
        assert!(!cs.cv(l(7)).get(l(12)));

        unregister(&mut aplvs, &mut cs, l(7), &[l(11), l(13)]);
        unregister(&mut aplvs, &mut cs, l(3), &[l(8)]);
        assert_eq!(cs, ConflictState::new(N));
    }

    #[test]
    fn divergence_is_detected() {
        let aplvs = vec![Aplv::new(); 4];
        let mut cs = ConflictState::new(4);
        cs.apply_register(l(2), &[l(0)], 1);
        assert_eq!(cs.first_divergence(&aplvs), Some(l(2)));
    }
}
