//! First-class telemetry: counters, gauges, and log₂ histograms shared
//! by every experiment driver, campaign, and chaos harness.
//!
//! The module is deliberately integer-only. Counter values, gauge values
//! and histogram buckets are all `u64`/`i64`, so a [`Telemetry::snapshot`]
//! renders identically on every platform and under every `--jobs` count —
//! the byte-identity contract of the experiment drivers extends to their
//! instrumentation for free. Ratios that would naturally be floats (e.g.
//! `P_act-bk`) are stored in parts-per-million.
//!
//! Ownership follows the rest of the crate: each [`crate::DrtpManager`]
//! and each [`crate::orchestrator::RecoveryOrchestrator`] carries its own
//! `Telemetry`, and a driver that wants one report [`Telemetry::merge`]s
//! them. Merging is commutative and associative over disjoint or shared
//! keys (counters add, histograms add bucket-wise, gauges last-write),
//! so parallel workers can be combined in canonical order.

use std::collections::BTreeMap;

use crate::failure::FailureSweep;

/// Number of log₂ buckets a [`Histogram`] holds. Bucket `i ≥ 1` covers
/// values in `[2^(i-1), 2^i - 1]`; bucket 0 holds exact zeros; the last
/// bucket absorbs everything at or above `2^(NUM_BUCKETS-2)`.
pub const NUM_BUCKETS: usize = 40;

/// A fixed-size log₂ histogram of `u64` samples (microseconds, counts —
/// any nonnegative integer quantity).
///
/// The bucket layout trades resolution for determinism and mergeability:
/// `observe` is two instructions of bucketing plus four integer adds, the
/// struct is `Copy`-free but allocation-free, and two histograms merge by
/// bucket-wise addition regardless of what either saw.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; NUM_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            ((64 - v.leading_zeros()) as usize).min(NUM_BUCKETS - 1)
        }
    }

    /// Records one sample.
    pub fn observe(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Integer mean of the samples (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The `pct`-th percentile (0–100), reported as the upper bound of
    /// the bucket holding that rank and clamped to the observed maximum.
    /// Resolution is a factor of two — enough to tell 100 µs recoveries
    /// from 10 ms ones, which is what the degradation tables need.
    pub fn percentile(&self, pct: u32) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let pct = u64::from(pct.min(100));
        // Rank of the requested percentile, 1-based, rounding up.
        let rank = (self.count * pct).div_ceil(100);
        let rank = rank.max(1);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                let upper = if i == 0 {
                    0
                } else if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << i) - 1
                };
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// Adds every sample of `other` into `self`, bucket-wise.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

/// The single instrumentation source: named counters, gauges, and
/// histograms with deterministic (sorted, integer-only) snapshots.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Telemetry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, i64>,
    hists: BTreeMap<&'static str, Histogram>,
}

impl Telemetry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` when nothing has been recorded — the fast path callers
    /// check before formatting a snapshot.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// Increments counter `name` by one.
    pub fn incr(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Increments counter `name` by `delta`.
    pub fn add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Current value of counter `name` (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets gauge `name` to `value` (last write wins, also across merge).
    pub fn set_gauge(&mut self, name: &'static str, value: i64) {
        self.gauges.insert(name, value);
    }

    /// Current value of gauge `name` (0 when never set).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Records one sample into histogram `name`.
    pub fn observe(&mut self, name: &'static str, v: u64) {
        self.hists.entry(name).or_default().observe(v);
    }

    /// Records a duration sample (microseconds) into histogram `name`.
    pub fn observe_duration(&mut self, name: &'static str, d: drt_sim::SimDuration) {
        self.observe(name, d.as_micros());
    }

    /// The histogram called `name`, if any sample was recorded.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// Folds `other` into `self`: counters add, histograms merge
    /// bucket-wise, gauges take `other`'s value.
    pub fn merge(&mut self, other: &Telemetry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k, *v);
        }
        for (k, h) in &other.hists {
            self.hists.entry(k).or_default().merge(h);
        }
    }

    /// Records the aggregate of a completed single-failure sweep: trial
    /// counters plus the `P_act-bk` estimator as a parts-per-million
    /// gauge (integer, so snapshots stay byte-identical).
    pub fn record_sweep(&mut self, sweep: &FailureSweep) {
        let a = &sweep.aggregate;
        self.add("sweep.trials", a.trials);
        self.add("sweep.affected", a.affected);
        self.add("sweep.activated", a.activated);
        self.add("sweep.degraded", a.degraded);
        if let Some(ppm) = a
            .activated
            .saturating_mul(1_000_000)
            .checked_div(a.affected)
        {
            self.set_gauge("sweep.p_act_bk_ppm", ppm as i64);
        }
    }

    /// A deterministic plain-text snapshot: one sorted line per metric,
    /// integers only. Byte-identical across platforms and `--jobs`
    /// counts for the same recorded history.
    pub fn snapshot(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            out.push_str(&format!("counter {k} {v}\n"));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("gauge {k} {v}\n"));
        }
        for (k, h) in &self.hists {
            out.push_str(&format!(
                "hist {k} count={} sum={} mean={} p50={} p95={} max={}\n",
                h.count(),
                h.sum(),
                h.mean(),
                h.percentile(50),
                h.percentile(95),
                h.max()
            ));
        }
        out
    }

    /// The snapshot as a single JSON object (sorted keys, integers only)
    /// — the form the bench report embeds.
    pub fn to_json(&self) -> String {
        let mut parts = Vec::new();
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect();
        parts.push(format!("\"counters\": {{{}}}", counters.join(", ")));
        let gauges: Vec<String> = self
            .gauges
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect();
        parts.push(format!("\"gauges\": {{{}}}", gauges.join(", ")));
        let hists: Vec<String> = self
            .hists
            .iter()
            .map(|(k, h)| {
                format!(
                    "\"{k}\": {{\"count\": {}, \"mean\": {}, \"p50\": {}, \"p95\": {}, \"max\": {}}}",
                    h.count(),
                    h.mean(),
                    h.percentile(50),
                    h.percentile(95),
                    h.max()
                )
            })
            .collect();
        parts.push(format!("\"histograms\": {{{}}}", hists.join(", ")));
        format!("{{{}}}", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_powers_of_two() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 100, 1_000_000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.max(), 1_000_000);
        assert_eq!(h.sum(), 1_000_110);
        // p100 is clamped to the true max, not the bucket bound.
        assert_eq!(h.percentile(100), 1_000_000);
        assert_eq!(h.percentile(0), 0);
    }

    #[test]
    fn percentile_walks_cumulative_counts() {
        let mut h = Histogram::new();
        for _ in 0..90 {
            h.observe(100); // bucket [64, 127]
        }
        for _ in 0..10 {
            h.observe(10_000); // bucket [8192, 16383]
        }
        assert_eq!(h.percentile(50), 127);
        assert_eq!(h.percentile(90), 127);
        assert_eq!(h.percentile(95), 10_000); // clamped to max
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        let mut a = Histogram::new();
        a.observe(5);
        let mut b = Histogram::new();
        b.observe(500);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 500);
        assert_eq!(a.sum(), 505);
    }

    #[test]
    fn telemetry_counters_gauges_hists() {
        let mut t = Telemetry::new();
        assert!(t.is_empty());
        t.incr("a");
        t.add("a", 4);
        t.set_gauge("g", -3);
        t.observe("h", 7);
        assert_eq!(t.counter("a"), 5);
        assert_eq!(t.counter("missing"), 0);
        assert_eq!(t.gauge("g"), -3);
        assert_eq!(t.hist("h").map(Histogram::count), Some(1));
        assert!(!t.is_empty());
    }

    #[test]
    fn merge_adds_counters_and_keeps_other_gauges() {
        let mut a = Telemetry::new();
        a.add("c", 2);
        a.set_gauge("g", 1);
        a.observe("h", 10);
        let mut b = Telemetry::new();
        b.add("c", 3);
        b.set_gauge("g", 9);
        b.observe("h", 20);
        a.merge(&b);
        assert_eq!(a.counter("c"), 5);
        assert_eq!(a.gauge("g"), 9);
        assert_eq!(a.hist("h").map(Histogram::count), Some(2));
    }

    #[test]
    fn snapshot_is_sorted_and_stable() {
        let mut t = Telemetry::new();
        t.add("z.last", 1);
        t.add("a.first", 2);
        t.observe("m.hist", 50);
        let s = t.snapshot();
        let a = s.find("a.first").expect("present");
        let z = s.find("z.last").expect("present");
        assert!(a < z, "counters render in sorted key order");
        assert_eq!(s, t.clone().snapshot(), "snapshot is a pure function");
        let json = t.to_json();
        assert!(json.contains("\"a.first\": 2"));
        assert!(json.contains("\"p95\""));
    }
}
