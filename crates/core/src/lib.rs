//! DRTP core: dependable real-time connections with primary/backup
//! channels, backup multiplexing, and the three routing schemes of
//! *"Design and Evaluation of Routing Schemes for Dependable Real-Time
//! Connections"* (Kim, Qiao, Kodase & Shin, DSN 2001).
//!
//! # The protocol in one paragraph
//!
//! Each dependable real-time (DR-) connection is realised as one *primary*
//! channel plus one *backup* channel. The backup reserves no dedicated
//! bandwidth; instead, every link keeps a *spare pool* shared (multiplexed)
//! by all backups crossing it. Two backups *conflict* when they share a
//! link while their primaries also share a link — a single failure then
//! activates both at once, and the shared spare pool may not cover both.
//! Each link's **APLV** (Accumulated Primary-route Link Vector) records, per
//! remote link `L_j`, how many primaries crossing `L_j` have backups through
//! this link, which is exactly the contention a failure of `L_j` would
//! create. Routing backups to minimise APLV-measured conflicts is the
//! paper's contribution, in three flavours:
//!
//! * [`routing::PLsr`] — probabilistic link-state routing over `‖APLV‖₁`;
//! * [`routing::DLsr`] — deterministic avoidance via per-link conflict
//!   vectors;
//! * [`routing::BoundedFlooding`] — on-demand channel-discovery-packet
//!   flooding inside a hop-count bound.
//!
//! # Architecture
//!
//! * [`DrtpManager`] owns all per-link resource state ([`LinkResources`]),
//!   per-link [`Aplv`]s, and the connection table; it admits primaries,
//!   registers/multiplexes backups ([`multiplex`]), and recovers from link
//!   failures ([`failure`]).
//! * [`routing`] hosts the route-selection schemes behind the
//!   [`routing::RoutingScheme`] trait, plus baselines.
//! * [`failure`] provides both a *non-destructive probe* (the estimator
//!   behind the paper's Figure 4) and destructive failure injection with
//!   full recovery (backup promotion and re-establishment).
//!
//! # Example
//!
//! ```
//! use drt_core::routing::{DLsr, RouteRequest, RoutingScheme};
//! use drt_core::{ConnectionId, DrtpManager};
//! use drt_net::{topology, Bandwidth};
//! use drt_net::NodeId;
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let net = Arc::new(topology::mesh(3, 3, Bandwidth::from_mbps(10))?);
//! let mut mgr = DrtpManager::new(net);
//! let mut scheme = DLsr::new();
//!
//! let report = mgr.request_connection(
//!     &mut scheme,
//!     RouteRequest::new(
//!         ConnectionId::new(0),
//!         NodeId::new(0),
//!         NodeId::new(8),
//!         Bandwidth::from_kbps(3_000),
//!     ),
//! )?;
//! assert!(report.backup().is_some());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![deny(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod analysis;
mod aplv;
mod conflict;
mod connection;
mod error;
pub mod failure;
mod incidence;
pub mod invariants;
mod link_state;
mod manager;
pub mod multiplex;
pub mod orchestrator;
mod route_cache;
pub mod routing;
pub mod telemetry;
mod types;

pub use aplv::{Aplv, ConflictVector};
pub use conflict::ConflictState;
pub use connection::{ConnectionState, DrConnection};
pub use error::DrtpError;
pub use incidence::IncidenceIndex;
pub use link_state::{CapacityError, LinkResources};
pub use manager::{DrtpManager, EstablishReport, ManagerView, StateSnapshot, ViewDistortion};
pub use route_cache::RouteMaintenance;
pub use telemetry::{Histogram, Telemetry};
pub use types::{ConnectionId, QosRequirement};
