//! DR-connection records.

use crate::{ConnectionId, QosRequirement};
use drt_net::Route;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Lifecycle state of a DR-connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConnectionState {
    /// Primary carries traffic; at least one backup is registered.
    Protected,
    /// Primary carries traffic; no backup is currently registered (either
    /// none was found, or the backups were consumed/invalidated and not
    /// yet re-established).
    Unprotected,
    /// The primary failed and the connection switched to a (promoted)
    /// backup; remaining backups were released pending reconfiguration.
    Recovered,
    /// The primary failed and no backup could be activated; service is
    /// down.
    Failed,
}

impl ConnectionState {
    /// Returns `true` while the connection is carrying traffic.
    pub fn is_carrying_traffic(self) -> bool {
        !matches!(self, ConnectionState::Failed)
    }
}

impl fmt::Display for ConnectionState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ConnectionState::Protected => "protected",
            ConnectionState::Unprotected => "unprotected",
            ConnectionState::Recovered => "recovered",
            ConnectionState::Failed => "failed",
        };
        f.write_str(s)
    }
}

/// One dependable real-time connection: a primary channel, zero or more
/// backup channels in activation-priority order, and its QoS contract.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DrConnection {
    id: ConnectionId,
    qos: QosRequirement,
    primary: Route,
    backups: Vec<Route>,
    /// `true` when the backups hold hard (non-multiplexed) reservations —
    /// the dedicated-backup baseline.
    dedicated_backup: bool,
    state: ConnectionState,
}

impl DrConnection {
    /// Creates a connection record; state derives from whether any backup
    /// is present. Used by the manager at admission time.
    pub(crate) fn new(
        id: ConnectionId,
        qos: QosRequirement,
        primary: Route,
        backups: Vec<Route>,
        dedicated_backup: bool,
    ) -> Self {
        let state = if backups.is_empty() {
            ConnectionState::Unprotected
        } else {
            ConnectionState::Protected
        };
        DrConnection {
            id,
            qos,
            primary,
            backups,
            dedicated_backup,
            state,
        }
    }

    /// The connection's identifier.
    pub fn id(&self) -> ConnectionId {
        self.id
    }

    /// The QoS contract.
    pub fn qos(&self) -> QosRequirement {
        self.qos
    }

    /// The route currently carrying (or contracted to carry) traffic.
    pub fn primary(&self) -> &Route {
        &self.primary
    }

    /// The highest-priority registered backup route, if any.
    pub fn backup(&self) -> Option<&Route> {
        self.backups.first()
    }

    /// All registered backup routes in activation-priority order.
    pub fn backups(&self) -> &[Route] {
        &self.backups
    }

    /// Whether the backups hold dedicated (non-multiplexed) reservations.
    pub fn backup_is_dedicated(&self) -> bool {
        self.dedicated_backup
    }

    /// Current lifecycle state.
    pub fn state(&self) -> ConnectionState {
        self.state
    }

    pub(crate) fn set_state(&mut self, state: ConnectionState) {
        self.state = state;
    }

    /// Promotes the backup at `index` to primary (after a successful
    /// activation), removing *all* backups from the record; the manager
    /// releases the others' resources and may later re-protect via
    /// reconfiguration. The connection becomes
    /// [`ConnectionState::Recovered`].
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub(crate) fn promote_backup(&mut self, index: usize) -> Vec<Route> {
        assert!(index < self.backups.len(), "promote of unknown backup");
        let mut rest = std::mem::take(&mut self.backups);
        let promoted = rest.remove(index);
        self.primary = promoted;
        self.dedicated_backup = false;
        self.state = ConnectionState::Recovered;
        rest
    }

    /// Installs an additional backup route (appended at lowest priority),
    /// returning the connection to [`ConnectionState::Protected`].
    pub(crate) fn install_backup(&mut self, backup: Route, dedicated: bool) {
        self.backups.push(backup);
        self.dedicated_backup = dedicated;
        self.state = ConnectionState::Protected;
    }

    /// Removes all backup registrations from the record (resources are
    /// handled by the manager), marking the connection unprotected.
    pub(crate) fn clear_backups(&mut self) -> Vec<Route> {
        let out = std::mem::take(&mut self.backups);
        if self.state == ConnectionState::Protected {
            self.state = ConnectionState::Unprotected;
        }
        out
    }

    /// Removes the backup at `index` only (e.g. invalidated by a failure
    /// on its route), updating the state if none remain.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub(crate) fn remove_backup(&mut self, index: usize) -> Route {
        let r = self.backups.remove(index);
        if self.backups.is_empty() && self.state == ConnectionState::Protected {
            self.state = ConnectionState::Unprotected;
        }
        r
    }
}

impl fmt::Display for DrConnection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] primary {} hops, {} backup(s)",
            self.id,
            self.state,
            self.primary.len(),
            self.backups.len(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drt_net::{topology, Bandwidth, NodeId};

    fn sample() -> (drt_net::Network, DrConnection) {
        let net = topology::ring(5, Bandwidth::from_mbps(10)).unwrap();
        let primary =
            Route::from_nodes(&net, &[NodeId::new(0), NodeId::new(1), NodeId::new(2)]).unwrap();
        let backup = Route::from_nodes(
            &net,
            &[
                NodeId::new(0),
                NodeId::new(4),
                NodeId::new(3),
                NodeId::new(2),
            ],
        )
        .unwrap();
        let conn = DrConnection::new(
            ConnectionId::new(1),
            QosRequirement::bandwidth_only(Bandwidth::from_kbps(3000)),
            primary,
            vec![backup],
            false,
        );
        (net, conn)
    }

    #[test]
    fn protected_lifecycle() {
        let (_, mut c) = sample();
        assert_eq!(c.state(), ConnectionState::Protected);
        assert!(c.state().is_carrying_traffic());
        assert_eq!(c.primary().len(), 2);
        assert_eq!(c.backup().unwrap().len(), 3);
        assert_eq!(c.backups().len(), 1);
        let rest = c.promote_backup(0);
        assert!(rest.is_empty());
        assert_eq!(c.state(), ConnectionState::Recovered);
        assert_eq!(c.primary().len(), 3);
        assert!(c.backup().is_none());
    }

    #[test]
    fn unprotected_when_no_backup() {
        let (_, c) = sample();
        let u = DrConnection::new(
            ConnectionId::new(2),
            c.qos(),
            c.primary().clone(),
            Vec::new(),
            false,
        );
        assert_eq!(u.state(), ConnectionState::Unprotected);
    }

    #[test]
    fn clear_and_reinstall_backup() {
        let (_, mut c) = sample();
        let removed = c.clear_backups();
        assert_eq!(removed.len(), 1);
        assert_eq!(c.state(), ConnectionState::Unprotected);
        c.install_backup(removed.into_iter().next().unwrap(), true);
        assert_eq!(c.state(), ConnectionState::Protected);
        assert!(c.backup_is_dedicated());
    }

    #[test]
    fn multiple_backups_priority_order() {
        let (net, mut c) = sample();
        let second =
            Route::from_nodes(&net, &[NodeId::new(0), NodeId::new(1), NodeId::new(2)]).unwrap();
        c.install_backup(second.clone(), false);
        assert_eq!(c.backups().len(), 2);
        assert_ne!(c.backup().unwrap(), &second, "first backup keeps priority");

        // Promoting the SECOND backup returns the first as released rest.
        let rest = c.promote_backup(1);
        assert_eq!(rest.len(), 1);
        assert_eq!(c.primary(), &second);
        assert_eq!(c.state(), ConnectionState::Recovered);
    }

    #[test]
    fn remove_single_backup_unprotects() {
        let (_, mut c) = sample();
        let _ = c.remove_backup(0);
        assert_eq!(c.state(), ConnectionState::Unprotected);
        assert!(c.backups().is_empty());
    }

    #[test]
    #[should_panic(expected = "promote of unknown backup")]
    fn promote_without_backup_panics() {
        let (_, mut c) = sample();
        c.clear_backups();
        c.promote_backup(0);
    }

    #[test]
    fn failed_state_not_carrying() {
        assert!(!ConnectionState::Failed.is_carrying_traffic());
        assert_eq!(ConnectionState::Failed.to_string(), "failed");
    }

    #[test]
    fn display() {
        let (_, c) = sample();
        assert!(c.to_string().contains("D1 [protected]"));
        assert!(c.to_string().contains("1 backup(s)"));
    }
}
