//! The DR-connection manager.

use crate::multiplex::{MultiplexConfig, SparePolicy};
use crate::route_cache::RouteCache;
use crate::routing::{RouteRequest, RoutingOverhead, RoutingScheme};
use crate::{
    Aplv, ConflictState, ConflictVector, ConnectionId, ConnectionState, DrConnection, DrtpError,
    IncidenceIndex, LinkResources, RouteMaintenance, Telemetry,
};
use drt_net::algo::{AllPairsHops, DynamicSpt};
use drt_net::{Bandwidth, LinkId, Network, Route};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Central manager of all DR-connection state.
///
/// The paper distributes this state across routers ("every router is
/// equipped with a DR-connection manager"); a connection-level simulation
/// needs only the *union* of that state, so one `DrtpManager` owns the
/// per-link ledgers ([`LinkResources`]), per-link [`Aplv`]s, the failed-link
/// mask, and the connection table. The message exchanges of the distributed
/// protocol (backup-path register/release packets carrying the primary's
/// `LSET`) correspond one-to-one to the APLV updates this manager performs,
/// and their cost is modelled by [`RoutingOverhead`].
///
/// See the crate-level docs for a usage example.
#[derive(Debug, Clone)]
pub struct DrtpManager {
    pub(crate) net: Arc<Network>,
    pub(crate) cfg: MultiplexConfig,
    pub(crate) links: Vec<LinkResources>,
    pub(crate) aplvs: Vec<Aplv>,
    pub(crate) conflict: ConflictState,
    pub(crate) incidence: IncidenceIndex,
    pub(crate) failed: Vec<bool>,
    pub(crate) conns: BTreeMap<ConnectionId, DrConnection>,
    pub(crate) hops: AllPairsHops,
    /// One repairable shortest-path tree per node (unit cost over alive
    /// links), the source the incremental hop-table maintenance patches
    /// rows from. Empty in [`RouteMaintenance::Baseline`] mode.
    pub(crate) spt: Vec<DynamicSpt>,
    pub(crate) route_cache: RouteCache,
    pub(crate) maintenance: RouteMaintenance,
    pub(crate) distortion: Option<ViewDistortion>,
    pub(crate) telemetry: Telemetry,
}

/// Link-state lies a set of byzantine routers injects into route
/// selection.
///
/// The paper's schemes route on each router's link-state database; a
/// byzantine router poisons that database for every link it *owns*
/// (links whose source it is) by advertising dead links as up and
/// under-reporting conflict load. The distortion is applied to the
/// [`ManagerView`] handed to [`RoutingScheme`]s — the *selection* side —
/// while admission ([`DrtpManager::admit_routes`]) keeps validating
/// against ground truth, so every lie-induced selection surfaces as a
/// setup failure ([`DrtpError::LinkFailed`] /
/// [`DrtpError::InsufficientBandwidth`]) exactly as stale link-state
/// would in the distributed protocol.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ViewDistortion {
    /// Per-node flag: `true` for routers whose outgoing-link
    /// advertisements are lies.
    pub byzantine: Vec<bool>,
    /// Byzantine-owned links that are failed are advertised as alive.
    pub advertise_dead_as_up: bool,
    /// Byzantine-owned links advertise zero conflict load (`‖APLV‖₁` and
    /// conflict counts read 0), hiding contention from P-LSR and D-LSR.
    pub deflate_conflicts: bool,
    /// Byzantine-owned links advertise their full capacity as admissible
    /// headroom regardless of the real ledger.
    pub inflate_headroom: bool,
}

impl ViewDistortion {
    /// A distortion marking `nodes` byzantine on a `num_nodes` network,
    /// with every lie flag enabled.
    pub fn for_nodes(num_nodes: usize, nodes: &[drt_net::NodeId]) -> Self {
        let mut byzantine = vec![false; num_nodes];
        for n in nodes {
            if n.index() < byzantine.len() {
                byzantine[n.index()] = true;
            }
        }
        ViewDistortion {
            byzantine,
            advertise_dead_as_up: true,
            deflate_conflicts: true,
            inflate_headroom: true,
        }
    }

    /// `true` when `l`'s advertisements come from a byzantine router.
    pub fn lies_about(&self, net: &Network, l: LinkId) -> bool {
        let src = net.link(l).src();
        self.byzantine.get(src.index()).copied().unwrap_or(false)
    }

    /// `true` when no router is marked byzantine or every lie flag is
    /// off — the view behaves exactly as undistorted.
    pub fn is_quiet(&self) -> bool {
        !self.byzantine.iter().any(|&b| b)
            || (!self.advertise_dead_as_up && !self.deflate_conflicts && !self.inflate_headroom)
    }
}

/// What happened when a connection was established.
#[derive(Debug, Clone, PartialEq)]
pub struct EstablishReport {
    /// The new connection's id.
    pub id: ConnectionId,
    /// The admitted primary route.
    pub primary: Route,
    /// The registered backup routes in activation-priority order.
    pub backups: Vec<Route>,
    /// Whether the backups hold dedicated reservations.
    pub dedicated_backup: bool,
    /// Control-plane cost of route discovery.
    pub overhead: RoutingOverhead,
    /// Spare bandwidth added across all links of the backup routes.
    pub spare_grown: Bandwidth,
    /// `true` when a new backup conflicts with at least one existing
    /// backup (they share a link and their primaries share a link).
    pub conflicted: bool,
}

impl EstablishReport {
    /// The first (highest-priority) backup, if any.
    pub fn backup(&self) -> Option<&Route> {
        self.backups.first()
    }
}

/// An owned copy of the manager's routable state at one instant.
///
/// The paper's link-state schemes route on each router's link-state
/// *database*, which lags reality by the dissemination period. A snapshot
/// taken with [`DrtpManager::snapshot`] and refreshed on whatever schedule
/// the experiment models lets a scheme route on stale state via
/// [`StateSnapshot::view`]; admission against the live manager
/// ([`DrtpManager::admit_routes`]) then fails exactly when staleness made
/// the selection infeasible — the setup-failure cost of out-of-date
/// link-state information.
#[derive(Debug, Clone)]
pub struct StateSnapshot {
    net: Arc<Network>,
    links: Vec<LinkResources>,
    aplvs: Vec<Aplv>,
    conflict: ConflictState,
    failed: Vec<bool>,
    hops: AllPairsHops,
}

impl StateSnapshot {
    /// A read-only view over the snapshot, interchangeable with the live
    /// [`DrtpManager::view`] as far as [`RoutingScheme`]s are concerned.
    pub fn view(&self) -> ManagerView<'_> {
        ManagerView {
            net: &self.net,
            links: &self.links,
            aplvs: &self.aplvs,
            conflict: &self.conflict,
            failed: &self.failed,
            hops: &self.hops,
            // A snapshot is the honestly-disseminated database; byzantine
            // distortion applies to the live advertisement path only.
            distortion: None,
        }
    }
}

/// Read-only view of manager state handed to [`RoutingScheme`]s.
///
/// The view corresponds to the link-state database of the paper's routers:
/// per-link available bandwidths plus the scheme-specific APLV digest
/// (`‖APLV‖₁` for P-LSR, conflict vectors for D-LSR), and the distance
/// tables consulted by bounded flooding.
#[derive(Debug, Clone, Copy)]
pub struct ManagerView<'a> {
    net: &'a Network,
    links: &'a [LinkResources],
    aplvs: &'a [Aplv],
    conflict: &'a ConflictState,
    failed: &'a [bool],
    hops: &'a AllPairsHops,
    distortion: Option<&'a ViewDistortion>,
}

impl<'a> ManagerView<'a> {
    /// The active distortion, when it actually lies about `l`.
    fn lie(&self, l: LinkId) -> Option<&'a ViewDistortion> {
        self.distortion
            .filter(|d| !d.is_quiet() && d.lies_about(self.net, l))
    }
    /// The network topology.
    pub fn net(&self) -> &'a Network {
        self.net
    }

    /// All-pairs hop counts over *alive* links (the flooding scheme's
    /// distance-table source, "updated only upon change of the network
    /// topology").
    pub fn hops(&self) -> &'a AllPairsHops {
        self.hops
    }

    /// Returns `true` when the link is not failed — or when its byzantine
    /// owner advertises it as up regardless ([`ViewDistortion`]).
    pub fn alive(&self, l: LinkId) -> bool {
        if self.lie(l).is_some_and(|d| d.advertise_dead_as_up) {
            return true;
        }
        !self.failed[l.index()]
    }

    /// Unreserved bandwidth of `l` (`total − prime − spare`).
    pub fn free(&self, l: LinkId) -> Bandwidth {
        self.links[l.index()].free()
    }

    /// Bandwidth a backup may count on at `l` (`total − prime`).
    pub fn backup_headroom(&self, l: LinkId) -> Bandwidth {
        self.links[l.index()].backup_headroom()
    }

    /// The spare pool currently reserved on `l`.
    pub fn spare(&self, l: LinkId) -> Bandwidth {
        self.links[l.index()].spare()
    }

    /// Total capacity of `l`.
    pub fn capacity(&self, l: LinkId) -> Bandwidth {
        self.links[l.index()].capacity()
    }

    /// The APLV of `l`.
    pub fn aplv(&self, l: LinkId) -> &'a Aplv {
        &self.aplvs[l.index()]
    }

    /// `‖APLV_l‖₁` — P-LSR's advertised scalar, read from the incremental
    /// conflict engine's cache. A byzantine owner deflating conflicts
    /// advertises 0.
    pub fn l1_norm(&self, l: LinkId) -> u64 {
        if self.lie(l).is_some_and(|d| d.deflate_conflicts) {
            return 0;
        }
        self.conflict.l1_norm(l)
    }

    /// `Σ_{j ∈ lset} c_{l,j}` — D-LSR's conflict count of `l` against a
    /// primary link set, recomputed from the sparse APLV. This is the
    /// pre-incremental baseline path, kept for equivalence tests and the
    /// routing benchmarks; hot callers use
    /// [`ManagerView::conflict_overlap`].
    pub fn conflict_count(&self, l: LinkId, primary_lset: &[LinkId]) -> u32 {
        if self.lie(l).is_some_and(|d| d.deflate_conflicts) {
            return 0;
        }
        self.aplvs[l.index()].conflicts_with(primary_lset)
    }

    /// D-LSR's conflict count of `l` against a primary link set already
    /// densified via [`ConflictVector::from_links`] — a popcount over
    /// `CV_l ∩ LSET_P` on the incrementally maintained bitset.
    pub fn conflict_overlap(&self, l: LinkId, primary_lset: &ConflictVector) -> u32 {
        if self.lie(l).is_some_and(|d| d.deflate_conflicts) {
            return 0;
        }
        self.conflict.cv(l).and_count(primary_lset)
    }

    /// Densifies a primary link set for [`ManagerView::conflict_overlap`].
    pub fn densify_lset(&self, lset: &[LinkId]) -> ConflictVector {
        ConflictVector::from_links(self.net.num_links(), lset)
    }

    /// `true` when `l` is alive and can admit a primary of size `bw` from
    /// its free pool. A byzantine owner inflating headroom claims any
    /// `bw` up to the raw capacity fits.
    pub fn usable_for_primary(&self, l: LinkId, bw: Bandwidth) -> bool {
        if self.lie(l).is_some_and(|d| d.inflate_headroom) {
            return self.alive(l) && bw <= self.capacity(l);
        }
        self.alive(l) && self.links[l.index()].can_admit_primary(bw)
    }

    /// `true` when `l` is alive and offers at least `bw` of backup
    /// headroom (full capacity under a headroom-inflating lie).
    pub fn usable_for_backup(&self, l: LinkId, bw: Bandwidth) -> bool {
        if self.lie(l).is_some_and(|d| d.inflate_headroom) {
            return self.alive(l) && bw <= self.capacity(l);
        }
        self.alive(l) && bw <= self.backup_headroom(l)
    }
}

impl DrtpManager {
    /// Creates a manager over `net` with the paper's configuration.
    pub fn new(net: Arc<Network>) -> Self {
        Self::with_config(net, MultiplexConfig::paper())
    }

    /// Creates a manager with an explicit multiplexing configuration.
    pub fn with_config(net: Arc<Network>, cfg: MultiplexConfig) -> Self {
        let links = net
            .links()
            .map(|l| LinkResources::new(l.capacity()))
            .collect();
        let aplvs = vec![Aplv::new(); net.num_links()];
        let conflict = ConflictState::new(net.num_links());
        let incidence = IncidenceIndex::new(net.num_links());
        let failed = vec![false; net.num_links()];
        let hops = AllPairsHops::compute(&net);
        let spt = net
            .nodes()
            .map(|src| DynamicSpt::build(&net, src, |_| Some(1.0)))
            .collect();
        let route_cache = RouteCache::new(net.num_links());
        DrtpManager {
            net,
            cfg,
            links,
            aplvs,
            conflict,
            incidence,
            failed,
            conns: BTreeMap::new(),
            hops,
            spt,
            route_cache,
            maintenance: RouteMaintenance::default(),
            distortion: None,
            telemetry: Telemetry::default(),
        }
    }

    /// The active [`RouteMaintenance`] mode.
    pub fn route_maintenance(&self) -> RouteMaintenance {
        self.maintenance
    }

    /// Switches between incremental and baseline route maintenance.
    ///
    /// Entering [`RouteMaintenance::Incremental`] rebuilds the dynamic
    /// shortest-path trees from the current failed set; entering
    /// [`RouteMaintenance::Baseline`] drops them (the baseline recomputes
    /// the hop table wholesale instead). The hop table itself is
    /// identical in both modes, so switching mid-run changes *how*
    /// derived state is maintained, never its value.
    pub fn set_route_maintenance(&mut self, mode: RouteMaintenance) {
        if self.maintenance == mode {
            return;
        }
        self.maintenance = mode;
        match mode {
            RouteMaintenance::Incremental => {
                let failed = &self.failed;
                self.spt = self
                    .net
                    .nodes()
                    .map(|src| {
                        DynamicSpt::build(&self.net, src, |l| (!failed[l.index()]).then_some(1.0))
                    })
                    .collect();
            }
            RouteMaintenance::Baseline => self.spt.clear(),
        }
    }

    /// The network this manager operates on.
    pub fn net(&self) -> &Network {
        &self.net
    }

    /// The multiplexing configuration.
    pub fn config(&self) -> MultiplexConfig {
        self.cfg
    }

    /// A read-only view for route selection, carrying any active
    /// [`ViewDistortion`].
    pub fn view(&self) -> ManagerView<'_> {
        ManagerView {
            net: &self.net,
            links: &self.links,
            aplvs: &self.aplvs,
            conflict: &self.conflict,
            failed: &self.failed,
            hops: &self.hops,
            distortion: self.distortion.as_ref(),
        }
    }

    /// Installs (or clears, with `None`) a byzantine link-state
    /// distortion. Selection through [`DrtpManager::view`] sees the lies;
    /// admission keeps validating against ground truth.
    pub fn set_view_distortion(&mut self, distortion: Option<ViewDistortion>) {
        self.distortion = distortion;
    }

    /// The active distortion, if any.
    pub fn view_distortion(&self) -> Option<&ViewDistortion> {
        self.distortion.as_ref()
    }

    /// The manager's telemetry registry.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Mutable access to the telemetry registry, for drivers that record
    /// campaign-level metrics alongside the manager's own.
    pub fn telemetry_mut(&mut self) -> &mut Telemetry {
        &mut self.telemetry
    }

    /// Copies the current routable state into an owned [`StateSnapshot`]
    /// (the link-state database a router would hold after a full
    /// dissemination round).
    pub fn snapshot(&self) -> StateSnapshot {
        StateSnapshot {
            net: Arc::clone(&self.net),
            links: self.links.clone(),
            aplvs: self.aplvs.clone(),
            conflict: self.conflict.clone(),
            failed: self.failed.clone(),
            hops: self.hops.clone(),
        }
    }

    /// A digest of the *complete* manager state — every link ledger, APLV,
    /// failure mask, connection record, and hop table. Two managers with
    /// equal fingerprints are observationally identical; purity tests use
    /// this to prove probes mutate nothing (the `Display` rendering is a
    /// lossy summary and would miss e.g. a perturbed spare pool).
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        format!("{self:?}").hash(&mut h);
        h.finish()
    }

    /// The resource ledger of a link.
    pub fn link_resources(&self, l: LinkId) -> &LinkResources {
        &self.links[l.index()]
    }

    /// The APLV of a link.
    pub fn aplv(&self, l: LinkId) -> &Aplv {
        &self.aplvs[l.index()]
    }

    /// Returns `true` when `l` is currently failed.
    pub fn is_failed(&self, l: LinkId) -> bool {
        self.failed[l.index()]
    }

    /// Looks up a connection.
    pub fn connection(&self, id: ConnectionId) -> Option<&DrConnection> {
        self.conns.get(&id)
    }

    /// Iterates over all known connections in id order.
    pub fn connections(&self) -> impl Iterator<Item = &DrConnection> {
        self.conns.values()
    }

    /// Number of connections currently carrying traffic.
    pub fn active_connections(&self) -> usize {
        self.conns
            .values()
            .filter(|c| c.state().is_carrying_traffic())
            .count()
    }

    /// Number of connections in [`ConnectionState::Protected`].
    pub fn protected_connections(&self) -> usize {
        self.conns
            .values()
            .filter(|c| c.state() == ConnectionState::Protected)
            .count()
    }

    /// Sum of primary reservations over all links.
    pub fn total_prime(&self) -> Bandwidth {
        self.links.iter().map(|l| l.prime()).sum()
    }

    /// Sum of spare pools over all links.
    pub fn total_spare(&self) -> Bandwidth {
        self.links.iter().map(|l| l.spare()).sum()
    }

    /// Sum of free bandwidth over all links.
    pub fn total_free(&self) -> Bandwidth {
        self.links.iter().map(|l| l.free()).sum()
    }

    /// Number of links whose spare pool is below the APLV requirement —
    /// i.e. links where conflicting backups are multiplexed over the same
    /// spare resources (the degraded case of Section 5).
    pub fn spare_deficit_links(&self) -> usize {
        self.links
            .iter()
            .zip(&self.aplvs)
            .filter(|(lr, aplv)| lr.spare() < aplv.required_spare())
            .count()
    }

    /// Establishes a DR-connection using `scheme` for route selection.
    ///
    /// Performs the four management steps of Section 2.2: primary route
    /// selection and reservation, backup route selection, backup
    /// registration (APLV updates and spare sizing along the backup path),
    /// all atomically — a failed step rolls the earlier ones back.
    ///
    /// # Errors
    ///
    /// * [`DrtpError::DuplicateConnection`] — the id is in use;
    /// * [`DrtpError::NoPrimaryRoute`] / [`DrtpError::NoBackupRoute`] —
    ///   route selection failed;
    /// * [`DrtpError::InsufficientBandwidth`] — admission failed on a link
    ///   (selection raced with resource state; cannot happen with the
    ///   bundled schemes, which check feasibility);
    /// * [`DrtpError::QosViolation`] — a selected route exceeds the hop
    ///   cap;
    /// * [`DrtpError::InvalidSelection`] — the scheme returned a
    ///   structurally invalid pair.
    pub fn request_connection(
        &mut self,
        scheme: &mut dyn RoutingScheme,
        req: RouteRequest,
    ) -> Result<EstablishReport, DrtpError> {
        if self.conns.contains_key(&req.id) {
            // Checked before route selection so a duplicate id costs no
            // scheme work; admit_routes re-checks for its own callers.
            return Err(DrtpError::DuplicateConnection(req.id));
        }
        let res = scheme
            .select_routes(&self.view(), &req)
            .and_then(|pair| self.admit_routes(&req, pair));
        match &res {
            Ok(_) => self.telemetry.incr("establish.accepted"),
            Err(_) => self.telemetry.incr("establish.rejected"),
        }
        res
    }

    /// Admits a connection along externally selected routes — the second
    /// half of [`DrtpManager::request_connection`], exposed so callers can
    /// run route selection against a stale [`StateSnapshot`] (or any
    /// out-of-band source) and still go through the full admission,
    /// registration, and rollback machinery.
    ///
    /// # Errors
    ///
    /// As [`DrtpManager::request_connection`], except that no scheme is
    /// consulted. In particular a selection made on stale state can fail
    /// here with [`DrtpError::InsufficientBandwidth`] or
    /// [`DrtpError::LinkFailed`].
    pub fn admit_routes(
        &mut self,
        req: &RouteRequest,
        pair: crate::routing::RoutePair,
    ) -> Result<EstablishReport, DrtpError> {
        if self.conns.contains_key(&req.id) {
            return Err(DrtpError::DuplicateConnection(req.id));
        }
        self.validate_selection(req, &pair.primary, &pair.backups)?;
        if pair.backups.is_empty() && self.cfg.require_backup {
            return Err(DrtpError::NoBackupRoute(req.id));
        }

        let bw = req.bandwidth();
        self.admit_route_prime(pair.primary.links(), bw)
            .map_err(DrtpError::InsufficientBandwidth)?;

        let mut spare_grown = Bandwidth::ZERO;
        let mut conflicted = false;
        for (i, backup) in pair.backups.iter().enumerate() {
            if pair.dedicated_backup {
                if let Err(l) = self.admit_route_prime(backup.links(), bw) {
                    // Roll back everything admitted so far.
                    for done in &pair.backups[..i] {
                        self.release_route_prime(done.links(), bw);
                    }
                    self.release_route_prime(pair.primary.links(), bw);
                    return Err(DrtpError::InsufficientBandwidth(l));
                }
            } else {
                let (grown, had_conflicts) = self.register_backup(backup, pair.primary.links(), bw);
                spare_grown += grown;
                conflicted |= had_conflicts;
            }
        }

        // Index only after every admission step succeeded: the rollback
        // paths above must not have to unwind incidence entries.
        self.incidence.add_primary(pair.primary.links(), req.id);
        for backup in &pair.backups {
            self.incidence.add_backup(backup.links(), req.id);
            self.note_backup_installed(req.id, backup.links());
            self.remember_candidate(backup);
        }
        let conn = DrConnection::new(
            req.id,
            req.qos,
            pair.primary.clone(),
            pair.backups.clone(),
            pair.dedicated_backup,
        );
        self.conns.insert(req.id, conn);

        Ok(EstablishReport {
            id: req.id,
            primary: pair.primary,
            backups: pair.backups,
            dedicated_backup: pair.dedicated_backup,
            overhead: pair.overhead,
            spare_grown,
            conflicted,
        })
    }

    /// Finds and registers a new backup for an existing (unprotected or
    /// recovered) connection — DRTP's resource-reconfiguration step.
    ///
    /// # Errors
    ///
    /// [`DrtpError::UnknownConnection`] for unknown ids,
    /// [`DrtpError::InvalidSelection`] when the connection already has a
    /// backup or is failed, [`DrtpError::NoBackupRoute`] when the scheme
    /// finds none.
    pub fn reestablish_backup(
        &mut self,
        scheme: &mut dyn RoutingScheme,
        id: ConnectionId,
    ) -> Result<RoutingOverhead, DrtpError> {
        self.reestablish_backup_avoiding(scheme, id, &[])
    }

    /// [`DrtpManager::reestablish_backup`] with an extra exclusion set:
    /// links in `avoid` are presented to the scheme as failed and any
    /// selection crossing them is rejected. This is the seam the recovery
    /// orchestrator uses to keep flapping (quarantined) links out of new
    /// backup routes while they remain usable for established traffic.
    ///
    /// # Errors
    ///
    /// As [`DrtpManager::reestablish_backup`]; a route crossing `avoid`
    /// yields [`DrtpError::NoBackupRoute`].
    pub fn reestablish_backup_avoiding(
        &mut self,
        scheme: &mut dyn RoutingScheme,
        id: ConnectionId,
        avoid: &[LinkId],
    ) -> Result<RoutingOverhead, DrtpError> {
        let conn = self
            .conns
            .get(&id)
            .ok_or(DrtpError::UnknownConnection(id))?;
        if conn.state() == ConnectionState::Failed {
            return Err(DrtpError::InvalidSelection(format!(
                "connection {id} is not eligible for backup re-establishment"
            )));
        }
        let req = RouteRequest {
            id,
            src: conn.primary().source(),
            dst: conn.primary().dest(),
            qos: conn.qos(),
            num_backups: 1,
        };
        let primary = conn.primary().clone();
        let existing = conn.backups().to_vec();
        // Fast path: a cached candidate that survives ground-truth
        // validation installs without consulting the scheme at all — no
        // search, no control messages.
        if let Some(cached) = self.take_cached_backup(&req, &primary, &existing, avoid) {
            let bw = req.bandwidth();
            self.register_backup(&cached, primary.links(), bw);
            self.incidence.add_backup(cached.links(), id);
            self.note_backup_installed(id, cached.links());
            self.conns
                .get_mut(&id)
                .expect("checked above")
                .install_backup(cached, false);
            return Ok(RoutingOverhead::ZERO);
        }
        let mut masked = self.failed.clone();
        for &l in avoid {
            if l.index() < masked.len() {
                masked[l.index()] = true;
            }
        }
        let view = ManagerView {
            net: &self.net,
            links: &self.links,
            aplvs: &self.aplvs,
            conflict: &self.conflict,
            failed: &masked,
            hops: &self.hops,
            distortion: self.distortion.as_ref(),
        };
        let (backup, overhead) = scheme.select_backup(&view, &req, &primary, &existing)?;
        if backup.links().iter().any(|l| avoid.contains(l)) {
            // Defense against schemes that route without consulting
            // `alive()`: a quarantined link must never enter a new backup.
            return Err(DrtpError::NoBackupRoute(id));
        }
        self.validate_route(&req, &backup)?;
        if !req.qos.accepts_hops(backup.len()) {
            return Err(DrtpError::QosViolation(id));
        }
        let bw = req.bandwidth();
        self.register_backup(&backup, primary.links(), bw);
        self.incidence.add_backup(backup.links(), id);
        self.note_backup_installed(id, backup.links());
        self.remember_candidate(&backup);
        self.conns
            .get_mut(&id)
            .expect("checked above")
            .install_backup(backup, false);
        Ok(overhead)
    }

    /// Registers a caller-supplied backup route for a carrying connection
    /// (appended at lowest activation priority). The counterpart of
    /// [`DrtpManager::drop_backups`] for restoring or installing specific
    /// routes, e.g. rolling back a failed re-optimisation.
    ///
    /// # Errors
    ///
    /// [`DrtpError::UnknownConnection`] for unknown ids;
    /// [`DrtpError::InvalidSelection`] when the connection is failed, its
    /// backups are dedicated, or the route's endpoints mismatch;
    /// [`DrtpError::LinkFailed`] when the route crosses a failed link;
    /// [`DrtpError::QosViolation`] when the route exceeds the hop cap.
    pub fn install_backup_route(
        &mut self,
        id: ConnectionId,
        backup: Route,
    ) -> Result<(), DrtpError> {
        let conn = self
            .conns
            .get(&id)
            .ok_or(DrtpError::UnknownConnection(id))?;
        if conn.state() == ConnectionState::Failed {
            return Err(DrtpError::InvalidSelection(format!(
                "connection {id} is failed"
            )));
        }
        if conn.backup_is_dedicated() && conn.backup().is_some() {
            return Err(DrtpError::InvalidSelection(format!(
                "connection {id} holds dedicated backups"
            )));
        }
        let req = RouteRequest {
            id,
            src: conn.primary().source(),
            dst: conn.primary().dest(),
            qos: conn.qos(),
            num_backups: 1,
        };
        self.validate_route(&req, &backup)?;
        if !req.qos.accepts_hops(backup.len()) {
            return Err(DrtpError::QosViolation(id));
        }
        let bw = req.bandwidth();
        let primary_lset = self
            .conns
            .get(&id)
            .expect("checked above")
            .primary()
            .links()
            .to_vec();
        self.register_backup(&backup, &primary_lset, bw);
        self.incidence.add_backup(backup.links(), id);
        self.note_backup_installed(id, backup.links());
        self.remember_candidate(&backup);
        self.conns
            .get_mut(&id)
            .expect("checked above")
            .install_backup(backup, false);
        Ok(())
    }

    /// Drops every backup registration of a carrying connection, leaving
    /// it unprotected. Returns how many backups were dropped.
    ///
    /// Combined with [`DrtpManager::reestablish_backup`] this implements
    /// backup *re-optimisation*: a backup chosen under duress (e.g. while
    /// a link was down, forcing overlap with its primary) can be replaced
    /// once conditions improve — an instance of DRTP's resource
    /// reconfiguration step.
    ///
    /// # Errors
    ///
    /// [`DrtpError::UnknownConnection`] for unknown ids;
    /// [`DrtpError::InvalidSelection`] when the connection is failed.
    pub fn drop_backups(&mut self, id: ConnectionId) -> Result<usize, DrtpError> {
        let conn = self
            .conns
            .get(&id)
            .ok_or(DrtpError::UnknownConnection(id))?;
        if conn.state() == ConnectionState::Failed {
            return Err(DrtpError::InvalidSelection(format!(
                "connection {id} is failed"
            )));
        }
        let bw = conn.qos().bandwidth;
        let primary = conn.primary().clone();
        let dedicated = conn.backup_is_dedicated();
        let backups = self
            .conns
            .get_mut(&id)
            .expect("checked above")
            .clear_backups();
        for b in &backups {
            self.incidence.remove_backup(b.links(), id);
            if dedicated {
                self.release_route_prime(b.links(), bw);
            } else {
                self.unregister_backup(b, primary.links(), bw);
            }
        }
        self.note_backups_cleared(id);
        Ok(backups.len())
    }

    /// Terminates a connection and releases all its resources (step 4 of
    /// the management cycle).
    ///
    /// # Errors
    ///
    /// [`DrtpError::UnknownConnection`] when `id` is not known.
    pub fn release(&mut self, id: ConnectionId) -> Result<(), DrtpError> {
        let conn = self
            .conns
            .remove(&id)
            .ok_or(DrtpError::UnknownConnection(id))?;
        self.note_connection_released(id);
        if conn.state() == ConnectionState::Failed {
            // A failed connection's resources were already reclaimed when
            // the failure was processed.
            return Ok(());
        }
        let bw = conn.qos().bandwidth;
        self.incidence.remove_primary(conn.primary().links(), id);
        self.release_route_prime(conn.primary().links(), bw);
        for backup in conn.backups().to_vec() {
            self.incidence.remove_backup(backup.links(), id);
            if conn.backup_is_dedicated() {
                self.release_route_prime(backup.links(), bw);
            } else {
                self.unregister_backup(&backup, conn.primary().links(), bw);
            }
        }
        Ok(())
    }

    /// Checks every internal bookkeeping invariant, panicking with a
    /// description on the first violation. Intended for tests and
    /// debugging; cost is `O(connections × route length + links)`.
    ///
    /// # Panics
    ///
    /// Panics when an invariant is violated (see source for the list).
    pub fn assert_invariants(&self) {
        // 1. APLVs are exactly what the connection table implies.
        let mut expected: Vec<Aplv> = vec![Aplv::new(); self.net.num_links()];
        let mut expected_prime: Vec<Bandwidth> = vec![Bandwidth::ZERO; self.net.num_links()];
        for conn in self.conns.values() {
            if conn.state() == ConnectionState::Failed {
                continue;
            }
            let bw = conn.qos().bandwidth;
            for &l in conn.primary().links() {
                expected_prime[l.index()] += bw;
            }
            for b in conn.backups() {
                if conn.backup_is_dedicated() {
                    for &l in b.links() {
                        expected_prime[l.index()] += bw;
                    }
                } else {
                    for &l in b.links() {
                        expected[l.index()].register(conn.primary().links(), bw);
                    }
                }
            }
        }
        // 1b. The incremental conflict digests shadow the sparse APLVs
        //     exactly (dense CV bit-for-bit, cached ‖APLV‖₁).
        if let Some(l) = self.conflict.first_divergence(&self.aplvs) {
            panic!("incremental conflict state diverged from APLV on {l}");
        }
        // 1c. The link-incidence index is exactly what a rebuild from the
        //     connection table produces.
        let rebuilt = IncidenceIndex::rebuild(self.net.num_links(), self.conns.values());
        if let Some(l) = self.incidence.first_divergence(&rebuilt) {
            panic!("link-incidence index diverged from connection table on {l}");
        }
        // 1d. The route cache's dense masks mirror the failed set and the
        //     connection table, and no cached candidate crosses a failed
        //     link.
        self.audit_route_cache();
        // 1e. The (incrementally maintained) hop table is bit-for-bit what
        //     a full filtered recompute produces.
        let failed = &self.failed;
        let fresh = AllPairsHops::compute_filtered(&self.net, |l| !failed[l.index()]);
        if let Some((s, d)) = self.hops.first_divergence(&fresh) {
            panic!("hop table diverged from a full recompute at {s} -> {d}");
        }
        // 1f. Every dynamic shortest-path tree structurally certifies its
        //     distances under the current failed set (incremental mode).
        for spt in &self.spt {
            if let Some(n) = spt.certify(&self.net, |l| (!failed[l.index()]).then_some(1.0)) {
                panic!(
                    "dynamic SPT from {} failed certification at {n}",
                    spt.source()
                );
            }
        }
        // 2–3. Spare pools never exceed the APLV requirement, and the
        //      ledger is self-consistent (prime + spare ≤ capacity) —
        //      both via the pure predicates in [`crate::invariants`].
        for link in self.net.links() {
            let i = link.id().index();
            if let Err(v) = crate::invariants::check_link(
                &self.links[i],
                &self.aplvs[i],
                expected_prime[i],
                &expected[i],
            ) {
                panic!("{} on {}", v, link.id());
            }
        }
    }

    // ---- internal resource plumbing (shared with `failure`) ----

    /// Admits `bw` on every link, rolling back on the first failure and
    /// returning the offending link.
    pub(crate) fn admit_route_prime(
        &mut self,
        links: &[LinkId],
        bw: Bandwidth,
    ) -> Result<(), LinkId> {
        for (i, l) in links.iter().enumerate() {
            let ok = !self.failed[l.index()] && self.links[l.index()].admit_primary(bw).is_ok();
            if !ok {
                for r in &links[..i] {
                    self.links[r.index()].release_primary(bw);
                }
                return Err(*l);
            }
        }
        Ok(())
    }

    pub(crate) fn release_route_prime(&mut self, links: &[LinkId], bw: Bandwidth) {
        for l in links {
            self.links[l.index()].release_primary(bw);
        }
    }

    /// Registers a backup along `route` (APLV updates + spare sizing).
    /// Returns `(spare grown, conflicted)`.
    pub(crate) fn register_backup(
        &mut self,
        route: &Route,
        primary_lset: &[LinkId],
        bw: Bandwidth,
    ) -> (Bandwidth, bool) {
        let mut grown = Bandwidth::ZERO;
        let mut conflicted = false;
        // Reused across the route's links: `register_with` only pushes the
        // 0→1 transitions, which the conflict engine replays onto `CV_i`.
        let mut became_set = Vec::new();
        for &l in route.links() {
            let i = l.index();
            conflicted |= self.aplvs[i].conflicts_with(primary_lset) > 0;
            became_set.clear();
            self.aplvs[i].register_with(primary_lset, bw, |j| became_set.push(j));
            self.conflict
                .apply_register(l, &became_set, primary_lset.len());
            if self.cfg.spare == SparePolicy::GrowToRequirement {
                grown += self.links[i].grow_spare_toward(self.aplvs[i].required_spare());
            }
        }
        (grown, conflicted)
    }

    /// Reverses [`DrtpManager::register_backup`], shrinking spare pools to
    /// the new requirement.
    pub(crate) fn unregister_backup(
        &mut self,
        route: &Route,
        primary_lset: &[LinkId],
        bw: Bandwidth,
    ) {
        let mut became_clear = Vec::new();
        for &l in route.links() {
            let i = l.index();
            became_clear.clear();
            self.aplvs[i].unregister_with(primary_lset, bw, |j| became_clear.push(j));
            self.conflict
                .apply_unregister(l, &became_clear, primary_lset.len());
            self.links[i].shrink_spare_to(self.aplvs[i].required_spare());
        }
    }

    /// Recomputes the all-pairs hop table wholesale (one BFS per node) —
    /// the [`RouteMaintenance::Baseline`] maintenance path, kept public as
    /// the reference arm the incremental repair is proven bit-for-bit
    /// equivalent to by tests and benchmarked against.
    pub fn recompute_hops_baseline(&mut self) {
        let failed = &self.failed;
        self.hops = AllPairsHops::compute_filtered(&self.net, |l| !failed[l.index()]);
    }

    /// Refreshes the hop table after the links in `changed` flipped
    /// between alive and failed. In [`RouteMaintenance::Incremental`] mode
    /// each node's dynamic shortest-path tree is *repaired* with the delta
    /// and only the rows whose tree actually moved are rewritten; in
    /// [`RouteMaintenance::Baseline`] mode this falls back to the full
    /// recompute. Both arms yield bit-identical tables (invariant 1e).
    pub(crate) fn hops_changed(&mut self, changed: &[LinkId]) {
        match self.maintenance {
            RouteMaintenance::Baseline => self.recompute_hops_baseline(),
            RouteMaintenance::Incremental => {
                if changed.is_empty() {
                    return;
                }
                let failed = &self.failed;
                let cost = |l: LinkId| (!failed[l.index()]).then_some(1.0);
                for spt in &mut self.spt {
                    if spt.update_links(&self.net, changed, cost) {
                        // Unit costs make distances exact hop counts.
                        self.hops
                            .set_row(spt.source(), |dst| spt.distance(dst).map(|d| d as u32));
                    }
                }
            }
        }
    }

    fn validate_selection(
        &self,
        req: &RouteRequest,
        primary: &Route,
        backups: &[Route],
    ) -> Result<(), DrtpError> {
        self.validate_route(req, primary)?;
        if !req.qos.accepts_hops(primary.len()) {
            return Err(DrtpError::QosViolation(req.id));
        }
        for b in backups {
            self.validate_route(req, b)?;
            if !req.qos.accepts_hops(b.len()) {
                return Err(DrtpError::QosViolation(req.id));
            }
        }
        Ok(())
    }

    fn validate_route(&self, req: &RouteRequest, route: &Route) -> Result<(), DrtpError> {
        if route.source() != req.src || route.dest() != req.dst {
            return Err(DrtpError::InvalidSelection(format!(
                "route endpoints {} -> {} do not match request {} -> {}",
                route.source(),
                route.dest(),
                req.src,
                req.dst
            )));
        }
        for &l in route.links() {
            if l.index() >= self.net.num_links() {
                return Err(DrtpError::InvalidSelection(format!("unknown link {l}")));
            }
            if self.failed[l.index()] {
                // Distinct from InvalidSelection: a selection made on a
                // stale snapshot can legitimately reference a link that
                // failed since.
                return Err(DrtpError::LinkFailed(l));
            }
        }
        Ok(())
    }
}

impl fmt::Display for DrtpManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "drtp manager: {} connections ({} protected), prime {}, spare {}, free {}",
            self.conns.len(),
            self.protected_connections(),
            self.total_prime(),
            self.total_spare(),
            self.total_free()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::{DLsr, PrimaryOnly};
    use drt_net::{topology, NodeId};

    const BW: Bandwidth = Bandwidth::from_kbps(3_000);

    fn mesh_manager() -> DrtpManager {
        let net = Arc::new(topology::mesh(3, 3, Bandwidth::from_mbps(10)).unwrap());
        DrtpManager::new(net)
    }

    fn req(id: u64, src: u32, dst: u32) -> RouteRequest {
        RouteRequest::new(
            ConnectionId::new(id),
            NodeId::new(src),
            NodeId::new(dst),
            BW,
        )
    }

    #[test]
    fn establish_release_roundtrip() {
        let mut mgr = mesh_manager();
        let mut scheme = DLsr::new();
        let report = mgr.request_connection(&mut scheme, req(0, 0, 8)).unwrap();
        assert_eq!(report.id, ConnectionId::new(0));
        assert!(report.backup().is_some());
        assert_eq!(mgr.active_connections(), 1);
        assert_eq!(mgr.protected_connections(), 1);
        assert!(mgr.total_prime() > Bandwidth::ZERO);
        mgr.assert_invariants();

        mgr.release(ConnectionId::new(0)).unwrap();
        assert_eq!(mgr.active_connections(), 0);
        assert_eq!(mgr.total_prime(), Bandwidth::ZERO);
        assert_eq!(mgr.total_spare(), Bandwidth::ZERO);
        mgr.assert_invariants();
    }

    #[test]
    fn duplicate_id_rejected() {
        let mut mgr = mesh_manager();
        let mut scheme = DLsr::new();
        mgr.request_connection(&mut scheme, req(0, 0, 8)).unwrap();
        let err = mgr
            .request_connection(&mut scheme, req(0, 1, 7))
            .unwrap_err();
        assert_eq!(err, DrtpError::DuplicateConnection(ConnectionId::new(0)));
    }

    #[test]
    fn unknown_release_rejected() {
        let mut mgr = mesh_manager();
        assert_eq!(
            mgr.release(ConnectionId::new(9)).unwrap_err(),
            DrtpError::UnknownConnection(ConnectionId::new(9))
        );
    }

    #[test]
    fn backupless_admission_follows_config() {
        let net = Arc::new(topology::mesh(3, 3, Bandwidth::from_mbps(10)).unwrap());
        let mut scheme = PrimaryOnly::new();
        // Strict config requires a backup.
        let mut strict = DrtpManager::with_config(
            Arc::clone(&net),
            crate::multiplex::MultiplexConfig::strict(),
        );
        let err = strict
            .request_connection(&mut scheme, req(0, 0, 8))
            .unwrap_err();
        assert_eq!(err, DrtpError::NoBackupRoute(ConnectionId::new(0)));

        // The paper's (default) config admits unprotected.
        let mut relaxed = DrtpManager::new(net);
        let report = relaxed
            .request_connection(&mut scheme, req(0, 0, 8))
            .unwrap();
        assert!(report.backup().is_none());
        assert_eq!(
            relaxed.connection(ConnectionId::new(0)).unwrap().state(),
            ConnectionState::Unprotected
        );
        assert_eq!(relaxed.total_spare(), Bandwidth::ZERO);
        relaxed.assert_invariants();
    }

    #[test]
    fn spare_pool_grows_with_conflicting_backups() {
        // Ring: all connections between the same endpoints share both the
        // primary (one way) and backup (other way) routes, so every
        // additional backup conflicts and must grow the spare pool.
        let net = Arc::new(topology::ring(6, Bandwidth::from_mbps(10)).unwrap());
        let mut mgr = DrtpManager::new(net);
        let mut scheme = DLsr::new();
        let r1 = mgr.request_connection(&mut scheme, req(0, 0, 2)).unwrap();
        assert!(!r1.conflicted);
        assert_eq!(r1.spare_grown, BW.times(r1.backup().unwrap().len() as u64));
        let r2 = mgr.request_connection(&mut scheme, req(1, 0, 2)).unwrap();
        // Same endpoints on a ring: primaries overlap, backups overlap.
        assert!(r2.conflicted);
        assert!(
            r2.spare_grown > Bandwidth::ZERO,
            "paper: grow spare on conflict"
        );
        mgr.assert_invariants();

        // Releasing one connection shrinks the spare pool again.
        let spare_before = mgr.total_spare();
        mgr.release(ConnectionId::new(1)).unwrap();
        assert!(mgr.total_spare() < spare_before);
        mgr.assert_invariants();
    }

    #[test]
    fn non_conflicting_backups_share_spare() {
        // Figure 1's lesson: backups whose primaries are disjoint share the
        // same spare without growth. Construct it on a 3x3 mesh:
        // D1: 0 -> 2 along the top row; D2: 6 -> 8 along the bottom row.
        // Their backups may share middle-row links; primaries are disjoint.
        let mut mgr = mesh_manager();
        let mut scheme = DLsr::new();
        mgr.request_connection(&mut scheme, req(0, 0, 2)).unwrap();
        mgr.request_connection(&mut scheme, req(1, 6, 8)).unwrap();
        mgr.assert_invariants();
        for link in mgr.net().links() {
            let aplv = mgr.aplv(link.id());
            // No single failure activates two backups anywhere.
            assert!(
                aplv.max_count() <= 1,
                "unexpected conflict on {}",
                link.id()
            );
        }
    }

    #[test]
    fn capacity_exhaustion_rejects() {
        // Tiny capacity: one 3 Mb/s connection with a dedicated route pair
        // fits, further ones must be rejected eventually.
        let net = Arc::new(topology::ring(4, Bandwidth::from_kbps(3_000)).unwrap());
        let mut mgr = DrtpManager::new(net);
        let mut scheme = DLsr::new();
        let mut admitted = 0;
        for i in 0..10 {
            if mgr.request_connection(&mut scheme, req(i, 0, 2)).is_ok() {
                admitted += 1;
            }
        }
        assert!(admitted >= 1);
        assert!(admitted < 10, "capacity must bound admissions");
        mgr.assert_invariants();
    }

    #[test]
    fn qos_hop_cap_enforced() {
        let mut mgr = mesh_manager();
        let mut scheme = DLsr::new();
        let mut r = req(0, 0, 8);
        // 0 -> 8 needs 4 hops minimum; backup will be >= 4 too. A cap of 4
        // will reject whichever route exceeds it.
        r.qos = r.qos.with_max_hops(4);
        let out = mgr.request_connection(&mut scheme, r);
        match out {
            Err(DrtpError::QosViolation(_)) => {}
            Ok(rep) => {
                assert!(rep.primary.len() <= 4);
                assert!(rep.backup().unwrap().len() <= 4);
            }
            Err(e) => panic!("unexpected error {e}"),
        }
        mgr.assert_invariants();
    }

    #[test]
    fn drop_backups_unprotects_and_frees_spare() {
        let mut mgr = mesh_manager();
        let mut scheme = DLsr::new();
        mgr.request_connection(&mut scheme, req(0, 0, 8)).unwrap();
        assert!(mgr.total_spare() > Bandwidth::ZERO);
        let dropped = mgr.drop_backups(ConnectionId::new(0)).unwrap();
        assert_eq!(dropped, 1);
        assert_eq!(mgr.total_spare(), Bandwidth::ZERO);
        assert_eq!(
            mgr.connection(ConnectionId::new(0)).unwrap().state(),
            ConnectionState::Unprotected
        );
        mgr.assert_invariants();
        // Re-establish restores protection (re-optimisation round-trip).
        mgr.reestablish_backup(&mut scheme, ConnectionId::new(0))
            .unwrap();
        assert_eq!(
            mgr.connection(ConnectionId::new(0)).unwrap().state(),
            ConnectionState::Protected
        );
        mgr.assert_invariants();
        // Unknown / failed connections are rejected.
        assert_eq!(
            mgr.drop_backups(ConnectionId::new(9)).unwrap_err(),
            DrtpError::UnknownConnection(ConnectionId::new(9))
        );
    }

    #[test]
    fn install_backup_route_restores_specific_route() {
        let mut mgr = mesh_manager();
        let mut scheme = DLsr::new();
        let rep = mgr.request_connection(&mut scheme, req(0, 0, 8)).unwrap();
        let original = rep.backups[0].clone();
        mgr.drop_backups(ConnectionId::new(0)).unwrap();
        mgr.install_backup_route(ConnectionId::new(0), original.clone())
            .unwrap();
        let conn = mgr.connection(ConnectionId::new(0)).unwrap();
        assert_eq!(conn.backups(), std::slice::from_ref(&original));
        assert_eq!(conn.state(), ConnectionState::Protected);
        mgr.assert_invariants();
        // Endpoint mismatch rejected.
        let bogus = drt_net::Route::from_nodes(
            mgr.net(),
            &[drt_net::NodeId::new(0), drt_net::NodeId::new(1)],
        )
        .unwrap();
        assert!(matches!(
            mgr.install_backup_route(ConnectionId::new(0), bogus),
            Err(DrtpError::InvalidSelection(_))
        ));
    }

    #[test]
    fn incremental_hops_match_baseline_recompute() {
        let mut mgr = mesh_manager();
        let mut scheme = DLsr::new();
        mgr.request_connection(&mut scheme, req(0, 0, 8)).unwrap();
        let mut rng = drt_sim::rng::stream(11, "hops-parity");
        let l = drt_net::LinkId::new(3);
        mgr.inject_failure(l, &mut rng).unwrap();
        // The incrementally repaired table must equal a from-scratch
        // filtered recompute bit-for-bit, before and after repair.
        let incremental = mgr.view().hops().clone();
        mgr.recompute_hops_baseline();
        assert_eq!(incremental.first_divergence(mgr.view().hops()), None);
        mgr.repair_link(l).unwrap();
        mgr.assert_invariants();
    }

    #[test]
    fn display_mentions_counts() {
        let mgr = mesh_manager();
        assert!(mgr.to_string().contains("0 connections"));
    }
}
