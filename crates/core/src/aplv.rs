//! The Accumulated Primary-route Link Vector (APLV) and Conflict Vector
//! (CV).
//!
//! For a link `L_i`, the paper defines (Section 2.1):
//!
//! > `APLV_i`: … whose `j`-th element, denoted by `a_{i,j}`, represents the
//! > total number of primary channels that traverse link `L_j` and whose
//! > backup channels go through link `L_i`.
//!
//! `a_{i,j}` is exactly the number of backups on `L_i` that a failure of
//! `L_j` would activate *simultaneously* — the contention the spare pool of
//! `L_i` must absorb. Three derived quantities drive the protocol:
//!
//! * `‖APLV_i‖₁` — P-LSR's advertised scalar (total conflict mass);
//! * `CV_i` — D-LSR's bit-vector (`c_{i,j} = 1 ⇔ a_{i,j} > 0`);
//! * `max_j a_{i,j}` — the spare-sizing requirement of Section 5 (enough
//!   spare for the worst single link failure).
//!
//! This implementation additionally accumulates, per `j`, the *bandwidth*
//! of the contending backups, so spare sizing stays correct even when
//! connections have heterogeneous bandwidths (the paper assumes uniform
//! bandwidth, under which `bandwidth_j = a_{i,j} · bw_req`).

use drt_net::{Bandwidth, LinkId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Per-`j` accumulation inside an [`Aplv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
struct AplvEntry {
    count: u32,
    bandwidth: Bandwidth,
}

/// Which bandwidths an APLV's registrations have carried so far.
///
/// Sticky: once two different values are seen the vector stays `Mixed`
/// even if the odd registration is later released — conservative, and it
/// keeps the mode a pure function of the registration *history* (so it
/// needs no bookkeeping of its own).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
enum BwMode {
    /// No registration seen yet.
    #[default]
    Empty,
    /// Every registration so far carried exactly this bandwidth.
    Uniform(Bandwidth),
    /// Heterogeneous bandwidths; `required_spare` scans.
    Mixed,
}

/// The APLV of one link: per primary-route link `L_j`, the number (and
/// total bandwidth) of backups on this link whose primaries traverse `L_j`.
///
/// Stored as a dense vector indexed by `j` (grown on demand), because the
/// manager touches one element per `(backup link, primary link)` pair on
/// every registration and release — the inner loop of connection teardown
/// and failure recovery — and a map lookup per element dominated
/// failure-event handling.
///
/// The worst-case spare requirement (`max_j bandwidth_j`) is kept O(1) to
/// read *and* maintain by exploiting the paper's uniform-bandwidth
/// assumption: while every registration on this link carries the same
/// bandwidth, `bandwidth_j = a_{i,j} · bw` and the maximum bandwidth is
/// the maximum count — which moves by at most one per element update, so
/// a count histogram tracks it with no rescans (the classic decremental
/// trick for ±1 counters). The first registration with a *different*
/// bandwidth flips the vector into mixed mode, where
/// [`Aplv::required_spare`] degrades to the pre-optimization linear scan;
/// correctness is mode-independent and cross-checked by the manager's
/// invariant audit.
///
/// # Example
///
/// The worked example of the paper's Figure 1: backups `B₁` and `B₃` run
/// through `L₇`; `LSET_{P₁} = {L₈, L₁₂, L₁₃}` and `LSET_{P₃} = {L₁₁, L₁₃}`:
///
/// ```
/// use drt_core::Aplv;
/// use drt_net::{Bandwidth, LinkId};
///
/// let bw = Bandwidth::from_kbps(3_000);
/// let l = |i| LinkId::new(i);
/// let mut aplv7 = Aplv::new();
/// aplv7.register(&[l(8), l(12), l(13)], bw); // B1's primary LSET
/// aplv7.register(&[l(11), l(13)], bw);       // B3's primary LSET
///
/// // APLV_7 = (…, a_{7,8}=1, …, a_{7,11}=1, a_{7,12}=1, a_{7,13}=2)
/// assert_eq!(aplv7.count(l(8)), 1);
/// assert_eq!(aplv7.count(l(11)), 1);
/// assert_eq!(aplv7.count(l(12)), 1);
/// assert_eq!(aplv7.count(l(13)), 2);
/// assert_eq!(aplv7.l1_norm(), 5);
/// assert_eq!(aplv7.max_count(), 2);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Aplv {
    entries: Vec<AplvEntry>,
    l1: u64,
    /// `hist[c]` = number of entries with `count == c`, for `c ≥ 1`
    /// (index 0 is unused). Supports the O(1) running maximum.
    hist: Vec<u32>,
    /// `max_j a_{i,j}`, maintained through every element update.
    max_count: u32,
    /// Uniformity of the registered bandwidths (see [`BwMode`]).
    bw_mode: BwMode,
}

/// Two APLVs are equal when they agree element-wise — trailing
/// never-registered elements are zero and do not distinguish them, so an
/// APLV rebuilt from scratch compares equal to one grown and shrunk
/// incrementally (the comparison `assert_invariants` relies on). The
/// derived maxima are compared through their *values* ([`Aplv::max_count`],
/// [`Aplv::required_spare`]) rather than the histogram/mode internals: a
/// rebuilt vector may lawfully be `Uniform` where the live one went
/// `Mixed` over a since-released registration, but both must agree on
/// every derived quantity — which is exactly what the invariant audit
/// needs cross-checked.
impl PartialEq for Aplv {
    fn eq(&self, other: &Self) -> bool {
        let n = self.entries.len().max(other.entries.len());
        let elem = |a: &Aplv, i: usize| a.entries.get(i).copied().unwrap_or_default();
        self.l1 == other.l1
            && self.max_count == other.max_count
            && self.required_spare() == other.required_spare()
            && (0..n).all(|i| elem(self, i) == elem(other, i))
    }
}

impl Eq for Aplv {}

impl Aplv {
    /// Creates an empty APLV (no backups registered).
    pub fn new() -> Self {
        Self::default()
    }

    /// The element for `j`, growing the dense vector as needed.
    fn entry_mut(&mut self, j: LinkId) -> &mut AplvEntry {
        let i = j.index();
        if i >= self.entries.len() {
            self.entries.resize(i + 1, AplvEntry::default());
        }
        &mut self.entries[i]
    }

    /// Folds one registration's bandwidth into the uniformity mode.
    fn note_bw(&mut self, bw: Bandwidth) {
        self.bw_mode = match self.bw_mode {
            BwMode::Empty => BwMode::Uniform(bw),
            BwMode::Uniform(b) if b == bw => BwMode::Uniform(b),
            _ => BwMode::Mixed,
        };
    }

    /// Moves one entry's count `c → c + 1` in the histogram. O(1).
    fn hist_up(&mut self, c: u32) {
        if c > 0 {
            self.hist[c as usize] -= 1;
        }
        let nc = (c + 1) as usize;
        if nc >= self.hist.len() {
            self.hist.resize(nc + 1, 0);
        }
        self.hist[nc] += 1;
        self.max_count = self.max_count.max(c + 1);
    }

    /// Moves one entry's count `c → c - 1` in the histogram. O(1): when
    /// the last entry at the maximum drops, the new maximum is exactly
    /// `c - 1` (the entry just moved there, or nothing is left).
    fn hist_down(&mut self, c: u32) {
        self.hist[c as usize] -= 1;
        if c > 1 {
            self.hist[(c - 1) as usize] += 1;
        }
        if c == self.max_count && self.hist[c as usize] == 0 {
            self.max_count = c - 1;
        }
    }

    /// Registers a backup whose primary has link set `primary_lset` and
    /// bandwidth `bw`: increments `a_{i,j}` for every `j ∈ primary_lset`.
    pub fn register(&mut self, primary_lset: &[LinkId], bw: Bandwidth) {
        self.register_with(primary_lset, bw, |_| {});
    }

    /// Like [`Aplv::register`], but invokes `became_set(j)` for every `j`
    /// whose count transitions 0 → 1 — the exact moments the dense
    /// conflict-vector bit `c_{i,j}` flips on. This is the delta hook the
    /// incremental conflict engine uses to keep its bitsets in lockstep
    /// without rescanning the map.
    pub fn register_with(
        &mut self,
        primary_lset: &[LinkId],
        bw: Bandwidth,
        mut became_set: impl FnMut(LinkId),
    ) {
        if !primary_lset.is_empty() {
            self.note_bw(bw);
        }
        for &j in primary_lset {
            let e = self.entry_mut(j);
            let c = e.count;
            e.count += 1;
            e.bandwidth += bw;
            self.l1 += 1;
            self.hist_up(c);
            if c == 0 {
                became_set(j);
            }
        }
    }

    /// Removes a previously registered backup (same `primary_lset` and
    /// `bw` as at registration).
    ///
    /// # Panics
    ///
    /// Panics if the registration is not present — that indicates corrupted
    /// bookkeeping, which must never be silently ignored.
    pub fn unregister(&mut self, primary_lset: &[LinkId], bw: Bandwidth) {
        self.unregister_with(primary_lset, bw, |_| {});
    }

    /// Like [`Aplv::unregister`], but invokes `became_clear(j)` for every
    /// `j` whose count transitions 1 → 0 — the moments `c_{i,j}` flips off.
    ///
    /// # Panics
    ///
    /// Same contract as [`Aplv::unregister`].
    pub fn unregister_with(
        &mut self,
        primary_lset: &[LinkId],
        bw: Bandwidth,
        mut became_clear: impl FnMut(LinkId),
    ) {
        for &j in primary_lset {
            let e = self
                .entries
                .get_mut(j.index())
                .filter(|e| e.count > 0)
                .expect("unregister of unknown aplv entry");
            let c = e.count;
            e.count -= 1;
            e.bandwidth -= bw;
            let (cleared, new_bw) = (e.count == 0, e.bandwidth);
            self.l1 -= 1;
            self.hist_down(c);
            if cleared {
                assert!(new_bw.is_zero(), "aplv bandwidth residue at {j}");
                became_clear(j);
            }
        }
    }

    /// `a_{i,j}` — the number of backups through this link whose primaries
    /// traverse `j`.
    pub fn count(&self, j: LinkId) -> u32 {
        self.entries.get(j.index()).map_or(0, |e| e.count)
    }

    /// Total bandwidth of the backups counted by [`Aplv::count`] at `j` —
    /// the spare bandwidth a failure of `j` would demand from this link.
    pub fn bandwidth(&self, j: LinkId) -> Bandwidth {
        self.entries
            .get(j.index())
            .map_or(Bandwidth::ZERO, |e| e.bandwidth)
    }

    /// `‖APLV‖₁ = Σ_j a_{i,j}` — P-LSR's advertised link cost.
    pub fn l1_norm(&self) -> u64 {
        self.l1
    }

    /// `max_j a_{i,j}` — the number of backups a worst-case single link
    /// failure would activate here (Section 5's spare-sizing count).
    /// O(1) via the count histogram.
    pub fn max_count(&self) -> u32 {
        self.max_count
    }

    /// `max_j bandwidth_j` — the spare bandwidth required to survive the
    /// worst-case single link failure without any activation loss.
    ///
    /// O(1) while every registration carried the same bandwidth (the
    /// paper's operating regime): the maximum bandwidth is then the
    /// maximum count times that bandwidth. The manager consults this per
    /// backup link on every registration and release, where any
    /// per-element structure or scan dominated failure-event handling.
    /// Heterogeneous-bandwidth vectors take the linear scan instead.
    pub fn required_spare(&self) -> Bandwidth {
        match self.bw_mode {
            BwMode::Empty => Bandwidth::ZERO,
            BwMode::Uniform(bw) => bw * u64::from(self.max_count),
            BwMode::Mixed => self
                .entries
                .iter()
                .map(|e| e.bandwidth)
                .max()
                .unwrap_or(Bandwidth::ZERO),
        }
    }

    /// Number of links `j` for which `c_{i,j} = 1` (i.e. `a_{i,j} > 0`)
    /// **and** `j` is in the given primary link set — D-LSR's per-link cost
    /// term `Σ_{L_j ∈ LSET_{P_x}} c_{i,j}`.
    pub fn conflicts_with(&self, primary_lset: &[LinkId]) -> u32 {
        primary_lset.iter().filter(|j| self.count(**j) > 0).count() as u32
    }

    /// Returns `true` when no backups are registered.
    pub fn is_empty(&self) -> bool {
        self.l1 == 0
    }

    /// Iterates over the nonzero elements as `(j, count, bandwidth)`, in
    /// link order.
    pub fn iter(&self) -> impl Iterator<Item = (LinkId, u32, Bandwidth)> + '_ {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.count > 0)
            .map(|(j, e)| (LinkId::new(j as u32), e.count, e.bandwidth))
    }

    /// Extracts the Conflict Vector (`CV_i`) of D-LSR: one bit per link of
    /// a network with `num_links` links.
    pub fn conflict_vector(&self, num_links: usize) -> ConflictVector {
        let mut cv = ConflictVector::zeros(num_links);
        for (j, _, _) in self.iter() {
            if j.index() < num_links {
                cv.set(j);
            }
        }
        cv
    }
}

impl fmt::Display for Aplv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "APLV{{")?;
        for (i, (j, count, _)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{j}:{count}")?;
        }
        write!(f, "}} (l1={})", self.l1)
    }
}

/// D-LSR's Conflict Vector: an `N`-bit vector with bit `j` set iff at least
/// one primary through `L_j` has its backup on the owning link.
///
/// The paper's Figure 2 example (`CV₆` built from `PSET₆ = {P₁, P₂}`) is
/// reproduced in this module's tests; a minimal usage:
///
/// ```
/// use drt_core::Aplv;
/// use drt_net::{Bandwidth, LinkId};
///
/// let mut aplv = Aplv::new();
/// aplv.register(&[LinkId::new(0), LinkId::new(2)], Bandwidth::from_kbps(1));
/// let cv = aplv.conflict_vector(4);
/// assert!(cv.get(LinkId::new(0)));
/// assert!(!cv.get(LinkId::new(1)));
/// assert!(cv.get(LinkId::new(2)));
/// assert_eq!(cv.ones(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConflictVector {
    bits: Vec<u64>,
    len: usize,
}

impl ConflictVector {
    /// An all-zero vector for a network of `num_links` links.
    pub fn zeros(num_links: usize) -> Self {
        ConflictVector {
            bits: vec![0; num_links.div_ceil(64)],
            len: num_links,
        }
    }

    /// Number of links the vector covers (`N`).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the vector covers zero links.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A vector with exactly the given links' bits set — the dense form of
    /// a primary's `LSET`, built once per routing request so every relaxed
    /// link pays a word-wise popcount instead of per-element map lookups.
    pub fn from_links(num_links: usize, lset: &[LinkId]) -> Self {
        let mut cv = Self::zeros(num_links);
        for &j in lset {
            cv.set(j);
        }
        cv
    }

    /// Sets bit `j`.
    ///
    /// # Panics
    ///
    /// Panics when `j` is out of range.
    pub fn set(&mut self, j: LinkId) {
        assert!(j.index() < self.len, "conflict vector index out of range");
        self.bits[j.index() / 64] |= 1 << (j.index() % 64);
    }

    /// Clears bit `j`.
    ///
    /// # Panics
    ///
    /// Panics when `j` is out of range.
    pub fn clear(&mut self, j: LinkId) {
        assert!(j.index() < self.len, "conflict vector index out of range");
        self.bits[j.index() / 64] &= !(1 << (j.index() % 64));
    }

    /// Clears every bit, keeping the covered length — the O(N/64) bulk
    /// reset the probe workspace uses to recycle its event mask between
    /// probes.
    pub fn clear_all(&mut self) {
        self.bits.iter_mut().for_each(|w| *w = 0);
    }

    /// Reads bit `j` (`c_{i,j}`); out-of-range indices read as 0.
    pub fn get(&self, j: LinkId) -> bool {
        if j.index() >= self.len {
            return false;
        }
        self.bits[j.index() / 64] >> (j.index() % 64) & 1 == 1
    }

    /// Number of set bits.
    pub fn ones(&self) -> u32 {
        self.bits.iter().map(|w| w.count_ones()).sum()
    }

    /// Number of set bits among the given links — D-LSR's cost term.
    pub fn overlap(&self, lset: &[LinkId]) -> u32 {
        lset.iter().filter(|j| self.get(**j)).count() as u32
    }

    /// Popcount of the word-wise intersection with `other` — D-LSR's cost
    /// term `Σ_{L_j ∈ LSET_P} c_{i,j}` when `other` is the dense form of
    /// the primary's `LSET` (see [`ConflictVector::from_links`]). O(N/64)
    /// regardless of how many conflicts are registered.
    pub fn and_count(&self, other: &ConflictVector) -> u32 {
        self.bits
            .iter()
            .zip(&other.bits)
            .map(|(a, b)| (a & b).count_ones())
            .sum()
    }

    /// The size of this vector on the wire, in bytes (`⌈N/8⌉`) — used by
    /// the route-discovery overhead experiment to model D-LSR's larger
    /// link-state advertisements.
    pub fn wire_bytes(&self) -> usize {
        self.len.div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BW: Bandwidth = Bandwidth::from_kbps(3_000);

    fn l(i: u32) -> LinkId {
        LinkId::new(i)
    }

    /// Figure 1 of the paper: APLV₇ with `PSET₇ = {P₁, P₃}`,
    /// `LSET_{P₁} = {L₈, L₁₂, L₁₃}`, `LSET_{P₃} = {L₁₁, L₁₃}` yields
    /// `APLV₇ = (0,0,0,0,0,0,0,1,0,0,1,1,2)` (1-indexed positions 8, 11,
    /// 12, 13).
    #[test]
    fn paper_figure_1_aplv7() {
        let mut aplv = Aplv::new();
        aplv.register(&[l(8), l(12), l(13)], BW);
        aplv.register(&[l(11), l(13)], BW);
        let expected = [
            (1, 0),
            (2, 0),
            (3, 0),
            (4, 0),
            (5, 0),
            (6, 0),
            (7, 0),
            (8, 1),
            (9, 0),
            (10, 0),
            (11, 1),
            (12, 1),
            (13, 2),
        ];
        for (j, c) in expected {
            assert_eq!(aplv.count(l(j)), c, "a_7_{j}");
        }
        assert_eq!(aplv.l1_norm(), 5);
        assert_eq!(aplv.max_count(), 2);
        assert_eq!(aplv.required_spare(), BW * 2);
        // "if L7 is selected as a link of the backup route for a
        // DR-connection whose primary channel goes through L12, it will
        // generate conflicts" — conflicts_with counts the overlap links.
        assert_eq!(aplv.conflicts_with(&[l(12)]), 1);
        assert_eq!(aplv.conflicts_with(&[l(1), l(2)]), 0);
        assert_eq!(aplv.conflicts_with(&[l(11), l(13)]), 2);
    }

    /// Figure 2 of the paper: `PSET₆ = {P₁, P₂}` and
    /// `CV₆ = (1,0,1,0,0,0,0,1,0,0,0,1,1)` — bits at 1-indexed positions
    /// 1, 3, 8, 12, 13, i.e. `LSET_{P₁} ∪ LSET_{P₂} = {L₁,L₃,L₈,L₁₂,L₁₃}`.
    #[test]
    fn paper_figure_2_cv6() {
        let mut aplv = Aplv::new();
        aplv.register(&[l(8), l(12), l(13)], BW); // P1
        aplv.register(&[l(1), l(3)], BW); // P2
        let cv = aplv.conflict_vector(14);
        let expected_ones = [1u32, 3, 8, 12, 13];
        for j in 1..14u32 {
            assert_eq!(cv.get(l(j)), expected_ones.contains(&j), "c_6_{j}");
        }
        assert_eq!(cv.ones(), 5);
        assert_eq!(cv.overlap(&[l(1), l(2), l(3)]), 2);
    }

    #[test]
    fn register_unregister_roundtrip() {
        let mut aplv = Aplv::new();
        aplv.register(&[l(1), l(2)], BW);
        aplv.register(&[l(2), l(3)], BW);
        aplv.unregister(&[l(1), l(2)], BW);
        assert_eq!(aplv.count(l(1)), 0);
        assert_eq!(aplv.count(l(2)), 1);
        assert_eq!(aplv.count(l(3)), 1);
        assert_eq!(aplv.l1_norm(), 2);
        aplv.unregister(&[l(2), l(3)], BW);
        assert!(aplv.is_empty());
        assert_eq!(aplv.required_spare(), Bandwidth::ZERO);
        assert_eq!(aplv.max_count(), 0);
    }

    #[test]
    #[should_panic(expected = "unregister of unknown aplv entry")]
    fn unregister_unknown_panics() {
        let mut aplv = Aplv::new();
        aplv.unregister(&[l(1)], BW);
    }

    #[test]
    fn heterogeneous_bandwidth_spare_requirement() {
        let mut aplv = Aplv::new();
        aplv.register(&[l(5)], Bandwidth::from_kbps(1_000));
        aplv.register(&[l(5)], Bandwidth::from_kbps(4_000));
        aplv.register(&[l(6)], Bandwidth::from_kbps(3_000));
        // Worst single failure is L5: 5 Mb/s of simultaneous activations.
        assert_eq!(aplv.required_spare(), Bandwidth::from_kbps(5_000));
        assert_eq!(aplv.max_count(), 2);
        assert_eq!(aplv.bandwidth(l(6)), Bandwidth::from_kbps(3_000));
    }

    #[test]
    fn iter_lists_nonzero_entries() {
        let mut aplv = Aplv::new();
        aplv.register(&[l(3), l(1)], BW);
        let got: Vec<_> = aplv.iter().collect();
        assert_eq!(got, vec![(l(1), 1, BW), (l(3), 1, BW)]);
    }

    #[test]
    fn display_is_nonempty() {
        let mut aplv = Aplv::new();
        aplv.register(&[l(1)], BW);
        assert!(aplv.to_string().contains("L1:1"));
        assert!(!format!("{:?}", Aplv::new()).is_empty());
    }

    #[test]
    fn conflict_vector_bounds() {
        let mut cv = ConflictVector::zeros(70);
        cv.set(l(0));
        cv.set(l(69));
        assert!(cv.get(l(0)));
        assert!(cv.get(l(69)));
        assert!(!cv.get(l(70))); // out of range reads as 0
        assert_eq!(cv.ones(), 2);
        assert_eq!(cv.len(), 70);
        assert_eq!(cv.wire_bytes(), 9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn conflict_vector_set_out_of_range_panics() {
        let mut cv = ConflictVector::zeros(4);
        cv.set(l(4));
    }

    #[test]
    fn and_count_matches_overlap() {
        let mut aplv = Aplv::new();
        aplv.register(&[l(8), l(12), l(13)], BW);
        aplv.register(&[l(11), l(13)], BW);
        let cv = aplv.conflict_vector(140);
        for lset in [
            vec![l(12)],
            vec![l(1), l(2)],
            vec![l(11), l(13)],
            vec![l(8), l(64), l(127), l(139)],
        ] {
            let dense = ConflictVector::from_links(140, &lset);
            assert_eq!(cv.and_count(&dense), cv.overlap(&lset));
            assert_eq!(cv.and_count(&dense), aplv.conflicts_with(&lset));
        }
    }

    #[test]
    fn clear_undoes_set() {
        let mut cv = ConflictVector::zeros(70);
        cv.set(l(69));
        cv.clear(l(69));
        assert!(!cv.get(l(69)));
        assert_eq!(cv.ones(), 0);
    }

    #[test]
    fn register_with_reports_bit_transitions() {
        let mut aplv = Aplv::new();
        let mut on = Vec::new();
        aplv.register_with(&[l(1), l(2)], BW, |j| on.push(j));
        aplv.register_with(&[l(2), l(3)], BW, |j| on.push(j));
        assert_eq!(on, vec![l(1), l(2), l(3)]); // second l(2) is 1→2, no flip
        let mut off = Vec::new();
        aplv.unregister_with(&[l(1), l(2)], BW, |j| off.push(j));
        assert_eq!(off, vec![l(1)]); // l(2) drops 2→1, bit stays set
        aplv.unregister_with(&[l(2), l(3)], BW, |j| off.push(j));
        assert_eq!(off, vec![l(1), l(2), l(3)]);
    }
}
