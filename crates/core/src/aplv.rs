//! The Accumulated Primary-route Link Vector (APLV) and Conflict Vector
//! (CV).
//!
//! For a link `L_i`, the paper defines (Section 2.1):
//!
//! > `APLV_i`: … whose `j`-th element, denoted by `a_{i,j}`, represents the
//! > total number of primary channels that traverse link `L_j` and whose
//! > backup channels go through link `L_i`.
//!
//! `a_{i,j}` is exactly the number of backups on `L_i` that a failure of
//! `L_j` would activate *simultaneously* — the contention the spare pool of
//! `L_i` must absorb. Three derived quantities drive the protocol:
//!
//! * `‖APLV_i‖₁` — P-LSR's advertised scalar (total conflict mass);
//! * `CV_i` — D-LSR's bit-vector (`c_{i,j} = 1 ⇔ a_{i,j} > 0`);
//! * `max_j a_{i,j}` — the spare-sizing requirement of Section 5 (enough
//!   spare for the worst single link failure).
//!
//! This implementation additionally accumulates, per `j`, the *bandwidth*
//! of the contending backups, so spare sizing stays correct even when
//! connections have heterogeneous bandwidths (the paper assumes uniform
//! bandwidth, under which `bandwidth_j = a_{i,j} · bw_req`).

use drt_net::{Bandwidth, LinkId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Per-`j` accumulation inside an [`Aplv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
struct AplvEntry {
    count: u32,
    bandwidth: Bandwidth,
}

/// The APLV of one link: a sparse map from primary-route links `L_j` to the
/// number (and total bandwidth) of backups on this link whose primaries
/// traverse `L_j`.
///
/// # Example
///
/// The worked example of the paper's Figure 1: backups `B₁` and `B₃` run
/// through `L₇`; `LSET_{P₁} = {L₈, L₁₂, L₁₃}` and `LSET_{P₃} = {L₁₁, L₁₃}`:
///
/// ```
/// use drt_core::Aplv;
/// use drt_net::{Bandwidth, LinkId};
///
/// let bw = Bandwidth::from_kbps(3_000);
/// let l = |i| LinkId::new(i);
/// let mut aplv7 = Aplv::new();
/// aplv7.register(&[l(8), l(12), l(13)], bw); // B1's primary LSET
/// aplv7.register(&[l(11), l(13)], bw);       // B3's primary LSET
///
/// // APLV_7 = (…, a_{7,8}=1, …, a_{7,11}=1, a_{7,12}=1, a_{7,13}=2)
/// assert_eq!(aplv7.count(l(8)), 1);
/// assert_eq!(aplv7.count(l(11)), 1);
/// assert_eq!(aplv7.count(l(12)), 1);
/// assert_eq!(aplv7.count(l(13)), 2);
/// assert_eq!(aplv7.l1_norm(), 5);
/// assert_eq!(aplv7.max_count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Aplv {
    entries: BTreeMap<LinkId, AplvEntry>,
    l1: u64,
}

impl Aplv {
    /// Creates an empty APLV (no backups registered).
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a backup whose primary has link set `primary_lset` and
    /// bandwidth `bw`: increments `a_{i,j}` for every `j ∈ primary_lset`.
    pub fn register(&mut self, primary_lset: &[LinkId], bw: Bandwidth) {
        self.register_with(primary_lset, bw, |_| {});
    }

    /// Like [`Aplv::register`], but invokes `became_set(j)` for every `j`
    /// whose count transitions 0 → 1 — the exact moments the dense
    /// conflict-vector bit `c_{i,j}` flips on. This is the delta hook the
    /// incremental conflict engine uses to keep its bitsets in lockstep
    /// without rescanning the map.
    pub fn register_with(
        &mut self,
        primary_lset: &[LinkId],
        bw: Bandwidth,
        mut became_set: impl FnMut(LinkId),
    ) {
        for &j in primary_lset {
            let e = self.entries.entry(j).or_default();
            e.count += 1;
            e.bandwidth += bw;
            self.l1 += 1;
            if e.count == 1 {
                became_set(j);
            }
        }
    }

    /// Removes a previously registered backup (same `primary_lset` and
    /// `bw` as at registration).
    ///
    /// # Panics
    ///
    /// Panics if the registration is not present — that indicates corrupted
    /// bookkeeping, which must never be silently ignored.
    pub fn unregister(&mut self, primary_lset: &[LinkId], bw: Bandwidth) {
        self.unregister_with(primary_lset, bw, |_| {});
    }

    /// Like [`Aplv::unregister`], but invokes `became_clear(j)` for every
    /// `j` whose count transitions 1 → 0 — the moments `c_{i,j}` flips off.
    ///
    /// # Panics
    ///
    /// Same contract as [`Aplv::unregister`].
    pub fn unregister_with(
        &mut self,
        primary_lset: &[LinkId],
        bw: Bandwidth,
        mut became_clear: impl FnMut(LinkId),
    ) {
        for &j in primary_lset {
            let e = self
                .entries
                .get_mut(&j)
                .expect("unregister of unknown aplv entry");
            assert!(e.count > 0, "aplv count underflow at {j}");
            e.count -= 1;
            e.bandwidth -= bw;
            self.l1 -= 1;
            if e.count == 0 {
                assert!(e.bandwidth.is_zero(), "aplv bandwidth residue at {j}");
                self.entries.remove(&j);
                became_clear(j);
            }
        }
    }

    /// `a_{i,j}` — the number of backups through this link whose primaries
    /// traverse `j`.
    pub fn count(&self, j: LinkId) -> u32 {
        self.entries.get(&j).map_or(0, |e| e.count)
    }

    /// Total bandwidth of the backups counted by [`Aplv::count`] at `j` —
    /// the spare bandwidth a failure of `j` would demand from this link.
    pub fn bandwidth(&self, j: LinkId) -> Bandwidth {
        self.entries
            .get(&j)
            .map_or(Bandwidth::ZERO, |e| e.bandwidth)
    }

    /// `‖APLV‖₁ = Σ_j a_{i,j}` — P-LSR's advertised link cost.
    pub fn l1_norm(&self) -> u64 {
        self.l1
    }

    /// `max_j a_{i,j}` — the number of backups a worst-case single link
    /// failure would activate here (Section 5's spare-sizing count).
    pub fn max_count(&self) -> u32 {
        self.entries.values().map(|e| e.count).max().unwrap_or(0)
    }

    /// `max_j bandwidth_j` — the spare bandwidth required to survive the
    /// worst-case single link failure without any activation loss.
    pub fn required_spare(&self) -> Bandwidth {
        self.entries
            .values()
            .map(|e| e.bandwidth)
            .max()
            .unwrap_or(Bandwidth::ZERO)
    }

    /// Number of links `j` for which `c_{i,j} = 1` (i.e. `a_{i,j} > 0`)
    /// **and** `j` is in the given primary link set — D-LSR's per-link cost
    /// term `Σ_{L_j ∈ LSET_{P_x}} c_{i,j}`.
    pub fn conflicts_with(&self, primary_lset: &[LinkId]) -> u32 {
        primary_lset.iter().filter(|j| self.count(**j) > 0).count() as u32
    }

    /// Returns `true` when no backups are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over the nonzero elements as `(j, count, bandwidth)`.
    pub fn iter(&self) -> impl Iterator<Item = (LinkId, u32, Bandwidth)> + '_ {
        self.entries.iter().map(|(&j, e)| (j, e.count, e.bandwidth))
    }

    /// Extracts the Conflict Vector (`CV_i`) of D-LSR: one bit per link of
    /// a network with `num_links` links.
    pub fn conflict_vector(&self, num_links: usize) -> ConflictVector {
        let mut cv = ConflictVector::zeros(num_links);
        for (&j, e) in &self.entries {
            if e.count > 0 && j.index() < num_links {
                cv.set(j);
            }
        }
        cv
    }
}

impl fmt::Display for Aplv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "APLV{{")?;
        for (i, (&j, e)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{j}:{}", e.count)?;
        }
        write!(f, "}} (l1={})", self.l1)
    }
}

/// D-LSR's Conflict Vector: an `N`-bit vector with bit `j` set iff at least
/// one primary through `L_j` has its backup on the owning link.
///
/// The paper's Figure 2 example (`CV₆` built from `PSET₆ = {P₁, P₂}`) is
/// reproduced in this module's tests; a minimal usage:
///
/// ```
/// use drt_core::Aplv;
/// use drt_net::{Bandwidth, LinkId};
///
/// let mut aplv = Aplv::new();
/// aplv.register(&[LinkId::new(0), LinkId::new(2)], Bandwidth::from_kbps(1));
/// let cv = aplv.conflict_vector(4);
/// assert!(cv.get(LinkId::new(0)));
/// assert!(!cv.get(LinkId::new(1)));
/// assert!(cv.get(LinkId::new(2)));
/// assert_eq!(cv.ones(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConflictVector {
    bits: Vec<u64>,
    len: usize,
}

impl ConflictVector {
    /// An all-zero vector for a network of `num_links` links.
    pub fn zeros(num_links: usize) -> Self {
        ConflictVector {
            bits: vec![0; num_links.div_ceil(64)],
            len: num_links,
        }
    }

    /// Number of links the vector covers (`N`).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the vector covers zero links.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A vector with exactly the given links' bits set — the dense form of
    /// a primary's `LSET`, built once per routing request so every relaxed
    /// link pays a word-wise popcount instead of per-element map lookups.
    pub fn from_links(num_links: usize, lset: &[LinkId]) -> Self {
        let mut cv = Self::zeros(num_links);
        for &j in lset {
            cv.set(j);
        }
        cv
    }

    /// Sets bit `j`.
    ///
    /// # Panics
    ///
    /// Panics when `j` is out of range.
    pub fn set(&mut self, j: LinkId) {
        assert!(j.index() < self.len, "conflict vector index out of range");
        self.bits[j.index() / 64] |= 1 << (j.index() % 64);
    }

    /// Clears bit `j`.
    ///
    /// # Panics
    ///
    /// Panics when `j` is out of range.
    pub fn clear(&mut self, j: LinkId) {
        assert!(j.index() < self.len, "conflict vector index out of range");
        self.bits[j.index() / 64] &= !(1 << (j.index() % 64));
    }

    /// Reads bit `j` (`c_{i,j}`); out-of-range indices read as 0.
    pub fn get(&self, j: LinkId) -> bool {
        if j.index() >= self.len {
            return false;
        }
        self.bits[j.index() / 64] >> (j.index() % 64) & 1 == 1
    }

    /// Number of set bits.
    pub fn ones(&self) -> u32 {
        self.bits.iter().map(|w| w.count_ones()).sum()
    }

    /// Number of set bits among the given links — D-LSR's cost term.
    pub fn overlap(&self, lset: &[LinkId]) -> u32 {
        lset.iter().filter(|j| self.get(**j)).count() as u32
    }

    /// Popcount of the word-wise intersection with `other` — D-LSR's cost
    /// term `Σ_{L_j ∈ LSET_P} c_{i,j}` when `other` is the dense form of
    /// the primary's `LSET` (see [`ConflictVector::from_links`]). O(N/64)
    /// regardless of how many conflicts are registered.
    pub fn and_count(&self, other: &ConflictVector) -> u32 {
        self.bits
            .iter()
            .zip(&other.bits)
            .map(|(a, b)| (a & b).count_ones())
            .sum()
    }

    /// The size of this vector on the wire, in bytes (`⌈N/8⌉`) — used by
    /// the route-discovery overhead experiment to model D-LSR's larger
    /// link-state advertisements.
    pub fn wire_bytes(&self) -> usize {
        self.len.div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BW: Bandwidth = Bandwidth::from_kbps(3_000);

    fn l(i: u32) -> LinkId {
        LinkId::new(i)
    }

    /// Figure 1 of the paper: APLV₇ with `PSET₇ = {P₁, P₃}`,
    /// `LSET_{P₁} = {L₈, L₁₂, L₁₃}`, `LSET_{P₃} = {L₁₁, L₁₃}` yields
    /// `APLV₇ = (0,0,0,0,0,0,0,1,0,0,1,1,2)` (1-indexed positions 8, 11,
    /// 12, 13).
    #[test]
    fn paper_figure_1_aplv7() {
        let mut aplv = Aplv::new();
        aplv.register(&[l(8), l(12), l(13)], BW);
        aplv.register(&[l(11), l(13)], BW);
        let expected = [
            (1, 0),
            (2, 0),
            (3, 0),
            (4, 0),
            (5, 0),
            (6, 0),
            (7, 0),
            (8, 1),
            (9, 0),
            (10, 0),
            (11, 1),
            (12, 1),
            (13, 2),
        ];
        for (j, c) in expected {
            assert_eq!(aplv.count(l(j)), c, "a_7_{j}");
        }
        assert_eq!(aplv.l1_norm(), 5);
        assert_eq!(aplv.max_count(), 2);
        assert_eq!(aplv.required_spare(), BW * 2);
        // "if L7 is selected as a link of the backup route for a
        // DR-connection whose primary channel goes through L12, it will
        // generate conflicts" — conflicts_with counts the overlap links.
        assert_eq!(aplv.conflicts_with(&[l(12)]), 1);
        assert_eq!(aplv.conflicts_with(&[l(1), l(2)]), 0);
        assert_eq!(aplv.conflicts_with(&[l(11), l(13)]), 2);
    }

    /// Figure 2 of the paper: `PSET₆ = {P₁, P₂}` and
    /// `CV₆ = (1,0,1,0,0,0,0,1,0,0,0,1,1)` — bits at 1-indexed positions
    /// 1, 3, 8, 12, 13, i.e. `LSET_{P₁} ∪ LSET_{P₂} = {L₁,L₃,L₈,L₁₂,L₁₃}`.
    #[test]
    fn paper_figure_2_cv6() {
        let mut aplv = Aplv::new();
        aplv.register(&[l(8), l(12), l(13)], BW); // P1
        aplv.register(&[l(1), l(3)], BW); // P2
        let cv = aplv.conflict_vector(14);
        let expected_ones = [1u32, 3, 8, 12, 13];
        for j in 1..14u32 {
            assert_eq!(cv.get(l(j)), expected_ones.contains(&j), "c_6_{j}");
        }
        assert_eq!(cv.ones(), 5);
        assert_eq!(cv.overlap(&[l(1), l(2), l(3)]), 2);
    }

    #[test]
    fn register_unregister_roundtrip() {
        let mut aplv = Aplv::new();
        aplv.register(&[l(1), l(2)], BW);
        aplv.register(&[l(2), l(3)], BW);
        aplv.unregister(&[l(1), l(2)], BW);
        assert_eq!(aplv.count(l(1)), 0);
        assert_eq!(aplv.count(l(2)), 1);
        assert_eq!(aplv.count(l(3)), 1);
        assert_eq!(aplv.l1_norm(), 2);
        aplv.unregister(&[l(2), l(3)], BW);
        assert!(aplv.is_empty());
        assert_eq!(aplv.required_spare(), Bandwidth::ZERO);
        assert_eq!(aplv.max_count(), 0);
    }

    #[test]
    #[should_panic(expected = "unregister of unknown aplv entry")]
    fn unregister_unknown_panics() {
        let mut aplv = Aplv::new();
        aplv.unregister(&[l(1)], BW);
    }

    #[test]
    fn heterogeneous_bandwidth_spare_requirement() {
        let mut aplv = Aplv::new();
        aplv.register(&[l(5)], Bandwidth::from_kbps(1_000));
        aplv.register(&[l(5)], Bandwidth::from_kbps(4_000));
        aplv.register(&[l(6)], Bandwidth::from_kbps(3_000));
        // Worst single failure is L5: 5 Mb/s of simultaneous activations.
        assert_eq!(aplv.required_spare(), Bandwidth::from_kbps(5_000));
        assert_eq!(aplv.max_count(), 2);
        assert_eq!(aplv.bandwidth(l(6)), Bandwidth::from_kbps(3_000));
    }

    #[test]
    fn iter_lists_nonzero_entries() {
        let mut aplv = Aplv::new();
        aplv.register(&[l(3), l(1)], BW);
        let got: Vec<_> = aplv.iter().collect();
        assert_eq!(got, vec![(l(1), 1, BW), (l(3), 1, BW)]);
    }

    #[test]
    fn display_is_nonempty() {
        let mut aplv = Aplv::new();
        aplv.register(&[l(1)], BW);
        assert!(aplv.to_string().contains("L1:1"));
        assert!(!format!("{:?}", Aplv::new()).is_empty());
    }

    #[test]
    fn conflict_vector_bounds() {
        let mut cv = ConflictVector::zeros(70);
        cv.set(l(0));
        cv.set(l(69));
        assert!(cv.get(l(0)));
        assert!(cv.get(l(69)));
        assert!(!cv.get(l(70))); // out of range reads as 0
        assert_eq!(cv.ones(), 2);
        assert_eq!(cv.len(), 70);
        assert_eq!(cv.wire_bytes(), 9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn conflict_vector_set_out_of_range_panics() {
        let mut cv = ConflictVector::zeros(4);
        cv.set(l(4));
    }

    #[test]
    fn and_count_matches_overlap() {
        let mut aplv = Aplv::new();
        aplv.register(&[l(8), l(12), l(13)], BW);
        aplv.register(&[l(11), l(13)], BW);
        let cv = aplv.conflict_vector(140);
        for lset in [
            vec![l(12)],
            vec![l(1), l(2)],
            vec![l(11), l(13)],
            vec![l(8), l(64), l(127), l(139)],
        ] {
            let dense = ConflictVector::from_links(140, &lset);
            assert_eq!(cv.and_count(&dense), cv.overlap(&lset));
            assert_eq!(cv.and_count(&dense), aplv.conflicts_with(&lset));
        }
    }

    #[test]
    fn clear_undoes_set() {
        let mut cv = ConflictVector::zeros(70);
        cv.set(l(69));
        cv.clear(l(69));
        assert!(!cv.get(l(69)));
        assert_eq!(cv.ones(), 0);
    }

    #[test]
    fn register_with_reports_bit_transitions() {
        let mut aplv = Aplv::new();
        let mut on = Vec::new();
        aplv.register_with(&[l(1), l(2)], BW, |j| on.push(j));
        aplv.register_with(&[l(2), l(3)], BW, |j| on.push(j));
        assert_eq!(on, vec![l(1), l(2), l(3)]); // second l(2) is 1→2, no flip
        let mut off = Vec::new();
        aplv.unregister_with(&[l(1), l(2)], BW, |j| off.push(j));
        assert_eq!(off, vec![l(1)]); // l(2) drops 2→1, bit stays set
        aplv.unregister_with(&[l(2), l(3)], BW, |j| off.push(j));
        assert_eq!(off, vec![l(1), l(2), l(3)]);
    }
}
