//! Error type of the DRTP core.

use crate::ConnectionId;
use drt_net::{LinkId, NodeId};
use std::error::Error;
use std::fmt;

/// Errors produced by connection management and route selection.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DrtpError {
    /// No primary route satisfying the bandwidth requirement exists
    /// between the endpoints.
    NoPrimaryRoute(NodeId, NodeId),
    /// A primary was found, but no admissible backup route exists and the
    /// scheme requires one.
    NoBackupRoute(ConnectionId),
    /// A link on the chosen route could not supply the requested bandwidth
    /// at admission time.
    InsufficientBandwidth(LinkId),
    /// The connection id is already in use.
    DuplicateConnection(ConnectionId),
    /// No such connection is known to the manager.
    UnknownConnection(ConnectionId),
    /// The operation referenced a link that is currently failed.
    LinkFailed(LinkId),
    /// The operation referenced a link that is not failed (e.g. repairing
    /// a healthy link).
    LinkNotFailed(LinkId),
    /// A route's QoS (hop-count/delay) bound was violated.
    QosViolation(ConnectionId),
    /// The route selection scheme produced a structurally invalid result
    /// (wrong endpoints, failed links, etc.); indicates a scheme bug.
    InvalidSelection(String),
}

impl fmt::Display for DrtpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DrtpError::NoPrimaryRoute(s, d) => {
                write!(f, "no bandwidth-feasible primary route {s} -> {d}")
            }
            DrtpError::NoBackupRoute(c) => write!(f, "no admissible backup route for {c}"),
            DrtpError::InsufficientBandwidth(l) => {
                write!(f, "insufficient bandwidth on link {l}")
            }
            DrtpError::DuplicateConnection(c) => write!(f, "connection {c} already exists"),
            DrtpError::UnknownConnection(c) => write!(f, "unknown connection {c}"),
            DrtpError::LinkFailed(l) => write!(f, "link {l} is failed"),
            DrtpError::LinkNotFailed(l) => write!(f, "link {l} is not failed"),
            DrtpError::QosViolation(c) => write!(f, "route violates qos bound of {c}"),
            DrtpError::InvalidSelection(why) => write!(f, "invalid route selection: {why}"),
        }
    }
}

impl Error for DrtpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync_static() {
        fn check<T: Send + Sync + 'static>() {}
        check::<DrtpError>();
    }

    #[test]
    fn messages_are_lowercase() {
        let e = DrtpError::NoBackupRoute(ConnectionId::new(3));
        assert_eq!(e.to_string(), "no admissible backup route for D3");
    }
}
