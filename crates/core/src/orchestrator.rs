//! Recovery orchestration under overlapping failures.
//!
//! DRTP's switchover is instantaneous (the backup is pre-established), but
//! *re-protection* — finding a fresh backup for a connection that switched
//! or lost its backup — is a routing operation that can fail transiently:
//! the topology just lost links, spare pools are in flux, and another
//! failure may land mid-recovery. [`RecoveryOrchestrator`] turns
//! re-protection into a managed process:
//!
//! * a **retry queue** with exponential backoff — a connection whose
//!   re-establishment fails waits `base_delay · 2^(attempt-1)` (capped)
//!   before the next try, so a cluster of failures does not hammer the
//!   route selector while the network is still degraded;
//! * **flap damping** — a link that fails repeatedly within a window is
//!   quarantined: still usable by established traffic, but excluded from
//!   *new* backup routes (via
//!   [`DrtpManager::reestablish_backup_avoiding`]) until the quarantine
//!   expires, because a backup over a flapping link is protection in name
//!   only;
//! * **graceful degradation accounting** — a connection that exhausts its
//!   retries is *orphaned*: it keeps carrying traffic unprotected, stops
//!   consuming retry work, and is reported so experiments can quantify how
//!   much protection each failure regime permanently destroys.
//!
//! The orchestrator holds no reference to the manager; every interaction
//! happens through explicit calls, which keeps it usable against both the
//! centralized [`DrtpManager`] and mirrors driven by the distributed
//! signalling simulation.
//!
//! See DESIGN.md §10 for the state machine.

use crate::failure::RecoveryReport;
use crate::routing::RoutingScheme;
use crate::{ConnectionId, ConnectionState, DrtpManager, Telemetry};
use drt_net::{LinkId, NodeId};
use drt_sim::{SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet};

/// Tunables of the retry queue and flap damping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Re-establishment attempts per connection before it is orphaned.
    pub max_attempts: u32,
    /// Delay before the first retry; doubles per failed attempt.
    pub base_delay: SimDuration,
    /// Cap on the backoff delay.
    pub max_delay: SimDuration,
    /// Failures of one link within [`RetryPolicy::flap_window`] that
    /// trigger quarantine.
    pub flap_threshold: u32,
    /// Sliding window over which link failures are counted.
    pub flap_window: SimDuration,
    /// How long a flapping link stays quarantined from new backup routes.
    pub quarantine: SimDuration,
    /// Uncorroborated failure reports from one router before that router
    /// is quarantined (its reports ignored). See
    /// [`RecoveryOrchestrator::vet_report`].
    pub suspicion_threshold: u32,
}

impl Default for RetryPolicy {
    /// 5 attempts from 100 ms with a 10 s cap; 3 failures in 60 s
    /// quarantine a link for 5 minutes.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_delay: SimDuration::from_millis(100),
            max_delay: SimDuration::from_secs(10),
            flap_threshold: 3,
            flap_window: SimDuration::from_secs(60),
            quarantine: SimDuration::from_minutes(5),
            suspicion_threshold: 3,
        }
    }
}

impl RetryPolicy {
    /// The backoff delay before retry number `attempt` (1-based).
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        let factor = 1u64 << (attempt.saturating_sub(1)).min(32);
        self.base_delay.times(factor).min(self.max_delay)
    }
}

/// One connection waiting in the retry queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PendingRetry {
    /// When the protection was lost (for recovery-latency accounting).
    lost_at: SimTime,
    /// When the next attempt is due.
    due: SimTime,
    /// 1-based number of the next attempt.
    attempt: u32,
}

/// A completed re-protection, for latency statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryCompletion {
    /// The re-protected connection.
    pub conn: ConnectionId,
    /// When protection was restored.
    pub at: SimTime,
    /// Time from protection loss to restoration.
    pub latency: SimDuration,
    /// Attempts consumed (1 = first try succeeded).
    pub attempts: u32,
}

/// What one [`RecoveryOrchestrator::tick`] did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TickReport {
    /// Connections whose protection was restored this tick.
    pub reprotected: Vec<ConnectionId>,
    /// Connections that failed an attempt and were re-queued with backoff.
    pub retried: Vec<ConnectionId>,
    /// Connections that exhausted their attempts and were orphaned.
    pub orphaned: Vec<ConnectionId>,
}

/// Drives re-establishment of lost protection as a retry queue with
/// exponential backoff, flap damping, and orphan accounting. See the
/// module docs for the model.
#[derive(Debug, Clone)]
pub struct RecoveryOrchestrator {
    policy: RetryPolicy,
    queue: BTreeMap<ConnectionId, PendingRetry>,
    /// Recent failure instants per link, pruned to the flap window.
    fail_history: Vec<Vec<SimTime>>,
    quarantined_until: Vec<Option<SimTime>>,
    orphaned: BTreeSet<ConnectionId>,
    completions: Vec<RecoveryCompletion>,
    /// Uncorroborated-report count per router (byzantine suspicion).
    suspicion: BTreeMap<NodeId, u32>,
    /// Routers whose suspicion crossed the threshold; their reports are
    /// rejected outright.
    router_quarantine: BTreeSet<NodeId>,
    telemetry: Telemetry,
}

/// The orchestrator's judgement on one incoming failure report. See
/// [`RecoveryOrchestrator::vet_report`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportVerdict {
    /// The report matches surviving-neighbour evidence; act on it.
    Accepted,
    /// No corroborating evidence — the link looks healthy. The report is
    /// dropped and the reporter's suspicion score rises.
    Rejected,
    /// The reporter is quarantined; the report is dropped unexamined.
    RejectedQuarantined,
}

impl RecoveryOrchestrator {
    /// Creates an orchestrator for a network with `num_links` links.
    pub fn new(num_links: usize, policy: RetryPolicy) -> Self {
        RecoveryOrchestrator {
            policy,
            queue: BTreeMap::new(),
            fail_history: vec![Vec::new(); num_links],
            quarantined_until: vec![None; num_links],
            orphaned: BTreeSet::new(),
            completions: Vec::new(),
            suspicion: BTreeMap::new(),
            router_quarantine: BTreeSet::new(),
            telemetry: Telemetry::default(),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Feeds the outcome of a failure injection into the orchestrator:
    /// records per-link flap history (quarantining links that crossed the
    /// threshold) and enqueues every connection that lost protection —
    /// switched connections run on their promoted backup unprotected, and
    /// `unprotected` ones lost their only backup. Lost connections are
    /// beyond recovery and are not queued.
    pub fn observe_failure(&mut self, now: SimTime, report: &RecoveryReport) {
        for &l in &report.failed_links {
            self.record_link_failure(now, l);
        }
        for &id in report.switched.iter().chain(&report.unprotected) {
            self.enqueue(now, id);
        }
    }

    /// Records a link repair. Repairing does not lift an active
    /// quarantine: a link that flapped recently must prove itself stable
    /// for the full quarantine before new backups trust it again.
    pub fn observe_repair(&mut self, now: SimTime, link: LinkId) {
        let window = self.policy.flap_window;
        self.fail_history[link.index()].retain(|&t| now.saturating_since(t) <= window);
    }

    /// Queues `conn` for re-protection if it is not already queued or
    /// orphaned. The first attempt is due after one base delay (modelling
    /// the signalling round that discovers the loss of protection).
    pub fn enqueue(&mut self, now: SimTime, conn: ConnectionId) {
        if self.orphaned.contains(&conn) {
            return;
        }
        self.queue.entry(conn).or_insert(PendingRetry {
            lost_at: now,
            due: now + self.policy.base_delay,
            attempt: 1,
        });
    }

    fn record_link_failure(&mut self, now: SimTime, link: LinkId) {
        let hist = &mut self.fail_history[link.index()];
        hist.push(now);
        hist.retain(|&t| now.saturating_since(t) <= self.policy.flap_window);
        // Expiry edge: a failure landing in the very tick the quarantine
        // lapses (`is_quarantined` is already false, and with the default
        // policy the flap history has aged out of the window) is the link
        // flapping at the exact moment new backups would start trusting
        // it again. It has proved the opposite of stability — re-enter
        // quarantine immediately instead of demanding a fresh threshold
        // of strikes.
        if self.quarantined_until[link.index()] == Some(now) {
            self.quarantined_until[link.index()] = Some(now + self.policy.quarantine);
            self.telemetry.incr("quarantine.links_requarantined");
            return;
        }
        if hist.len() as u32 >= self.policy.flap_threshold {
            let until = now + self.policy.quarantine;
            let slot = &mut self.quarantined_until[link.index()];
            if slot.is_none() {
                self.telemetry.incr("quarantine.links_entered");
            }
            *slot = Some(match *slot {
                Some(prev) => prev.max(until),
                None => until,
            });
        }
    }

    /// Feeds one link-state *advertisement* transition (up→down or
    /// down→up) into the flap-damping history — the countermeasure
    /// against byzantine advertisement churn. A router toggling a link's
    /// advertised state lands it in quarantine exactly as fast as a link
    /// that genuinely flaps, so churned links are kept out of new backup
    /// routes whether the oscillation is physical or fabricated.
    pub fn observe_churn(&mut self, now: SimTime, link: LinkId) {
        self.telemetry.incr("churn.advertisements");
        self.record_link_failure(now, link);
    }

    /// Cross-checks an incoming failure report before the manager acts on
    /// it. `corroborated` is the caller's evidence bit: whether the
    /// link's surviving endpoint (or the ground-truth failure mask, in
    /// the centralized simulation) agrees the link is down.
    ///
    /// * A report from a quarantined router is rejected unexamined.
    /// * A corroborated report is accepted.
    /// * An uncorroborated report is rejected and bumps the reporter's
    ///   suspicion score; at [`RetryPolicy::suspicion_threshold`] the
    ///   router is quarantined and all its later reports are ignored —
    ///   so a byzantine router gets a bounded number of lies before it
    ///   loses its voice entirely.
    pub fn vet_report(
        &mut self,
        reporter: NodeId,
        link: LinkId,
        corroborated: bool,
    ) -> ReportVerdict {
        let _ = link;
        if self.router_quarantine.contains(&reporter) {
            self.telemetry.incr("reports.rejected_quarantined");
            return ReportVerdict::RejectedQuarantined;
        }
        if corroborated {
            self.telemetry.incr("reports.accepted");
            return ReportVerdict::Accepted;
        }
        let score = self.suspicion.entry(reporter).or_insert(0);
        *score += 1;
        self.telemetry.incr("reports.rejected");
        if *score >= self.policy.suspicion_threshold && self.router_quarantine.insert(reporter) {
            self.telemetry.incr("quarantine.routers_entered");
        }
        ReportVerdict::Rejected
    }

    /// The suspicion score of a router (0 when it never lied).
    pub fn suspicion(&self, reporter: NodeId) -> u32 {
        self.suspicion.get(&reporter).copied().unwrap_or(0)
    }

    /// Routers currently quarantined for byzantine reporting.
    pub fn quarantined_routers(&self) -> &BTreeSet<NodeId> {
        &self.router_quarantine
    }

    /// The orchestrator's telemetry: recovery-latency and orphan-duration
    /// histograms, retry/orphan counters, quarantine and report-vetting
    /// counters.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Mutable access to the telemetry registry.
    pub fn telemetry_mut(&mut self) -> &mut Telemetry {
        &mut self.telemetry
    }

    /// Returns `true` while `link` is quarantined from new backup routes.
    pub fn is_quarantined(&self, link: LinkId, now: SimTime) -> bool {
        matches!(self.quarantined_until[link.index()], Some(until) if now < until)
    }

    /// All links currently quarantined, in id order.
    pub fn quarantined_links(&self, now: SimTime) -> Vec<LinkId> {
        (0..self.quarantined_until.len())
            .map(|i| LinkId::new(i as u32))
            .filter(|&l| self.is_quarantined(l, now))
            .collect()
    }

    /// Connections waiting in the retry queue.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Returns `true` when `conn` is waiting for a retry.
    pub fn is_pending(&self, conn: ConnectionId) -> bool {
        self.queue.contains_key(&conn)
    }

    /// The earliest due time in the queue, if any.
    pub fn next_due(&self) -> Option<SimTime> {
        self.queue.values().map(|p| p.due).min()
    }

    /// Connections that exhausted their retries and now run permanently
    /// unprotected (until an operator intervenes).
    pub fn orphaned(&self) -> &BTreeSet<ConnectionId> {
        &self.orphaned
    }

    /// Every successful re-protection so far, in completion order.
    pub fn completions(&self) -> &[RecoveryCompletion] {
        &self.completions
    }

    /// Mean re-protection latency over all completions, in seconds.
    pub fn mean_recovery_secs(&self) -> Option<f64> {
        if self.completions.is_empty() {
            return None;
        }
        let total: f64 = self
            .completions
            .iter()
            .map(|c| c.latency.as_secs_f64())
            .sum();
        Some(total / self.completions.len() as f64)
    }

    /// Runs every attempt due at or before `now`. Connections released or
    /// torn down since they were queued are dropped; connections that
    /// regained a backup by other means complete immediately; the rest go
    /// through [`DrtpManager::reestablish_backup_avoiding`] with the
    /// currently quarantined links excluded.
    pub fn tick(
        &mut self,
        now: SimTime,
        mgr: &mut DrtpManager,
        scheme: &mut dyn RoutingScheme,
    ) -> TickReport {
        let mut report = TickReport::default();
        let due: Vec<ConnectionId> = self
            .queue
            .iter()
            .filter(|(_, p)| p.due <= now)
            .map(|(&id, _)| id)
            .collect();
        let avoid = self.quarantined_links(now);
        for id in due {
            let entry = self.queue[&id];
            let eligible = match mgr.connection(id) {
                Some(c) if c.state() == ConnectionState::Failed => false,
                Some(c) => {
                    if c.backup().is_some() {
                        // Protection restored out-of-band; nothing to do.
                        self.queue.remove(&id);
                        continue;
                    }
                    true
                }
                None => false,
            };
            if !eligible {
                self.queue.remove(&id);
                continue;
            }
            match mgr.reestablish_backup_avoiding(scheme, id, &avoid) {
                Ok(_) => {
                    self.queue.remove(&id);
                    let latency = now.saturating_since(entry.lost_at);
                    self.completions.push(RecoveryCompletion {
                        conn: id,
                        at: now,
                        latency,
                        attempts: entry.attempt,
                    });
                    self.telemetry.incr("recovery.reprotected");
                    self.telemetry
                        .observe_duration("recovery.latency_us", latency);
                    report.reprotected.push(id);
                }
                Err(_) => {
                    if entry.attempt >= self.policy.max_attempts {
                        self.queue.remove(&id);
                        self.orphaned.insert(id);
                        self.telemetry.incr("recovery.orphaned");
                        self.telemetry.observe_duration(
                            "recovery.orphan_wait_us",
                            now.saturating_since(entry.lost_at),
                        );
                        report.orphaned.push(id);
                    } else {
                        let next = entry.attempt + 1;
                        self.queue.insert(
                            id,
                            PendingRetry {
                                lost_at: entry.lost_at,
                                due: now + self.policy.backoff(next),
                                attempt: next,
                            },
                        );
                        self.telemetry.incr("recovery.retries");
                        report.retried.push(id);
                    }
                }
            }
        }
        report
    }

    /// Advances virtual time through the retry queue until it drains:
    /// every queued connection either re-protects or orphans. Returns the
    /// time at which the queue became empty (= `now` when it already was).
    pub fn run_to_quiescence(
        &mut self,
        mut now: SimTime,
        mgr: &mut DrtpManager,
        scheme: &mut dyn RoutingScheme,
    ) -> SimTime {
        while let Some(due) = self.next_due() {
            now = now.max(due);
            self.tick(now, mgr, scheme);
        }
        now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::FailureEvent;
    use crate::routing::{DLsr, RouteRequest, Scripted};
    use drt_net::{topology, Bandwidth, NodeId, Route};
    use std::sync::Arc;

    const BW: Bandwidth = Bandwidth::from_kbps(3_000);

    fn req(id: u64, src: u32, dst: u32) -> RouteRequest {
        RouteRequest::new(
            ConnectionId::new(id),
            NodeId::new(src),
            NodeId::new(dst),
            BW,
        )
    }

    fn rng() -> rand::rngs::StdRng {
        drt_sim::rng::stream(11, "orchestrator-tests")
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff(1), SimDuration::from_millis(100));
        assert_eq!(p.backoff(2), SimDuration::from_millis(200));
        assert_eq!(p.backoff(3), SimDuration::from_millis(400));
        assert_eq!(p.backoff(40), p.max_delay, "capped, no overflow");
    }

    #[test]
    fn switchover_is_reprotected_via_retry_queue() {
        let net = Arc::new(topology::mesh(3, 3, Bandwidth::from_mbps(10)).unwrap());
        let mut mgr = DrtpManager::new(net);
        let mut scheme = DLsr::new();
        let rep = mgr.request_connection(&mut scheme, req(0, 0, 8)).unwrap();
        let mut orch = RecoveryOrchestrator::new(mgr.net().num_links(), RetryPolicy::default());

        let failure = mgr
            .inject_failure(rep.primary.links()[0], &mut rng())
            .unwrap();
        orch.observe_failure(SimTime::ZERO, &failure);
        assert_eq!(orch.pending(), 1);

        let end = orch.run_to_quiescence(SimTime::ZERO, &mut mgr, &mut scheme);
        assert_eq!(orch.pending(), 0);
        assert!(orch.orphaned().is_empty());
        let c = orch.completions();
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].attempts, 1);
        assert_eq!(end, SimTime::ZERO + SimDuration::from_millis(100));
        assert_eq!(
            mgr.connection(ConnectionId::new(0)).unwrap().state(),
            ConnectionState::Protected
        );
        mgr.assert_invariants();
    }

    #[test]
    fn exhausted_retries_orphan_the_connection() {
        // A scripted scheme with an exhausted script models a routing
        // scheme that cannot find any new backup (the LSR schemes treat
        // primary overlap as a soft penalty, so on a live connection they
        // always degenerate to *some* route — use the script to force the
        // paper's "re-establishment fails" branch deterministically).
        let net = Arc::new(topology::ring(4, Bandwidth::from_mbps(10)).unwrap());
        let primary = Route::from_nodes(&net, &[NodeId::new(0), NodeId::new(1)]).unwrap();
        let long_way = Route::from_nodes(
            &net,
            &[
                NodeId::new(0),
                NodeId::new(3),
                NodeId::new(2),
                NodeId::new(1),
            ],
        )
        .unwrap();
        let mut mgr = DrtpManager::new(Arc::clone(&net));
        let mut scheme = Scripted::new();
        scheme.push(primary, Some(long_way));
        let rep = mgr.request_connection(&mut scheme, req(0, 0, 1)).unwrap();
        assert_eq!(scheme.remaining(), 0, "every retry will now fail");
        let policy = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        };
        let mut orch = RecoveryOrchestrator::new(mgr.net().num_links(), policy);

        let failure = mgr
            .inject_failure(rep.primary.links()[0], &mut rng())
            .unwrap();
        orch.observe_failure(SimTime::ZERO, &failure);
        orch.run_to_quiescence(SimTime::ZERO, &mut mgr, &mut scheme);

        assert_eq!(orch.pending(), 0);
        assert_eq!(
            orch.orphaned().iter().copied().collect::<Vec<_>>(),
            vec![ConnectionId::new(0)]
        );
        // Orphaned connections are not re-queued.
        orch.enqueue(SimTime::ZERO, ConnectionId::new(0));
        assert_eq!(orch.pending(), 0);
        // Still carrying traffic, just unprotected — graceful degradation.
        assert!(mgr
            .connection(ConnectionId::new(0))
            .unwrap()
            .state()
            .is_carrying_traffic());
        mgr.assert_invariants();
    }

    #[test]
    fn flapping_link_is_quarantined_from_new_backups() {
        let net = Arc::new(topology::mesh(3, 3, Bandwidth::from_mbps(10)).unwrap());
        let mut mgr = DrtpManager::new(net);
        let mut scheme = DLsr::new();
        let rep = mgr.request_connection(&mut scheme, req(0, 0, 8)).unwrap();
        let backup_link = rep.backup().unwrap().links()[0];
        let policy = RetryPolicy {
            flap_threshold: 3,
            ..RetryPolicy::default()
        };
        let mut orch = RecoveryOrchestrator::new(mgr.net().num_links(), policy);

        // Fail/repair the backup's first link three times in rapid
        // succession: flap damping must quarantine it.
        let mut now = SimTime::ZERO;
        for _ in 0..3 {
            let report = mgr.inject_failure(backup_link, &mut rng()).unwrap();
            orch.observe_failure(now, &report);
            mgr.repair_link(backup_link).unwrap();
            orch.observe_repair(now, backup_link);
            now += SimDuration::from_secs(1);
        }
        assert!(orch.is_quarantined(backup_link, now));
        assert!(orch.quarantined_links(now).contains(&backup_link));

        // The queued re-protection must avoid the quarantined link even
        // though it is repaired and technically usable.
        let end = orch.run_to_quiescence(now, &mut mgr, &mut scheme);
        let conn = mgr.connection(ConnectionId::new(0)).unwrap();
        if let Some(b) = conn.backup() {
            assert!(
                !b.contains_link(backup_link),
                "new backup must not cross the quarantined link"
            );
        }
        // Quarantine expires eventually.
        assert!(!orch.is_quarantined(backup_link, end + policy.quarantine));
        mgr.assert_invariants();
    }

    #[test]
    fn uncorroborated_reports_quarantine_the_reporter() {
        let policy = RetryPolicy {
            suspicion_threshold: 3,
            ..RetryPolicy::default()
        };
        let mut orch = RecoveryOrchestrator::new(8, policy);
        let liar = NodeId::new(2);
        let honest = NodeId::new(5);
        let l = LinkId::new(0);

        // Corroborated reports are accepted and carry no suspicion.
        assert_eq!(orch.vet_report(honest, l, true), ReportVerdict::Accepted);
        assert_eq!(orch.suspicion(honest), 0);

        // Three lies and the liar loses its voice.
        for expect in 1..=3u32 {
            assert_eq!(orch.vet_report(liar, l, false), ReportVerdict::Rejected);
            assert_eq!(orch.suspicion(liar), expect);
        }
        assert!(orch.quarantined_routers().contains(&liar));
        assert_eq!(
            orch.vet_report(liar, l, false),
            ReportVerdict::RejectedQuarantined
        );
        // Even a truthful report from a quarantined router is ignored:
        // the cross-check evidence will arrive from the honest endpoint.
        assert_eq!(
            orch.vet_report(liar, l, true),
            ReportVerdict::RejectedQuarantined
        );
        assert_eq!(orch.telemetry().counter("reports.rejected"), 3);
        assert_eq!(orch.telemetry().counter("reports.rejected_quarantined"), 2);
        assert_eq!(orch.telemetry().counter("quarantine.routers_entered"), 1);
    }

    #[test]
    fn advertisement_churn_quarantines_the_link() {
        let policy = RetryPolicy {
            flap_threshold: 3,
            ..RetryPolicy::default()
        };
        let mut orch = RecoveryOrchestrator::new(4, policy);
        let l = LinkId::new(1);
        let mut now = SimTime::ZERO;
        // A byzantine router toggling the advertised state of a healthy
        // link trips the same damping as a physically flapping link.
        for _ in 0..3 {
            orch.observe_churn(now, l);
            now += SimDuration::from_secs(1);
        }
        assert!(orch.is_quarantined(l, now));
        assert_eq!(orch.telemetry().counter("churn.advertisements"), 3);
        assert_eq!(orch.telemetry().counter("quarantine.links_entered"), 1);
    }

    #[test]
    fn node_crash_during_pending_retries_is_absorbed() {
        let net = Arc::new(topology::mesh(3, 3, Bandwidth::from_mbps(10)).unwrap());
        let mut mgr = DrtpManager::new(net);
        let mut scheme = DLsr::new();
        let rep = mgr.request_connection(&mut scheme, req(0, 0, 8)).unwrap();
        mgr.request_connection(&mut scheme, req(1, 6, 2)).unwrap();
        let mut orch = RecoveryOrchestrator::new(mgr.net().num_links(), RetryPolicy::default());

        let first = mgr
            .inject_failure(rep.primary.links()[0], &mut rng())
            .unwrap();
        orch.observe_failure(SimTime::ZERO, &first);
        assert!(orch.pending() > 0, "retries are pending");

        // A router crash lands before the first retry fires.
        let crash = mgr
            .inject_event(&FailureEvent::Node(NodeId::new(4)), &mut rng())
            .unwrap();
        orch.observe_failure(SimTime::ZERO, &crash);

        orch.run_to_quiescence(SimTime::ZERO, &mut mgr, &mut scheme);
        assert_eq!(orch.pending(), 0, "queue drains despite the overlap");
        // Every surviving connection is either re-protected or accounted
        // for as orphaned — nothing is silently dropped.
        for c in mgr.connections() {
            if c.state().is_carrying_traffic() && c.backup().is_none() {
                assert!(
                    orch.orphaned().contains(&c.id()),
                    "unprotected survivor {} must be in the orphan ledger",
                    c.id()
                );
            }
        }
        mgr.assert_invariants();
    }
}
