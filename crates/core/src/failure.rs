//! Link failures: the fault-tolerance probe behind the paper's Figure 4,
//! and destructive failure injection with full DRTP recovery.
//!
//! The paper's metric:
//!
//! > "`P_act-bk` is the probability of activating a backup channel when the
//! > corresponding primary channel is disabled by a single link failure."
//!
//! [`DrtpManager::probe_single_failure`] evaluates one hypothetical failure
//! *without mutating any state* — every affected connection attempts to
//! claim its backup's bandwidth from per-link activation pools, in random
//! order (conflicting backups contend; some lose, exactly the degradation
//! backup multiplexing trades for capacity).
//! [`DrtpManager::sweep_single_failures`] averages the probe over every
//! loaded failure unit, which is the lowest-variance estimator of
//! `P_act-bk` under the paper's single-failure model.
//!
//! [`DrtpManager::inject_failure`] performs the real thing: detection,
//! switchover (backup promotion), resource reclamation for unrecoverable
//! connections, and invalidation of backups that crossed the failed link
//! (steps 2–4 of DRTP, with re-establishment available via
//! [`DrtpManager::reestablish_backup`]).

use crate::multiplex::{ActivationPool, FailureModel};
use crate::{
    ConflictVector, ConnectionId, ConnectionState, DrtpError, DrtpManager, RouteMaintenance,
};
use drt_net::{Bandwidth, LinkId, NodeId, SrlgId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use std::collections::BTreeSet;
use std::fmt;

/// A correlated failure to probe or inject.
///
/// The paper's evaluation assumes independent single link failures; real
/// outages are correlated — a router crash takes every incident link at
/// once, a conduit cut fails every member of a shared-risk link group
/// (SRLG), and maintenance accidents compound. A `FailureEvent` names one
/// such correlated set; [`DrtpManager::inject_event`] resolves it to the
/// full set of failed links and runs *one* atomic switchover pass, so the
/// backups of all simultaneously-disabled primaries contend for the same
/// activation pools (injecting the links one at a time would let early
/// winners see pools the later failures should have drained).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureEvent {
    /// One link fails (expanded to its duplex twin under
    /// [`FailureModel::DuplexPair`]).
    Link(LinkId),
    /// A router crashes: every link incident to the node fails.
    Node(NodeId),
    /// A shared-risk group is cut: every member link fails (each expanded
    /// per the configured [`FailureModel`]).
    Srlg(SrlgId),
    /// Several events strike simultaneously and are resolved in one
    /// activation pass.
    Batch(Vec<FailureEvent>),
}

impl FailureEvent {
    /// The deduplicated, sorted set of links this event disables under
    /// `mgr`'s failure model. Links that are already failed are excluded
    /// (they cannot fail twice); unknown SRLG ids resolve to nothing.
    pub fn resolve(&self, mgr: &DrtpManager) -> Vec<LinkId> {
        let mut set = BTreeSet::new();
        self.collect(mgr, &mut set);
        // lint:allow(probe-alloc) — event resolution is O(event), not the per-probe loop
        set.into_iter().filter(|l| !mgr.failed[l.index()]).collect()
    }

    fn collect(&self, mgr: &DrtpManager, out: &mut BTreeSet<LinkId>) {
        match self {
            FailureEvent::Link(l) => out.extend(mgr.failure_unit(*l)),
            FailureEvent::Node(n) => {
                for l in mgr.net.incident_links(*n) {
                    out.insert(l);
                }
            }
            FailureEvent::Srlg(g) => {
                for &l in mgr.net.get_srlg(*g).unwrap_or(&[]) {
                    out.extend(mgr.failure_unit(l));
                }
            }
            FailureEvent::Batch(events) => {
                for e in events {
                    e.collect(mgr, out);
                }
            }
        }
    }
}

impl fmt::Display for FailureEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureEvent::Link(l) => write!(f, "link {l}"),
            FailureEvent::Node(n) => write!(f, "crash {n}"),
            FailureEvent::Srlg(g) => write!(f, "srlg {g}"),
            FailureEvent::Batch(events) => {
                write!(f, "batch[")?;
                for (i, e) in events.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "]")
            }
        }
    }
}

/// Outcome of one (hypothetical or real) single-failure trial.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeOutcome {
    /// The links that failed in this trial (one, or two under
    /// [`FailureModel::DuplexPair`]).
    pub failed_links: Vec<LinkId>,
    /// Per affected connection: the priority index of the backup that
    /// would/did activate, or `None` when none could.
    pub details: Vec<(ConnectionId, Option<usize>)>,
}

impl ProbeOutcome {
    /// Number of connections whose primary the failure disabled.
    pub fn affected(&self) -> usize {
        self.details.len()
    }

    /// Number of affected connections for which a backup activated.
    pub fn activated(&self) -> usize {
        self.details.iter().filter(|(_, won)| won.is_some()).count()
    }
}

/// Aggregated fault-tolerance statistics from a failure sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultToleranceSample {
    /// Total primaries disabled across all trials.
    pub affected: u64,
    /// Total successful backup activations across all trials.
    pub activated: u64,
    /// Affected primaries that held *no* backup at probe time: they can
    /// never activate, whatever the contention. Tracks how much of the
    /// `P_act-bk` shortfall is degradation (lost/never-gained protection)
    /// rather than activation conflicts.
    pub degraded: u64,
    /// Number of failure units probed (those affecting ≥ 1 primary).
    pub trials: u64,
}

impl FaultToleranceSample {
    /// `P_act-bk`, or `None` when no trial affected any primary.
    pub fn p_act_bk(&self) -> Option<f64> {
        (self.affected > 0).then(|| self.activated as f64 / self.affected as f64)
    }

    /// Merges another sample into this one.
    pub fn merge(&mut self, other: FaultToleranceSample) {
        self.affected += other.affected;
        self.activated += other.activated;
        self.degraded += other.degraded;
        self.trials += other.trials;
    }
}

impl fmt::Display for FaultToleranceSample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.p_act_bk() {
            Some(p) => {
                write!(
                    f,
                    "P_act-bk = {:.4} ({}/{} over {} trials)",
                    p, self.activated, self.affected, self.trials
                )?;
                if self.degraded > 0 {
                    write!(f, ", {} unprotected", self.degraded)?;
                }
                Ok(())
            }
            None => write!(f, "P_act-bk undefined (no affected primaries)"),
        }
    }
}

/// Timing model for DRTP's failure detection → reporting → switching
/// pipeline (steps 2–3 of the protocol).
///
/// The paper motivates proactive backups with recovery latency: "the
/// latency and success-probability of service recovery are usually better
/// than those of the reactive schemes … \[reactive\] recovery can take
/// several seconds or longer". With a pre-established backup the
/// switchover is deterministic:
///
/// 1. a node adjacent to the failed link detects the failure
///    ([`RecoveryLatencyModel::detection`], e.g. loss-of-signal or
///    heartbeat timeout);
/// 2. a failure report travels *upstream along the primary* back to the
///    source (one [`RecoveryLatencyModel::per_hop`] per hop);
/// 3. a channel-switch message travels the backup route end-to-end,
///    activating the reserved resources hop by hop.
///
/// # Example
///
/// ```
/// use drt_core::failure::RecoveryLatencyModel;
/// use drt_sim::SimDuration;
///
/// let model = RecoveryLatencyModel::default();
/// // 3 report hops + 5 activation hops at 1 ms + 10 ms detection:
/// let latency = model.latency(3, 5);
/// assert_eq!(latency, SimDuration::from_millis(18));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryLatencyModel {
    /// Time for a link-adjacent node to detect the failure.
    pub detection: drt_sim::SimDuration,
    /// Per-hop propagation + processing delay of control messages.
    pub per_hop: drt_sim::SimDuration,
}

impl Default for RecoveryLatencyModel {
    /// 10 ms detection, 1 ms per hop — representative of the era's SONET
    /// alarm + software-forwarded signalling.
    fn default() -> Self {
        RecoveryLatencyModel {
            detection: drt_sim::SimDuration::from_millis(10),
            per_hop: drt_sim::SimDuration::from_millis(1),
        }
    }
}

impl RecoveryLatencyModel {
    /// Total switchover latency for the given report and activation hop
    /// counts.
    pub fn latency(&self, report_hops: usize, activation_hops: usize) -> drt_sim::SimDuration {
        self.detection + self.per_hop.times((report_hops + activation_hops) as u64)
    }

    /// Switchover latency of `conn` if `failed` (a link on its primary)
    /// fails and `backup_index` activates: the report travels from the
    /// failed link's upstream node back to the source along the primary,
    /// then the switch message traverses the backup.
    ///
    /// Returns `None` when `failed` is not on the primary or the backup
    /// index is out of range.
    pub fn switchover_latency(
        &self,
        conn: &crate::DrConnection,
        failed: LinkId,
        backup_index: usize,
    ) -> Option<drt_sim::SimDuration> {
        let report_hops = conn.primary().links().iter().position(|&l| l == failed)?;
        let backup = conn.backups().get(backup_index)?;
        Some(self.latency(report_hops, backup.len()))
    }
}

/// Fault-tolerance impact of failing one specific unit, kept per link by
/// [`DrtpManager::sweep_single_failures`] so campaign reports can name the
/// most fragile links instead of only quoting the network-wide average.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkImpact {
    /// The representative link of the probed failure unit.
    pub link: LinkId,
    /// Primaries the unit's failure disables.
    pub affected: u32,
    /// How many of those activate a backup.
    pub activated: u32,
}

impl LinkImpact {
    /// Connections that lose service when this unit fails.
    pub fn lost(&self) -> u32 {
        self.affected - self.activated
    }
}

/// Result of a full single-failure sweep: the aggregate Figure-4 estimate
/// plus the per-unit breakdown behind it.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FailureSweep {
    /// The aggregate statistics (the paper's estimator).
    pub aggregate: FaultToleranceSample,
    /// One entry per probed failure unit that affected ≥ 1 primary, in
    /// link-id order.
    pub per_link: Vec<LinkImpact>,
}

impl FailureSweep {
    /// `P_act-bk`, or `None` when no trial affected any primary.
    pub fn p_act_bk(&self) -> Option<f64> {
        self.aggregate.p_act_bk()
    }

    /// The `k` failure units that lose the most connections, worst first
    /// (ties broken toward the lower link id, so the order is
    /// deterministic).
    pub fn worst_links(&self, k: usize) -> Vec<LinkImpact> {
        let worse =
            |a: &LinkImpact, b: &LinkImpact| b.lost().cmp(&a.lost()).then(a.link.cmp(&b.link));
        // Partition an index permutation instead of cloning and fully
        // sorting `per_link`: O(n + k log k) and only the k winners sort.
        let mut order: Vec<usize> = (0..self.per_link.len()).collect(); // lint:allow(probe-alloc) — O(per-link) report ranking, not a probe
        let k = k.min(order.len());
        if k > 0 && k < order.len() {
            order.select_nth_unstable_by(k - 1, |&a, &b| {
                worse(&self.per_link[a], &self.per_link[b])
            });
        }
        order.truncate(k);
        order.sort_unstable_by(|&a, &b| worse(&self.per_link[a], &self.per_link[b]));
        order.iter().map(|&i| self.per_link[i]).collect() // lint:allow(probe-alloc) — O(k) result materialization
    }
}

impl fmt::Display for FailureSweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.aggregate.fmt(f)
    }
}

/// What a destructive failure injection did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The links that failed.
    pub failed_links: Vec<LinkId>,
    /// Connections switched onto their (promoted) backups.
    pub switched: Vec<ConnectionId>,
    /// Connections whose backup could not be activated; their service is
    /// down and their resources were reclaimed.
    pub lost: Vec<ConnectionId>,
    /// Connections whose *backup* (not primary) crossed the failed link;
    /// the backup was dropped and they now run unprotected until
    /// re-established.
    pub unprotected: Vec<ConnectionId>,
    /// Number of activation-contention passes the injection ran. Always 1:
    /// every simultaneously-failed primary's backups contend in a single
    /// pass over the pre-failure pools, which is what makes a multi-link
    /// event atomic rather than a sequence of single-link injections.
    pub contention_passes: usize,
}

impl RecoveryReport {
    /// Affected primaries (switched + lost).
    pub fn affected(&self) -> usize {
        self.switched.len() + self.lost.len()
    }
}

/// How a crashed router recovers its channel tables on restart — the
/// centralized mirror of `drt_proto`'s crash-recovery modes, so campaign
/// drivers can compare both arms without the message-level simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RestartMode {
    /// Channel tables are volatile: the restarted router remembers
    /// nothing. Neighbours detect the outage, every transiting
    /// connection is switched, lost, or stripped of its backup
    /// registrations — and the switchovers are *spurious*, since the
    /// router comes straight back.
    #[default]
    Amnesia,
    /// The router replays its write-ahead journal and resyncs with its
    /// neighbours: every table entry is recovered and no switchover
    /// fires.
    Journaled,
}

/// What one [`DrtpManager::crash_restart_router`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestartReport {
    /// The router that crashed and restarted.
    pub node: NodeId,
    /// Recovery fidelity of this restart.
    pub mode: RestartMode,
    /// Table entries (primary hops plus backup registrations) the
    /// restarted router recovered via replay and resync. Zero under
    /// amnesia — that is the state the restart destroyed.
    pub recovered_entries: u64,
    /// Spurious switchovers: connections that switched off a router that
    /// came straight back. Empty under journaled recovery.
    pub switched: Vec<ConnectionId>,
    /// Connections destroyed by the state loss (no activatable backup).
    /// Empty under journaled recovery.
    pub lost: Vec<ConnectionId>,
    /// Connections that lost every backup registered through the
    /// restarted router and now run unprotected.
    pub unprotected: Vec<ConnectionId>,
}

impl DrtpManager {
    /// The set of links that fail together with `link` under the
    /// configured [`FailureModel`].
    pub fn failure_unit(&self, link: LinkId) -> Vec<LinkId> {
        match self.cfg.failure_model {
            FailureModel::DirectedLink => vec![link],
            FailureModel::DuplexPair => match self.net.reverse_link(link) {
                Some(rev) => vec![link, rev],
                None => vec![link],
            },
        }
    }

    /// Enumerates one representative link per failure unit (every directed
    /// link, or the lower-id half of every duplex pair).
    pub fn failure_units(&self) -> Vec<LinkId> {
        match self.cfg.failure_model {
            FailureModel::DirectedLink => self.net.links().map(|l| l.id()).collect(), // lint:allow(probe-alloc) — unit enumeration runs once per sweep
            FailureModel::DuplexPair => self
                .net
                .links()
                .filter(|l| match l.reverse() {
                    Some(rev) => l.id() < rev,
                    None => true,
                })
                .map(|l| l.id())
                .collect(), // lint:allow(probe-alloc) — unit enumeration runs once per sweep
        }
    }

    /// Writes the failure unit of `link` into `buf`, returning the filled
    /// prefix — the allocation-free form of [`DrtpManager::failure_unit`]
    /// for the probe hot paths (a unit is at most two links).
    fn failure_unit_buf<'b>(&self, link: LinkId, buf: &'b mut [LinkId; 2]) -> &'b [LinkId] {
        buf[0] = link;
        match self.cfg.failure_model {
            FailureModel::DirectedLink => &buf[..1],
            FailureModel::DuplexPair => match self.net.reverse_link(link) {
                Some(rev) => {
                    buf[1] = rev;
                    &buf[..2]
                }
                None => &buf[..1],
            },
        }
    }

    /// Evaluates one hypothetical failure without mutating state.
    ///
    /// Affected connections contend for activation bandwidth in an order
    /// shuffled by `rng` (near-simultaneous activation attempts have no
    /// canonical order); each draws from per-link pools sized by the
    /// configured [`ActivationPool`]. Uses the thread-local
    /// [`ProbeWorkspace`]; [`DrtpManager::probe_single_failure_in`] is the
    /// caller-managed form.
    pub fn probe_single_failure(&self, link: LinkId, rng: &mut StdRng) -> ProbeOutcome {
        with_probe_scratch(|ws| self.probe_single_failure_in(link, rng, ws))
    }

    /// [`DrtpManager::probe_single_failure`] into a caller-managed
    /// [`ProbeWorkspace`] — the form to use when probing in a loop on a
    /// thread you control.
    pub fn probe_single_failure_in(
        &self,
        link: LinkId,
        rng: &mut StdRng,
        ws: &mut ProbeWorkspace,
    ) -> ProbeOutcome {
        let mut buf = [link; 2];
        let unit = self.failure_unit_buf(link, &mut buf);
        self.select_activations_in(unit, rng, ws);
        ProbeOutcome {
            failed_links: unit.to_vec(),
            details: ws.decisions.clone(),
        }
    }

    /// Probes every loaded failure unit (those crossing ≥ 1 primary) and
    /// aggregates the results — the estimator for Figure 4 — together with
    /// the per-unit breakdown ([`FailureSweep::worst_links`] ranks the
    /// most fragile ones).
    ///
    /// Each unit gets an independent RNG stream derived from `seed`, so the
    /// sweep is deterministic and insensitive to unit order.
    pub fn sweep_single_failures(&self, seed: u64) -> FailureSweep {
        self.sweep_failure_units(seed, &self.failure_units(), 0)
    }

    /// Probes a contiguous slice of [`DrtpManager::failure_units`] whose
    /// first element has global enumeration index `base` — the shardable
    /// form of [`DrtpManager::sweep_single_failures`]. Each unit's RNG
    /// stream is derived from its *global* index, so sweeping `[a..b)` and
    /// `[b..c)` separately and concatenating the results is bit-identical
    /// to sweeping `[a..c)` in one call; parallel drivers split the unit
    /// list into in-order chunks and merge.
    ///
    /// The probe loop runs allocation-free in the thread-local
    /// [`ProbeWorkspace`]: per unit it touches only the O(affected)
    /// connections incident to the unit, not the whole connection table.
    pub fn sweep_failure_units(&self, seed: u64, units: &[LinkId], base: u64) -> FailureSweep {
        let mut sweep = FailureSweep::default();
        with_probe_scratch(|ws| {
            for (k, &link) in units.iter().enumerate() {
                if self.failed[link.index()] {
                    continue;
                }
                let mut rng = drt_sim::rng::indexed_stream(seed, "failure-probe", base + k as u64);
                let mut buf = [link; 2];
                let unit = self.failure_unit_buf(link, &mut buf);
                self.select_activations_in(unit, &mut rng, ws);
                if ws.decisions.is_empty() {
                    continue;
                }
                let affected = ws.decisions.len();
                let activated = ws.decisions.iter().filter(|(_, won)| won.is_some()).count();
                let sample = &mut sweep.aggregate;
                sample.affected += affected as u64;
                sample.activated += activated as u64;
                sample.degraded += ws
                    .decisions
                    .iter()
                    .filter(|(id, won)| won.is_none() && self.conns[id].backups().is_empty())
                    .count() as u64;
                sample.trials += 1;
                sweep.per_link.push(LinkImpact {
                    link,
                    affected: affected as u32,
                    activated: activated as u32,
                });
            }
        });
        sweep
    }

    /// Probes `link`'s failure unit into `ws` without materializing a
    /// [`ProbeOutcome`]; callers read `ws.decisions`. The allocation-free
    /// inner step shared by the sweep and the vulnerability report.
    pub(crate) fn probe_unit_in(&self, link: LinkId, rng: &mut StdRng, ws: &mut ProbeWorkspace) {
        let mut buf = [link; 2];
        let unit = self.failure_unit_buf(link, &mut buf);
        self.select_activations_in(unit, rng, ws);
    }

    /// Evaluates a hypothetical correlated failure without mutating state —
    /// the multi-link generalisation of
    /// [`DrtpManager::probe_single_failure`].
    pub fn probe_event(&self, event: &FailureEvent, rng: &mut StdRng) -> ProbeOutcome {
        let failed_links = event.resolve(self);
        let details = with_probe_scratch(|ws| {
            self.select_activations_in(&failed_links, rng, ws);
            std::mem::take(&mut ws.decisions)
        });
        ProbeOutcome {
            failed_links,
            details,
        }
    }

    /// Destructively fails a link (or duplex pair) and runs DRTP recovery:
    /// winners of the activation contention switch onto their backups
    /// (promotion), losers are torn down, and intact connections whose
    /// backups crossed the failed link lose their protection.
    ///
    /// # Errors
    ///
    /// [`DrtpError::LinkFailed`] when the link is already failed.
    pub fn inject_failure(
        &mut self,
        link: LinkId,
        rng: &mut StdRng,
    ) -> Result<RecoveryReport, DrtpError> {
        if self.failed[link.index()] {
            return Err(DrtpError::LinkFailed(link));
        }
        self.inject_event(&FailureEvent::Link(link), rng)
    }

    /// Destructively applies a correlated [`FailureEvent`] and runs DRTP
    /// recovery atomically: the backups of *all* simultaneously-disabled
    /// primaries contend in one activation pass over the pre-failure pools;
    /// backups that themselves cross a failed link are invalidated before
    /// contention (they can never win); winners promote, losers are torn
    /// down, and surviving connections whose backups crossed a failed link
    /// lose that protection.
    ///
    /// Already-failed links are skipped during resolution; an event that
    /// resolves to nothing (e.g. the crash of an already-isolated router)
    /// is a no-op producing an empty report.
    ///
    /// # Errors
    ///
    /// Infallible today; returns `Result` so correlated variants can gain
    /// preconditions without breaking callers.
    pub fn inject_event(
        &mut self,
        event: &FailureEvent,
        rng: &mut StdRng,
    ) -> Result<RecoveryReport, DrtpError> {
        let failed_links = event.resolve(self);
        // Decide winners on pre-failure state (near-simultaneous recovery:
        // losers' resources are not yet reclaimed when winners activate).
        let decisions = with_probe_scratch(|ws| {
            self.select_activations_in(&failed_links, rng, ws);
            std::mem::take(&mut ws.decisions)
        });

        for &l in &failed_links {
            self.failed[l.index()] = true;
        }
        self.note_links_failed(&failed_links);

        let mut report = RecoveryReport {
            failed_links: failed_links.clone(),
            switched: Vec::new(),
            lost: Vec::new(),
            unprotected: Vec::new(),
            contention_passes: 1,
        };

        // Winners first: promote their backups while the decided pools
        // still hold (releasing primaries only adds slack).
        for (id, won) in &decisions {
            let Some(win_idx) = won else { continue };
            self.promote_winner(*id, *win_idx);
            report.switched.push(*id);
        }
        // Losers afterwards: tear down.
        for (id, won) in &decisions {
            if won.is_some() {
                continue;
            }
            let conn = self.conns.get(id).expect("probed connection exists");
            let bw = conn.qos().bandwidth;
            let primary = conn.primary().clone();
            let backups = conn.backups().to_vec();
            let dedicated = conn.backup_is_dedicated();
            self.release_route_prime(primary.links(), bw);
            self.incidence.remove_primary(primary.links(), *id);
            for b in &backups {
                self.incidence.remove_backup(b.links(), *id);
                if dedicated {
                    self.release_route_prime(b.links(), bw);
                } else {
                    self.unregister_backup(b, primary.links(), bw);
                }
            }
            let c = self.conns.get_mut(id).expect("exists");
            c.clear_backups();
            c.set_state(ConnectionState::Failed);
            self.note_backups_cleared(*id);
            report.lost.push(*id);
        }

        // Intact connections whose backups crossed the failed link lose
        // those backups (they can never activate now); connections left
        // with none become unprotected. The incidence index — already
        // updated for winners and losers above — yields the survivors
        // directly; sort + dedup restores connection-table id order.
        let mut candidates: Vec<ConnectionId> = Vec::new();
        for &l in &failed_links {
            candidates.extend_from_slice(self.incidence.backups_on(l));
        }
        candidates.sort_unstable();
        candidates.dedup();
        for id in candidates {
            // Taken out of the table so the surviving primary can be
            // borrowed while the dead backups unregister — no route
            // clones or repeated lookups in the invalidation loop.
            let mut conn = self.conns.remove(&id).expect("listed above");
            let bw = conn.qos().bandwidth;
            let dedicated = conn.backup_is_dedicated();
            // Walk from the highest index down so removals keep the
            // remaining indices valid.
            for idx in (0..conn.backups().len()).rev() {
                let crosses = failed_links
                    .iter()
                    .any(|&l| conn.backups()[idx].contains_link(l));
                if !crosses {
                    continue;
                }
                let removed = conn.remove_backup(idx);
                self.incidence.remove_backup(removed.links(), id);
                self.note_backup_removed(id, idx);
                if dedicated {
                    self.release_route_prime(removed.links(), bw);
                } else {
                    self.unregister_backup(&removed, conn.primary().links(), bw);
                }
            }
            if conn.backups().is_empty() {
                report.unprotected.push(id);
            }
            self.conns.insert(id, conn);
        }

        self.hops_changed(&failed_links);
        self.telemetry.incr("inject.events");
        self.telemetry
            .add("inject.links_failed", report.failed_links.len() as u64);
        self.telemetry
            .add("inject.switched", report.switched.len() as u64);
        self.telemetry.add("inject.lost", report.lost.len() as u64);
        self.telemetry
            .add("inject.unprotected", report.unprotected.len() as u64);
        Ok(report)
    }

    /// Switches a contention winner onto backup `win_idx`: the old
    /// primary's reservations and every backup registration are released,
    /// the winning backup's activation bandwidth converts into a primary
    /// reservation, and the connection record promotes. Shared by
    /// [`DrtpManager::inject_event`] (real failures) and
    /// [`DrtpManager::inject_false_report`] (spoofed ones — the switch is
    /// identical, only the link's true state differs).
    fn promote_winner(&mut self, id: ConnectionId, win_idx: usize) {
        // The record is taken out of the table for the duration so its
        // routes can be walked by reference — no per-winner route clones
        // on the recovery hot path.
        let mut conn = self.conns.remove(&id).expect("probed connection exists");
        let bw = conn.qos().bandwidth;
        let dedicated = conn.backup_is_dedicated();

        self.release_route_prime(conn.primary().links(), bw);
        self.incidence.remove_primary(conn.primary().links(), id);
        for b in conn.backups() {
            self.incidence.remove_backup(b.links(), id);
        }
        if dedicated {
            // The promoted backup keeps its hard reservations as the
            // new primary; the remaining backups are released.
            for (i, b) in conn.backups().iter().enumerate() {
                if i != win_idx {
                    self.release_route_prime(b.links(), bw);
                }
            }
        } else {
            // All backups leave the spare pools; the promoted one then
            // converts activation bandwidth into a primary reservation.
            for b in conn.backups() {
                self.unregister_backup(b, conn.primary().links(), bw);
            }
            for &l in conn.backups()[win_idx].links() {
                self.links[l.index()]
                    .promote_from_pools(bw)
                    .expect("activation pools cover decided winners");
            }
        }
        // The promoted backup route is the connection's new primary; the
        // remaining backups (and their cached masks) are all gone.
        self.incidence
            .add_primary(conn.backups()[win_idx].links(), id);
        conn.promote_backup(win_idx);
        self.conns.insert(id, conn);
        self.note_backups_cleared(id);
    }

    /// A byzantine router's *false* failure report for a healthy link,
    /// taken at face value: every connection whose primary crosses `link`
    /// runs the ordinary activation contention and the winners switch
    /// onto their backups — spurious reroutes that burn backup capacity
    /// and leave the switchers unprotected — while the link itself stays
    /// up and keeps carrying the losers' (perfectly healthy) primaries
    /// untouched. No teardown, no backup-drop pass: nothing actually
    /// failed.
    ///
    /// This is the damage a `false LINK_FAIL` does when the manager has
    /// no report verification; the defended path rejects the report
    /// upstream (see `RecoveryOrchestrator::vet_report`) and never calls
    /// this.
    ///
    /// # Errors
    ///
    /// [`DrtpError::LinkNotFailed`] is never returned;
    /// [`DrtpError::LinkFailed`] when `link` is actually failed (a true
    /// report must go through [`DrtpManager::inject_event`]).
    pub fn inject_false_report(
        &mut self,
        link: LinkId,
        rng: &mut StdRng,
    ) -> Result<RecoveryReport, DrtpError> {
        if self.failed[link.index()] {
            return Err(DrtpError::LinkFailed(link));
        }
        let unit = self.failure_unit(link);
        let decisions = with_probe_scratch(|ws| {
            self.select_activations_in(&unit, rng, ws);
            std::mem::take(&mut ws.decisions)
        });

        let mut report = RecoveryReport {
            // Nothing actually failed: the report's failed set is empty
            // so accounting downstream never counts a phantom outage.
            failed_links: Vec::new(),
            switched: Vec::new(),
            lost: Vec::new(),
            unprotected: Vec::new(),
            contention_passes: 1,
        };
        for (id, won) in &decisions {
            let Some(win_idx) = won else {
                // A loser of the phantom contention simply stays on its
                // healthy primary — there is nothing to tear down.
                continue;
            };
            self.promote_winner(*id, *win_idx);
            report.switched.push(*id);
        }
        self.telemetry.incr("adversary.false_reports");
        self.telemetry
            .add("adversary.false_reroutes", report.switched.len() as u64);
        Ok(report)
    }

    /// Crashes router `node` and restarts it within the same event, with
    /// recovery fidelity set by `mode`.
    ///
    /// Under [`RestartMode::Journaled`] the restart is invisible to the
    /// connection tables: replay plus neighbour resync recover every
    /// entry the router held, and the report only counts what was
    /// recovered. Under [`RestartMode::Amnesia`] the outage is a real
    /// node failure while it lasts — switchovers, losses, and dropped
    /// backup registrations all land exactly as
    /// [`DrtpManager::inject_event`] would inflict them — but the
    /// incident links come straight back up, which is what makes every
    /// switchover spurious: the network rerouted around a router that
    /// returned a moment later, minus all its state.
    ///
    /// # Errors
    ///
    /// Infallible today; returns `Result` to match the other injection
    /// seams so preconditions can be added without breaking callers.
    pub fn crash_restart_router(
        &mut self,
        node: NodeId,
        mode: RestartMode,
        rng: &mut StdRng,
    ) -> Result<RestartReport, DrtpError> {
        self.telemetry.incr("restart.events");
        match mode {
            RestartMode::Journaled => {
                let mut recovered = 0u64;
                for l in self.net.incident_links(node) {
                    recovered += self.incidence.primaries_on(l).len() as u64;
                    recovered += self.incidence.backups_on(l).len() as u64;
                }
                self.telemetry.add("restart.recovered_entries", recovered);
                self.telemetry.incr("restart.journaled_rejoins");
                Ok(RestartReport {
                    node,
                    mode,
                    recovered_entries: recovered,
                    switched: Vec::new(),
                    lost: Vec::new(),
                    unprotected: Vec::new(),
                })
            }
            RestartMode::Amnesia => {
                let report = self.inject_event(&FailureEvent::Node(node), rng)?;
                // The router is back before anything is repaired by hand:
                // clear the incident-link failures the injection set.
                for &l in &report.failed_links {
                    self.failed[l.index()] = false;
                }
                self.note_links_repaired(&report.failed_links);
                self.hops_changed(&report.failed_links);
                self.telemetry
                    .add("restart.spurious_switchovers", report.switched.len() as u64);
                self.telemetry
                    .add("restart.lost_connections", report.lost.len() as u64);
                self.telemetry.add(
                    "restart.registrations_lost",
                    report.unprotected.len() as u64,
                );
                Ok(RestartReport {
                    node,
                    mode,
                    recovered_entries: 0,
                    switched: report.switched,
                    lost: report.lost,
                    unprotected: report.unprotected,
                })
            }
        }
    }

    /// [`DrtpManager::sweep_single_failures`] plus telemetry: records the
    /// sweep aggregate (trials, activations, the `P_act-bk` gauge) into
    /// the manager's [`crate::Telemetry`] before returning it. The sweep
    /// itself is the same non-destructive probe; only the recording needs
    /// `&mut self`.
    pub fn sweep_single_failures_recorded(&mut self, seed: u64) -> FailureSweep {
        let sweep = self.sweep_single_failures(seed);
        self.telemetry.record_sweep(&sweep);
        sweep
    }

    /// Repairs a previously failed link (and its twin under
    /// [`FailureModel::DuplexPair`]). Existing connections are not
    /// re-routed; new requests may use the link again.
    ///
    /// # Errors
    ///
    /// [`DrtpError::LinkNotFailed`] when the link is not failed.
    pub fn repair_link(&mut self, link: LinkId) -> Result<(), DrtpError> {
        if !self.failed[link.index()] {
            return Err(DrtpError::LinkNotFailed(link));
        }
        let unit = self.failure_unit(link);
        for &l in &unit {
            self.failed[l.index()] = false;
        }
        self.note_links_repaired(&unit);
        self.hops_changed(&unit);
        Ok(())
    }

    /// The activation pool a probe may draw from on link index `i`.
    fn activation_pool_at(&self, i: usize) -> Bandwidth {
        let lr = &self.links[i];
        match self.cfg.activation {
            ActivationPool::SpareAndFree => lr.spare() + lr.free(),
            ActivationPool::SpareOnly => lr.spare(),
        }
    }

    /// Shared winner selection: shuffle affected connections, then let each
    /// try its backups in priority order, claiming bandwidth from the
    /// per-link activation pools; the first backup that is alive and fits
    /// wins. Decisions land in `ws.decisions`.
    ///
    /// Index-driven and allocation-free: the affected set is the union of
    /// the failed links' primary-incidence lists (sort + dedup restores the
    /// connection table's id order, so the shuffle consumes `rng`
    /// identically to the full-scan baseline), failed-link membership is a
    /// generation-stamped mark array, and the per-link pools initialize
    /// lazily on first touch — a probe never walks all links or all
    /// connections.
    pub(crate) fn select_activations_in(
        &self,
        failed_links: &[LinkId],
        rng: &mut StdRng,
        ws: &mut ProbeWorkspace,
    ) {
        ws.begin(self.net.num_links());
        let incremental = self.maintenance == RouteMaintenance::Incremental;
        for &l in failed_links {
            ws.mark_stamp[l.index()] = ws.gen;
            if incremental {
                ws.event_mask.set(l);
            }
        }
        for &l in failed_links {
            ws.affected
                .extend_from_slice(self.incidence.primaries_on(l));
        }
        ws.affected.sort_unstable();
        ws.affected.dedup();
        ws.affected.shuffle(rng);

        for k in 0..ws.affected.len() {
            let id = ws.affected[k];
            let conn = &self.conns[&id];
            let bw = conn.qos().bandwidth;
            let mut won = None;
            for (idx, b) in conn.backups().iter().enumerate() {
                // Incremental mode replaces the per-link scan with two
                // popcounts over the backup's cached dense mask — against
                // the standing failed mirror and this event's mask. The
                // masks hold exactly the backup's link set (invariant
                // 1d), so both forms decide identically and consume `rng`
                // the same way.
                let usable = if incremental {
                    let mask = self.backup_mask(id, idx);
                    mask.and_count(self.failed_cv()) == 0 && mask.and_count(&ws.event_mask) == 0
                } else {
                    b.links()
                        .iter()
                        .all(|l| !self.failed[l.index()] && ws.mark_stamp[l.index()] != ws.gen)
                };
                if !usable {
                    continue;
                }
                if conn.backup_is_dedicated() {
                    // Bandwidth is already exclusively reserved.
                    won = Some(idx);
                    break;
                }
                let fits = b.links().iter().all(|&l| {
                    let i = l.index();
                    if ws.pool_stamp[i] != ws.gen {
                        // First touch this probe: pools are sized from the
                        // live ledgers, before any deduction on this link.
                        ws.pool_stamp[i] = ws.gen;
                        ws.pool[i] = self.activation_pool_at(i);
                    }
                    ws.pool[i] >= bw
                });
                if fits {
                    for &l in b.links() {
                        ws.pool[l.index()] -= bw;
                    }
                    won = Some(idx);
                    break;
                }
            }
            ws.decisions.push((id, won));
        }
    }

    /// The full-scan reference implementation of the failure-analysis
    /// paths, for equivalence tests and benchmarks (the counterpart of
    /// `DLsr::sparse_baseline` for the probe side).
    pub fn naive_baseline(&self) -> NaiveFailureAnalysis<'_> {
        NaiveFailureAnalysis { mgr: self }
    }
}

/// Reusable, generation-stamped scratch state for failure probes —
/// the probe-side mirror of `drt_net`'s `SpfWorkspace`.
///
/// A probe needs per-link activation pools, a failed-link membership test,
/// the affected-connection list, and the decision vector. Allocating those
/// per probe makes a full sweep O(units × links) in allocations alone;
/// instead every array here is *generation-stamped*: starting a probe bumps
/// a generation counter and an entry is meaningful only when its stamp
/// matches, so reset is O(1) and pools initialize lazily on first touch.
///
/// Probe entry points default to a thread-local instance; the `_in`
/// variants accept an explicit workspace for callers managing their own
/// (e.g. per-worker workspaces in parallel sweeps).
#[derive(Debug, Clone)]
pub struct ProbeWorkspace {
    gen: u32,
    /// Stamp guarding `pool` (a pool value is valid iff stamp == gen).
    pool_stamp: Vec<u32>,
    /// Remaining activation bandwidth per link, this probe.
    pool: Vec<Bandwidth>,
    /// A link is failed-in-this-probe iff its mark stamp == gen — the O(1)
    /// membership test replacing linear `failed_links.contains` scans.
    mark_stamp: Vec<u32>,
    /// Dense form of this probe's failed set, so incremental-mode
    /// usability checks are popcounts against the cached backup masks.
    /// Zeroed (O(N/64)) at the start of every probe.
    event_mask: ConflictVector,
    /// Ids of the connections whose primary the probed unit disables.
    affected: Vec<ConnectionId>,
    /// Per affected connection, the backup index that activated (if any).
    pub(crate) decisions: Vec<(ConnectionId, Option<usize>)>,
}

impl Default for ProbeWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

impl ProbeWorkspace {
    /// An empty workspace; arrays grow to the network size on first use.
    pub fn new() -> Self {
        ProbeWorkspace {
            gen: 0,
            pool_stamp: Vec::new(),
            pool: Vec::new(),
            mark_stamp: Vec::new(),
            event_mask: ConflictVector::zeros(0),
            affected: Vec::new(),
            decisions: Vec::new(),
        }
    }

    /// Starts a new probe generation sized for `num_links` links.
    fn begin(&mut self, num_links: usize) {
        if self.pool_stamp.len() < num_links {
            self.pool_stamp.resize(num_links, 0);
            self.pool.resize(num_links, Bandwidth::ZERO);
            self.mark_stamp.resize(num_links, 0);
        }
        if self.event_mask.len() < num_links {
            self.event_mask = ConflictVector::zeros(num_links);
        } else {
            self.event_mask.clear_all();
        }
        self.gen = match self.gen.checked_add(1) {
            Some(g) => g,
            None => {
                // Generation counter wrapped: stale stamps could collide
                // with a fresh generation, so clear them once.
                self.pool_stamp.iter_mut().for_each(|s| *s = 0);
                self.mark_stamp.iter_mut().for_each(|s| *s = 0);
                1
            }
        };
        self.affected.clear();
        self.decisions.clear();
    }
}

thread_local! {
    /// Per-thread probe scratch: parallel sweep workers each get their own
    /// workspace for free under scoped threads.
    static SCRATCH: std::cell::RefCell<ProbeWorkspace> =
        std::cell::RefCell::new(ProbeWorkspace::new());
}

/// Runs `f` with the thread-local [`ProbeWorkspace`]. Falls back to a
/// fresh workspace under re-entrancy (a probe initiated from inside a
/// probe) instead of panicking on the RefCell.
pub(crate) fn with_probe_scratch<R>(f: impl FnOnce(&mut ProbeWorkspace) -> R) -> R {
    SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut ws) => f(&mut ws),
        Err(_) => f(&mut ProbeWorkspace::new()),
    })
}

/// The pre-index full-scan implementation of the probe paths, kept as the
/// reference the incidence-indexed engine is proved against (property
/// tests assert probe ≡ baseline bit-for-bit) and benchmarked against.
///
/// Obtained from [`DrtpManager::naive_baseline`]; every method matches the
/// indexed counterpart's name and contract.
#[derive(Debug, Clone, Copy)]
pub struct NaiveFailureAnalysis<'a> {
    mgr: &'a DrtpManager,
}

impl NaiveFailureAnalysis<'_> {
    /// Full-scan winner selection: scans the whole connection table for
    /// affected primaries and materializes all per-link activation pools
    /// up front — the exact pre-index algorithm.
    fn select_activations(
        &self,
        failed_links: &[LinkId],
        rng: &mut StdRng,
    ) -> Vec<(ConnectionId, Option<usize>)> {
        let mgr = self.mgr;
        let mut affected: Vec<ConnectionId> = mgr
            .conns
            .values()
            .filter(|c| {
                c.state().is_carrying_traffic()
                    && failed_links.iter().any(|l| c.primary().contains_link(*l))
            })
            .map(|c| c.id())
            .collect(); // lint:allow(probe-alloc) — the full-scan baseline is the allocation profile being measured
        affected.shuffle(rng);

        // Per-link activation pools, materialized for every link.
        let mut pool: Vec<Bandwidth> = (0..mgr.links.len())
            .map(|i| mgr.activation_pool_at(i))
            .collect(); // lint:allow(probe-alloc) — the full-scan baseline is the allocation profile being measured

        // lint:allow(probe-alloc) — the full-scan baseline is the allocation profile being measured
        let mut decisions = Vec::with_capacity(affected.len());
        for id in affected {
            let conn = &mgr.conns[&id];
            let bw = conn.qos().bandwidth;
            let mut won = None;
            for (idx, b) in conn.backups().iter().enumerate() {
                let usable = b
                    .links()
                    .iter()
                    .all(|l| !mgr.failed[l.index()] && !failed_links.contains(l));
                if !usable {
                    continue;
                }
                if conn.backup_is_dedicated() {
                    won = Some(idx);
                    break;
                }
                let fits = b.links().iter().all(|l| pool[l.index()] >= bw);
                if fits {
                    for l in b.links() {
                        pool[l.index()] -= bw;
                    }
                    won = Some(idx);
                    break;
                }
            }
            decisions.push((id, won));
        }
        decisions
    }

    /// Full-scan [`DrtpManager::probe_single_failure`].
    pub fn probe_single_failure(&self, link: LinkId, rng: &mut StdRng) -> ProbeOutcome {
        let failed_links = self.mgr.failure_unit(link);
        let details = self.select_activations(&failed_links, rng);
        ProbeOutcome {
            failed_links,
            details,
        }
    }

    /// Full-scan [`DrtpManager::probe_event`].
    pub fn probe_event(&self, event: &FailureEvent, rng: &mut StdRng) -> ProbeOutcome {
        let failed_links = event.resolve(self.mgr);
        let details = self.select_activations(&failed_links, rng);
        ProbeOutcome {
            failed_links,
            details,
        }
    }

    /// Full-scan [`DrtpManager::sweep_single_failures`]: O(units × conns),
    /// one pool vector allocated per probed unit.
    pub fn sweep_single_failures(&self, seed: u64) -> FailureSweep {
        let mgr = self.mgr;
        let mut sweep = FailureSweep::default();
        for (idx, link) in mgr.failure_units().into_iter().enumerate() {
            if mgr.failed[link.index()] {
                continue;
            }
            let mut rng = drt_sim::rng::indexed_stream(seed, "failure-probe", idx as u64);
            let outcome = self.probe_single_failure(link, &mut rng);
            if outcome.affected() == 0 {
                continue;
            }
            let sample = &mut sweep.aggregate;
            sample.affected += outcome.affected() as u64;
            sample.activated += outcome.activated() as u64;
            sample.degraded += outcome
                .details
                .iter()
                .filter(|(id, won)| won.is_none() && mgr.conns[id].backups().is_empty())
                .count() as u64;
            sample.trials += 1;
            sweep.per_link.push(LinkImpact {
                link,
                affected: outcome.affected() as u32,
                activated: outcome.activated() as u32,
            });
        }
        sweep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multiplex::MultiplexConfig;
    use crate::routing::{DLsr, DedicatedDisjoint, RouteRequest};
    use drt_net::{topology, Bandwidth, NodeId};
    use std::sync::Arc;

    const BW: Bandwidth = Bandwidth::from_kbps(3_000);

    fn req(id: u64, src: u32, dst: u32) -> RouteRequest {
        RouteRequest::new(
            ConnectionId::new(id),
            NodeId::new(src),
            NodeId::new(dst),
            BW,
        )
    }

    fn rng() -> StdRng {
        drt_sim::rng::stream(7, "failure-tests")
    }

    #[test]
    fn probe_is_pure() {
        let net = Arc::new(topology::mesh(3, 3, Bandwidth::from_mbps(10)).unwrap());
        let mut mgr = DrtpManager::new(net);
        let mut scheme = DLsr::new();
        mgr.request_connection(&mut scheme, req(0, 0, 8)).unwrap();
        let before = format!("{mgr}");
        let link = *mgr
            .connection(ConnectionId::new(0))
            .unwrap()
            .primary()
            .links()
            .first()
            .unwrap();
        let out = mgr.probe_single_failure(link, &mut rng());
        assert_eq!(out.affected(), 1);
        assert_eq!(out.activated(), 1, "sole backup must activate");
        assert_eq!(format!("{mgr}"), before, "probe must not mutate");
        mgr.assert_invariants();
    }

    #[test]
    fn sweep_reports_full_tolerance_on_light_load() {
        let net = Arc::new(topology::mesh(3, 3, Bandwidth::from_mbps(10)).unwrap());
        let mut mgr = DrtpManager::new(net);
        let mut scheme = DLsr::new();
        mgr.request_connection(&mut scheme, req(0, 0, 8)).unwrap();
        mgr.request_connection(&mut scheme, req(1, 6, 2)).unwrap();
        let sweep = mgr.sweep_single_failures(1);
        assert!(sweep.aggregate.trials > 0);
        assert_eq!(sweep.p_act_bk(), Some(1.0));
        assert_eq!(sweep.per_link.len(), sweep.aggregate.trials as usize);
        assert!(sweep.worst_links(3).iter().all(|li| li.lost() == 0));
    }

    #[test]
    fn sweep_is_deterministic_per_seed() {
        let net = Arc::new(topology::mesh(3, 3, Bandwidth::from_mbps(10)).unwrap());
        let mut mgr = DrtpManager::new(net);
        let mut scheme = DLsr::new();
        for i in 0..5 {
            let _ = mgr.request_connection(&mut scheme, req(i, (i % 8) as u32, 8));
        }
        assert_eq!(mgr.sweep_single_failures(3), mgr.sweep_single_failures(3));
    }

    #[test]
    fn conflicting_backups_contend() {
        // Ring(4), 7 Mb/s links, two 3 Mb/s connections 0 -> 1: primaries
        // share the direct link, backups share the long way — the paper's
        // conflict situation. Under the paper's policy the spare pool on
        // the backup links *grows to 6 Mb/s* (Section 5), so both
        // activations succeed.
        let net = Arc::new(topology::ring(4, Bandwidth::from_kbps(7_000)).unwrap());
        let mut mgr = DrtpManager::new(Arc::clone(&net));
        let mut scheme = DLsr::new();
        let r0 = mgr.request_connection(&mut scheme, req(0, 0, 1)).unwrap();
        let r1 = mgr.request_connection(&mut scheme, req(1, 0, 1)).unwrap();
        assert!(r1.conflicted);
        assert!(
            r1.spare_grown > Bandwidth::ZERO,
            "conflict grows the spare pool"
        );
        let backup_link = r0.backup().unwrap().links()[0];
        assert_eq!(
            mgr.link_resources(backup_link).spare(),
            Bandwidth::from_kbps(6_000)
        );

        let shared = mgr.net().find_link(NodeId::new(0), NodeId::new(1)).unwrap();
        let out = mgr.probe_single_failure(shared, &mut rng());
        assert_eq!(out.affected(), 2);
        assert_eq!(
            out.activated(),
            2,
            "grown spare covers both conflicting backups"
        );

        // Ablation: with SparePolicy::NeverGrow and spare-only activation
        // pools, the same workload loses both activations — quantifying
        // what Section 5's sizing rule buys.
        let mut cfg = MultiplexConfig::paper();
        cfg.spare = crate::multiplex::SparePolicy::NeverGrow;
        cfg.activation = crate::multiplex::ActivationPool::SpareOnly;
        let mut strict = DrtpManager::with_config(net, cfg);
        let mut scheme = DLsr::new();
        strict
            .request_connection(&mut scheme, req(0, 0, 1))
            .unwrap();
        strict
            .request_connection(&mut scheme, req(1, 0, 1))
            .unwrap();
        let out = strict.probe_single_failure(shared, &mut rng());
        assert_eq!(out.affected(), 2);
        assert_eq!(out.activated(), 0, "no spare, no activation");
    }

    #[test]
    fn inject_failure_switches_and_recovers() {
        let net = Arc::new(topology::mesh(3, 3, Bandwidth::from_mbps(10)).unwrap());
        let mut mgr = DrtpManager::new(net);
        let mut scheme = DLsr::new();
        let rep = mgr.request_connection(&mut scheme, req(0, 0, 8)).unwrap();
        let primary_link = rep.primary.links()[0];
        let backup = rep.backup().cloned().unwrap();

        let report = mgr.inject_failure(primary_link, &mut rng()).unwrap();
        assert_eq!(report.switched, vec![ConnectionId::new(0)]);
        assert!(report.lost.is_empty());
        assert!(mgr.is_failed(primary_link));

        let conn = mgr.connection(ConnectionId::new(0)).unwrap();
        assert_eq!(conn.state(), ConnectionState::Recovered);
        assert_eq!(conn.primary().links(), backup.links());
        assert!(conn.backup().is_none());
        mgr.assert_invariants();

        // Reconfiguration restores protection.
        mgr.reestablish_backup(&mut scheme, ConnectionId::new(0))
            .unwrap();
        assert_eq!(
            mgr.connection(ConnectionId::new(0)).unwrap().state(),
            ConnectionState::Protected
        );
        mgr.assert_invariants();

        // Repair allows the link again.
        mgr.repair_link(primary_link).unwrap();
        assert!(!mgr.is_failed(primary_link));
        assert_eq!(
            mgr.repair_link(primary_link).unwrap_err(),
            DrtpError::LinkNotFailed(primary_link)
        );
    }

    #[test]
    fn double_failure_rejected() {
        let net = Arc::new(topology::mesh(3, 3, Bandwidth::from_mbps(10)).unwrap());
        let mut mgr = DrtpManager::new(net);
        let l = drt_net::LinkId::new(0);
        mgr.inject_failure(l, &mut rng()).unwrap();
        assert_eq!(
            mgr.inject_failure(l, &mut rng()).unwrap_err(),
            DrtpError::LinkFailed(l)
        );
    }

    #[test]
    fn backup_crossing_failed_link_is_invalidated() {
        let net = Arc::new(topology::mesh(3, 3, Bandwidth::from_mbps(10)).unwrap());
        let mut mgr = DrtpManager::new(net);
        let mut scheme = DLsr::new();
        let rep = mgr.request_connection(&mut scheme, req(0, 0, 8)).unwrap();
        let backup_link = rep.backup().unwrap().links()[0];

        let report = mgr.inject_failure(backup_link, &mut rng()).unwrap();
        assert!(report.switched.is_empty());
        assert_eq!(report.unprotected, vec![ConnectionId::new(0)]);
        let conn = mgr.connection(ConnectionId::new(0)).unwrap();
        assert_eq!(conn.state(), ConnectionState::Unprotected);
        assert!(conn.backup().is_none());
        mgr.assert_invariants();
    }

    #[test]
    fn dedicated_backup_always_activates() {
        let net = Arc::new(topology::mesh(3, 3, Bandwidth::from_mbps(10)).unwrap());
        let mut mgr = DrtpManager::new(net);
        let rep = mgr
            .request_connection(&mut DedicatedDisjoint::new(), req(0, 0, 8))
            .unwrap();
        let primary_link = rep.primary.links()[0];
        let report = mgr.inject_failure(primary_link, &mut rng()).unwrap();
        assert_eq!(report.switched, vec![ConnectionId::new(0)]);
        mgr.assert_invariants();
        // After promotion the old backup's reservations carry the traffic.
        let conn = mgr.connection(ConnectionId::new(0)).unwrap();
        assert_eq!(conn.state(), ConnectionState::Recovered);
        mgr.release(ConnectionId::new(0)).unwrap();
        assert_eq!(mgr.total_prime(), Bandwidth::ZERO);
        mgr.assert_invariants();
    }

    #[test]
    fn lost_connection_resources_are_reclaimed() {
        // Path graph: no backup possible -> allow unprotected admission,
        // then fail the only route.
        let mut b = drt_net::NetworkBuilder::with_nodes(3);
        b.add_duplex_link(NodeId::new(0), NodeId::new(1), Bandwidth::from_mbps(10))
            .unwrap();
        b.add_duplex_link(NodeId::new(1), NodeId::new(2), Bandwidth::from_mbps(10))
            .unwrap();
        let net = Arc::new(b.build());
        let mut mgr = DrtpManager::with_config(net, MultiplexConfig::no_backup_baseline());
        let mut scheme = crate::routing::PrimaryOnly::new();
        let rep = mgr.request_connection(&mut scheme, req(0, 0, 2)).unwrap();
        let l = rep.primary.links()[0];
        let report = mgr.inject_failure(l, &mut rng()).unwrap();
        assert_eq!(report.lost, vec![ConnectionId::new(0)]);
        assert_eq!(mgr.total_prime(), Bandwidth::ZERO);
        assert_eq!(
            mgr.connection(ConnectionId::new(0)).unwrap().state(),
            ConnectionState::Failed
        );
        // Releasing a failed connection is a no-op.
        mgr.release(ConnectionId::new(0)).unwrap();
        mgr.assert_invariants();
    }

    fn route(net: &drt_net::Network, nodes: &[u32]) -> drt_net::Route {
        let ids: Vec<NodeId> = nodes.iter().map(|&n| NodeId::new(n)).collect();
        drt_net::Route::from_nodes(net, &ids).unwrap()
    }

    #[test]
    fn node_crash_resolves_to_incident_links_in_one_pass() {
        // 3x3 grid; two scripted primaries transit node 4 over *different*
        // incident links, with backups that avoid node 4 entirely.
        let net = Arc::new(topology::mesh(3, 3, Bandwidth::from_mbps(10)).unwrap());
        let mut mgr = DrtpManager::new(Arc::clone(&net));
        let mut scheme = crate::routing::Scripted::new();
        scheme
            .push(route(&net, &[3, 4, 5]), Some(route(&net, &[3, 0, 1, 2, 5])))
            .push(route(&net, &[1, 4, 7]), Some(route(&net, &[1, 2, 5, 8, 7])));
        mgr.request_connection(&mut scheme, req(0, 3, 5)).unwrap();
        mgr.request_connection(&mut scheme, req(1, 1, 7)).unwrap();

        let event = FailureEvent::Node(NodeId::new(4));
        let resolved = event.resolve(&mgr);
        assert_eq!(resolved.len(), 8, "grid-interior node has 4 duplex pairs");

        let report = mgr.inject_event(&event, &mut rng()).unwrap();
        assert_eq!(
            report.contention_passes, 1,
            "both disabled primaries must contend in a single pass"
        );
        assert_eq!(report.affected(), 2);
        let mut switched = report.switched.clone();
        switched.sort();
        assert_eq!(switched, vec![ConnectionId::new(0), ConnectionId::new(1)]);
        for l in resolved {
            assert!(mgr.is_failed(l));
        }
        mgr.assert_invariants();
    }

    #[test]
    fn node_crash_of_endpoint_loses_the_connection() {
        let net = Arc::new(topology::mesh(3, 3, Bandwidth::from_mbps(10)).unwrap());
        let mut mgr = DrtpManager::new(net);
        let mut scheme = DLsr::new();
        mgr.request_connection(&mut scheme, req(0, 0, 8)).unwrap();
        // Crashing the destination kills the primary *and* every backup
        // (all terminate there), so nothing can activate.
        let report = mgr
            .inject_event(&FailureEvent::Node(NodeId::new(8)), &mut rng())
            .unwrap();
        assert_eq!(report.lost, vec![ConnectionId::new(0)]);
        assert!(report.switched.is_empty());
        mgr.assert_invariants();
    }

    #[test]
    fn srlg_event_fails_every_member() {
        let mut b = drt_net::NetworkBuilder::with_nodes(4);
        let (ab, _) = b
            .add_duplex_link(NodeId::new(0), NodeId::new(1), Bandwidth::from_mbps(10))
            .unwrap();
        let (bc, _) = b
            .add_duplex_link(NodeId::new(1), NodeId::new(2), Bandwidth::from_mbps(10))
            .unwrap();
        b.add_duplex_link(NodeId::new(0), NodeId::new(3), Bandwidth::from_mbps(10))
            .unwrap();
        b.add_duplex_link(NodeId::new(3), NodeId::new(2), Bandwidth::from_mbps(10))
            .unwrap();
        // One conduit carries both hops of the short path.
        let g = b.add_srlg(&[ab, bc]).unwrap();
        let net = Arc::new(b.build());
        let mut mgr = DrtpManager::new(Arc::clone(&net));
        let mut scheme = crate::routing::Scripted::new();
        scheme.push(route(&net, &[0, 1, 2]), Some(route(&net, &[0, 3, 2])));
        mgr.request_connection(&mut scheme, req(0, 0, 2)).unwrap();

        let report = mgr
            .inject_event(&FailureEvent::Srlg(g), &mut rng())
            .unwrap();
        assert_eq!(report.failed_links.len(), 2, "both members fail");
        assert_eq!(report.switched, vec![ConnectionId::new(0)]);
        assert_eq!(report.contention_passes, 1);
        mgr.assert_invariants();
    }

    #[test]
    fn batch_event_unions_and_dedups() {
        let net = Arc::new(topology::ring(5, Bandwidth::from_mbps(10)).unwrap());
        let mgr = DrtpManager::new(Arc::clone(&net));
        let l0 = drt_net::LinkId::new(0);
        let batch = FailureEvent::Batch(vec![
            FailureEvent::Link(l0),
            FailureEvent::Link(l0), // duplicate collapses
            FailureEvent::Node(NodeId::new(3)),
        ]);
        let resolved = batch.resolve(&mgr);
        let mut expect: BTreeSet<LinkId> = mgr.net().incident_links(NodeId::new(3)).collect();
        expect.insert(l0);
        assert_eq!(resolved, expect.into_iter().collect::<Vec<_>>());
        assert_eq!(format!("{batch}"), "batch[link L0, link L0, crash n3]");
    }

    #[test]
    fn journaled_restart_recovers_everything_untouched() {
        let net = Arc::new(topology::mesh(3, 3, Bandwidth::from_mbps(10)).unwrap());
        let mut mgr = DrtpManager::new(Arc::clone(&net));
        let mut scheme = DLsr::new();
        mgr.request_connection(&mut scheme, req(0, 0, 8)).unwrap();
        mgr.request_connection(&mut scheme, req(1, 6, 2)).unwrap();
        let before = format!("{mgr}");
        // An interior hop of connection 0's primary definitely holds
        // table state to recover.
        let victim = mgr
            .connection(ConnectionId::new(0))
            .unwrap()
            .primary()
            .nodes(&net)[1];

        let report = mgr
            .crash_restart_router(victim, RestartMode::Journaled, &mut rng())
            .unwrap();
        assert!(report.recovered_entries > 0, "the router held state");
        assert!(report.switched.is_empty() && report.lost.is_empty());
        assert_eq!(
            format!("{mgr}"),
            before,
            "journaled recovery must be invisible to the connection tables"
        );
        assert_eq!(mgr.telemetry().counter("restart.journaled_rejoins"), 1);
        assert_eq!(mgr.telemetry().counter("restart.spurious_switchovers"), 0);
        mgr.assert_invariants();
    }

    #[test]
    fn amnesia_restart_switches_spuriously_and_links_come_back() {
        let net = Arc::new(topology::mesh(3, 3, Bandwidth::from_mbps(10)).unwrap());
        let mut mgr = DrtpManager::new(Arc::clone(&net));
        let mut scheme = DLsr::new();
        mgr.request_connection(&mut scheme, req(0, 0, 8)).unwrap();
        let old_primary = mgr
            .connection(ConnectionId::new(0))
            .unwrap()
            .primary()
            .clone();
        let victim = old_primary.nodes(&net)[1];

        let report = mgr
            .crash_restart_router(victim, RestartMode::Amnesia, &mut rng())
            .unwrap();
        assert_eq!(
            report.switched,
            vec![ConnectionId::new(0)],
            "the transiting connection switches off the restarting router"
        );
        assert_eq!(report.recovered_entries, 0);
        // The restart is over: every link is back up, which is exactly
        // what makes the switchover spurious.
        for l in net.incident_links(victim) {
            assert!(!mgr.is_failed(l), "{l} must be repaired by the rejoin");
        }
        let now_primary = mgr
            .connection(ConnectionId::new(0))
            .unwrap()
            .primary()
            .clone();
        assert_ne!(
            format!("{old_primary:?}"),
            format!("{now_primary:?}"),
            "the connection abandoned a primary that is healthy again"
        );
        assert!(mgr.telemetry().counter("restart.spurious_switchovers") >= 1);
        mgr.assert_invariants();
    }

    #[test]
    fn resolve_skips_already_failed_links() {
        let net = Arc::new(topology::ring(4, Bandwidth::from_mbps(10)).unwrap());
        let mut mgr = DrtpManager::new(net);
        let l = drt_net::LinkId::new(0);
        mgr.inject_failure(l, &mut rng()).unwrap();
        let again = FailureEvent::Link(l).resolve(&mgr);
        assert!(again.is_empty(), "an already-failed link cannot re-fail");
        // Injecting the resolved-to-nothing event is a harmless no-op.
        let report = mgr
            .inject_event(&FailureEvent::Link(l), &mut rng())
            .unwrap();
        assert_eq!(report.affected(), 0);
        mgr.assert_invariants();
    }

    #[test]
    fn probe_event_is_pure() {
        let net = Arc::new(topology::mesh(3, 3, Bandwidth::from_mbps(10)).unwrap());
        let mut mgr = DrtpManager::new(net);
        let mut scheme = DLsr::new();
        mgr.request_connection(&mut scheme, req(0, 0, 8)).unwrap();
        let before = mgr.fingerprint();
        let out = mgr.probe_event(&FailureEvent::Node(NodeId::new(4)), &mut rng());
        assert!(out.failed_links.len() >= 2);
        assert_eq!(mgr.fingerprint(), before, "probe must not mutate");
    }

    #[test]
    fn duplex_failure_model_fails_both_directions() {
        let net = Arc::new(topology::mesh(3, 3, Bandwidth::from_mbps(10)).unwrap());
        let mut cfg = MultiplexConfig::paper();
        cfg.failure_model = FailureModel::DuplexPair;
        let mut mgr = DrtpManager::with_config(net, cfg);
        let l = drt_net::LinkId::new(0);
        let unit = mgr.failure_unit(l);
        assert_eq!(unit.len(), 2);
        assert_eq!(mgr.failure_units().len(), mgr.net().num_links() / 2);
        mgr.inject_failure(l, &mut rng()).unwrap();
        assert!(mgr.is_failed(unit[0]));
        assert!(mgr.is_failed(unit[1]));
        mgr.repair_link(l).unwrap();
        assert!(!mgr.is_failed(unit[1]));
    }
}
