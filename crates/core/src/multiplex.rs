//! Backup-multiplexing policies (Section 5 of the paper).
//!
//! The DR-connection manager of each link decides how much spare bandwidth
//! to reserve for the backups multiplexed over it, and which resource pools
//! a backup activation may draw from. The paper's policy is:
//!
//! > "The DR-connection manager for a link checks if more spare resources
//! > need to be reserved using the APLV and SC of the link. … If any
//! > element of APLV_i is larger than SC_i, at least two conflicting
//! > backups are multiplexed on the same spare resources. In this case, it
//! > is necessary to reserve more spare resources. … A DR-connection
//! > manager may not be able to increase spare resources due to the
//! > shortage of resources … \[we\] multiplex the new backup on the
//! > previously-reserved spare resources with other backups."
//!
//! That is [`SparePolicy::GrowToRequirement`]. The alternatives are kept as
//! explicit policies so the ablation benches can quantify how much each
//! rule contributes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// How the spare pool of each link is sized as backups come and go.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SparePolicy {
    /// The paper's rule: keep `spare_i` at `max_j Σ bw` of the backups a
    /// single failure of `L_j` would activate (`SC_i ≥ max_j a_{i,j}` in
    /// the uniform-bandwidth case), growing from the free pool when
    /// possible and tolerating a deficit when not.
    #[default]
    GrowToRequirement,
    /// Never grow the spare pool: every backup multiplexes over whatever
    /// spare already exists (ablation; pure overbooking).
    NeverGrow,
}

impl fmt::Display for SparePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SparePolicy::GrowToRequirement => "grow-to-requirement",
            SparePolicy::NeverGrow => "never-grow",
        })
    }
}

/// Which pools a backup activation may draw bandwidth from when its
/// primary fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ActivationPool {
    /// Spare first, then currently-free bandwidth (the manager reassigns
    /// freed resources to spare lazily: "If a primary channel is released,
    /// its resources will be returned to the pool of free resources, and
    /// the DR-connection managers assign these free resources to spare").
    #[default]
    SpareAndFree,
    /// Strictly the reserved spare pool (ablation; the conservative
    /// reading of backup multiplexing).
    SpareOnly,
}

impl fmt::Display for ActivationPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ActivationPool::SpareAndFree => "spare+free",
            ActivationPool::SpareOnly => "spare-only",
        })
    }
}

/// How a "single link failure" is interpreted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum FailureModel {
    /// One unidirectional link fails — the paper's formal model (`L₁₃`
    /// fails; conflicts, APLVs and `P_act-bk` are all defined on directed
    /// links).
    #[default]
    DirectedLink,
    /// A physical cut: both directions of a duplex pair fail together
    /// (extension; stresses conflicts the directed model cannot see).
    DuplexPair,
}

impl fmt::Display for FailureModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FailureModel::DirectedLink => "directed-link",
            FailureModel::DuplexPair => "duplex-pair",
        })
    }
}

/// Complete multiplexing/recovery configuration of a
/// [`crate::DrtpManager`].
///
/// `Default` is the paper's configuration ([`MultiplexConfig::paper`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultiplexConfig {
    /// Spare-pool sizing rule.
    pub spare: SparePolicy,
    /// Activation draw rule.
    pub activation: ActivationPool,
    /// Failure interpretation.
    pub failure_model: FailureModel,
    /// When `false` (the default, matching the paper's evaluation), a
    /// request whose scheme finds no backup route is still admitted — it
    /// runs *unprotected* and counts against fault tolerance (its backup
    /// can never activate), not against capacity. When `true`, such
    /// requests are rejected outright (strict DR-only admission).
    ///
    /// The default reproduces the paper's measurements: bounded flooding's
    /// candidate table sometimes holds a single route, and the paper's BF
    /// curves show that case as *lower `P_act-bk`* (Figure 4) rather than
    /// as extra blocking (Figure 5).
    pub require_backup: bool,
}

impl Default for MultiplexConfig {
    fn default() -> Self {
        Self::paper()
    }
}

impl MultiplexConfig {
    /// The paper's configuration.
    pub fn paper() -> Self {
        MultiplexConfig {
            spare: SparePolicy::GrowToRequirement,
            activation: ActivationPool::SpareAndFree,
            failure_model: FailureModel::DirectedLink,
            require_backup: false,
        }
    }

    /// Strict DR-only admission: reject any request for which no backup
    /// route can be registered.
    pub fn strict() -> Self {
        MultiplexConfig {
            require_backup: true,
            ..Self::paper()
        }
    }

    /// Configuration for the no-backup baseline (primary-only admission).
    pub fn no_backup_baseline() -> Self {
        MultiplexConfig {
            require_backup: false,
            ..Self::paper()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let d = MultiplexConfig::default();
        assert_eq!(d, MultiplexConfig::paper());
        assert_eq!(d.spare, SparePolicy::GrowToRequirement);
        assert_eq!(d.activation, ActivationPool::SpareAndFree);
        assert_eq!(d.failure_model, FailureModel::DirectedLink);
        assert!(!d.require_backup);
        assert!(MultiplexConfig::strict().require_backup);
    }

    #[test]
    fn baseline_drops_backup_requirement() {
        assert!(!MultiplexConfig::no_backup_baseline().require_backup);
    }

    #[test]
    fn displays() {
        assert_eq!(
            SparePolicy::GrowToRequirement.to_string(),
            "grow-to-requirement"
        );
        assert_eq!(ActivationPool::SpareOnly.to_string(), "spare-only");
        assert_eq!(FailureModel::DuplexPair.to_string(), "duplex-pair");
    }
}
