//! The backup-candidate route cache and incremental route maintenance.
//!
//! Every reroute in the paper's recovery loop used to recompute its routes
//! from a cold workspace: `reestablish_backup` ran the full scheme search,
//! `select_activations` re-scanned each backup's links against the failed
//! set, and every failure/repair recomputed the all-pairs hop table with
//! one BFS per node. This module makes all three incremental:
//!
//! * **Candidate cache** — a per-`(src, dst)` MRU list of backup routes
//!   that were valid when last seen ([`RouteCache::candidates`]), each
//!   stored with its dense link mask so revalidation is a popcount over
//!   `mask ∩ failed` plus an O(route) ground-truth check. A hit replaces
//!   the scheme's Yen/Dijkstra search with a lookup.
//! * **Backup masks** — the dense link set of every *installed* backup
//!   ([`RouteCache::backup_masks`]), so the activation-contention probe
//!   tests backup usability with two popcounts instead of a per-link scan.
//! * **Failed mask** — the dense mirror of the manager's failed-link
//!   array, maintained at the same choke points that flip the booleans.
//!
//! All raw [`RouteCache`] state is mutated *only* in this module (the
//! journal-choke pattern, enforced by the `spf-cache` verify lint): the
//! rest of the crate goes through the `note_*` wrappers below, which keep
//! the masks in lockstep with the connection table at every admit /
//! install / promote / drop / release / failure site. Switching the
//! manager to [`RouteMaintenance::Baseline`] disables cache consultation
//! and incremental hop maintenance (the pre-cache algorithms run instead)
//! while the masks stay maintained, so the audit in
//! `DrtpManager::assert_invariants` holds in both modes and the
//! equivalence property tests can diff the two arms.

use crate::routing::RouteRequest;
use crate::{ConflictVector, ConnectionId, DrtpManager};
use drt_net::{LinkId, NodeId, Route};
use std::collections::BTreeMap;

/// How the manager maintains derived routing state (the all-pairs hop
/// table, the activation-probe usability test, and backup selection).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RouteMaintenance {
    /// Repair dynamic shortest-path trees per link delta, probe backup
    /// usability via dense masks, and consult the candidate cache before
    /// falling back to the routing scheme. The default.
    #[default]
    Incremental,
    /// The pre-cache reference algorithms: full hop-table recompute per
    /// topology change, per-link usability scans, scheme search on every
    /// re-establishment. Kept as the baseline arm of the equivalence
    /// property tests and benchmarks.
    Baseline,
}

/// Most-recently-used candidates kept per `(src, dst)` key.
pub(crate) const CACHE_CAP: usize = 4;

/// One cached backup route with its precomputed dense link mask.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CachedCandidate {
    route: Route,
    mask: ConflictVector,
}

/// Delta-maintained routing caches owned by [`DrtpManager`].
///
/// Mutated exclusively through the wrappers in this module; see the
/// module docs for the invalidation discipline.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct RouteCache {
    /// Dense mirror of the manager's failed-link booleans.
    failed_mask: ConflictVector,
    /// Per connection, the dense link mask of each installed backup, in
    /// `DrConnection::backups()` order. No entry for backup-less
    /// connections.
    backup_masks: BTreeMap<ConnectionId, Vec<ConflictVector>>,
    /// Per `(src, dst)`, up to [`CACHE_CAP`] candidate backup routes,
    /// most recently used first.
    candidates: BTreeMap<(NodeId, NodeId), Vec<CachedCandidate>>,
}

impl RouteCache {
    /// An empty cache for a network of `num_links` links.
    pub(crate) fn new(num_links: usize) -> Self {
        RouteCache {
            failed_mask: ConflictVector::zeros(num_links),
            backup_masks: BTreeMap::new(),
            candidates: BTreeMap::new(),
        }
    }
}

impl DrtpManager {
    /// The dense mirror of the failed-link array.
    pub(crate) fn failed_cv(&self) -> &ConflictVector {
        &self.route_cache.failed_mask
    }

    /// The dense link mask of connection `id`'s backup at priority
    /// `idx` — maintained in lockstep with `DrConnection::backups()`.
    ///
    /// # Panics
    ///
    /// Panics when the connection has no backup at `idx`; the audit in
    /// [`DrtpManager::assert_invariants`] guarantees the masks mirror the
    /// connection table exactly.
    pub(crate) fn backup_mask(&self, id: ConnectionId, idx: usize) -> &ConflictVector {
        self.route_cache
            .backup_masks
            .get(&id)
            .and_then(|masks| masks.get(idx))
            .expect("backup masks mirror the connection table")
    }

    /// Records that a backup over `links` was appended (lowest priority)
    /// to connection `id`, and remembers the route as a reusable
    /// candidate for its endpoints.
    pub(crate) fn note_backup_installed(&mut self, id: ConnectionId, links: &[LinkId]) {
        let mask = ConflictVector::from_links(self.net.num_links(), links);
        self.route_cache
            .backup_masks
            .entry(id)
            .or_default()
            .push(mask);
    }

    /// Records that connection `id`'s backup at priority `idx` was
    /// removed (the dead-backup invalidation pass of `inject_event`).
    pub(crate) fn note_backup_removed(&mut self, id: ConnectionId, idx: usize) {
        if let Some(masks) = self.route_cache.backup_masks.get_mut(&id) {
            if idx < masks.len() {
                masks.remove(idx);
            }
            if masks.is_empty() {
                self.route_cache.backup_masks.remove(&id);
            }
        }
    }

    /// Records that connection `id` lost every backup at once (loser
    /// teardown, backup promotion, `drop_backups`, release).
    pub(crate) fn note_backups_cleared(&mut self, id: ConnectionId) {
        self.route_cache.backup_masks.remove(&id);
    }

    /// Marks `links` failed in the dense mirror and hard-invalidates
    /// every cached candidate crossing one of them — the cache's hook at
    /// the `inject_event` choke point, called right after the boolean
    /// failed set flips.
    pub(crate) fn note_links_failed(&mut self, links: &[LinkId]) {
        if links.is_empty() {
            return;
        }
        for &l in links {
            self.route_cache.failed_mask.set(l);
        }
        let mut dropped = 0u64;
        self.route_cache.candidates.retain(|_, cands| {
            cands.retain(|c| {
                let dead = links.iter().any(|&l| c.mask.get(l));
                dropped += u64::from(dead);
                !dead
            });
            !cands.is_empty()
        });
        if dropped > 0 {
            self.telemetry.add("cache.invalidations", dropped);
        }
    }

    /// Clears `links` from the dense failed mirror (repair / amnesia
    /// rejoin). Invalidated candidates are *not* resurrected — they
    /// re-enter the cache the next time a scheme selects them.
    pub(crate) fn note_links_repaired(&mut self, links: &[LinkId]) {
        for &l in links {
            self.route_cache.failed_mask.clear(l);
        }
    }

    /// Forgets every per-connection mask of a released connection.
    pub(crate) fn note_connection_released(&mut self, id: ConnectionId) {
        self.route_cache.backup_masks.remove(&id);
    }

    /// Remembers `route` as a backup candidate for its endpoint pair
    /// (most recently used first, capped at [`CACHE_CAP`], deduplicated
    /// by link sequence). Routes crossing a currently-failed link are
    /// never cached.
    pub(crate) fn remember_candidate(&mut self, route: &Route) {
        if route.links().is_empty() {
            return;
        }
        let mask = ConflictVector::from_links(self.net.num_links(), route.links());
        if mask.and_count(&self.route_cache.failed_mask) != 0 {
            return;
        }
        let key = (route.source(), route.dest());
        let cands = self.route_cache.candidates.entry(key).or_default();
        if let Some(i) = cands.iter().position(|c| c.route.links() == route.links()) {
            let known = cands.remove(i);
            cands.insert(0, known);
            return;
        }
        cands.insert(
            0,
            CachedCandidate {
                route: route.clone(),
                mask,
            },
        );
        cands.truncate(CACHE_CAP);
    }

    /// Looks for a cached backup candidate that is valid *right now* for
    /// `req` — the fast path `reestablish_backup_avoiding` tries before
    /// falling back to the routing scheme. Returns `None` (and counts a
    /// miss) in [`RouteMaintenance::Baseline`] mode or when no candidate
    /// survives validation; a hit moves the candidate to the MRU front.
    ///
    /// Validation is ground truth, not advertisement: the mask popcount
    /// against the failed mirror is only the cheap pre-filter, after
    /// which the surviving candidate is checked link by link (alive,
    /// backup headroom covers the bandwidth), against the request (QoS
    /// hop cap, endpoints), against the connection (link-disjoint from
    /// the primary, not already installed), and against the caller's
    /// `avoid` set. A hit therefore admits exactly like a scheme
    /// selection would.
    pub(crate) fn take_cached_backup(
        &mut self,
        req: &RouteRequest,
        primary: &Route,
        existing: &[Route],
        avoid: &[LinkId],
    ) -> Option<Route> {
        if self.maintenance != RouteMaintenance::Incremental {
            return None;
        }
        let key = (req.src, req.dst);
        let pos = self.route_cache.candidates.get(&key).and_then(|cands| {
            cands
                .iter()
                .position(|c| self.candidate_is_valid(c, req, primary, existing, avoid))
        });
        match pos {
            Some(i) => {
                let cands = self
                    .route_cache
                    .candidates
                    .get_mut(&key)
                    .expect("position came from this key");
                let cand = cands.remove(i);
                let route = cand.route.clone();
                cands.insert(0, cand);
                self.telemetry.incr("cache.hits");
                Some(route)
            }
            None => {
                self.telemetry.incr("cache.misses");
                None
            }
        }
    }

    /// Ground-truth validity of one cached candidate for one request.
    fn candidate_is_valid(
        &self,
        cand: &CachedCandidate,
        req: &RouteRequest,
        primary: &Route,
        existing: &[Route],
        avoid: &[LinkId],
    ) -> bool {
        let route = &cand.route;
        if route.source() != req.src || route.dest() != req.dst {
            return false;
        }
        if !req.qos.accepts_hops(route.len()) {
            return false;
        }
        if cand.mask.and_count(&self.route_cache.failed_mask) != 0 {
            return false;
        }
        if route.links().iter().any(|l| avoid.contains(l)) {
            return false;
        }
        if route.links().iter().any(|&l| primary.contains_link(l)) {
            return false;
        }
        if existing.iter().any(|b| b.links() == route.links()) {
            return false;
        }
        let bw = req.bandwidth();
        route.links().iter().all(|&l| {
            let i = l.index();
            !self.failed[i] && bw <= self.links[i].backup_headroom()
        })
    }

    /// Every backup-candidate route currently cached, in endpoint-key
    /// order (MRU first within a key). Exposed so the invalidation
    /// property tests can assert no candidate crosses a failed link.
    pub fn cached_routes(&self) -> Vec<Route> {
        self.route_cache
            .candidates
            .values()
            .flat_map(|cands| cands.iter().map(|c| c.route.clone()))
            .collect()
    }

    /// Panics unless every cache structure is exactly what the manager's
    /// ground-truth state implies — the `assert_invariants` leg for this
    /// module.
    ///
    /// # Panics
    ///
    /// On the first divergence between a mask and the state it mirrors.
    pub(crate) fn audit_route_cache(&self) {
        let n = self.net.num_links();
        for link in self.net.links() {
            let l = link.id();
            if self.route_cache.failed_mask.get(l) != self.failed[l.index()] {
                panic!("cache failed-mask diverged from the failure state on {l}");
            }
        }
        let mut expected: BTreeMap<ConnectionId, Vec<ConflictVector>> = BTreeMap::new();
        for conn in self.conns.values() {
            if conn.backups().is_empty() {
                continue;
            }
            expected.insert(
                conn.id(),
                conn.backups()
                    .iter()
                    .map(|b| ConflictVector::from_links(n, b.links()))
                    .collect(),
            );
        }
        assert!(
            self.route_cache.backup_masks == expected,
            "cache backup masks diverged from the connection table"
        );
        for ((src, dst), cands) in &self.route_cache.candidates {
            assert!(
                !cands.is_empty() && cands.len() <= CACHE_CAP,
                "candidate list for {src}->{dst} has {} entries",
                cands.len()
            );
            for c in cands {
                assert!(
                    c.route.source() == *src && c.route.dest() == *dst,
                    "candidate under {src}->{dst} has endpoints {}->{}",
                    c.route.source(),
                    c.route.dest()
                );
                assert!(
                    c.mask == ConflictVector::from_links(n, c.route.links()),
                    "candidate mask for {src}->{dst} diverged from its route"
                );
                assert!(
                    c.mask.and_count(&self.route_cache.failed_mask) == 0,
                    "cached candidate for {src}->{dst} crosses a failed link"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::DLsr;
    use drt_net::{topology, Bandwidth};
    use std::sync::Arc;

    const BW: Bandwidth = Bandwidth::from_kbps(3_000);

    fn req(id: u64, src: u32, dst: u32) -> RouteRequest {
        RouteRequest::new(
            ConnectionId::new(id),
            NodeId::new(src),
            NodeId::new(dst),
            BW,
        )
    }

    #[test]
    fn admission_populates_candidates_and_masks() {
        let net = Arc::new(topology::mesh(3, 3, Bandwidth::from_mbps(10)).unwrap());
        let mut mgr = DrtpManager::new(net);
        let mut scheme = DLsr::new();
        let rep = mgr.request_connection(&mut scheme, req(0, 0, 8)).unwrap();
        let backup = rep.backup().cloned().unwrap();
        assert!(mgr
            .cached_routes()
            .iter()
            .any(|r| r.links() == backup.links()));
        mgr.assert_invariants();
    }

    #[test]
    fn reestablish_hits_the_cache_after_drop() {
        let net = Arc::new(topology::mesh(3, 3, Bandwidth::from_mbps(10)).unwrap());
        let mut mgr = DrtpManager::new(net);
        let mut scheme = DLsr::new();
        let rep = mgr.request_connection(&mut scheme, req(0, 0, 8)).unwrap();
        let backup = rep.backup().cloned().unwrap();
        mgr.drop_backups(ConnectionId::new(0)).unwrap();
        mgr.reestablish_backup(&mut scheme, ConnectionId::new(0))
            .unwrap();
        assert_eq!(mgr.telemetry().counter("cache.hits"), 1);
        assert_eq!(mgr.telemetry().counter("cache.misses"), 0);
        let conn = mgr.connection(ConnectionId::new(0)).unwrap();
        assert_eq!(conn.backups(), std::slice::from_ref(&backup));
        mgr.assert_invariants();
    }

    #[test]
    fn failure_invalidates_crossing_candidates() {
        let net = Arc::new(topology::mesh(3, 3, Bandwidth::from_mbps(10)).unwrap());
        let mut mgr = DrtpManager::new(net);
        let mut scheme = DLsr::new();
        let rep = mgr.request_connection(&mut scheme, req(0, 0, 8)).unwrap();
        let backup_link = rep.backup().unwrap().links()[0];
        let mut rng = drt_sim::rng::stream(1, "cache-tests");
        mgr.inject_failure(backup_link, &mut rng).unwrap();
        assert!(mgr
            .cached_routes()
            .iter()
            .all(|r| !r.contains_link(backup_link)));
        assert!(mgr.telemetry().counter("cache.invalidations") >= 1);
        mgr.assert_invariants();
    }

    #[test]
    fn baseline_mode_never_consults_the_cache() {
        let net = Arc::new(topology::mesh(3, 3, Bandwidth::from_mbps(10)).unwrap());
        let mut mgr = DrtpManager::new(net);
        mgr.set_route_maintenance(RouteMaintenance::Baseline);
        assert_eq!(mgr.route_maintenance(), RouteMaintenance::Baseline);
        let mut scheme = DLsr::new();
        mgr.request_connection(&mut scheme, req(0, 0, 8)).unwrap();
        mgr.drop_backups(ConnectionId::new(0)).unwrap();
        mgr.reestablish_backup(&mut scheme, ConnectionId::new(0))
            .unwrap();
        assert_eq!(mgr.telemetry().counter("cache.hits"), 0);
        assert_eq!(mgr.telemetry().counter("cache.misses"), 0);
        mgr.assert_invariants();
        // Switching back rebuilds the dynamic trees and re-enables hits.
        mgr.set_route_maintenance(RouteMaintenance::Incremental);
        mgr.drop_backups(ConnectionId::new(0)).unwrap();
        mgr.reestablish_backup(&mut scheme, ConnectionId::new(0))
            .unwrap();
        assert_eq!(mgr.telemetry().counter("cache.hits"), 1);
        mgr.assert_invariants();
    }

    #[test]
    fn mru_cap_holds_under_churn() {
        let net = Arc::new(topology::mesh(3, 3, Bandwidth::from_mbps(10)).unwrap());
        let mut mgr = DrtpManager::new(net);
        let mut scheme = DLsr::new();
        for i in 0..8 {
            let _ = mgr.request_connection(&mut scheme, req(i, 0, 8));
        }
        mgr.assert_invariants();
        assert!(mgr.cached_routes().len() <= CACHE_CAP);
    }
}
