//! Core identifier and QoS types.

use drt_net::Bandwidth;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a DR-connection (the paper's `D_i` / `conn-id`).
///
/// Connection ids are chosen by the caller (the experiment harness uses the
/// scenario's dense request indices) and must be unique among *currently
/// known* connections of one [`crate::DrtpManager`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ConnectionId(u64);

impl ConnectionId {
    /// Creates a connection id.
    pub const fn new(raw: u64) -> Self {
        ConnectionId(raw)
    }

    /// The raw value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ConnectionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D{}", self.0)
    }
}

impl From<u64> for ConnectionId {
    fn from(raw: u64) -> Self {
        ConnectionId(raw)
    }
}

/// Quality-of-service requirement of a DR-connection.
///
/// The paper's evaluation uses a constant bandwidth per connection and
/// treats end-to-end delay qualitatively ("if D₃'s QoS requirement (e.g.,
/// end-to-end delay) is too tight to use the longer path…"); `max_hops`
/// makes that delay bound concrete as a hop-count cap on both channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QosRequirement {
    /// Bandwidth that must be reserved on every link of the primary (and
    /// guaranteed-on-activation for the backup).
    pub bandwidth: Bandwidth,
    /// Optional hop-count cap acting as the delay bound; `None` = no cap.
    pub max_hops: Option<u32>,
}

impl QosRequirement {
    /// A bandwidth-only requirement (no delay bound).
    pub const fn bandwidth_only(bandwidth: Bandwidth) -> Self {
        QosRequirement {
            bandwidth,
            max_hops: None,
        }
    }

    /// Adds a hop-count (delay) cap.
    pub const fn with_max_hops(mut self, hops: u32) -> Self {
        self.max_hops = Some(hops);
        self
    }

    /// Returns `true` when a route of `hops` hops satisfies the delay cap.
    pub fn accepts_hops(&self, hops: usize) -> bool {
        match self.max_hops {
            Some(cap) => hops <= cap as usize,
            None => true,
        }
    }
}

impl fmt::Display for QosRequirement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.max_hops {
            Some(h) => write!(f, "{} (≤{h} hops)", self.bandwidth),
            None => write!(f, "{}", self.bandwidth),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connection_id_roundtrip() {
        let id = ConnectionId::new(7);
        assert_eq!(id.as_u64(), 7);
        assert_eq!(ConnectionId::from(7u64), id);
        assert_eq!(id.to_string(), "D7");
    }

    #[test]
    fn qos_hop_cap() {
        let q = QosRequirement::bandwidth_only(Bandwidth::from_kbps(3000));
        assert!(q.accepts_hops(1_000));
        let q = q.with_max_hops(4);
        assert!(q.accepts_hops(4));
        assert!(!q.accepts_hops(5));
        assert_eq!(q.to_string(), "3 Mb/s (≤4 hops)");
    }
}
