//! Tests of the multi-backup extension (DRTP's "one primary and one or
//! more backup channels").

use drt_core::routing::{BoundedFlooding, DLsr, PLsr, RouteRequest, RoutingScheme, SpfBackup};
use drt_core::{ConnectionId, ConnectionState, DrtpManager};
use drt_net::{topology, Bandwidth, NodeId};
use std::sync::Arc;

const BW: Bandwidth = Bandwidth::from_kbps(3_000);

fn req_k(id: u64, src: u32, dst: u32, k: u32) -> RouteRequest {
    RouteRequest::new(
        ConnectionId::new(id),
        NodeId::new(src),
        NodeId::new(dst),
        BW,
    )
    .with_backups(k)
}

#[test]
fn two_backups_are_mutually_disjoint_when_possible() {
    // 4x4 mesh between edge-middle nodes: three fully disjoint routes
    // exist (through rows 0, the primary's own row pair, and row 3).
    let net = Arc::new(topology::mesh(4, 4, Bandwidth::from_mbps(100)).unwrap());
    for scheme in &mut [
        Box::new(DLsr::new()) as Box<dyn RoutingScheme>,
        Box::new(PLsr::new()),
        Box::new(SpfBackup::new()),
        Box::new(BoundedFlooding::new()),
    ] {
        let mut mgr = DrtpManager::new(Arc::clone(&net));
        let rep = mgr
            .request_connection(scheme.as_mut(), req_k(0, 4, 7, 2))
            .unwrap();
        assert_eq!(rep.backups.len(), 2, "{}", scheme.name());
        let b0 = &rep.backups[0];
        let b1 = &rep.backups[1];
        assert_eq!(b0.overlap(&rep.primary), 0, "{}", scheme.name());
        assert_eq!(b1.overlap(&rep.primary), 0, "{}", scheme.name());
        assert_eq!(b0.overlap(b1), 0, "{}: {b0} vs {b1}", scheme.name());
        mgr.assert_invariants();
        mgr.release(ConnectionId::new(0)).unwrap();
        assert_eq!(mgr.total_spare(), Bandwidth::ZERO, "{}", scheme.name());
    }
}

#[test]
fn requesting_more_backups_than_routes_exist_caps_gracefully() {
    // A ring has exactly two link-disjoint routes; asking for 4 backups
    // yields at most ... the reverse route plus Q-penalised rehashes, but
    // never duplicates.
    let net = Arc::new(topology::ring(6, Bandwidth::from_mbps(100)).unwrap());
    let mut mgr = DrtpManager::new(net);
    let rep = mgr
        .request_connection(&mut DLsr::new(), req_k(0, 0, 3, 4))
        .unwrap();
    let mut seen = std::collections::HashSet::new();
    for b in &rep.backups {
        assert!(seen.insert(b.links().to_vec()), "duplicate backup {b}");
    }
    assert!(!rep.backups.is_empty());
    mgr.assert_invariants();
}

#[test]
fn second_backup_rescues_when_first_is_hit() {
    // Construct: primary and first backup share fate (the failure hits
    // both), second backup survives. Force routes via the mesh geometry:
    // fail a link that lies on the FIRST backup; then fail the primary —
    // wait, single failure only. Instead: fail a link on the primary that
    // ALSO lies on... a single link cannot be on both (they are disjoint).
    // The real scenario: first backup crosses a PREVIOUSLY failed link.
    let net = Arc::new(topology::mesh(4, 4, Bandwidth::from_mbps(100)).unwrap());
    let mut mgr = DrtpManager::new(Arc::clone(&net));
    let mut scheme = DLsr::new();
    let rep = mgr
        .request_connection(&mut scheme, req_k(0, 4, 7, 2))
        .unwrap();
    let mut rng = drt_sim::rng::stream(3, "multi");

    // First failure knocks out backup #0 (not the primary): the
    // connection stays protected thanks to backup #1.
    let b0_link = rep.backups[0].links()[1];
    let report = mgr.inject_failure(b0_link, &mut rng).unwrap();
    assert!(report.switched.is_empty());
    assert!(
        report.unprotected.is_empty(),
        "second backup keeps the connection protected"
    );
    let conn = mgr.connection(ConnectionId::new(0)).unwrap();
    assert_eq!(conn.state(), ConnectionState::Protected);
    assert_eq!(conn.backups().len(), 1);
    mgr.assert_invariants();

    // Second failure hits the primary: the remaining backup activates.
    let p_link = rep.primary.links()[1];
    let report = mgr.inject_failure(p_link, &mut rng).unwrap();
    assert_eq!(report.switched, vec![ConnectionId::new(0)]);
    assert_eq!(
        mgr.connection(ConnectionId::new(0)).unwrap().state(),
        ConnectionState::Recovered
    );
    mgr.assert_invariants();
}

#[test]
fn probe_reports_which_backup_would_activate() {
    let net = Arc::new(topology::mesh(4, 4, Bandwidth::from_mbps(100)).unwrap());
    let mut mgr = DrtpManager::new(Arc::clone(&net));
    let mut scheme = DLsr::new();
    let rep = mgr
        .request_connection(&mut scheme, req_k(0, 4, 7, 2))
        .unwrap();
    let mut rng = drt_sim::rng::stream(5, "probe");
    let out = mgr.probe_single_failure(rep.primary.links()[0], &mut rng);
    assert_eq!(out.details, vec![(ConnectionId::new(0), Some(0))]);

    // Take the first backup's link down for real; the probe then reports
    // activation via the second backup... except the failure handler
    // already dropped the dead backup, so index 0 is the survivor.
    mgr.inject_failure(rep.backups[0].links()[0], &mut rng)
        .unwrap();
    let out = mgr.probe_single_failure(rep.primary.links()[0], &mut rng);
    assert_eq!(out.details, vec![(ConnectionId::new(0), Some(0))]);
    assert_eq!(
        mgr.connection(ConnectionId::new(0))
            .unwrap()
            .backups()
            .len(),
        1
    );
}

#[test]
fn extra_backups_cost_extra_spare() {
    let net = Arc::new(topology::mesh(4, 4, Bandwidth::from_mbps(100)).unwrap());
    let mut one = DrtpManager::new(Arc::clone(&net));
    let mut two = DrtpManager::new(Arc::clone(&net));
    one.request_connection(&mut DLsr::new(), req_k(0, 4, 7, 1))
        .unwrap();
    two.request_connection(&mut DLsr::new(), req_k(0, 4, 7, 2))
        .unwrap();
    assert!(
        two.total_spare() > one.total_spare(),
        "{} vs {}",
        two.total_spare(),
        one.total_spare()
    );
    one.assert_invariants();
    two.assert_invariants();
}

#[test]
fn reestablish_tops_up_protected_connection() {
    // A protected connection can acquire an additional backup via
    // reconfiguration (multi-backup top-up).
    let net = Arc::new(topology::mesh(4, 4, Bandwidth::from_mbps(100)).unwrap());
    let mut mgr = DrtpManager::new(Arc::clone(&net));
    let mut scheme = DLsr::new();
    mgr.request_connection(&mut scheme, req_k(0, 4, 7, 1))
        .unwrap();
    assert_eq!(
        mgr.connection(ConnectionId::new(0))
            .unwrap()
            .backups()
            .len(),
        1
    );
    mgr.reestablish_backup(&mut scheme, ConnectionId::new(0))
        .unwrap();
    let conn = mgr.connection(ConnectionId::new(0)).unwrap();
    assert_eq!(conn.backups().len(), 2);
    // The top-up avoided the existing backup's links.
    assert_eq!(conn.backups()[0].overlap(&conn.backups()[1]), 0);
    mgr.assert_invariants();
}
