//! Full recovery-cycle integration test: correlated failure events
//! landing on an orchestrator that already has retries in flight.
//!
//! The unit tests in `orchestrator.rs` pin individual mechanisms (backoff
//! arithmetic, flap damping, orphan bookkeeping). This test drives the
//! whole cycle the multi-failure experiments rely on — establish a
//! population, fail a link, re-protect, then land a correlated burst and
//! a router crash while the retry queue is non-empty — and checks the
//! global accounting that no single mechanism can guarantee alone.

use drt_core::failure::FailureEvent;
use drt_core::orchestrator::{RecoveryOrchestrator, RetryPolicy};
use drt_core::routing::{DLsr, RouteRequest, Scripted};
use drt_core::{ConnectionId, DrtpManager};
use drt_net::{topology, Bandwidth, NodeId, Route};
use drt_sim::{SimDuration, SimTime};
use std::collections::BTreeSet;
use std::sync::Arc;

const BW: Bandwidth = Bandwidth::from_kbps(3_000);

/// Corner-to-corner pairs on the 4x4 mesh so every primary is multi-hop
/// and distinct pairs stress distinct regions of the topology.
const PAIRS: [(u32, u32); 8] = [
    (0, 15),
    (3, 12),
    (1, 14),
    (2, 13),
    (4, 11),
    (7, 8),
    (5, 10),
    (6, 9),
];

fn establish(mgr: &mut DrtpManager, scheme: &mut DLsr) -> Vec<ConnectionId> {
    PAIRS
        .iter()
        .enumerate()
        .map(|(i, &(src, dst))| {
            let req = RouteRequest::new(
                ConnectionId::new(i as u64),
                NodeId::new(src),
                NodeId::new(dst),
                BW,
            );
            mgr.request_connection(scheme, req).expect("establish").id
        })
        .collect()
}

#[test]
fn node_crash_during_pending_batch_retries_reaches_closed_quiescence() {
    let net = Arc::new(topology::mesh(4, 4, Bandwidth::from_mbps(10)).unwrap());
    let mut mgr = DrtpManager::new(Arc::clone(&net));
    let mut scheme = DLsr::new();
    let conns = establish(&mut mgr, &mut scheme);
    let mut orch = RecoveryOrchestrator::new(net.num_links(), RetryPolicy::default());
    let mut rng = drt_sim::rng::stream(23, "recovery-cycle");

    // Phase A: a single link failure, recovered to quiescence. This is
    // the baseline the later overlap must not corrupt.
    let first_link = mgr.connection(conns[0]).unwrap().primary().links()[0];
    let report = mgr
        .inject_event(&FailureEvent::Link(first_link), &mut rng)
        .unwrap();
    assert_eq!(report.contention_passes, 1);
    orch.observe_failure(SimTime::ZERO, &report);
    let t1 =
        orch.run_to_quiescence(SimTime::ZERO, &mut mgr, &mut scheme) + SimDuration::from_secs(30);
    assert_eq!(orch.pending(), 0);
    mgr.assert_invariants();
    let baseline_completions = orch.completions().len();

    // Phase B: a correlated burst — two live primaries severed in ONE
    // event, resolved in one contention pass.
    let burst: Vec<FailureEvent> = [conns[1], conns[2]]
        .iter()
        .map(|&c| FailureEvent::Link(*mgr.connection(c).unwrap().primary().links().last().unwrap()))
        .collect();
    let burst = mgr
        .inject_event(&FailureEvent::Batch(burst), &mut rng)
        .unwrap();
    assert_eq!(
        burst.contention_passes, 1,
        "a batch must resolve in a single activation pass"
    );
    orch.observe_failure(t1, &burst);
    assert!(orch.pending() > 0, "burst leaves retries in flight");

    // Phase C: before any retry fires, a router crashes. Pick an interior
    // router of a *pending* connection's current primary so the crash
    // lands on exactly the state the retry queue is about to touch.
    let victim = burst
        .switched
        .iter()
        .chain(burst.unprotected.iter())
        .find_map(|&c| {
            let nodes = mgr.connection(c).unwrap().primary().nodes(&net);
            nodes.get(1).copied().filter(|_| nodes.len() > 2)
        })
        .expect("a pending connection with an interior router");
    let crash = mgr
        .inject_event(&FailureEvent::Node(victim), &mut rng)
        .unwrap();
    assert_eq!(
        crash.contention_passes, 1,
        "crash with several incident primaries still uses one pass"
    );
    orch.observe_failure(t1, &crash);

    let end = orch.run_to_quiescence(t1, &mut mgr, &mut scheme);
    assert!(end >= t1);
    assert_eq!(orch.pending(), 0, "queue drains despite the overlap");
    mgr.assert_invariants();

    // Closed accounting: every connection that lost protection in phases
    // B/C is now re-protected, orphaned, or no longer carrying traffic —
    // nothing falls between the ledgers.
    let enqueued: BTreeSet<ConnectionId> = burst
        .switched
        .iter()
        .chain(burst.unprotected.iter())
        .chain(crash.switched.iter())
        .chain(crash.unprotected.iter())
        .copied()
        .collect();
    for &c in &enqueued {
        let conn = mgr.connection(c).unwrap();
        if !conn.state().is_carrying_traffic() {
            continue; // destroyed by the crash — accounted in `lost`
        }
        let reprotected = conn.backup().is_some();
        let orphaned = orch.orphaned().contains(&c);
        assert!(
            reprotected || orphaned,
            "{c} lost protection but is in neither ledger"
        );
    }
    // And the converse: no surviving connection is silently unprotected.
    for conn in mgr.connections() {
        if conn.state().is_carrying_traffic() && conn.backup().is_none() {
            assert!(
                orch.orphaned().contains(&conn.id()),
                "unprotected survivor {} missing from the orphan ledger",
                conn.id()
            );
        }
    }

    // Re-protection is real protection: no surviving backup crosses a
    // failed link, and recovery latency respects the backoff floor.
    for conn in mgr.connections() {
        if let Some(b) = conn.backup() {
            for &l in b.links() {
                assert!(!mgr.is_failed(l), "{} backup crosses dead {l}", conn.id());
            }
        }
    }
    let policy = RetryPolicy::default();
    for comp in &orch.completions()[baseline_completions..] {
        assert!(
            comp.latency >= policy.backoff(1),
            "{}: latency {:?} below the first-retry floor",
            comp.conn,
            comp.latency
        );
        assert!(comp.attempts >= 1);
    }
}

/// Quarantine expiry end to end: a flap-damped link is re-admitted into
/// new backup routes once its quarantine elapses, and a retry that was
/// pending across the expiry drains to quiescence *through* the
/// re-admitted link.
///
/// Ring of 4, connection 0→1: primary is the direct link, the only
/// backup is the long way round (0→3→2→1). The scripted scheme returns
/// exactly that backup, so while `0→3` is quarantined every retry fails
/// (the selection crosses the avoided link) and the pending entry backs
/// off across the expiry boundary; afterwards the same selection is
/// accepted.
#[test]
fn quarantine_expiry_readmits_link_and_drains_pending_retry() {
    let net = Arc::new(topology::ring(4, Bandwidth::from_mbps(10)).unwrap());
    let primary = Route::from_nodes(&net, &[NodeId::new(0), NodeId::new(1)]).unwrap();
    let long_way = Route::from_nodes(
        &net,
        &[
            NodeId::new(0),
            NodeId::new(3),
            NodeId::new(2),
            NodeId::new(1),
        ],
    )
    .unwrap();
    let flappy = long_way.links()[0]; // 0→3, first hop of the only backup
    let mut mgr = DrtpManager::new(Arc::clone(&net));
    let mut scheme = Scripted::new();
    scheme.push(primary.clone(), Some(long_way.clone()));
    let req = RouteRequest::new(ConnectionId::new(0), NodeId::new(0), NodeId::new(1), BW);
    mgr.request_connection(&mut scheme, req).unwrap();

    // Short quarantine, generous retry budget: the backoff sequence
    // 0.1 + 0.2 + 0.4 + 0.8 + 1.6 + 3.2 s crosses the expiry with
    // attempts to spare.
    let policy = RetryPolicy {
        max_attempts: 10,
        flap_threshold: 3,
        quarantine: SimDuration::from_secs(3),
        ..RetryPolicy::default()
    };
    let mut orch = RecoveryOrchestrator::new(net.num_links(), policy);
    let mut rng = drt_sim::rng::stream(31, "quarantine-expiry");

    // Flap the backup's first link three times: the first failure drops
    // the backup (enqueueing a re-protection), the third trips damping.
    let mut now = SimTime::ZERO;
    let mut quarantined_from = now;
    for _ in 0..3 {
        let report = mgr
            .inject_event(&FailureEvent::Link(flappy), &mut rng)
            .unwrap();
        orch.observe_failure(now, &report);
        mgr.repair_link(flappy).unwrap();
        orch.observe_repair(now, flappy);
        quarantined_from = now;
        now += SimDuration::from_secs(1);
    }
    assert!(orch.is_quarantined(flappy, now), "damping engaged");
    assert_eq!(orch.pending(), 1, "re-protection is pending");

    // Every retry during the quarantine must fail: the scripted backup
    // crosses the avoided link. Afterwards the same selection succeeds.
    for _ in 0..8 {
        scheme.push(primary.clone(), Some(long_way.clone()));
    }
    let end = orch.run_to_quiescence(now, &mut mgr, &mut scheme);

    let expiry = quarantined_from + policy.quarantine;
    assert!(
        end >= expiry,
        "queue must stay pending across the expiry ({end:?} < {expiry:?})"
    );
    assert!(!orch.is_quarantined(flappy, end), "quarantine lifted");
    assert_eq!(orch.pending(), 0, "pending retry drained to quiescence");
    assert!(orch.orphaned().is_empty(), "re-admission beat orphaning");

    let comps = orch.completions();
    assert_eq!(comps.len(), 1);
    assert!(
        comps[0].attempts > 1,
        "at least one attempt must have failed inside the quarantine"
    );
    let backup = mgr
        .connection(ConnectionId::new(0))
        .unwrap()
        .backup()
        .expect("re-protected")
        .clone();
    assert!(
        backup.contains_link(flappy),
        "the re-admitted link carries the new backup"
    );
    assert!(orch.telemetry().counter("recovery.retries") >= 1);
    assert_eq!(orch.telemetry().counter("recovery.reprotected"), 1);
    mgr.assert_invariants();
}

/// Regression: a failure landing in the very tick a quarantine expires
/// must re-quarantine the link. `is_quarantined(now)` is already false
/// at `now == until`, and with quarantine longer than the flap window
/// the strike history has aged out — so the old code let a link that
/// failed at the exact moment of re-admission walk straight back into
/// new backup routes with a clean slate, needing a full fresh threshold
/// of strikes before damping re-engaged.
#[test]
fn flap_at_quarantine_expiry_requarantines_the_link() {
    let policy = RetryPolicy {
        flap_threshold: 3,
        flap_window: SimDuration::from_secs(60),
        quarantine: SimDuration::from_secs(300),
        ..RetryPolicy::default()
    };
    let mut orch = RecoveryOrchestrator::new(4, policy);
    let l = drt_net::LinkId::new(1);

    // Three strikes engage damping.
    let mut now = SimTime::ZERO;
    let mut quarantined_from = now;
    for _ in 0..3 {
        orch.observe_churn(now, l);
        quarantined_from = now;
        now += SimDuration::from_secs(1);
    }
    let expiry = quarantined_from + policy.quarantine;
    assert!(orch.is_quarantined(l, now));
    assert!(
        !orch.is_quarantined(l, expiry),
        "the expiry tick itself is outside the quarantine"
    );

    // The link fails again in the expiry tick — long after the 60 s flap
    // window, so its strike history is empty. Damping must re-engage
    // immediately, not wait for three fresh strikes.
    orch.observe_churn(expiry, l);
    assert!(
        orch.is_quarantined(l, expiry + SimDuration::from_secs(1)),
        "a flap in the expiry tick must re-quarantine the link"
    );
    assert!(orch.is_quarantined(l, expiry + SimDuration::from_secs(299)));
    assert!(!orch.is_quarantined(l, expiry + policy.quarantine));
    assert_eq!(orch.telemetry().counter("quarantine.links_entered"), 1);
    assert_eq!(
        orch.telemetry().counter("quarantine.links_requarantined"),
        1
    );

    // A failure *after* a clean expiry tick is an ordinary first strike:
    // re-quarantine is an expiry-edge rule, not a permanent stigma.
    let later = expiry + policy.quarantine + SimDuration::from_secs(7);
    orch.observe_churn(later, l);
    assert!(!orch.is_quarantined(l, later + SimDuration::from_secs(1)));
    assert_eq!(
        orch.telemetry().counter("quarantine.links_requarantined"),
        1
    );
}

#[test]
fn crash_of_a_connection_endpoint_drops_it_without_enqueueing() {
    let net = Arc::new(topology::mesh(4, 4, Bandwidth::from_mbps(10)).unwrap());
    let mut mgr = DrtpManager::new(Arc::clone(&net));
    let mut scheme = DLsr::new();
    let conns = establish(&mut mgr, &mut scheme);
    let mut orch = RecoveryOrchestrator::new(net.num_links(), RetryPolicy::default());
    let mut rng = drt_sim::rng::stream(29, "recovery-cycle-endpoint");

    // Crash node 15 — the *destination* of connection 0. That connection
    // cannot be re-protected (its endpoint is gone); it must land in
    // `lost`, never in the retry queue.
    let crash = mgr
        .inject_event(&FailureEvent::Node(NodeId::new(15)), &mut rng)
        .unwrap();
    assert!(
        crash.lost.contains(&conns[0]),
        "endpoint crash must tear the connection down, got {crash:?}"
    );
    orch.observe_failure(SimTime::ZERO, &crash);
    orch.run_to_quiescence(SimTime::ZERO, &mut mgr, &mut scheme);

    assert_eq!(orch.pending(), 0);
    assert!(
        !mgr.connection(conns[0])
            .unwrap()
            .state()
            .is_carrying_traffic(),
        "torn-down connection must not keep carrying traffic"
    );
    assert!(
        !orch.orphaned().contains(&conns[0]),
        "a dead connection is lost, not orphaned"
    );
    mgr.assert_invariants();
}
