//! Property-based tests of the DRTP state machine: establish/release/fail
//! sequences under every scheme must preserve all bookkeeping invariants.

use drt_core::failure::FailureEvent;
use drt_core::multiplex::{ActivationPool, FailureModel, MultiplexConfig, SparePolicy};
use drt_core::routing::{BoundedFlooding, DLsr, PLsr, RouteRequest, RoutingScheme, SpfBackup};
use drt_core::{ConnectionId, DrtpManager, RouteMaintenance};
use drt_net::algo::DynamicSpt;
use drt_net::{topology, Bandwidth, LinkId, NodeId};
use proptest::prelude::*;
use std::sync::Arc;

const BW: Bandwidth = Bandwidth::from_kbps(3_000);

fn scheme_by_index(i: usize) -> Box<dyn RoutingScheme> {
    match i % 4 {
        0 => Box::new(DLsr::new()),
        1 => Box::new(PLsr::new()),
        2 => Box::new(BoundedFlooding::new()),
        _ => Box::new(SpfBackup::new()),
    }
}

/// An operation in a random protocol trace.
#[derive(Debug, Clone)]
enum Op {
    Establish { src: u32, dst: u32 },
    Release { victim: usize },
    Fail { link: u32 },
    Crash { node: u32 },
    Batch { a: u32, b: u32 },
    Repair { link: u32 },
    Reestablish { victim: usize },
}

fn arb_op(nodes: u32, links: u32) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..nodes, 0..nodes).prop_map(|(src, dst)| Op::Establish { src, dst }),
        2 => (0usize..64).prop_map(|victim| Op::Release { victim }),
        1 => (0..links).prop_map(|link| Op::Fail { link }),
        1 => (0..nodes).prop_map(|node| Op::Crash { node }),
        1 => (0..links, 0..links).prop_map(|(a, b)| Op::Batch { a, b }),
        1 => (0..links).prop_map(|link| Op::Repair { link }),
        1 => (0usize..64).prop_map(|victim| Op::Reestablish { victim }),
    ]
}

/// One SPT delta: fail, restore, or reweight a single link.
#[derive(Debug, Clone)]
enum Delta {
    Fail(u32),
    Restore(u32),
    Reweight(u32, u8),
}

fn arb_delta(links: u32) -> impl Strategy<Value = Delta> {
    prop_oneof![
        2 => (0..links).prop_map(Delta::Fail),
        2 => (0..links).prop_map(Delta::Restore),
        1 => (0..links, 1u8..=8).prop_map(|(l, w)| Delta::Reweight(l, w)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random traces over a random connected network with every scheme:
    /// after every operation the manager's invariants hold, and after
    /// releasing everything all resources return to zero.
    #[test]
    fn protocol_trace_preserves_invariants(
        seed in any::<u64>(),
        scheme_idx in 0usize..4,
        ops in prop::collection::vec(arb_op(12, 34), 1..60),
    ) {
        let net = Arc::new(
            topology::random_connected(12, 17, Bandwidth::from_mbps(12), seed).unwrap()
        );
        let mut mgr = DrtpManager::new(Arc::clone(&net));
        let mut scheme = scheme_by_index(scheme_idx);
        let mut rng = drt_sim::rng::stream(seed, "trace");
        let mut next_id = 0u64;
        let mut live: Vec<ConnectionId> = Vec::new();

        for op in ops {
            match op {
                Op::Establish { src, dst } => {
                    if src == dst { continue; }
                    let req = RouteRequest::new(
                        ConnectionId::new(next_id), NodeId::new(src), NodeId::new(dst), BW,
                    );
                    if mgr.request_connection(scheme.as_mut(), req).is_ok() {
                        live.push(ConnectionId::new(next_id));
                    }
                    next_id += 1;
                }
                Op::Release { victim } => {
                    if live.is_empty() { continue; }
                    let id = live.remove(victim % live.len());
                    mgr.release(id).unwrap();
                }
                Op::Fail { link } => {
                    let l = LinkId::new(link % net.num_links() as u32);
                    let _ = mgr.inject_failure(l, &mut rng);
                }
                Op::Crash { node } => {
                    let n = NodeId::new(node % net.num_nodes() as u32);
                    let _ = mgr.inject_event(&FailureEvent::Node(n), &mut rng);
                }
                Op::Batch { a, b } => {
                    let ev = FailureEvent::Batch(vec![
                        FailureEvent::Link(LinkId::new(a % net.num_links() as u32)),
                        FailureEvent::Link(LinkId::new(b % net.num_links() as u32)),
                    ]);
                    let _ = mgr.inject_event(&ev, &mut rng);
                }
                Op::Repair { link } => {
                    let l = LinkId::new(link % net.num_links() as u32);
                    let _ = mgr.repair_link(l);
                }
                Op::Reestablish { victim } => {
                    if live.is_empty() { continue; }
                    let id = live[victim % live.len()];
                    let _ = mgr.reestablish_backup(scheme.as_mut(), id);
                }
            }
            mgr.assert_invariants();
        }

        // Drain everything: all resources must return to zero.
        for id in live {
            mgr.release(id).unwrap();
        }
        mgr.assert_invariants();
        prop_assert_eq!(mgr.total_prime(), Bandwidth::ZERO);
        prop_assert_eq!(mgr.total_spare(), Bandwidth::ZERO);
    }

    /// The incremental dense conflict engine never drifts from a sparse
    /// from-scratch derivation: after every operation of a random
    /// establish/release/fail/repair trace, each link's cached `‖APLV‖₁`,
    /// conflict-vector bits, and dense D-LSR overlap cost equal what the
    /// sparse `Aplv` maps derive directly.
    #[test]
    fn dense_conflict_state_matches_sparse_derivation(
        seed in any::<u64>(),
        ops in prop::collection::vec(arb_op(12, 34), 1..40),
    ) {
        let net = Arc::new(
            topology::random_connected(12, 17, Bandwidth::from_mbps(12), seed).unwrap()
        );
        let n = net.num_links();
        let mut mgr = DrtpManager::new(Arc::clone(&net));
        let mut scheme = DLsr::new();
        let mut rng = drt_sim::rng::stream(seed, "dense-trace");
        let mut next_id = 0u64;
        let mut live: Vec<ConnectionId> = Vec::new();

        for op in ops {
            match op {
                Op::Establish { src, dst } => {
                    if src == dst { continue; }
                    let req = RouteRequest::new(
                        ConnectionId::new(next_id), NodeId::new(src), NodeId::new(dst), BW,
                    );
                    if mgr.request_connection(&mut scheme, req).is_ok() {
                        live.push(ConnectionId::new(next_id));
                    }
                    next_id += 1;
                }
                Op::Release { victim } => {
                    if live.is_empty() { continue; }
                    let id = live.remove(victim % live.len());
                    mgr.release(id).unwrap();
                }
                Op::Fail { link } => {
                    let _ = mgr.inject_failure(LinkId::new(link % n as u32), &mut rng);
                }
                Op::Repair { link } => {
                    let _ = mgr.repair_link(LinkId::new(link % n as u32));
                }
                Op::Reestablish { victim } => {
                    if live.is_empty() { continue; }
                    let id = live[victim % live.len()];
                    let _ = mgr.reestablish_backup(&mut scheme, id);
                }
                // Other event kinds are covered by the trace property
                // above; this one focuses on conflict-state parity.
                _ => continue,
            }

            let view = mgr.view();
            for i in 0..n {
                let l = LinkId::new(i as u32);
                // Cached ‖APLV_i‖₁ equals the sparse map's own norm.
                prop_assert_eq!(view.l1_norm(l), view.aplv(l).l1_norm());
                // Every dense CV bit equals the sparse-derived bit.
                let sparse_cv = view.aplv(l).conflict_vector(n);
                for j in 0..n {
                    let probe = LinkId::new(j as u32);
                    let unit = view.densify_lset(&[probe]);
                    prop_assert_eq!(
                        view.conflict_overlap(l, &unit) == 1,
                        sparse_cv.get(probe),
                        "CV bit ({}, {}) diverged", l, probe
                    );
                }
            }
            // The dense D-LSR overlap cost equals the sparse conflict
            // count on every live primary LSET.
            let ids: Vec<ConnectionId> = live.clone();
            for id in ids {
                let Some(conn) = mgr.connection(id) else { continue; };
                let lset = conn.primary().links().to_vec();
                let dense = view.densify_lset(&lset);
                for i in 0..n {
                    let l = LinkId::new(i as u32);
                    prop_assert_eq!(
                        view.conflict_overlap(l, &dense),
                        view.conflict_count(l, &lset),
                        "D-LSR cost term diverged on {}", l
                    );
                }
            }
        }
    }

    /// The fault-tolerance probe never mutates state and always yields a
    /// probability in [0, 1].
    #[test]
    fn probe_is_pure_and_bounded(
        seed in any::<u64>(),
        scheme_idx in 0usize..4,
        n_conns in 1usize..20,
    ) {
        let net = Arc::new(
            topology::random_connected(15, 24, Bandwidth::from_mbps(30), seed).unwrap()
        );
        let mut mgr = DrtpManager::new(net);
        let mut scheme = scheme_by_index(scheme_idx);
        let mut pair_rng = drt_sim::rng::stream(seed, "pairs");
        let pattern = drt_sim::workload::TrafficPattern::ut();
        for i in 0..n_conns {
            let (src, dst) = pattern.sample_pair(15, &mut pair_rng);
            let _ = mgr.request_connection(
                scheme.as_mut(),
                RouteRequest::new(ConnectionId::new(i as u64), src, dst, BW),
            );
        }
        // Full-state digest: any mutation anywhere (a ledger, an APLV, a
        // failure flag, a connection record, the hop table) changes it.
        let fp_before = mgr.fingerprint();

        let sweep = mgr.sweep_single_failures(seed);
        if let Some(p) = sweep.p_act_bk() {
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert!(sweep.aggregate.activated <= sweep.aggregate.affected);
        }
        for li in &sweep.per_link {
            prop_assert!(li.activated <= li.affected);
        }
        // Per-unit probes are individually pure too.
        for li in sweep.worst_links(3) {
            let mut probe_rng = drt_sim::rng::stream(seed, "purity-probe");
            let _ = mgr.probe_single_failure(li.link, &mut probe_rng);
            prop_assert_eq!(mgr.fingerprint(), fp_before);
        }
        // Determinism and purity of the whole sweep.
        prop_assert_eq!(mgr.sweep_single_failures(seed), sweep);
        prop_assert_eq!(mgr.fingerprint(), fp_before);
        mgr.assert_invariants();
    }

    /// Dedicated-backup admission is never less fault tolerant than
    /// multiplexed admission on the same workload (it pays ≥ the capacity,
    /// it must get ≥ the protection).
    #[test]
    fn dedicated_is_perfectly_tolerant(seed in any::<u64>(), n_conns in 1usize..10) {
        let net = Arc::new(
            topology::random_connected(12, 22, Bandwidth::from_mbps(30), seed).unwrap()
        );
        let mut mgr = DrtpManager::new(net);
        let mut scheme = drt_core::routing::DedicatedDisjoint::new();
        let mut pair_rng = drt_sim::rng::stream(seed, "pairs");
        let pattern = drt_sim::workload::TrafficPattern::ut();
        let mut any = false;
        for i in 0..n_conns {
            let (src, dst) = pattern.sample_pair(12, &mut pair_rng);
            any |= mgr
                .request_connection(
                    &mut scheme,
                    RouteRequest::new(ConnectionId::new(i as u64), src, dst, BW),
                )
                .is_ok();
        }
        if any {
            let sample = mgr.sweep_single_failures(seed);
            if let Some(p) = sample.p_act_bk() {
                prop_assert_eq!(p, 1.0, "dedicated backups always activate");
            }
        }
    }

    /// The incidence-indexed failure engine is bit-for-bit equivalent to
    /// the full-scan baseline: after every step of a random
    /// establish/release/fail/repair/promote/reestablish trace, the
    /// indexed sweep, the per-unit probes, a correlated-event probe, and
    /// the vulnerability report all equal their `naive_baseline()`
    /// derivations exactly (same RNG consumption, same decisions).
    #[test]
    fn indexed_failure_engine_matches_naive_baseline(
        seed in any::<u64>(),
        scheme_idx in 0usize..4,
        duplex in any::<bool>(),
        ops in prop::collection::vec(arb_op(12, 34), 1..35),
    ) {
        let cfg = MultiplexConfig {
            failure_model: if duplex { FailureModel::DuplexPair } else { FailureModel::DirectedLink },
            ..MultiplexConfig::paper()
        };
        let net = Arc::new(
            topology::random_connected(12, 17, Bandwidth::from_mbps(12), seed).unwrap()
        );
        let n = net.num_links();
        let mut mgr = DrtpManager::with_config(Arc::clone(&net), cfg);
        let mut scheme = scheme_by_index(scheme_idx);
        let mut rng = drt_sim::rng::stream(seed, "indexed-trace");
        let mut next_id = 0u64;
        let mut live: Vec<ConnectionId> = Vec::new();

        for op in ops {
            match op {
                Op::Establish { src, dst } => {
                    if src == dst { continue; }
                    let req = RouteRequest::new(
                        ConnectionId::new(next_id), NodeId::new(src), NodeId::new(dst), BW,
                    );
                    if mgr.request_connection(scheme.as_mut(), req).is_ok() {
                        live.push(ConnectionId::new(next_id));
                    }
                    next_id += 1;
                }
                Op::Release { victim } => {
                    if live.is_empty() { continue; }
                    let id = live.remove(victim % live.len());
                    mgr.release(id).unwrap();
                }
                Op::Fail { link } => {
                    let _ = mgr.inject_failure(LinkId::new(link % n as u32), &mut rng);
                }
                Op::Crash { node } => {
                    let ev = FailureEvent::Node(NodeId::new(node % net.num_nodes() as u32));
                    let _ = mgr.inject_event(&ev, &mut rng);
                }
                Op::Batch { a, b } => {
                    let ev = FailureEvent::Batch(vec![
                        FailureEvent::Link(LinkId::new(a % n as u32)),
                        FailureEvent::Link(LinkId::new(b % n as u32)),
                    ]);
                    let _ = mgr.inject_event(&ev, &mut rng);
                }
                Op::Repair { link } => {
                    let _ = mgr.repair_link(LinkId::new(link % n as u32));
                }
                Op::Reestablish { victim } => {
                    if live.is_empty() { continue; }
                    let id = live[victim % live.len()];
                    let _ = mgr.reestablish_backup(scheme.as_mut(), id);
                }
            }
            // assert_invariants rebuilds the incidence index from the
            // connection table and panics on the first divergence.
            mgr.assert_invariants();

            // The whole sweep — every loaded unit probed under the same
            // per-unit RNG streams — must agree decision for decision.
            let naive = mgr.naive_baseline();
            prop_assert_eq!(
                mgr.sweep_single_failures(seed),
                naive.sweep_single_failures(seed)
            );
        }

        // Closing cross-checks on the final state: per-unit probes, a
        // correlated-event probe, and the vulnerability report.
        let naive = mgr.naive_baseline();
        for link in mgr.failure_units() {
            let mut a = drt_sim::rng::stream(seed, "probe-eq");
            let mut b = drt_sim::rng::stream(seed, "probe-eq");
            prop_assert_eq!(
                mgr.probe_single_failure(link, &mut a),
                naive.probe_single_failure(link, &mut b)
            );
        }
        let event = FailureEvent::Node(NodeId::new(0));
        let mut a = drt_sim::rng::stream(seed, "event-eq");
        let mut b = drt_sim::rng::stream(seed, "event-eq");
        prop_assert_eq!(mgr.probe_event(&event, &mut a), naive.probe_event(&event, &mut b));

        let indexed = drt_core::analysis::vulnerability(&mgr, seed);
        let scanned = drt_core::analysis::vulnerability_naive(&mgr, seed);
        prop_assert_eq!(indexed.trials(), scanned.trials());
        prop_assert_eq!(
            indexed.vulnerable().collect::<Vec<_>>(),
            scanned.vulnerable().collect::<Vec<_>>()
        );
    }

    /// The dynamic SPT repaired over a random fail/restore/reweight
    /// delta trace is bit-for-bit the from-scratch rebuild after every
    /// delta, and its parent structure always certifies the stored
    /// distances (the nightly miri job runs this trace under
    /// `PROPTEST_CASES=4`).
    #[test]
    fn dynamic_spt_repair_matches_scratch_rebuild(
        seed in any::<u64>(),
        src in 0u32..12,
        deltas in prop::collection::vec(arb_delta(34), 1..40),
    ) {
        let net = topology::random_connected(12, 17, Bandwidth::from_mbps(12), seed).unwrap();
        let n = net.num_links();
        let mut weight = vec![1.0f64; n];
        let mut alive = vec![true; n];
        let mut spt = DynamicSpt::build(&net, NodeId::new(src), |l: LinkId| {
            alive[l.index()].then_some(weight[l.index()])
        });
        for d in deltas {
            let l = match d {
                Delta::Fail(l) | Delta::Restore(l) | Delta::Reweight(l, _) => {
                    LinkId::new(l % n as u32)
                }
            };
            match d {
                Delta::Fail(_) => alive[l.index()] = false,
                Delta::Restore(_) => alive[l.index()] = true,
                Delta::Reweight(_, w) => weight[l.index()] = f64::from(w),
            }
            let cost = |l: LinkId| alive[l.index()].then_some(weight[l.index()]);
            spt.update_links(&net, &[l], cost);
            let mut fresh = spt.clone();
            fresh.rebuild_baseline(&net, cost);
            prop_assert_eq!(spt.first_divergence(&fresh), None, "delta {:?}", d);
            prop_assert!(spt.certify(&net, cost).is_none(), "delta {:?}", d);
        }
    }

    /// Incremental route maintenance (dynamic-SPT hop repair,
    /// mask-validated activation scans, the backup-candidate cache) is
    /// observationally equivalent to the naive [`RouteMaintenance::Baseline`]
    /// arm, and a cached candidate is never returned after any of its
    /// links appears in a failure event.
    #[test]
    fn incremental_maintenance_matches_baseline(
        seed in any::<u64>(),
        scheme_idx in 0usize..4,
        ops in prop::collection::vec(arb_op(12, 34), 1..30),
    ) {
        let net = Arc::new(
            topology::random_connected(12, 17, Bandwidth::from_mbps(12), seed).unwrap()
        );
        let n = net.num_links();
        let mut mgr = DrtpManager::new(Arc::clone(&net));
        prop_assert_eq!(mgr.route_maintenance(), RouteMaintenance::Incremental);
        let mut scheme = scheme_by_index(scheme_idx);
        let mut rng = drt_sim::rng::stream(seed, "maint-trace");
        let mut next_id = 0u64;
        let mut live: Vec<ConnectionId> = Vec::new();

        for op in ops {
            match op {
                Op::Establish { src, dst } => {
                    if src == dst { continue; }
                    let req = RouteRequest::new(
                        ConnectionId::new(next_id), NodeId::new(src), NodeId::new(dst), BW,
                    );
                    if mgr.request_connection(scheme.as_mut(), req).is_ok() {
                        live.push(ConnectionId::new(next_id));
                    }
                    next_id += 1;
                }
                Op::Release { victim } => {
                    if live.is_empty() { continue; }
                    let id = live.remove(victim % live.len());
                    mgr.release(id).unwrap();
                }
                Op::Fail { link } => {
                    let _ = mgr.inject_failure(LinkId::new(link % n as u32), &mut rng);
                }
                Op::Crash { node } => {
                    let ev = FailureEvent::Node(NodeId::new(node % net.num_nodes() as u32));
                    let _ = mgr.inject_event(&ev, &mut rng);
                }
                Op::Batch { a, b } => {
                    let ev = FailureEvent::Batch(vec![
                        FailureEvent::Link(LinkId::new(a % n as u32)),
                        FailureEvent::Link(LinkId::new(b % n as u32)),
                    ]);
                    let _ = mgr.inject_event(&ev, &mut rng);
                }
                Op::Repair { link } => {
                    let _ = mgr.repair_link(LinkId::new(link % n as u32));
                }
                Op::Reestablish { victim } => {
                    if live.is_empty() { continue; }
                    let id = live[victim % live.len()];
                    let _ = mgr.reestablish_backup(scheme.as_mut(), id);
                }
            }
            // The invariant pass includes the cache audit, the hop-table
            // parity against a from-scratch recompute, and every dynamic
            // SPT certifying its own distances.
            mgr.assert_invariants();

            // Cache-safety property: the live cache holds no route
            // crossing a currently-failed link, so a hit can never
            // resurrect a candidate a failure event touched.
            for route in mgr.cached_routes() {
                for &l in route.links() {
                    prop_assert!(!mgr.is_failed(l), "cached route crosses failed {}", l);
                }
            }

            // The mask-validated activation scan is bit-for-bit the
            // naive per-link scan: same decisions off the same streams.
            let mut base = mgr.clone();
            base.set_route_maintenance(RouteMaintenance::Baseline);
            base.assert_invariants();
            let event = FailureEvent::Node(NodeId::new(0));
            let mut a = drt_sim::rng::stream(seed, "maint-probe");
            let mut b = drt_sim::rng::stream(seed, "maint-probe");
            prop_assert_eq!(
                mgr.probe_event(&event, &mut a),
                base.probe_event(&event, &mut b)
            );
        }

        // Whole-sweep equivalence on the final state: every loaded unit
        // probed under both maintenance modes agrees decision for
        // decision.
        let mut base = mgr.clone();
        base.set_route_maintenance(RouteMaintenance::Baseline);
        prop_assert_eq!(mgr.sweep_single_failures(seed), base.sweep_single_failures(seed));
    }

    /// All four multiplex configurations keep the ledgers consistent.
    #[test]
    fn config_matrix_traces(
        seed in any::<u64>(),
        spare_grow in any::<bool>(),
        spare_and_free in any::<bool>(),
        duplex in any::<bool>(),
    ) {
        let cfg = MultiplexConfig {
            spare: if spare_grow { SparePolicy::GrowToRequirement } else { SparePolicy::NeverGrow },
            activation: if spare_and_free { ActivationPool::SpareAndFree } else { ActivationPool::SpareOnly },
            failure_model: if duplex { FailureModel::DuplexPair } else { FailureModel::DirectedLink },
            require_backup: true,
        };
        let net = Arc::new(
            topology::random_connected(10, 16, Bandwidth::from_mbps(20), seed).unwrap()
        );
        let mut mgr = DrtpManager::with_config(net, cfg);
        let mut scheme = DLsr::new();
        let mut rng = drt_sim::rng::stream(seed, "cfgtrace");
        let mut pair_rng = drt_sim::rng::stream(seed, "pairs");
        let pattern = drt_sim::workload::TrafficPattern::ut();
        let mut live = Vec::new();
        for i in 0..12u64 {
            let (src, dst) = pattern.sample_pair(10, &mut pair_rng);
            if mgr
                .request_connection(&mut scheme, RouteRequest::new(ConnectionId::new(i), src, dst, BW))
                .is_ok()
            {
                live.push(ConnectionId::new(i));
            }
            mgr.assert_invariants();
        }
        let _ = mgr.inject_failure(LinkId::new(0), &mut rng);
        mgr.assert_invariants();
        for id in live {
            mgr.release(id).unwrap();
            mgr.assert_invariants();
        }
        prop_assert_eq!(mgr.total_prime(), Bandwidth::ZERO);
    }
}
