//! Fixture tests for the source lint, plus the repo-wide gate: the
//! whole workspace must lint clean.

use std::path::PathBuf;

use verify::lint::{code_view, scan_source, scan_workspace};

fn rules_fired(path: &str, src: &str) -> Vec<&'static str> {
    scan_source(path, src).into_iter().map(|f| f.rule).collect()
}

#[test]
fn nondet_flagged_outside_rng_module() {
    let src = "fn f() { let mut r = rand::thread_rng(); }\n";
    assert_eq!(rules_fired("crates/sim/src/event.rs", src), ["nondet"]);
    assert_eq!(rules_fired("crates/proto/src/engine.rs", src), ["nondet"]);
    // The seeded-RNG module is the one place allowed to touch entropy.
    assert!(rules_fired("crates/sim/src/rng.rs", src).is_empty());
}

#[test]
fn nondet_covers_clocks_too() {
    assert_eq!(
        rules_fired("crates/core/src/lib.rs", "let t = Instant::now();\n"),
        ["nondet"]
    );
    assert_eq!(
        rules_fired("crates/core/src/lib.rs", "use std::time::SystemTime;\n"),
        ["nondet"]
    );
}

#[test]
fn patterns_in_comments_and_strings_are_ignored() {
    let src = "// thread_rng would be wrong here\nfn f() { let s = \"Instant::now\"; }\n";
    assert!(rules_fired("crates/core/src/lib.rs", src).is_empty());
}

#[test]
fn test_modules_are_exempt() {
    let src = "fn ok() {}\n#[cfg(test)]\nmod tests {\n    fn f() { thread_rng(); }\n}\n";
    assert!(rules_fired("crates/core/src/lib.rs", src).is_empty());
}

#[test]
fn waiver_suppresses_a_single_line() {
    let src =
        "let a = x.time_now(); // SystemTime\nlet b = SystemTime::now(); // lint:allow(nondet)\n";
    assert!(rules_fired("crates/core/src/lib.rs", src).is_empty());
    let unwaived = "let b = SystemTime::now();\n";
    assert_eq!(rules_fired("crates/core/src/lib.rs", unwaived), ["nondet"]);
    // rustfmt may push a trailing comment onto its own line above; the
    // waiver still counts from there.
    let above = "// justified here: lint:allow(nondet)\nlet b = SystemTime::now();\n";
    assert!(rules_fired("crates/core/src/lib.rs", above).is_empty());
}

#[test]
fn hash_collections_scoped_to_routing_and_proto() {
    let src = "use std::collections::HashMap;\n";
    assert_eq!(
        rules_fired("crates/core/src/routing/baseline.rs", src),
        ["hash-collections"]
    );
    assert_eq!(
        rules_fired("crates/proto/src/router.rs", src),
        ["hash-collections"]
    );
    // Elsewhere (e.g. experiment drivers) hash maps are fine.
    assert!(rules_fired("crates/experiments/src/lib.rs", src).is_empty());
}

#[test]
fn proto_panics_scoped_to_proto() {
    let src = "let v = map.get(&k).unwrap();\nlet w = map.get(&k).expect(\"present\");\n";
    let fired = rules_fired("crates/proto/src/engine.rs", src);
    assert_eq!(fired, ["proto-panics", "proto-panics"]);
    assert!(rules_fired("crates/net/src/graph.rs", src).is_empty());
    // unwrap_or and friends are not panics.
    assert!(rules_fired(
        "crates/proto/src/engine.rs",
        "let v = map.get(&k).copied().unwrap_or(0);\n"
    )
    .is_empty());
}

#[test]
fn raw_fail_link_scoped_to_experiments() {
    let src = "fn f(sim: &mut ProtocolSim, l: LinkId) { sim.fail_link(l); }\n";
    assert_eq!(
        rules_fired("crates/experiments/src/campaign.rs", src),
        ["raw-fail-link"]
    );
    // The engine itself, its tests, and the verify scenarios may fail
    // links directly — the rule polices experiment drivers only.
    assert!(rules_fired("crates/proto/src/engine.rs", src).is_empty());
    assert!(rules_fired("crates/verify/src/scenario.rs", src).is_empty());
    // The orchestrator seam waives the one justified call site.
    let waived =
        "fn seam(sim: &mut ProtocolSim, l: LinkId) {\n    // lint:allow(raw-fail-link)\n    sim.fail_link(l);\n}\n";
    assert!(rules_fired("crates/experiments/src/campaign.rs", waived).is_empty());
}

#[test]
fn raw_spoof_scoped_to_honest_experiment_drivers() {
    let src = "fn f(mgr: &mut DrtpManager, l: LinkId, rng: &mut Rng) { let _ = mgr.inject_false_report(l, rng); }\n";
    assert_eq!(
        rules_fired("crates/experiments/src/campaign.rs", src),
        ["raw-spoof"]
    );
    assert_eq!(
        rules_fired(
            "crates/experiments/src/multi_failure.rs",
            "sim.spoof_failure_report(n, l);\n"
        ),
        ["raw-spoof"]
    );
    // The adversarial sweep is the sanctioned consumer, and the seams'
    // own crates (core, proto, verify scenarios) are out of scope.
    assert!(rules_fired("crates/experiments/src/adversarial.rs", src).is_empty());
    assert!(rules_fired("crates/core/src/failure.rs", src).is_empty());
    assert!(rules_fired("crates/verify/src/scenario.rs", src).is_empty());
}

#[test]
fn journal_choke_scoped_to_proto_outside_the_choke_point() {
    let src = "fn f(r: &mut Router) {\n    r.reserve_primary(conn, &route, link, bw);\n    r.mark_applied(conn, seq);\n}\n";
    let fired = rules_fired("crates/proto/src/engine.rs", src);
    assert_eq!(fired, ["journal-choke", "journal-choke"]);
    // The choke point itself and the mutators' own module are exempt:
    // journal.rs appends-then-dispatches, router.rs composes internally.
    assert!(rules_fired("crates/proto/src/journal.rs", src).is_empty());
    assert!(rules_fired("crates/proto/src/router.rs", src).is_empty());
    // Outside the protocol crate the names mean something else entirely.
    assert!(rules_fired("crates/core/src/manager.rs", src).is_empty());
    // The Journals wrappers have distinct names, so choke-routed engine
    // code never matches.
    let routed = "self.journals.reserve(&mut self.routers, to, conn, &route, link, bw);\n";
    assert!(rules_fired("crates/proto/src/engine.rs", routed).is_empty());
}

#[test]
fn spf_alloc_scoped_to_workspace_threaded_algo_files() {
    let src = "let mut heap = BinaryHeap::new();\nlet mut dist = vec![None; n];\nlet mut done = vec![false; n];\n";
    let fired = rules_fired("crates/net/src/algo/dijkstra.rs", src);
    assert_eq!(fired, ["spf-alloc", "spf-alloc", "spf-alloc"]);
    assert_eq!(rules_fired("crates/net/src/algo/yen.rs", src).len(), 3);
    // Other heap users (Bellman-Ford, the sim's event queue) are not
    // SPF-threaded: no rule.
    assert!(rules_fired("crates/net/src/algo/bellman_ford.rs", src).is_empty());
    assert!(rules_fired("crates/sim/src/event.rs", src).is_empty());
    // A justified cold path waives in place.
    let waived = "// lint:allow(spf-alloc) — cold path\nlet mut heap = BinaryHeap::new();\n";
    assert!(rules_fired("crates/net/src/algo/disjoint.rs", waived).is_empty());
}

#[test]
fn spf_cache_confined_to_its_choke_module() {
    let src = "fn f(mgr: &mut DrtpManager) {\n    mgr.route_cache.candidates.clear();\n}\n";
    assert_eq!(
        rules_fired("crates/core/src/manager.rs", src),
        ["spf-cache"]
    );
    assert_eq!(
        rules_fired("crates/core/src/failure.rs", src),
        ["spf-cache"]
    );
    // The choke module itself owns the fields; outside the core crate
    // the name means nothing.
    assert!(rules_fired("crates/core/src/route_cache.rs", src).is_empty());
    assert!(rules_fired("crates/experiments/src/campaign.rs", src).is_empty());
    // The wrapper calls the rest of the crate uses never match.
    let routed = "self.note_links_failed(&failed);\nlet hit = self.take_cached_backup(&req, &primary, &existing, avoid);\n";
    assert!(rules_fired("crates/core/src/failure.rs", routed).is_empty());
}

#[test]
fn probe_alloc_scoped_to_failure_analysis_files() {
    let src = "let affected: Vec<ConnectionId> = conns.values().map(|c| c.id()).collect();\nlet mut decisions = Vec::with_capacity(affected.len());\n";
    let fired = rules_fired("crates/core/src/failure.rs", src);
    assert_eq!(fired, ["probe-alloc", "probe-alloc"]);
    assert_eq!(rules_fired("crates/core/src/analysis.rs", src).len(), 2);
    // Collecting elsewhere (manager admission, experiment drivers) is
    // not a probe: no rule.
    assert!(rules_fired("crates/core/src/manager.rs", src).is_empty());
    assert!(rules_fired("crates/experiments/src/campaign.rs", src).is_empty());
    // One-shot setup code waives in place.
    let waived =
        "// lint:allow(probe-alloc) — unit enumeration runs once per sweep\nlet units: Vec<LinkId> = net.links().map(|l| l.id()).collect();\n";
    assert!(rules_fired("crates/core/src/failure.rs", waived).is_empty());
}

#[test]
fn float_equality_flagged_everywhere() {
    assert_eq!(
        rules_fired("crates/core/src/lib.rs", "if load == 0.5 { }\n"),
        ["float-eq"]
    );
    assert_eq!(
        rules_fired("crates/net/src/graph.rs", "if 1.0 != ratio { }\n"),
        ["float-eq"]
    );
    // Integer equality, dotted paths, tuple indices, comparisons: fine.
    for ok in [
        "if count == 0 { }\n",
        "if self.cfg.drop_prob <= 0.5 { }\n",
        "if pair.0 == pair.1 { }\n",
        "let ge = x >= 2.0;\n",
    ] {
        assert!(
            rules_fired("crates/core/src/lib.rs", ok).is_empty(),
            "false positive on {ok:?}"
        );
    }
}

#[test]
fn code_view_preserves_line_numbers() {
    let src = "line1 /* c1\nc2 */ line2\n// line3\nlet s = \"x\\\"y\";\n";
    let view = code_view(src);
    assert_eq!(src.lines().count(), view.lines().count());
    assert!(view.contains("line1"));
    assert!(view.contains("line2"));
    assert!(!view.contains("c2"));
    assert!(!view.contains("x\\\"y"));
}

#[test]
fn code_view_handles_raw_strings_and_chars() {
    let src = "let r = r#\"thread_rng\"#;\nlet c = '\"';\nlet lt: &'static str = \"x\";\n";
    let view = code_view(src);
    assert!(!view.contains("thread_rng"));
    assert!(view.contains("'static"));
    assert!(rules_fired("crates/core/src/lib.rs", src).is_empty());
}

// ---------------------------------------------------------------------
// Adversarial lexer inputs: every construct here once confused a
// substring-era lint or plausibly could. The contract under test is the
// code view — comment and literal *bodies* gone, line structure intact —
// and the token stream it derives from.
// ---------------------------------------------------------------------

#[test]
fn lexer_lifetimes_are_not_char_literals() {
    // `'a` in generics/references must not open a char literal and
    // swallow the rest of the file (which would blind every rule
    // downstream of the quote).
    let src = "fn f<'a>(x: &'a str) -> &'a str { x }\nfn g() { thread_rng(); }\n";
    assert_eq!(rules_fired("crates/core/src/lib.rs", src), ["nondet"]);
    // …while real char literals, including quote and escape chars,
    // still blank their bodies.
    let chars = "let a = 'x';\nlet q = '\\'';\nlet n = '\\n';\nlet u = '\\u{41}';\nlet t = \"thread_rng\";\n";
    assert!(rules_fired("crates/core/src/lib.rs", chars).is_empty());
}

#[test]
fn lexer_byte_strings_and_byte_chars() {
    let src = "let b = b\"Instant::now\";\nlet r = br#\"SystemTime\"#;\nlet c = b'\\'';\nlet d = b'x';\nfn live() { from_entropy(); }\n";
    assert_eq!(rules_fired("crates/core/src/lib.rs", src), ["nondet"]);
}

#[test]
fn lexer_raw_identifiers() {
    // `r#fn` is an identifier, not an `r"` string opener; the quote that
    // follows later must still lex as a normal string.
    let src = "fn r#fn(r#type: u32) -> u32 { r#type }\nlet s = \"thread_rng\";\n";
    assert!(rules_fired("crates/core/src/lib.rs", src).is_empty());
}

#[test]
fn lexer_doc_comments_are_comments() {
    let src = "//! thread_rng in module docs\n/// SystemTime in item docs\n/** Instant::now in block docs */\nfn f() {}\n";
    assert!(rules_fired("crates/core/src/lib.rs", src).is_empty());
}

#[test]
fn lexer_nested_block_comments_and_raw_string_interplay() {
    // A `/*` inside a raw string is text, not a comment opener — code
    // after the string must still be scanned…
    let src = "let s = r#\"/* not a comment\"#;\nfn live() { thread_rng(); }\n";
    assert_eq!(rules_fired("crates/core/src/lib.rs", src), ["nondet"]);
    // …and a raw-string opener inside a nested block comment is text
    // too: the comment still closes where it should.
    let src2 = "/* outer /* r#\" inner */ still comment */\nfn live() { thread_rng(); }\n";
    assert_eq!(rules_fired("crates/core/src/lib.rs", src2), ["nondet"]);
}

#[test]
fn lexer_macro_bodies_are_code() {
    // Macro bodies are token soup but still code: literals inside them
    // blank, idents inside them lint.
    let src = "macro_rules! m {\n    ($x:expr) => {\n        println!(\"thread_rng {}\", $x)\n    };\n}\nfn live() { let t = Instant::now(); }\n";
    assert_eq!(rules_fired("crates/core/src/lib.rs", src), ["nondet"]);
}

#[test]
fn lexer_escaped_newline_string_continuation_keeps_lines() {
    // `"…\` at end of line continues the literal; the line must still
    // count or every downstream line number drifts.
    let src = "let usage = \"line one \\\n    line two\";\nlet t = Instant::now();\n";
    let findings = scan_source("crates/core/src/lib.rs", src);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].line, 3);
}

#[test]
fn whole_workspace_lints_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = scan_workspace(&root).expect("workspace must be scannable");
    assert!(
        findings.is_empty(),
        "lint findings:\n{}",
        findings
            .iter()
            .map(|f| {
                let mut s = f.to_string();
                for d in &f.detail {
                    s.push_str("\n    ");
                    s.push_str(d);
                }
                s
            })
            .collect::<Vec<_>>()
            .join("\n")
    );
}
