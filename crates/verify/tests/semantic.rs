//! Seeded-defect fixtures for the semantic engine: each test plants a
//! known defect in a miniature workspace and proves the full engine
//! ([`verify::lint::run_on`]) reports it — with the right rule, the
//! right line, and (for taint) the complete source→sink call chain.

use verify::lint::{run_on, Finding, STALE_WAIVER};
use verify::model::Workspace;

fn findings_of<'a>(fs: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    fs.iter().filter(|f| f.rule == rule).collect()
}

/// The flagship case: routing code reaches `Instant::now` through two
/// layers of helpers in another crate. No forbidden name appears
/// anywhere near the policed code, so the substring rule is blind to it;
/// the taint pass must report it at the routing call site with every hop
/// of the chain spelled out.
#[test]
fn indirect_clock_read_two_calls_deep_reports_full_chain() {
    let ws = Workspace::from_sources(&[
        (
            "crates/net/src/metrics.rs",
            "pub fn epoch_nanos() -> u64 {\n    raw_clock()\n}\npub fn raw_clock() -> u64 {\n    Instant::now().elapsed().as_nanos() as u64\n}\n",
        ),
        (
            "crates/core/src/routing/pick.rs",
            "pub fn pick_route(net: &Net) -> RouteId {\n    let stamp = epoch_nanos();\n    tie_break(net, stamp)\n}\n",
        ),
    ]);
    let report = run_on(&ws);
    let taint = findings_of(&report.findings, "nondet-taint");
    assert_eq!(taint.len(), 1, "{:?}", report.findings);
    let f = taint[0];
    assert_eq!(f.path, "crates/core/src/routing/pick.rs");
    assert_eq!(f.line, 2, "reported at the call into the tainted helper");
    // The chain names every hop, ending at the ambient source.
    assert_eq!(f.detail.len(), 3, "{:?}", f.detail);
    assert!(f.detail[0].contains("pick_route") && f.detail[0].contains("epoch_nanos"));
    assert!(f.detail[1].contains("epoch_nanos") && f.detail[1].contains("raw_clock"));
    assert!(f.detail[2].contains("raw_clock") && f.detail[2].contains("Instant::now"));
    // The legacy substring pass sees the raw `Instant::now` in the net
    // helper — but is blind inside the policed file, which is exactly
    // the gap the taint pass closes.
    assert!(findings_of(&report.findings, "nondet")
        .iter()
        .all(|f| f.path == "crates/net/src/metrics.rs"));
}

/// A `nondet` waiver at the ambient source neutralises the whole chain —
/// and counts as used, so it does not resurface as a stale waiver.
#[test]
fn waived_source_clears_the_chain_without_going_stale() {
    let ws = Workspace::from_sources(&[
        (
            "crates/net/src/metrics.rs",
            "pub fn epoch_nanos() -> u64 {\n    Instant::now().elapsed().as_nanos() as u64 // lint:allow(nondet) — wall-clock telemetry, never simulation state\n}\n",
        ),
        (
            "crates/core/src/routing/pick.rs",
            "pub fn pick_route() -> u64 {\n    epoch_nanos()\n}\n",
        ),
    ]);
    let report = run_on(&ws);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

/// A frontier call site can be waived with `lint:allow(nondet-taint)`
/// where the nondeterminism is understood and accepted.
#[test]
fn frontier_call_site_waiver_suppresses_the_taint_finding() {
    let ws = Workspace::from_sources(&[
        (
            "crates/net/src/metrics.rs",
            "pub fn epoch_nanos() -> u64 {\n    Instant::now().elapsed().as_nanos() as u64\n}\n",
        ),
        (
            "crates/experiments/src/report.rs",
            "pub fn stamp_report() -> u64 {\n    // lint:allow(nondet-taint) — report timestamps are cosmetic\n    epoch_nanos()\n}\n",
        ),
    ]);
    let report = run_on(&ws);
    assert!(
        findings_of(&report.findings, "nondet-taint").is_empty(),
        "{:?}",
        report.findings
    );
    assert!(
        findings_of(&report.findings, STALE_WAIVER).is_empty(),
        "the frontier waiver is live, not stale: {:?}",
        report.findings
    );
}

/// An RNG captured from the enclosing scope and consumed inside a
/// parallel-driver closure is flagged at the consuming line.
#[test]
fn shared_rng_in_parallel_closure_is_flagged() {
    let ws = Workspace::from_sources(&[(
        "crates/experiments/src/sweep.rs",
        "pub fn sweep(rng: &mut StdRng, cells: Vec<Cell>) -> Vec<Row> {\n    parallel_map(8, cells, || (), |_, cell| {\n        let jitter = rng.gen_range(0..10);\n        run_cell(cell, jitter)\n    })\n}\n",
    )]);
    let report = run_on(&ws);
    let f = findings_of(&report.findings, "rng-substream");
    assert_eq!(f.len(), 1, "{:?}", report.findings);
    assert_eq!(f[0].line, 3);
    assert!(f[0].detail[0].contains("indexed_stream"));
}

/// The sanctioned pattern — deriving a per-unit keyed substream inside
/// the closure — is clean.
#[test]
fn derived_substream_closure_is_clean() {
    let ws = Workspace::from_sources(&[(
        "crates/experiments/src/sweep.rs",
        "pub fn sweep(seed: u64, cells: Vec<Cell>) -> Vec<Row> {\n    parallel_map(8, cells, || (), |_, (i, cell)| {\n        let mut rng = drt_sim::rng::indexed_stream(seed, \"cell\", i);\n        run_cell(cell, rng.gen_range(0..10))\n    })\n}\n",
    )]);
    let report = run_on(&ws);
    assert!(
        findings_of(&report.findings, "rng-substream").is_empty(),
        "{:?}",
        report.findings
    );
}

/// A `*_baseline` function nothing references is flagged; referencing it
/// from any test or bench file clears it.
#[test]
fn unreferenced_baseline_is_flagged_referenced_is_clean() {
    let dead = Workspace::from_sources(&[(
        "crates/core/src/routing/dlsr.rs",
        "impl DLsr {\n    pub fn cost(&self) -> f64 { self.fast() }\n    pub fn cost_baseline(&self) -> f64 { 0.0 }\n}\n",
    )]);
    let report = run_on(&dead);
    let f = findings_of(&report.findings, "baseline-parity");
    assert_eq!(f.len(), 1, "{:?}", report.findings);
    assert!(f[0].detail[0].contains("DLsr::cost_baseline"));

    let referenced = Workspace::from_sources(&[
        (
            "crates/core/src/routing/dlsr.rs",
            "impl DLsr {\n    pub fn cost_baseline(&self) -> f64 { 0.0 }\n}\n",
        ),
        (
            "crates/core/tests/equivalence.rs",
            "#[test]\nfn parity() { assert_eq!(d.cost(), d.cost_baseline()); }\n",
        ),
    ]);
    let report = run_on(&referenced);
    assert!(
        findings_of(&report.findings, "baseline-parity").is_empty(),
        "{:?}",
        report.findings
    );
}

/// A waiver that suppresses nothing is itself an error, reported at the
/// waiver's own line.
#[test]
fn stale_waiver_is_reported_at_its_line() {
    let ws = Workspace::from_sources(&[(
        "crates/proto/src/engine.rs",
        "pub fn handle(&mut self, m: Msg) {\n    let x = 1; // lint:allow(proto-panics) — nothing panics here any more\n    self.apply(m, x);\n}\n",
    )]);
    let report = run_on(&ws);
    let f = findings_of(&report.findings, STALE_WAIVER);
    assert_eq!(f.len(), 1, "{:?}", report.findings);
    assert_eq!(f[0].line, 2);
    assert!(f[0].detail[0].contains("no longer suppresses"));
}
