//! The byzantine false-report scenario through the model checker: the
//! undefended engine has a *provable* phantom-report violation whose
//! minimal counterexample is the lie itself (zero injected chaos
//! faults), and flipping `report_verification` on makes the identical
//! operation script check clean at the same bounds.

use drt_proto::SeededBug;
use verify::checker::{check, CheckConfig};
use verify::scenario::byzantine_false_report;

fn bounds() -> CheckConfig {
    CheckConfig {
        depth: 8,
        max_faults: 2,
        ..CheckConfig::default()
    }
}

#[test]
fn undefended_lie_is_a_minimal_phantom_report_counterexample() {
    let scenario = byzantine_false_report(false);
    let report = check(&scenario, SeededBug::None, &bounds());
    let cx = report
        .counterexample
        .as_ref()
        .expect("the undefended engine must act on the lie");
    assert_eq!(cx.violation.rule, "phantom-report");
    assert_eq!(
        cx.faults(),
        0,
        "the lie alone is the fault: no dropped/duplicated/delayed \
         packet is needed, so BFS finds a fate-free counterexample"
    );
    // The counterexample replays through the ordinary chaos seam.
    let replayed = cx
        .replay(&scenario, SeededBug::None)
        .expect("replay must reproduce the violation");
    assert_eq!(replayed.rule, "phantom-report");
}

#[test]
fn defended_engine_checks_clean_under_the_same_lie() {
    let scenario = byzantine_false_report(true);
    let report = check(&scenario, SeededBug::None, &bounds());
    assert!(
        report.ok(),
        "with report verification on, every delivery schedule of the \
         same script must satisfy every invariant: {:?}",
        report.counterexample.map(|cx| cx.violation)
    );
    assert!(report.stats.runs > 1, "the space was actually explored");
}
