//! End-to-end tests of the bounded model checker: clean scenarios
//! verify exhaustively, seeded bugs yield minimal replayable
//! counterexamples, and the reductions are both sound and worthwhile.

use drt_proto::SeededBug;
use verify::checker::{check, replay, CheckConfig};
use verify::scenario;

#[test]
fn clean_scenarios_verify_exhaustively() {
    let cfg = CheckConfig::default();
    for s in scenario::all() {
        let report = check(&s, SeededBug::None, &cfg);
        assert!(
            report.ok(),
            "{}: unexpected violation: {:?}",
            s.name,
            report.counterexample
        );
        assert!(report.stats.runs > 100, "{}: trivial exploration", s.name);
        assert!(report.stats.distinct_states > 0, "{}: no states", s.name);
    }
}

#[test]
fn depth_ten_failover_check_is_clean_and_reduced_at_least_2x() {
    // The acceptance bar: the 3-node setup+failover scenario, explored
    // to depth >= 10, zero violations, and the reductions must save at
    // least 2x over the unreduced baseline.
    let s = scenario::three_node_failover();
    let cfg = CheckConfig {
        depth: 10,
        ..CheckConfig::default()
    };
    let reduced = check(&s, SeededBug::None, &cfg);
    assert!(reduced.ok(), "violation: {:?}", reduced.counterexample);
    let base = check(&s, SeededBug::None, &cfg.baseline());
    assert!(base.ok(), "baseline found what reduced missed");
    let ratio = base.stats.runs as f64 / reduced.stats.runs as f64;
    assert!(
        ratio >= 2.0,
        "reduction only {ratio:.2}x ({} vs {} runs)",
        base.stats.runs,
        reduced.stats.runs
    );
    assert_eq!(base.stats.pruned, 0);
    assert_eq!(base.stats.por_skips, 0);
    assert!(reduced.stats.pruned > 0 && reduced.stats.por_skips > 0);
}

#[test]
fn depth_ten_overlap_scenarios_are_clean_with_two_faults() {
    // The correlated-failure acceptance bar: the burst that severs the
    // primary together with the chosen backup, and the router crash
    // whose report fan-in hits the source twice, both explored to depth
    // >= 10 with a 2-fault budget, zero violations in every reachable
    // intermediate state.
    let cfg = CheckConfig {
        depth: 10,
        max_faults: 2,
        ..CheckConfig::default()
    };
    for s in [
        scenario::overlapping_burst_switch(),
        scenario::node_crash_fanin(),
    ] {
        let report = check(&s, SeededBug::None, &cfg);
        assert!(
            report.ok(),
            "{}: unexpected violation: {:?}",
            s.name,
            report.counterexample
        );
        assert!(report.stats.runs > 100, "{}: trivial exploration", s.name);
    }
}

#[test]
fn double_release_bug_yields_minimal_replayable_counterexample() {
    // A release walk whose retransmission is re-applied past the dedup
    // gate pops the *other* backup stacked on the shared hop. One
    // dropped delivery suffices to expose it.
    let s = scenario::stacked_backup_retire();
    let report = check(&s, SeededBug::DoubleRelease, &CheckConfig::default());
    let cx = report
        .counterexample
        .expect("seeded double-release must be caught");
    assert_eq!(
        cx.faults(),
        1,
        "counterexample not minimal: {:?}",
        cx.script
    );
    assert_eq!(cx.violation.rule, "quiescent-aplv");
    // The counterexample is an ordinary fate script: replaying it
    // through the scripted chaos layer reproduces the same violation.
    let replayed = cx
        .replay(&s, SeededBug::DoubleRelease)
        .expect("counterexample must replay");
    assert_eq!(replayed.rule, cx.violation.rule);
    // And the same script on the unmodified engine is violation-free.
    assert!(replay(&s, SeededBug::None, &cx.script).is_none());
}

#[test]
fn double_register_bug_yields_minimal_replayable_counterexample() {
    let s = scenario::three_node_failover();
    let report = check(&s, SeededBug::DoubleRegister, &CheckConfig::default());
    let cx = report
        .counterexample
        .expect("seeded double-register must be caught");
    assert_eq!(
        cx.faults(),
        1,
        "counterexample not minimal: {:?}",
        cx.script
    );
    assert_eq!(cx.violation.rule, "backup-entry-overcount");
    let replayed = cx
        .replay(&s, SeededBug::DoubleRegister)
        .expect("counterexample must replay");
    assert_eq!(replayed.rule, cx.violation.rule);
    assert!(replay(&s, SeededBug::None, &cx.script).is_none());
}

#[test]
fn reductions_do_not_change_any_verdict() {
    // Soundness spot-check: with and without reductions, every
    // (scenario, bug) pair gets the same clean/violated verdict.
    let cfg = CheckConfig {
        depth: 8,
        max_faults: 2,
        ..CheckConfig::default()
    };
    for s in scenario::all() {
        for bug in [
            SeededBug::None,
            SeededBug::DoubleRelease,
            SeededBug::DoubleRegister,
        ] {
            let reduced = check(&s, bug, &cfg);
            let base = check(&s, bug, &cfg.baseline());
            assert_eq!(
                reduced.ok(),
                base.ok(),
                "{}/{bug:?}: reduced {:?} vs baseline {:?}",
                s.name,
                reduced.counterexample,
                base.counterexample
            );
            if let (Some(r), Some(b)) = (&reduced.counterexample, &base.counterexample) {
                assert_eq!(r.faults(), b.faults(), "{}/{bug:?}", s.name);
            }
        }
    }
}

#[test]
fn exploration_is_deterministic() {
    let s = scenario::three_node_failover();
    let cfg = CheckConfig::default();
    let a = check(&s, SeededBug::None, &cfg);
    let b = check(&s, SeededBug::None, &cfg);
    assert_eq!(a.stats.runs, b.stats.runs);
    assert_eq!(a.stats.steps, b.stats.steps);
    assert_eq!(a.stats.pruned, b.stats.pruned);
    assert_eq!(a.stats.distinct_states, b.stats.distinct_states);
}
