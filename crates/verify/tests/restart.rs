//! Crash-recovery scenarios through the model checker: an amnesia
//! restart has a *provable* rejoin-restores-primaries violation whose
//! minimal counterexample is the restart itself (zero injected chaos
//! faults); the identical script under journaled recovery checks clean
//! at full default depth, as does a torn-journal crash that degrades
//! its rejoin. The sybil pair does the same for forged-reporter
//! quorums: a raw corroboration quorum is defeated on the fault-free
//! root run, a quarantine-clean quorum checks clean.

use drt_proto::SeededBug;
use verify::checker::{check, CheckConfig};
use verify::scenario::{byzantine_sybil, restart_rejoin, restart_torn_journal};

fn bounds() -> CheckConfig {
    CheckConfig {
        depth: 8,
        max_faults: 2,
        ..CheckConfig::default()
    }
}

#[test]
fn amnesia_restart_is_a_minimal_counterexample() {
    let scenario = restart_rejoin(false);
    let report = check(&scenario, SeededBug::None, &bounds());
    let cx = report
        .counterexample
        .as_ref()
        .expect("an amnesia restart must lose the primary hop");
    assert_eq!(cx.violation.rule, "rejoin-restores-primaries");
    assert_eq!(
        cx.faults(),
        0,
        "the restart alone is the fault: no dropped/duplicated/delayed \
         packet is needed, so BFS finds a fate-free counterexample"
    );
    // The counterexample replays through the ordinary chaos seam.
    let replayed = cx
        .replay(&scenario, SeededBug::None)
        .expect("replay must reproduce the violation");
    assert_eq!(replayed.rule, "rejoin-restores-primaries");
}

#[test]
fn journaled_restart_checks_clean_at_full_depth() {
    let scenario = restart_rejoin(true);
    // Full default depth (12) and fault budget: the acceptance bar for
    // the journaled recovery path, not just the quick bounds.
    let report = check(&scenario, SeededBug::None, &CheckConfig::default());
    assert!(
        report.ok(),
        "journal replay plus neighbour resync must restore every \
         surviving primary hop under every delivery schedule: {:?}",
        report.counterexample.map(|cx| cx.violation)
    );
    assert!(report.stats.runs > 1, "the space was actually explored");
}

#[test]
fn torn_journal_degrades_instead_of_violating() {
    let scenario = restart_torn_journal();
    let report = check(&scenario, SeededBug::None, &bounds());
    assert!(
        report.ok(),
        "a corrupt journal must degrade the rejoin (crashed-router \
         detection), never resync on bad state: {:?}",
        report.counterexample.map(|cx| cx.violation)
    );
}

#[test]
fn sybil_quorum_defeats_a_raw_corroboration_count() {
    let scenario = byzantine_sybil(false);
    let report = check(&scenario, SeededBug::None, &bounds());
    let cx = report
        .counterexample
        .as_ref()
        .expect("three forged identities must assemble the raw quorum");
    assert_eq!(cx.violation.rule, "phantom-report");
    assert_eq!(
        cx.faults(),
        0,
        "the forged reports alone are the fault — a fate-free counterexample"
    );
    let replayed = cx
        .replay(&scenario, SeededBug::None)
        .expect("replay must reproduce the violation");
    assert_eq!(replayed.rule, "phantom-report");
}

#[test]
fn clean_quorum_blocks_the_sybil_reporters() {
    let scenario = byzantine_sybil(true);
    let report = check(&scenario, SeededBug::None, &bounds());
    assert!(
        report.ok(),
        "a quarantine-clean quorum must never assemble from forged \
         identities that are dirty after their own lies: {:?}",
        report.counterexample.map(|cx| cx.violation)
    );
    assert!(report.stats.runs > 1, "the space was actually explored");
}
