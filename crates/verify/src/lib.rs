//! `drt-verify`: static analysis for the DRTP reproduction.
//!
//! Two engines live here, both aimed at the same question — *can the
//! signalling plane misbehave in a way randomized chaos testing would
//! miss?*
//!
//! # The model checker ([`checker`])
//!
//! Randomized chaos runs sample the space of delivery schedules; the
//! checker *enumerates* it. A [`scenario::Scenario`] is a small scripted
//! workload (establish, fail a link, retire backups, release) on a
//! hand-built topology. Every multi-hop control-packet delivery in a run
//! is a *decision point*; the checker explores every assignment of
//! [`drt_proto::Fate`] (drop / duplicate / delay) to the first `depth`
//! decision points, bounded by a fault budget, and asserts the engine's
//! ledger / spare-pool / dedup invariants in **every** intermediate
//! state. Exploration order is breadth-first by injected-fault count, so
//! the first counterexample found is minimal, and a counterexample is
//! just a fate script — replayable through the ordinary chaos seam with
//! [`checker::replay`].
//!
//! Two reductions keep the space tractable (measured by running the same
//! scenario with them disabled):
//!
//! * **Partial-order reduction** — duplicating a delivery whose second
//!   copy is provably absorbed by transaction gating (result and ack
//!   packets: the handler is `txns.remove`-then-return) cannot change
//!   any reachable state, so that branch is skipped.
//! * **State-fingerprint pruning** — a run whose state fingerprint was
//!   already visited with at least as much remaining fault budget and
//!   branch depth cannot reach anything new, so it is abandoned.
//!
//! # The semantic lint ([`lint`])
//!
//! A source-level analysis engine (no rustc plumbing, no extra
//! dependencies) built from four layers:
//!
//! * [`lex`] — a token-level Rust lexer (comments, raw strings, byte
//!   literals, lifetimes-vs-chars, raw identifiers, nested block
//!   comments) and the *code view* it derives: source text with comment
//!   and literal bodies blanked, byte offsets and line numbers
//!   preserved. The legacy substring rules run on this view.
//! * [`model`] — a per-workspace item model: every `fn` with its impl
//!   context, call sites, direct nondeterminism seeds, `lint:allow`
//!   waivers, and the identifier set referenced from test code.
//! * [`taint`] — fixpoint nondeterminism-taint propagation over the
//!   call graph: a helper wrapping `Instant::now` two crates away
//!   taints every routing function that can reach it, and the finding
//!   carries the full source→sink call chain.
//! * [`semantic`] — call-graph rules: RNG-substream discipline for
//!   closures passed to the deterministic parallel drivers, and
//!   baseline test/bench parity for `*_baseline` functions. The
//!   stale-waiver audit lives in the [`lint`] orchestrator.
//!
//! Run it with `cargo run -p verify --bin lint` (`--format json` for
//! machine-readable output, `--explain <rule>` for rule docs).

#![warn(missing_docs)]
#![deny(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod checker;
pub mod lex;
pub mod lint;
pub mod model;
pub mod scenario;
pub mod semantic;
pub mod taint;
