//! `drt-verify`: static analysis for the DRTP reproduction.
//!
//! Two engines live here, both aimed at the same question — *can the
//! signalling plane misbehave in a way randomized chaos testing would
//! miss?*
//!
//! # The model checker ([`checker`])
//!
//! Randomized chaos runs sample the space of delivery schedules; the
//! checker *enumerates* it. A [`scenario::Scenario`] is a small scripted
//! workload (establish, fail a link, retire backups, release) on a
//! hand-built topology. Every multi-hop control-packet delivery in a run
//! is a *decision point*; the checker explores every assignment of
//! [`drt_proto::Fate`] (drop / duplicate / delay) to the first `depth`
//! decision points, bounded by a fault budget, and asserts the engine's
//! ledger / spare-pool / dedup invariants in **every** intermediate
//! state. Exploration order is breadth-first by injected-fault count, so
//! the first counterexample found is minimal, and a counterexample is
//! just a fate script — replayable through the ordinary chaos seam with
//! [`checker::replay`].
//!
//! Two reductions keep the space tractable (measured by running the same
//! scenario with them disabled):
//!
//! * **Partial-order reduction** — duplicating a delivery whose second
//!   copy is provably absorbed by transaction gating (result and ack
//!   packets: the handler is `txns.remove`-then-return) cannot change
//!   any reachable state, so that branch is skipped.
//! * **State-fingerprint pruning** — a run whose state fingerprint was
//!   already visited with at least as much remaining fault budget and
//!   branch depth cannot reach anything new, so it is abandoned.
//!
//! # The lint ([`lint`])
//!
//! A source-level pass (no rustc plumbing, no extra dependencies) that
//! enforces the repo's determinism and safety rules: no ambient
//! randomness or wall-clock reads outside the seeded-RNG module, no
//! iteration-order-unstable collections in routing/protocol hot paths,
//! no `unwrap`/`expect` in protocol message handlers, and no floating
//! point equality in accounting code. Run it with
//! `cargo run -p verify --bin lint`.

#![warn(missing_docs)]
#![deny(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod checker;
pub mod lint;
pub mod scenario;
