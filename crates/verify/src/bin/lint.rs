//! Workspace determinism/safety lint.
//!
//! ```text
//! cargo run -p verify --bin lint
//! ```
//!
//! Scans every non-test `.rs` file under `crates/` and `src/`, applies
//! the rule table in [`verify::lint`], prints findings, and exits
//! nonzero if any fire.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use verify::lint;

fn main() -> ExitCode {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let root = root.canonicalize().unwrap_or(root);
    let files = match lint::count_files(&root) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("lint: cannot walk {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    let findings = match lint::scan_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("lint: cannot scan {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    println!("lint: {files} files scanned under {}", root.display());
    for rule in &lint::RULES {
        let n = findings.iter().filter(|f| f.rule == rule.name).count();
        println!("  {:<16} {} finding(s)", rule.name, n);
    }
    let n = findings.iter().filter(|f| f.rule == lint::FLOAT_EQ).count();
    println!("  {:<16} {} finding(s)", lint::FLOAT_EQ, n);
    if findings.is_empty() {
        println!("lint: clean");
        return ExitCode::SUCCESS;
    }
    println!();
    for f in &findings {
        println!("{f}");
    }
    println!("\nlint: {} finding(s)", findings.len());
    ExitCode::FAILURE
}
