//! Workspace semantic lint.
//!
//! ```text
//! cargo run -p verify --bin lint               # human-readable report
//! cargo run -p verify --bin lint -- --format json
//! cargo run -p verify --bin lint -- --explain nondet-taint
//! ```
//!
//! Builds the workspace code model (every `.rs` file under `crates/`,
//! test files included for waiver and reference tracking), runs the
//! full engine in [`verify::lint::run_full`] — legacy substring rules,
//! nondeterminism-taint propagation, RNG-substream discipline,
//! baseline parity, stale-waiver audit — and exits nonzero if anything
//! fires.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use verify::lint;

fn usage() -> ExitCode {
    eprintln!("usage: lint [--format text|json] [--explain <rule>]");
    ExitCode::FAILURE
}

fn explain(rule: &str) -> ExitCode {
    match lint::RULE_DOCS.iter().find(|d| d.name == rule) {
        Some(d) => {
            println!("{}", d.name);
            println!("  scope: {}", d.scope);
            println!("  why:   {}", d.why);
            println!("  fix:   {}", d.fix);
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("lint: unknown rule `{rule}`; known rules:");
            for d in &lint::RULE_DOCS {
                eprintln!("  {}", d.name);
            }
            ExitCode::FAILURE
        }
    }
}

/// Minimal JSON string escaping (the report carries no exotic content,
/// but excerpts can hold quotes and backslashes).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn print_json(report: &lint::Report, elapsed_ms: u128) {
    println!("{{");
    println!("  \"files\": {},", report.files);
    println!("  \"elapsed_ms\": {elapsed_ms},");
    println!("  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        let comma = if i + 1 < report.findings.len() {
            ","
        } else {
            ""
        };
        let detail = f
            .detail
            .iter()
            .map(|d| json_str(d))
            .collect::<Vec<_>>()
            .join(", ");
        println!(
            "    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"excerpt\": {}, \"detail\": [{}]}}{comma}",
            json_str(f.rule),
            json_str(&f.path),
            f.line,
            json_str(&f.excerpt),
            detail,
        );
    }
    println!("  ]");
    println!("}}");
}

fn print_text(report: &lint::Report, root: &std::path::Path, elapsed_ms: u128) {
    println!(
        "lint: {} files modelled under {} ({elapsed_ms} ms)",
        report.files,
        root.display()
    );
    for doc in &lint::RULE_DOCS {
        let n = report
            .findings
            .iter()
            .filter(|f| f.rule == doc.name)
            .count();
        println!("  {:<18} {} finding(s)", doc.name, n);
    }
    if report.findings.is_empty() {
        println!("lint: clean");
        return;
    }
    println!();
    for f in &report.findings {
        println!("{f}");
        for d in &f.detail {
            println!("    {d}");
        }
    }
    println!("\nlint: {} finding(s)", report.findings.len());
}

fn main() -> ExitCode {
    let mut format = "text".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next() {
                Some(f) if f == "text" || f == "json" => format = f,
                _ => return usage(),
            },
            "--explain" => {
                return match args.next() {
                    Some(rule) => explain(&rule),
                    None => usage(),
                };
            }
            _ => return usage(),
        }
    }

    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let root = root.canonicalize().unwrap_or(root);
    let t0 = Instant::now(); // lint:allow(nondet) — CLI wall-clock reporting, not simulation state
    let report = match lint::run_full(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint: cannot scan {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    let elapsed_ms = t0.elapsed().as_millis();
    match format.as_str() {
        "json" => print_json(&report, elapsed_ms),
        _ => print_text(&report, &root, elapsed_ms),
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
