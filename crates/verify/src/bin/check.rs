//! Bounded exhaustive model check of the signalling plane.
//!
//! ```text
//! cargo run --release -p verify --bin check -- [--depth N] [--max-faults N]
//!                                              [--scenario NAME] [--bug NAME]
//!                                              [--no-baseline]
//! ```
//!
//! For each scenario the checker explores every fate script (drop /
//! duplicate / delay at the first `depth` delivery decisions, at most
//! `max-faults` faults per run), asserting every engine invariant in
//! every explored state. Unless `--no-baseline` is given, the same
//! space is re-explored with partial-order reduction and fingerprint
//! pruning disabled to measure the reduction factor.
//!
//! Exits nonzero when a violation is found, or when the reduced
//! exploration saves less than 2x over the baseline.

#![forbid(unsafe_code)]

use std::process::ExitCode;

use drt_proto::SeededBug;
use verify::checker::{check, CheckConfig, CheckReport};
use verify::scenario::{self, Scenario};

struct Args {
    cfg: CheckConfig,
    scenario: Option<String>,
    bug: SeededBug,
    baseline: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        cfg: CheckConfig::default(),
        scenario: None,
        bug: SeededBug::None,
        baseline: true,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--depth" => {
                args.cfg.depth = value("--depth")?
                    .parse()
                    .map_err(|e| format!("--depth: {e}"))?
            }
            "--max-faults" => {
                args.cfg.max_faults = value("--max-faults")?
                    .parse()
                    .map_err(|e| format!("--max-faults: {e}"))?
            }
            "--scenario" => args.scenario = Some(value("--scenario")?),
            "--bug" => {
                args.bug = match value("--bug")?.as_str() {
                    "none" => SeededBug::None,
                    "double-release" => SeededBug::DoubleRelease,
                    "double-register" => SeededBug::DoubleRegister,
                    other => return Err(format!("unknown bug {other:?}")),
                }
            }
            "--no-baseline" => args.baseline = false,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn print_report(report: &CheckReport, label: &str) {
    let s = &report.stats;
    println!(
        "  [{label}] runs {} | events {} | distinct states {} | pruned {} | por-skips {} | max decisions {}",
        s.runs, s.steps, s.distinct_states, s.pruned, s.por_skips, s.max_decisions
    );
    if let Some(cx) = &report.counterexample {
        println!(
            "  counterexample ({} fault(s)): {:?}",
            cx.faults(),
            cx.script
        );
        println!("  violation: {}", cx.violation);
        for (i, d) in cx.decisions.iter().enumerate() {
            println!(
                "    decision {i}: {} ({} hops) -> {:?}",
                d.kind, d.hops, d.fate
            );
        }
    }
}

fn run_scenario(s: &Scenario, args: &Args) -> bool {
    println!(
        "scenario {}: depth {}, max faults {}",
        s.name, args.cfg.depth, args.cfg.max_faults
    );
    let reduced = check(s, args.bug, &args.cfg);
    print_report(&reduced, "reduced");
    let mut ok = reduced.ok();
    if let Some(cx) = &reduced.counterexample {
        match cx.replay(s, args.bug) {
            Some(v) if v.rule == cx.violation.rule => {
                println!("  replay: reproduces [{}]", v.rule)
            }
            Some(v) => println!("  replay: reaches different violation [{}]", v.rule),
            None => println!("  replay: does NOT reproduce the violation"),
        }
    }
    if args.baseline {
        let base = check(s, args.bug, &args.cfg.baseline());
        print_report(&base, "baseline");
        if base.ok() != reduced.ok() {
            println!("  MISMATCH: reductions changed the verdict");
            ok = false;
        }
        if reduced.ok() {
            let ratio = base.stats.runs as f64 / reduced.stats.runs.max(1) as f64;
            println!("  reduction: {:.2}x fewer runs than baseline", ratio);
            if ratio < 2.0 {
                println!("  FAIL: reduction below the required 2x");
                ok = false;
            }
        }
    }
    println!();
    ok
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("check: {e}");
            return ExitCode::FAILURE;
        }
    };
    let scenarios = scenario::all();
    let selected: Vec<&Scenario> = match &args.scenario {
        Some(name) => scenarios.iter().filter(|s| s.name == name).collect(),
        None => scenarios.iter().collect(),
    };
    if selected.is_empty() {
        eprintln!(
            "check: no such scenario; available: {}",
            scenarios
                .iter()
                .map(|s| s.name)
                .collect::<Vec<_>>()
                .join(", ")
        );
        return ExitCode::FAILURE;
    }
    let mut all_ok = true;
    for s in selected {
        all_ok &= run_scenario(s, &args);
    }
    if all_ok {
        println!("check: all scenarios clean");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
