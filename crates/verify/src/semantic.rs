//! Model-level semantic rules the substring lint structurally cannot
//! express.
//!
//! * [`rng_substream`] — **RNG-substream discipline.** Closures handed
//!   to the deterministic parallel drivers (`parallel_map`,
//!   `for_each_ordered`) may not consume an RNG they did not derive:
//!   a shared `Rng` captured from the enclosing scope (or living in the
//!   per-worker context) is consumed in *completion order*, which
//!   breaks the byte-identical `--jobs` contract. Deriving a per-unit
//!   keyed substream inside the closure (`stream`, `indexed_stream`,
//!   `substream_seed`, `seed_from_u64`, `from_seed`) is the sanctioned
//!   pattern. Before this rule, the invariant was only enforced after
//!   the fact by the jobs-1-vs-8 integration tests.
//! * [`baseline_parity`] — **baseline-parity.** Every `*_baseline()`
//!   function is the paper-faithful twin of an optimised path and only
//!   stays trustworthy while something *executes* it: the rule requires
//!   each one to be referenced from at least one test or bench target
//!   (equivalence proptest, criterion twin, …), so baselines cannot rot
//!   into dead unverified code.
//!
//! The third semantic rule, the **stale-waiver audit**, lives in the
//! orchestrator ([`crate::lint::run_on`]) because it needs the complete
//! unwaived finding set of every other rule.

use crate::lex::{self, Token, TokenKind};
use crate::lint::Finding;
use crate::model::{matching, Workspace};

/// Rule name for the RNG-substream discipline.
pub const RNG_SUBSTREAM: &str = "rng-substream";

/// Rule name for baseline test/bench parity.
pub const BASELINE_PARITY: &str = "baseline-parity";

/// The deterministic parallel drivers whose closures are policed.
const DRIVERS: [&str; 2] = ["parallel_map", "for_each_ordered"];

/// RNG-consuming methods (rand idiom).
const CONSUME: [&str; 14] = [
    "gen",
    "gen_range",
    "gen_bool",
    "gen_ratio",
    "sample",
    "sample_iter",
    "choose",
    "choose_multiple",
    "shuffle",
    "fill",
    "fill_bytes",
    "next_u32",
    "next_u64",
    "random",
];

/// Sanctioned per-unit substream derivations.
const DERIVE: [&str; 5] = [
    "stream",
    "indexed_stream",
    "substream_seed",
    "seed_from_u64",
    "from_seed",
];

/// Scans every non-test region for parallel-driver calls whose closures
/// consume an RNG without deriving a per-unit substream first.
pub fn rng_substream(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in &ws.files {
        if file.all_test {
            continue;
        }
        let lexed = lex::lex(&file.src);
        let code: Vec<&Token> = lexed
            .tokens
            .iter()
            .filter(|t| !matches!(t.kind, TokenKind::Comment { .. }))
            .collect();
        let limit = file.test_from_line.unwrap_or(usize::MAX);
        let mut k = 0;
        while k < code.len() {
            let t = code[k];
            if t.line >= limit {
                break;
            }
            if matches!(t.kind, TokenKind::Ident)
                && DRIVERS.contains(&lexed.text(t))
                && punct_at(&lexed, &code, k + 1) == b'('
            {
                let close = matching(&code, &lexed, k + 1);
                scan_driver_args(&lexed, &code, k + 2, close, &file.path, &mut findings);
                // Walk *into* the span too: a driver call nested in
                // another driver's closure gets its own pass.
            }
            k += 1;
        }
    }
    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    findings.dedup_by(|a, b| a.path == b.path && a.line == b.line);
    findings
}

/// Finds each closure literal in `[from, until)` and checks it.
fn scan_driver_args(
    lexed: &lex::Lexed<'_>,
    code: &[&Token],
    from: usize,
    until: usize,
    path: &str,
    findings: &mut Vec<Finding>,
) {
    let mut m = from;
    while m < until.min(code.len()) {
        let is_pipe = punct_at(lexed, code, m) == b'|';
        if is_pipe {
            let prev = m
                .checked_sub(1)
                .map(|p| (punct_at(lexed, code, p), lexed.name(code[p])))
                .unwrap_or((b'(', ""));
            let starts_closure = m == from
                || matches!(prev.0, b'(' | b',' | b'{' | b'=' | b';')
                || prev.1 == "move"
                || prev.1 == "return";
            if starts_closure {
                // Parameter list: `||` (empty) or `|…|`.
                let body_start = if punct_at(lexed, code, m + 1) == b'|' {
                    m + 2
                } else {
                    let mut p = m + 1;
                    while p < until {
                        let c = punct_at(lexed, code, p);
                        if c == b'(' || c == b'[' {
                            p = matching(code, lexed, p) + 1;
                            continue;
                        }
                        if c == b'|' {
                            break;
                        }
                        p += 1;
                    }
                    p + 1
                };
                // Body: a block, or one expression up to the `,` at this
                // argument level.
                let body_end = if punct_at(lexed, code, body_start) == b'{' {
                    matching(code, lexed, body_start) + 1
                } else {
                    let mut p = body_start;
                    let mut end = until;
                    while p < until {
                        let c = punct_at(lexed, code, p);
                        if c == b'(' || c == b'[' || c == b'{' {
                            p = matching(code, lexed, p) + 1;
                            continue;
                        }
                        if c == b',' {
                            end = p;
                            break;
                        }
                        p += 1;
                    }
                    end
                };
                check_closure(lexed, code, body_start, body_end.min(until), path, findings);
                m = body_start;
                continue;
            }
        }
        m += 1;
    }
}

/// Flags the first RNG consumption in a closure body that derives no
/// per-unit substream.
fn check_closure(
    lexed: &lex::Lexed<'_>,
    code: &[&Token],
    from: usize,
    until: usize,
    path: &str,
    findings: &mut Vec<Finding>,
) {
    let mut consumption: Option<(usize, &str)> = None;
    let mut derives = false;
    for k in from..until.min(code.len()) {
        let t = code[k];
        if !matches!(t.kind, TokenKind::Ident | TokenKind::RawIdent) {
            continue;
        }
        let name = lexed.name(t);
        if punct_at(lexed, code, k + 1) == b'(' {
            if DERIVE.contains(&name) {
                derives = true;
            }
            if CONSUME.contains(&name)
                && k.checked_sub(1)
                    .is_some_and(|p| punct_at(lexed, code, p) == b'.')
                && consumption.is_none()
            {
                consumption = Some((t.line, name));
            }
        }
    }
    if let Some((line, method)) = consumption {
        if !derives {
            findings.push(Finding {
                rule: RNG_SUBSTREAM,
                path: path.to_string(),
                line,
                excerpt: String::new(),
                detail: vec![format!(
                    "closure passed to a deterministic parallel driver consumes an RNG \
                     (`.{method}(…)`) without deriving a per-unit substream; results would \
                     depend on worker completion order — derive with \
                     drt_sim::rng::indexed_stream(seed, tag, unit_index) inside the closure"
                )],
            });
        }
    }
}

/// Requires every non-test `*_baseline` function to be referenced from
/// test or bench code.
pub fn baseline_parity(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in &ws.fns {
        if f.is_test || !f.name.ends_with("_baseline") {
            continue;
        }
        if !ws.test_idents.contains(&f.name) {
            findings.push(Finding {
                rule: BASELINE_PARITY,
                path: ws.file_of(f).path.clone(),
                line: f.line,
                excerpt: ws.line_text(f.file, f.line).to_string(),
                detail: vec![format!(
                    "`{}` is a paper-faithful baseline but no test or bench references it; \
                     add an equivalence proptest or a criterion twin (or delete the baseline)",
                    f.qual
                )],
            });
        }
    }
    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    findings
}

fn punct_at(lexed: &lex::Lexed<'_>, code: &[&Token], at: usize) -> u8 {
    match code.get(at) {
        Some(t) if t.kind == TokenKind::Punct => lexed.text(t).as_bytes()[0],
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_rng_in_parallel_closure_flagged() {
        let src = "fn sweep(rng: &mut StdRng) {\n    let out = parallel_map(8, cells, || (), |_, cell| {\n        let jitter = rng.gen_range(0..10);\n        run(cell, jitter)\n    });\n}\n";
        let ws = Workspace::from_sources(&[("crates/experiments/src/sweep.rs", src)]);
        let f = rng_substream(&ws);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RNG_SUBSTREAM);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn derived_substream_in_closure_is_clean() {
        let src = "fn sweep(seed: u64) {\n    let out = parallel_map(8, cells, || (), |_, (i, cell)| {\n        let mut rng = drt_sim::rng::indexed_stream(seed, \"cell\", i);\n        run(cell, rng.gen_range(0..10))\n    });\n}\n";
        let ws = Workspace::from_sources(&[("crates/experiments/src/sweep.rs", src)]);
        assert!(rng_substream(&ws).is_empty());
    }

    #[test]
    fn delegating_closure_is_clean() {
        let src = "fn sweep(cfg: &Cfg) {\n    let out = parallel_map(8, cells, || (), |(), cell| run_cell(cfg, cell));\n}\n";
        let ws = Workspace::from_sources(&[("crates/experiments/src/sweep.rs", src)]);
        assert!(rng_substream(&ws).is_empty());
    }

    #[test]
    fn unreferenced_baseline_flagged_referenced_one_clean() {
        let ws = Workspace::from_sources(&[
            (
                "crates/core/src/engine.rs",
                "impl Engine {\n    pub fn fast(&self) {}\n    pub fn slow_baseline(&self) {}\n}\n",
            ),
            (
                "crates/core/tests/props.rs",
                "fn prop() { let _ = engine.other(); }\n",
            ),
        ]);
        let f = baseline_parity(&ws);
        assert_eq!(f.len(), 1);
        assert!(f[0].detail[0].contains("Engine::slow_baseline"));

        let ws = Workspace::from_sources(&[
            (
                "crates/core/src/engine.rs",
                "impl Engine {\n    pub fn slow_baseline(&self) {}\n}\n",
            ),
            (
                "crates/core/tests/props.rs",
                "fn prop() { assert_eq!(engine.fast(), engine.slow_baseline()); }\n",
            ),
        ]);
        assert!(baseline_parity(&ws).is_empty());
    }
}
