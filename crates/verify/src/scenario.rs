//! Scripted workloads for the model checker.
//!
//! A [`Scenario`] is a small, fully deterministic workload on a
//! hand-built topology: a sequence of source-level operations
//! (establish, fail a link, retire backups crossing a link, release),
//! each drained to quiescence before the next begins. All
//! nondeterminism in a run comes from the fate script the checker
//! supplies, so a `(scenario, script)` pair identifies a run exactly.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use drt_core::ConnectionId;
use drt_net::{Bandwidth, LinkId, Network, NetworkBuilder, NodeId, Route};
use drt_proto::{
    ChaosConfig, Fate, FateLog, JournalFault, ProtocolConfig, ProtocolSim, RestartMode,
    RetryConfig, ScriptedFates, SeededBug,
};
use drt_sim::SimDuration;

/// One source-level operation in a scenario script.
#[derive(Debug, Clone)]
pub enum Op {
    /// Establish a connection with a primary route and backup routes,
    /// all given as node paths.
    Establish {
        /// Connection id.
        conn: ConnectionId,
        /// Requested bandwidth.
        bw: Bandwidth,
        /// Primary route as a node path.
        primary: Vec<NodeId>,
        /// Backup routes as node paths.
        backups: Vec<Vec<NodeId>>,
    },
    /// Fail a link (triggers detection, reporting, and failover).
    FailLink {
        /// The link that fails.
        link: LinkId,
    },
    /// Fail several links at the same instant — a correlated burst (an
    /// SRLG cut severing a primary and one of its backups at once), so
    /// their detections, reports, and the resulting recovery walks are
    /// all in flight together instead of draining one failure at a time.
    FailLinks {
        /// The links that fail together.
        links: Vec<LinkId>,
    },
    /// Crash a router permanently: every incident link fails at once and
    /// the *surviving* endpoint of each detects and reports, so one
    /// crash fans several reports for the same connection into its
    /// source while earlier ones are still being acted on.
    CrashNode {
        /// The router that crashes.
        node: NodeId,
    },
    /// A byzantine router fabricates a failure report for a perfectly
    /// healthy link and sends it upstream exactly as an honest detector
    /// would. The lie is an *operation*, not a fate: the adversary acts
    /// at the source level, and the checker then explores every
    /// delivery schedule of the lie and its consequences.
    SpoofReport {
        /// The lying router.
        reporter: NodeId,
        /// The healthy link it claims failed.
        link: LinkId,
    },
    /// Crash a router and restart it after `down_for`. What the restart
    /// recovers follows the scenario's [`Scenario::restart_mode`]:
    /// amnesia loses every channel table and dedup record, journaled
    /// mode replays the write-ahead journal and resyncs with each
    /// neighbour before rejoining.
    RestartRouter {
        /// The router that crashes and restarts.
        node: NodeId,
        /// Outage duration before the restart.
        down_for: SimDuration,
    },
    /// Retire every backup of `conn` crossing `link` — the paper's
    /// resource-reconfiguration step.
    RetireCrossing {
        /// Connection whose backups are retired.
        conn: ConnectionId,
        /// Backups crossing this link are released.
        link: LinkId,
    },
    /// Tear the connection down.
    Release {
        /// Connection to release.
        conn: ConnectionId,
    },
}

/// A deterministic workload: a topology plus a sequence of [`Op`]s.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Human-readable name, used in reports.
    pub name: &'static str,
    /// The topology every run executes on.
    pub net: Arc<Network>,
    /// Operations applied in order, each drained to quiescence.
    pub ops: Vec<Op>,
    /// Lateness applied by [`Fate::Delay`]. The engine's retransmission
    /// timeout is told about it via [`ChaosConfig::max_jitter`].
    pub late_by: SimDuration,
    /// Protocol knobs for every run of this scenario — byzantine
    /// scenarios flip `report_verification` here to check the defended
    /// and undefended engines over the same operation script.
    pub cfg: ProtocolConfig,
    /// What an [`Op::RestartRouter`] restart recovers: amnesia (the
    /// historical model) or journal replay plus neighbour resync.
    pub restart_mode: RestartMode,
    /// Storage corruption injected into the journal at crash time (only
    /// meaningful under [`RestartMode::Journaled`]).
    pub journal_fault: JournalFault,
}

impl Scenario {
    /// Builds the protocol engine for one run of this scenario under
    /// `script`, returning the engine and a handle onto the fate log.
    pub fn spawn(&self, script: Vec<Fate>, bug: SeededBug) -> (ProtocolSim, Rc<RefCell<FateLog>>) {
        let fates = ScriptedFates::new(script, self.late_by);
        let log = fates.log();
        // Probabilistic chaos is off (the script owns every fate); the
        // jitter bound still has to cover scripted lateness so the
        // retransmission timeout never fires before a delayed copy.
        let chaos = ChaosConfig {
            max_jitter: self.late_by,
            restart_mode: self.restart_mode,
            journal_fault: self.journal_fault,
            ..ChaosConfig::default()
        };
        let mut sim = ProtocolSim::with_fates(
            Arc::clone(&self.net),
            self.cfg,
            RetryConfig::default(),
            chaos,
            Box::new(fates),
        );
        sim.seed_bug(bug);
        (sim, log)
    }

    /// Applies one operation to a running engine.
    pub fn apply(&self, sim: &mut ProtocolSim, op: &Op) {
        match op {
            Op::Establish {
                conn,
                bw,
                primary,
                backups,
            } => {
                let primary = route(&self.net, primary);
                let backups = backups.iter().map(|b| route(&self.net, b)).collect();
                sim.establish(*conn, *bw, primary, backups);
            }
            Op::FailLink { link } => sim.fail_link(*link),
            Op::FailLinks { links } => {
                for &l in links {
                    sim.fail_link(l);
                }
            }
            Op::CrashNode { node } => sim.crash_router(*node),
            Op::RestartRouter { node, down_for } => sim.restart_router(*node, *down_for),
            Op::SpoofReport { reporter, link } => sim.spoof_failure_report(*reporter, *link),
            Op::RetireCrossing { conn, link } => {
                sim.retire_backups_crossing(*conn, *link);
            }
            Op::Release { conn } => {
                sim.release(*conn);
            }
        }
    }
}

fn route(net: &Arc<Network>, nodes: &[NodeId]) -> Route {
    Route::from_nodes(net, nodes).expect("scenario route must exist in its own topology")
}

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

/// The smallest scenario with a real failover: primary `0 -> 1`, backup
/// `0 -> 2 -> 1`, then the primary's only link fails. Exercises setup,
/// backup registration, failure detection and reporting, primary
/// release, and channel switching.
pub fn three_node_failover() -> Scenario {
    let cap = Bandwidth::from_mbps(10);
    let mut b = NetworkBuilder::with_nodes(3);
    let l01 = b.add_link(n(0), n(1), cap).expect("0->1");
    b.add_link(n(0), n(2), cap).expect("0->2");
    b.add_link(n(2), n(1), cap).expect("2->1");
    let net = Arc::new(b.build());
    Scenario {
        name: "three-node-failover",
        net,
        ops: vec![
            Op::Establish {
                conn: ConnectionId::new(0),
                bw: Bandwidth::from_kbps(1_000),
                primary: vec![n(0), n(1)],
                backups: vec![vec![n(0), n(2), n(1)]],
            },
            Op::FailLink { link: l01 },
        ],
        late_by: SimDuration::from_millis(2),
        cfg: ProtocolConfig::default(),
        restart_mode: RestartMode::Amnesia,
        journal_fault: JournalFault::None,
    }
}

/// Two backups stacked on a shared first hop (`0 -> 2`), then the
/// backups crossing `2 -> 1` are retired. Only one of the two stacked
/// registrations must be released at the shared hop — the scenario the
/// seeded double-release bug corrupts when a release walk is
/// retransmitted.
pub fn stacked_backup_retire() -> Scenario {
    let cap = Bandwidth::from_mbps(10);
    let mut b = NetworkBuilder::with_nodes(4);
    b.add_link(n(0), n(1), cap).expect("0->1");
    b.add_link(n(0), n(2), cap).expect("0->2");
    let l21 = b.add_link(n(2), n(1), cap).expect("2->1");
    b.add_link(n(2), n(3), cap).expect("2->3");
    b.add_link(n(3), n(1), cap).expect("3->1");
    let net = Arc::new(b.build());
    Scenario {
        name: "stacked-backup-retire",
        net,
        ops: vec![
            Op::Establish {
                conn: ConnectionId::new(0),
                bw: Bandwidth::from_kbps(1_000),
                primary: vec![n(0), n(1)],
                backups: vec![vec![n(0), n(2), n(1)], vec![n(0), n(2), n(3), n(1)]],
            },
            Op::RetireCrossing {
                conn: ConnectionId::new(0),
                link: l21,
            },
        ],
        late_by: SimDuration::from_millis(2),
        cfg: ProtocolConfig::default(),
        restart_mode: RestartMode::Amnesia,
        journal_fault: JournalFault::None,
    }
}

/// A correlated burst severing the primary *and* the first backup in
/// the same instant: primary `0 -> 1`, backups `0 -> 2 -> 1` and
/// `0 -> 3 -> 1`, then `0 -> 1` and `2 -> 1` fail together. The source
/// learns only of the primary's failure (no primary crosses `2 -> 1`),
/// switches onto the dead first backup, loses the activation mid-walk,
/// and must scrub the partial activation — with the second backup
/// already released by the switchover — without corrupting any ledger.
pub fn overlapping_burst_switch() -> Scenario {
    let cap = Bandwidth::from_mbps(10);
    let mut b = NetworkBuilder::with_nodes(4);
    let l01 = b.add_link(n(0), n(1), cap).expect("0->1");
    b.add_link(n(0), n(2), cap).expect("0->2");
    let l21 = b.add_link(n(2), n(1), cap).expect("2->1");
    b.add_link(n(0), n(3), cap).expect("0->3");
    b.add_link(n(3), n(1), cap).expect("3->1");
    let net = Arc::new(b.build());
    Scenario {
        name: "overlapping-burst-switch",
        net,
        ops: vec![
            Op::Establish {
                conn: ConnectionId::new(0),
                bw: Bandwidth::from_kbps(1_000),
                primary: vec![n(0), n(1)],
                backups: vec![vec![n(0), n(2), n(1)], vec![n(0), n(3), n(1)]],
            },
            Op::FailLinks {
                links: vec![l01, l21],
            },
        ],
        late_by: SimDuration::from_millis(2),
        cfg: ProtocolConfig::default(),
        restart_mode: RestartMode::Amnesia,
        journal_fault: JournalFault::None,
    }
}

/// A router crash on the primary path with an intermediate survivor on
/// each side: primary `0 -> 1 -> 2 -> 3`, backup `0 -> 4 -> 5 -> 3`,
/// then router `1` crashes. Both `0` (for `0 -> 1`) and `2` (for
/// `1 -> 2`) detect and report the *same* connection's failure; the
/// source must deduplicate the fan-in, switch exactly once, and absorb
/// the release walk that dies at the crashed router.
pub fn node_crash_fanin() -> Scenario {
    let cap = Bandwidth::from_mbps(10);
    let mut b = NetworkBuilder::with_nodes(6);
    b.add_link(n(0), n(1), cap).expect("0->1");
    b.add_link(n(1), n(2), cap).expect("1->2");
    b.add_link(n(2), n(3), cap).expect("2->3");
    b.add_link(n(0), n(4), cap).expect("0->4");
    b.add_link(n(4), n(5), cap).expect("4->5");
    b.add_link(n(5), n(3), cap).expect("5->3");
    let net = Arc::new(b.build());
    Scenario {
        name: "node-crash-fanin",
        net,
        ops: vec![
            Op::Establish {
                conn: ConnectionId::new(0),
                bw: Bandwidth::from_kbps(1_000),
                primary: vec![n(0), n(1), n(2), n(3)],
                backups: vec![vec![n(0), n(4), n(5), n(3)]],
            },
            Op::CrashNode { node: n(1) },
        ],
        late_by: SimDuration::from_millis(2),
        cfg: ProtocolConfig::default(),
        restart_mode: RestartMode::Amnesia,
        journal_fault: JournalFault::None,
    }
}

/// A byzantine transit router lies about a healthy link: primary
/// `0 -> 1 -> 2`, backup `0 -> 3 -> 2`, and router `1` fabricates a
/// failure report for the live link `1 -> 2`.
///
/// Undefended (`defended = false`), the engine treats the lie like any
/// honest report — the source records it and switches off a healthy
/// primary — which the checker's `phantom-report` invariant (a report
/// recorded for a live link) flags on the *fault-free* root run: the
/// minimal counterexample is the lie itself, no chaos needed. With
/// `report_verification` on, the same script checks clean at the same
/// bounds: the source finds no corroborating link-state evidence,
/// rejects the report, and only the liar's suspicion rises.
pub fn byzantine_false_report(defended: bool) -> Scenario {
    let cap = Bandwidth::from_mbps(10);
    let mut b = NetworkBuilder::with_nodes(4);
    b.add_link(n(0), n(1), cap).expect("0->1");
    let l12 = b.add_link(n(1), n(2), cap).expect("1->2");
    b.add_link(n(0), n(3), cap).expect("0->3");
    b.add_link(n(3), n(2), cap).expect("3->2");
    let net = Arc::new(b.build());
    Scenario {
        name: if defended {
            "byzantine-report-defended"
        } else {
            "byzantine-report-undefended"
        },
        net,
        ops: vec![
            Op::Establish {
                conn: ConnectionId::new(0),
                bw: Bandwidth::from_kbps(1_000),
                primary: vec![n(0), n(1), n(2)],
                backups: vec![vec![n(0), n(3), n(2)]],
            },
            Op::SpoofReport {
                reporter: n(1),
                link: l12,
            },
        ],
        late_by: SimDuration::from_millis(2),
        cfg: ProtocolConfig {
            report_verification: defended,
            ..ProtocolConfig::default()
        },
        restart_mode: RestartMode::Amnesia,
        journal_fault: JournalFault::None,
    }
}

/// A router on the primary path crashes and restarts mid-life: primary
/// `0 -> 1 -> 2`, backup `0 -> 3 -> 2`, then router `1` restarts after a
/// 50 ms outage.
///
/// With `journaled = false` the restarted router comes back with empty
/// channel tables — the connection's primary hop at router `1` is simply
/// gone, and the `rejoin-restores-primaries` invariant is violated on
/// the *fault-free* root run: the minimal counterexample is the restart
/// itself, no chaos needed. With `journaled = true` the router replays
/// its write-ahead journal, resyncs with each neighbour, and the same
/// script checks clean at full depth: every surviving primary hop is
/// back, no spurious switchover fires.
pub fn restart_rejoin(journaled: bool) -> Scenario {
    let cap = Bandwidth::from_mbps(10);
    let mut b = NetworkBuilder::with_nodes(4);
    b.add_link(n(0), n(1), cap).expect("0->1");
    b.add_link(n(1), n(2), cap).expect("1->2");
    b.add_link(n(0), n(3), cap).expect("0->3");
    b.add_link(n(3), n(2), cap).expect("3->2");
    let net = Arc::new(b.build());
    Scenario {
        name: if journaled {
            "restart-rejoin-journaled"
        } else {
            "restart-rejoin-amnesia"
        },
        net,
        ops: vec![
            Op::Establish {
                conn: ConnectionId::new(0),
                bw: Bandwidth::from_kbps(1_000),
                primary: vec![n(0), n(1), n(2)],
                backups: vec![vec![n(0), n(3), n(2)]],
            },
            Op::RestartRouter {
                node: n(1),
                down_for: SimDuration::from_millis(50),
            },
        ],
        late_by: SimDuration::from_millis(2),
        cfg: ProtocolConfig::default(),
        restart_mode: if journaled {
            RestartMode::Journaled
        } else {
            RestartMode::Amnesia
        },
        journal_fault: JournalFault::None,
    }
}

/// The journaled restart of [`restart_rejoin`] with a torn journal
/// tail: the crash truncates the last 64 records, replay detects the
/// corruption, and the router degrades its rejoin (honest
/// crashed-router detection) instead of resyncing on bad state. The
/// degraded rejoin forfeits exact quiescent checks, so the scenario is
/// clean at full depth — the graceful-degradation ladder, checked.
pub fn restart_torn_journal() -> Scenario {
    Scenario {
        name: "restart-torn-journal",
        journal_fault: JournalFault::TornTail(64),
        ..restart_rejoin(true)
    }
}

/// A sybil adversary forges several reporter identities, each staying
/// under the suspicion threshold, to assemble a corroboration quorum
/// for a lie about a healthy link: primary `0 -> 1 -> 2 -> 3`, backup
/// `0 -> 4 -> 5 -> 3`, and spoofed reports for the live link `1 -> 2`
/// arrive claiming to come from routers `0`, `1`, and `2`.
///
/// Undefended (`defended = false`: a raw quorum of 3 with a suspicion
/// threshold of 4), the three forged identities corroborate each other
/// — each stays under the threshold, the quorum overrides verification,
/// and the source switches off a healthy primary: `phantom-report` on
/// the fault-free root run. Defended (threshold 1 with a
/// quarantine-clean quorum), every forged identity is dirty after its
/// own uncorroborated lie, the quorum can never assemble from tainted
/// witnesses, and the same script checks clean.
pub fn byzantine_sybil(defended: bool) -> Scenario {
    let cap = Bandwidth::from_mbps(10);
    let mut b = NetworkBuilder::with_nodes(6);
    b.add_link(n(0), n(1), cap).expect("0->1");
    let l12 = b.add_link(n(1), n(2), cap).expect("1->2");
    b.add_link(n(2), n(3), cap).expect("2->3");
    b.add_link(n(0), n(4), cap).expect("0->4");
    b.add_link(n(4), n(5), cap).expect("4->5");
    b.add_link(n(5), n(3), cap).expect("5->3");
    let net = Arc::new(b.build());
    Scenario {
        name: if defended {
            "byzantine-sybil-defended"
        } else {
            "byzantine-sybil-undefended"
        },
        net,
        ops: vec![
            Op::Establish {
                conn: ConnectionId::new(0),
                bw: Bandwidth::from_kbps(1_000),
                primary: vec![n(0), n(1), n(2), n(3)],
                backups: vec![vec![n(0), n(4), n(5), n(3)]],
            },
            Op::SpoofReport {
                reporter: n(0),
                link: l12,
            },
            Op::SpoofReport {
                reporter: n(1),
                link: l12,
            },
            Op::SpoofReport {
                reporter: n(2),
                link: l12,
            },
        ],
        late_by: SimDuration::from_millis(2),
        cfg: ProtocolConfig {
            report_verification: true,
            suspicion_threshold: if defended { 1 } else { 4 },
            corroboration_quorum: 3,
            quorum_requires_clean: defended,
            ..ProtocolConfig::default()
        },
        restart_mode: RestartMode::Amnesia,
        journal_fault: JournalFault::None,
    }
}

/// Every built-in scenario, in checking order. Only the *defended*
/// byzantine and sybil scenarios and the *journaled* restart scenarios
/// are here: their undefended/amnesia twins violate an invariant by
/// construction (those demonstrations live in the `byzantine` and
/// `restart` integration tests), and `all()` is the set the check
/// binary requires to be clean.
pub fn all() -> Vec<Scenario> {
    vec![
        three_node_failover(),
        stacked_backup_retire(),
        overlapping_burst_switch(),
        node_crash_fanin(),
        byzantine_false_report(true),
        restart_rejoin(true),
        restart_torn_journal(),
        byzantine_sybil(true),
    ]
}
