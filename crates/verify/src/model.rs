//! A lightweight per-workspace code model: functions, impl contexts,
//! call sites, nondeterminism seeds, waivers, and test references.
//!
//! Built on the token stream from [`crate::lex`], this is *not* a full
//! Rust front end — it is exactly the item structure the semantic rules
//! need:
//!
//! * every `fn` (free or in an `impl`), with its file, declaration line,
//!   and whether it lives in test code (a `tests/`, `benches/`, or
//!   `examples/` file, or at/after the first `#[cfg(test)]` of a file);
//! * every *call site* inside a body — `helper(…)`, `path::helper(…)`,
//!   `recv.method(…)` — resolved later by name (an over-approximation:
//!   same-named functions alias, which errs toward reporting; waivers
//!   resolve the rare false positive);
//! * direct *nondeterminism seeds*: `thread_rng`, `from_entropy`,
//!   `Instant::now`, `SystemTime`, and iteration over a local binding or
//!   parameter whose type mentions `HashMap`/`HashSet`;
//! * every `lint:allow(rule)` *waiver* found in a plain (non-doc)
//!   comment, for suppression and for the stale-waiver audit;
//! * the set of identifiers referenced from test code, for the
//!   baseline-parity rule.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::Path;

use crate::lex::{self, Token, TokenKind};

/// The kinds of ambient nondeterminism the taint pass seeds at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedKind {
    /// `thread_rng()` — OS-entropy RNG.
    ThreadRng,
    /// `from_entropy()` — OS-entropy RNG construction.
    FromEntropy,
    /// `Instant::now()` — wall-clock read.
    InstantNow,
    /// Any use of the system wall clock (`std::time`'s non-monotonic
    /// clock type). Named without the full identifier so verify's own
    /// source stays clean under the legacy substring rule.
    SysTime,
    /// Iteration over a `HashMap`/`HashSet` (order is unstable).
    HashIter,
}

impl SeedKind {
    /// Human-readable description used in diagnostics.
    pub fn describe(self) -> &'static str {
        match self {
            SeedKind::ThreadRng => "thread_rng() (OS entropy)",
            SeedKind::FromEntropy => "from_entropy() (OS entropy)",
            SeedKind::InstantNow => "Instant::now() (wall clock)",
            SeedKind::SysTime => "SystemTime (wall clock)",
            SeedKind::HashIter => "HashMap/HashSet iteration (unstable order)",
        }
    }
}

/// A direct nondeterminism source inside one function body.
#[derive(Debug, Clone, Copy)]
pub struct Seed {
    /// What fired.
    pub kind: SeedKind,
    /// 1-based source line.
    pub line: usize,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name (last path segment; `r#` stripped).
    pub name: String,
    /// 1-based source line of the callee token.
    pub line: usize,
    /// `true` for dot-method calls (`recv.name(…)`). A dot-call can
    /// never invoke a free function, so resolution restricts it to
    /// impl-block functions.
    pub method: bool,
    /// Explicit one-segment path qualifier (`Type::name(…)`), if any.
    /// `Self` is resolved to the enclosing impl type during extraction.
    pub qual: Option<String>,
}

/// One function (free or method) extracted from a source file.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// Bare name.
    pub name: String,
    /// Qualified display name: `Type::name` inside an impl, else `name`.
    pub qual: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Whether this function is test-only code.
    pub is_test: bool,
    /// Call sites in the body, in source order.
    pub calls: Vec<CallSite>,
    /// Direct nondeterminism seeds in the body.
    pub seeds: Vec<Seed>,
    /// Token range `[start, end)` of the whole item (signature + body)
    /// in its file's token stream.
    pub tokens: (usize, usize),
}

/// One `lint:allow(rule)` comment.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// 1-based line of the comment.
    pub line: usize,
    /// The rule name inside the parentheses.
    pub rule: String,
}

/// One scanned source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative, forward-slash path.
    pub path: String,
    /// Source text.
    pub src: String,
    /// Whether the whole file is test code (under `tests/`, `benches/`,
    /// `examples/`).
    pub all_test: bool,
    /// First line at/after which code is `#[cfg(test)]`-gated, if any.
    pub test_from_line: Option<usize>,
}

/// The extracted workspace model.
#[derive(Debug)]
pub struct Workspace {
    /// Scanned files (non-test *and* test).
    pub files: Vec<SourceFile>,
    /// Extracted functions across all files.
    pub fns: Vec<FnInfo>,
    /// Function indices by bare name.
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// All waiver comments in non-test code regions.
    pub waivers: Vec<Waiver>,
    /// Identifiers referenced anywhere in test code.
    pub test_idents: BTreeSet<String>,
}

/// Directory names whose files are test-only code (still modelled, for
/// reference tracking, but exempt from the rules themselves).
const TEST_DIRS: [&str; 3] = ["tests", "benches", "examples"];

/// Directories never scanned at all.
const SKIP_DIRS: [&str; 3] = ["vendor", "target", ".git"];

/// Rust keywords and primitive-ish identifiers never treated as callees.
const KEYWORDS: [&str; 40] = [
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "self", "Self", "static", "struct", "super", "trait", "true",
    "type", "unsafe", "use", "where", "while", "yield",
];

impl Workspace {
    /// Builds the model from in-memory `(path, source)` pairs. Paths use
    /// forward slashes and decide test scoping exactly like on-disk ones.
    pub fn from_sources(sources: &[(&str, &str)]) -> Workspace {
        let mut ws = Workspace {
            files: Vec::new(),
            fns: Vec::new(),
            by_name: BTreeMap::new(),
            waivers: Vec::new(),
            test_idents: BTreeSet::new(),
        };
        for (path, src) in sources {
            ws.add_file(path, src);
        }
        ws
    }

    /// Walks `root`'s `crates/` and `src/` trees (skipping `vendor/`,
    /// `target/`, `.git/`) and builds the model from every `.rs` file,
    /// including test files.
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let mut files = Vec::new();
        for top in ["crates", "src"] {
            let dir = root.join(top);
            if dir.is_dir() {
                collect_rs(&dir, &mut files)?;
            }
        }
        let mut ws = Workspace {
            files: Vec::new(),
            fns: Vec::new(),
            by_name: BTreeMap::new(),
            waivers: Vec::new(),
            test_idents: BTreeSet::new(),
        };
        for file in files {
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            let src = fs::read_to_string(&file)?;
            ws.add_file(&rel, &src);
        }
        Ok(ws)
    }

    /// The [`SourceFile`] a function lives in.
    pub fn file_of(&self, f: &FnInfo) -> &SourceFile {
        &self.files[f.file]
    }

    /// The trimmed source line `line` (1-based) of file `file`.
    pub fn line_text(&self, file: usize, line: usize) -> &str {
        self.files[file]
            .src
            .lines()
            .nth(line.saturating_sub(1))
            .unwrap_or("")
            .trim()
    }

    fn add_file(&mut self, path: &str, src: &str) {
        let all_test = path.split('/').any(|seg| TEST_DIRS.contains(&seg));
        let lexed = lex::lex(src);
        let test_from_line = src
            .lines()
            .position(|l| l.trim_start().starts_with("#[cfg(test)]"))
            .map(|idx| idx + 1);
        let file_idx = self.files.len();
        let is_test_line = |line: usize| all_test || test_from_line.is_some_and(|t| line >= t);

        // Waivers: plain comments only — doc comments are prose (they
        // *describe* waivers without granting them).
        for t in &lexed.tokens {
            if let TokenKind::Comment { doc: false } = t.kind {
                if !is_test_line(t.line) {
                    for (rule, rel_line) in waiver_rules(lexed.text(t)) {
                        self.waivers.push(Waiver {
                            file: file_idx,
                            line: t.line + rel_line,
                            rule,
                        });
                    }
                }
            }
        }

        // Code tokens only (comments out), for item parsing.
        let code: Vec<&Token> = lexed
            .tokens
            .iter()
            .filter(|t| !matches!(t.kind, TokenKind::Comment { .. }))
            .collect();

        extract_fns(self, file_idx, &lexed, &code, &is_test_line);

        // Test-referenced identifiers.
        for t in &lexed.tokens {
            if matches!(t.kind, TokenKind::Ident | TokenKind::RawIdent) && is_test_line(t.line) {
                let name = lexed.name(t);
                if !KEYWORDS.contains(&name) {
                    self.test_idents.insert(name.to_string());
                }
            }
        }

        self.files.push(SourceFile {
            path: path.to_string(),
            src: src.to_string(),
            all_test,
            test_from_line,
        });
    }
}

/// Parses every `lint:allow(rule)` occurrence out of a comment's text.
/// Returns `(rule, line offset within the comment)` pairs; a block
/// comment can span lines, so the offset keeps waivers line-accurate.
fn waiver_rules(comment: &str) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for (rel_line, line) in comment.lines().enumerate() {
        let mut rest = line;
        while let Some(at) = rest.find("lint:allow(") {
            rest = &rest[at + "lint:allow(".len()..];
            let end = rest
                .find(|c: char| !(c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'))
                .unwrap_or(rest.len());
            if end > 0 && rest[end..].starts_with(')') {
                out.push((rest[..end].to_string(), rel_line));
            }
            rest = &rest[end..];
        }
    }
    out
}

fn collect_rs(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default();
            if SKIP_DIRS.contains(&name) {
                continue;
            }
            collect_rs(&path, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Finds the index (into `code`) of the token matching the opening
/// delimiter at `open`, honouring nesting of all three bracket kinds.
/// Returns `code.len()` when unterminated.
pub(crate) fn matching(code: &[&Token], lexed: &lex::Lexed<'_>, open: usize) -> usize {
    let mut depth = 0i32;
    for (k, t) in code.iter().enumerate().skip(open) {
        if t.kind == TokenKind::Punct {
            match lexed.text(t).as_bytes()[0] {
                b'(' | b'[' | b'{' => depth += 1,
                b')' | b']' | b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        return k;
                    }
                }
                _ => {}
            }
        }
    }
    code.len()
}

fn punct(lexed: &lex::Lexed<'_>, t: &Token) -> u8 {
    if t.kind == TokenKind::Punct {
        lexed.text(t).as_bytes()[0]
    } else {
        0
    }
}

/// Extracts functions (with calls, seeds, hash bindings) from one file's
/// comment-free token stream.
fn extract_fns(
    ws: &mut Workspace,
    file_idx: usize,
    lexed: &lex::Lexed<'_>,
    code: &[&Token],
    is_test_line: &dyn Fn(usize) -> bool,
) {
    // Pass 1: impl contexts. For each token index, the innermost impl
    // type name (if any), computed with a scan + stack.
    let mut impl_ctx: Vec<Option<String>> = vec![None; code.len()];
    {
        let mut stack: Vec<(usize, Option<String>)> = Vec::new(); // (close idx of `{`, type)
        let mut k = 0;
        while k < code.len() {
            let t = code[k];
            if matches!(t.kind, TokenKind::Ident) && lexed.text(t) == "impl" {
                // Skip generics, collect the implemented type: the path
                // right before `{`/`where` (after `for` when present).
                let mut j = k + 1;
                let mut ty: Option<String> = None;
                let mut depth_angle = 0i32;
                while j < code.len() {
                    let tj = code[j];
                    let p = punct(lexed, tj);
                    if p == b'<' {
                        depth_angle += 1;
                    } else if p == b'>' {
                        depth_angle -= 1;
                    } else if depth_angle == 0 {
                        if matches!(tj.kind, TokenKind::Ident | TokenKind::RawIdent) {
                            match lexed.name(tj) {
                                "for" => ty = None,
                                "where" => {}
                                name if ty.is_none() || punct(lexed, code[j - 1]) == b':' => {
                                    // First segment, or a later `::` one.
                                    ty = Some(name.to_string());
                                }
                                _ => {}
                            }
                        } else if p == b'{' {
                            break;
                        }
                    }
                    j += 1;
                }
                if j < code.len() {
                    let close = matching(code, lexed, j);
                    stack.push((close, ty.clone()));
                    for slot in impl_ctx.iter_mut().take(close.min(code.len())).skip(j) {
                        *slot = ty.clone();
                    }
                    k = j + 1;
                    continue;
                }
            }
            k += 1;
        }
        let _ = stack;
    }

    // Pass 2: functions.
    let mut k = 0;
    while k < code.len() {
        let t = code[k];
        if !(matches!(t.kind, TokenKind::Ident) && lexed.text(t) == "fn") {
            k += 1;
            continue;
        }
        let Some(name_tok) = code.get(k + 1) else {
            break;
        };
        if !matches!(name_tok.kind, TokenKind::Ident | TokenKind::RawIdent) {
            k += 1;
            continue;
        }
        let name = lexed.name(name_tok).to_string();
        // Find the body `{` (or `;` for a bodyless trait/extern decl) at
        // bracket depth 0 relative to the signature.
        let mut j = k + 2;
        let mut body_open = None;
        while j < code.len() {
            let p = punct(lexed, code[j]);
            if p == b'(' || p == b'[' {
                j = matching(code, lexed, j) + 1;
                continue;
            }
            if p == b'{' {
                body_open = Some(j);
                break;
            }
            if p == b';' {
                break;
            }
            j += 1;
        }
        let Some(open) = body_open else {
            k = j + 1;
            continue;
        };
        let close = matching(code, lexed, open);
        let impl_ty = impl_ctx[k].clone();
        let qual = match &impl_ty {
            Some(ty) => format!("{ty}::{name}"),
            None => name.clone(),
        };

        // Hash-typed bindings: parameters first.
        let mut hash_bound: BTreeSet<String> = BTreeSet::new();
        scan_params_for_hash(lexed, code, k + 2, open, &mut hash_bound);

        let mut calls = Vec::new();
        let mut seeds = Vec::new();
        scan_body(
            lexed,
            code,
            open + 1,
            close,
            impl_ty.as_deref(),
            &mut hash_bound,
            &mut calls,
            &mut seeds,
        );

        let fn_idx = ws.fns.len();
        ws.by_name.entry(name.clone()).or_default().push(fn_idx);
        ws.fns.push(FnInfo {
            file: file_idx,
            name,
            qual,
            line: t.line,
            is_test: is_test_line(t.line),
            calls,
            seeds,
            tokens: (k, close.min(code.len())),
        });
        // Continue *inside* the body too: nested fns get their own
        // entries (their calls are then attributed twice — to the outer
        // fn as well — which errs toward reporting; acceptable).
        k += 2;
    }
}

/// Scans a signature's parameter list for parameters whose type mentions
/// `HashMap`/`HashSet`; records their names.
fn scan_params_for_hash(
    lexed: &lex::Lexed<'_>,
    code: &[&Token],
    from: usize,
    until: usize,
    hash_bound: &mut BTreeSet<String>,
) {
    // Find the `(` of the parameter list.
    let mut j = from;
    while j < until && punct(lexed, code[j]) != b'(' {
        j += 1;
    }
    if j >= until {
        return;
    }
    let close = matching(code, lexed, j).min(until);
    let mut k = j + 1;
    while k < close {
        // `name :` at depth 1 begins a parameter.
        if matches!(code[k].kind, TokenKind::Ident | TokenKind::RawIdent)
            && k + 1 < close
            && punct(lexed, code[k + 1]) == b':'
        {
            let pname = lexed.name(code[k]).to_string();
            // Type tokens run to the `,` at this depth (or the `)`).
            let mut m = k + 2;
            let mut mentions_hash = false;
            while m < close {
                let p = punct(lexed, code[m]);
                if p == b'(' || p == b'[' || p == b'{' {
                    m = matching(code, lexed, m) + 1;
                    continue;
                }
                if p == b',' {
                    break;
                }
                if matches!(code[m].kind, TokenKind::Ident)
                    && matches!(lexed.text(code[m]), "HashMap" | "HashSet")
                {
                    mentions_hash = true;
                }
                m += 1;
            }
            if mentions_hash {
                hash_bound.insert(pname);
            }
            k = m + 1;
            continue;
        }
        k += 1;
    }
}

/// Hash-collection methods whose call means *iteration order matters*.
const HASH_ITER_METHODS: [&str; 8] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
];

#[allow(clippy::too_many_arguments)]
fn scan_body(
    lexed: &lex::Lexed<'_>,
    code: &[&Token],
    from: usize,
    until: usize,
    impl_ty: Option<&str>,
    hash_bound: &mut BTreeSet<String>,
    calls: &mut Vec<CallSite>,
    seeds: &mut Vec<Seed>,
) {
    let mut k = from;
    while k < until.min(code.len()) {
        let t = code[k];
        if matches!(t.kind, TokenKind::Ident | TokenKind::RawIdent) {
            let name = lexed.name(t);
            // `let [mut] name (: T)? = init;` — track hash bindings.
            if name == "let" {
                let mut m = k + 1;
                if m < until && lexed.name(code[m]) == "mut" {
                    m += 1;
                }
                if m < until && matches!(code[m].kind, TokenKind::Ident | TokenKind::RawIdent) {
                    let bname = lexed.name(code[m]).to_string();
                    // Scan annotation + initializer to the `;` at depth 0.
                    let mut n = m + 1;
                    let mut mentions_hash = false;
                    while n < until {
                        let p = punct(lexed, code[n]);
                        if p == b'(' || p == b'[' || p == b'{' {
                            n = matching(code, lexed, n) + 1;
                            continue;
                        }
                        if p == b';' {
                            break;
                        }
                        if matches!(code[n].kind, TokenKind::Ident)
                            && matches!(lexed.text(code[n]), "HashMap" | "HashSet")
                        {
                            mentions_hash = true;
                        }
                        n += 1;
                    }
                    if mentions_hash {
                        hash_bound.insert(bname);
                    }
                }
                k += 1;
                continue;
            }
            // Direct seeds.
            match name {
                "thread_rng" => seeds.push(Seed {
                    kind: SeedKind::ThreadRng,
                    line: t.line,
                }),
                "from_entropy" => seeds.push(Seed {
                    kind: SeedKind::FromEntropy,
                    line: t.line,
                }),
                "SystemTime" => seeds.push(Seed {
                    kind: SeedKind::SysTime,
                    line: t.line,
                }),
                "Instant"
                    if punct_at(lexed, code, k + 1) == b':'
                        && punct_at(lexed, code, k + 2) == b':'
                        && code.get(k + 3).is_some_and(|n| lexed.name(n) == "now") =>
                {
                    seeds.push(Seed {
                        kind: SeedKind::InstantNow,
                        line: t.line,
                    });
                }
                _ => {}
            }
            // Hash iteration: `bound.iter()` & friends, or `for … in
            // [&[mut]] bound {`.
            if hash_bound.contains(name)
                && punct_at(lexed, code, k + 1) == b'.'
                && code
                    .get(k + 2)
                    .is_some_and(|m| HASH_ITER_METHODS.contains(&lexed.name(m)))
                && punct_at(lexed, code, k + 3) == b'('
            {
                seeds.push(Seed {
                    kind: SeedKind::HashIter,
                    line: t.line,
                });
            }
            if name == "for" {
                // Header runs to the `{` at depth 0; a bare hash binding
                // inside it is an iteration.
                let mut m = k + 1;
                while m < until {
                    let p = punct(lexed, code[m]);
                    if p == b'(' || p == b'[' {
                        m = matching(code, lexed, m) + 1;
                        continue;
                    }
                    if p == b'{' {
                        break;
                    }
                    if matches!(code[m].kind, TokenKind::Ident | TokenKind::RawIdent)
                        && hash_bound.contains(lexed.name(code[m]))
                        && punct_at(lexed, code, m + 1) != b'.'
                    {
                        seeds.push(Seed {
                            kind: SeedKind::HashIter,
                            line: code[m].line,
                        });
                    }
                    m += 1;
                }
            }
            // Call site: `name (`, not a macro (`name!(`), not a keyword,
            // not the `fn` of a nested declaration (handled separately).
            if !KEYWORDS.contains(&name) && punct_at(lexed, code, k + 1) == b'(' {
                let prev = k.checked_sub(1).map(|p| punct(lexed, code[p])).unwrap_or(0);
                let prev_name = k
                    .checked_sub(1)
                    .map(|p| lexed.name(code[p]))
                    .unwrap_or_default();
                if prev_name != "fn" {
                    // One-segment qualifier, `Self` resolved to the impl
                    // type. (`a::b::name(` keeps only `b`.)
                    let qual = if prev == b':' && k >= 2 && punct(lexed, code[k - 2]) == b':' {
                        k.checked_sub(3)
                            .map(|q| lexed.name(code[q]))
                            .filter(|n| {
                                !n.is_empty()
                                    && n.chars()
                                        .next()
                                        .is_some_and(|c| c.is_alphabetic() || c == '_')
                            })
                            .map(|n| {
                                if n == "Self" {
                                    impl_ty.unwrap_or("Self").to_string()
                                } else {
                                    n.to_string()
                                }
                            })
                    } else {
                        None
                    };
                    calls.push(CallSite {
                        name: name.to_string(),
                        line: t.line,
                        method: prev == b'.',
                        qual,
                    });
                }
            }
        }
        k += 1;
    }
}

fn punct_at(lexed: &lex::Lexed<'_>, code: &[&Token], at: usize) -> u8 {
    code.get(at).map(|t| punct(lexed, t)).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_free_fns_and_methods() {
        let ws = Workspace::from_sources(&[(
            "crates/x/src/lib.rs",
            "fn free() { helper(1); }\nimpl Engine { fn step(&mut self) { self.tick(); free(); } }\n",
        )]);
        let names: Vec<&str> = ws.fns.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(names, ["free", "Engine::step"]);
        let step = &ws.fns[1];
        let callees: Vec<&str> = step.calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(callees, ["tick", "free"]);
    }

    #[test]
    fn seeds_detected_including_instant_path() {
        let ws = Workspace::from_sources(&[(
            "crates/x/src/lib.rs",
            "fn f() { let t = Instant::now(); let r = rand::thread_rng(); }\n",
        )]);
        let kinds: Vec<SeedKind> = ws.fns[0].seeds.iter().map(|s| s.kind).collect();
        assert_eq!(kinds, [SeedKind::InstantNow, SeedKind::ThreadRng]);
    }

    #[test]
    fn hash_iteration_seeds_but_membership_does_not() {
        let iter = "fn f() { let mut m: HashMap<u32, u32> = HashMap::new(); for (k, v) in m.iter() { use_it(k, v); } }\n";
        let ws = Workspace::from_sources(&[("crates/x/src/lib.rs", iter)]);
        assert!(ws.fns[0].seeds.iter().any(|s| s.kind == SeedKind::HashIter));

        let member =
            "fn g(pool: &mut HashSet<LinkId>) { if pool.contains(&x) { pool.remove(&x); } }\n";
        let ws = Workspace::from_sources(&[("crates/x/src/lib.rs", member)]);
        assert!(ws.fns[0].seeds.is_empty());
    }

    #[test]
    fn for_loop_over_hash_binding_seeds() {
        let src = "fn f(seen: &HashSet<u32>) { for x in seen { use_it(x); } }\n";
        let ws = Workspace::from_sources(&[("crates/x/src/lib.rs", src)]);
        assert!(ws.fns[0].seeds.iter().any(|s| s.kind == SeedKind::HashIter));
    }

    #[test]
    fn macros_are_not_calls_but_their_args_are_scanned() {
        let src = "fn f() { println!(\"{}\", helper()); }\n";
        let ws = Workspace::from_sources(&[("crates/x/src/lib.rs", src)]);
        let callees: Vec<&str> = ws.fns[0].calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(callees, ["helper"]);
    }

    #[test]
    fn cfg_test_region_marks_fns_and_collects_refs() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() { prod_baseline(); }\n}\n";
        let ws = Workspace::from_sources(&[("crates/x/src/lib.rs", src)]);
        assert!(!ws.fns[0].is_test);
        assert!(ws.fns[1].is_test);
        assert!(ws.test_idents.contains("prod_baseline"));
    }

    #[test]
    fn waivers_collected_from_plain_comments_only() {
        let src = "//! doc mentions lint:allow(nondet) in prose\nfn f() {} // lint:allow(float-eq) — why\n";
        let ws = Workspace::from_sources(&[("crates/x/src/lib.rs", src)]);
        assert_eq!(ws.waivers.len(), 1);
        assert_eq!(ws.waivers[0].rule, "float-eq");
        assert_eq!(ws.waivers[0].line, 2);
    }
}
