//! Source-level determinism and safety lint.
//!
//! A deliberately small, dependency-free pass over the workspace's
//! non-test Rust sources. It is not a parser: each file is reduced to a
//! *code view* — comments, string literals, and char literals blanked
//! out, line structure preserved — and rules are plain substring (or,
//! for float equality, token-shape) checks against that view. That is
//! enough to enforce repo-wide hygiene rules that `clippy` has no lints
//! for, without pulling a syntax tree into the build:
//!
//! | rule | scope | forbids |
//! |------|-------|---------|
//! | `nondet` | everywhere but the seeded-RNG module | `thread_rng`, `from_entropy`, `Instant::now`, `SystemTime` — ambient nondeterminism that breaks run reproducibility |
//! | `hash-collections` | routing + protocol crates | `HashMap`, `HashSet` — iteration order varies across runs and platforms |
//! | `proto-panics` | protocol crate | `.unwrap()`, `.expect(` — message handlers must degrade, not crash the router |
//! | `raw-fail-link` | experiments crate | `.fail_link(` — experiments inject failures through the recovery-orchestrator seam ([`drt_core`]'s `FailureEvent` / `inject_event`), so retries, flap damping, and orphan accounting stay consistent across regimes |
//! | `raw-spoof` | experiments crate minus the adversarial module | `.inject_false_report(`, `.spoof_failure_report(` — byzantine lies belong to the adversarial sweep, where both arms share workload substreams and every lie is counted in telemetry; a stray spoof elsewhere silently skews an honest-regime table |
//! | `spf-alloc` | SPF-threaded algo files | `BinaryHeap::new`, `vec![None;`, `vec![false;` — hot search paths must reuse the generation-stamped `SpfWorkspace` instead of allocating per call |
//! | `probe-alloc` | failure-analysis files | `.collect()`, `Vec::with_capacity` — the per-probe loop must reuse the generation-stamped `ProbeWorkspace`; one-shot setup/report code waives |
//! | `float-eq` | whole workspace | `==` / `!=` against a float literal — bandwidth accounting must not rely on exact float equality |
//!
//! Test code is exempt: `tests/`, `benches/`, `examples/` directories
//! are skipped, and within a source file everything from the first
//! `#[cfg(test)]` line onward is ignored. A justified exception is
//! waived in place with a `lint:allow(rule-name)` comment on the
//! offending line or on the line directly above it.

use std::fs;
use std::io;
use std::path::Path;

/// One lint rule: substring patterns searched in the code view of every
/// in-scope file.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Rule name, as used by `lint:allow(...)` waivers.
    pub name: &'static str,
    /// One-line rationale, shown in reports.
    pub why: &'static str,
    /// Substrings that trigger the rule.
    pub patterns: &'static [&'static str],
    /// Whether the rule applies to a (forward-slash, workspace-relative)
    /// path.
    pub in_scope: fn(&str) -> bool,
}

fn scope_nondet(path: &str) -> bool {
    !path.ends_with("crates/sim/src/rng.rs")
}

fn scope_hash(path: &str) -> bool {
    path.contains("crates/core/src/routing") || path.contains("crates/proto/src")
}

fn scope_proto(path: &str) -> bool {
    path.contains("crates/proto/src")
}

fn scope_experiments(path: &str) -> bool {
    path.contains("crates/experiments/src")
}

fn scope_honest_experiments(path: &str) -> bool {
    // The adversarial sweep is the one sanctioned consumer of the
    // byzantine seams; every other experiment driver is honest.
    scope_experiments(path) && !path.ends_with("adversarial.rs")
}

fn scope_spf(path: &str) -> bool {
    // The files `SpfWorkspace` is threaded through; cold paths waive.
    path.ends_with("crates/net/src/algo/dijkstra.rs")
        || path.ends_with("crates/net/src/algo/disjoint.rs")
        || path.ends_with("crates/net/src/algo/yen.rs")
}

fn scope_probe(path: &str) -> bool {
    // The files `ProbeWorkspace` is threaded through; setup and report
    // code (unit enumeration, destructive injection, rankings) waives.
    path.ends_with("crates/core/src/failure.rs") || path.ends_with("crates/core/src/analysis.rs")
}

/// The rule table. `float-eq` is additionally special-cased in
/// [`scan_source`] (it is a token-shape check, not a substring).
pub const RULES: [Rule; 7] = [
    Rule {
        name: "nondet",
        why: "ambient randomness / wall-clock reads break reproducibility; \
              use the seeded streams in drt-sim's rng module",
        patterns: &["thread_rng", "from_entropy", "Instant::now", "SystemTime"],
        in_scope: scope_nondet,
    },
    Rule {
        name: "hash-collections",
        why: "HashMap/HashSet iteration order is unstable across runs; \
              routing and protocol state must iterate deterministically",
        patterns: &["HashMap", "HashSet"],
        in_scope: scope_hash,
    },
    Rule {
        name: "proto-panics",
        why: "protocol message handlers must degrade gracefully on \
              unexpected input, not panic the router",
        patterns: &[".unwrap()", ".expect("],
        in_scope: scope_proto,
    },
    Rule {
        name: "raw-fail-link",
        why: "experiments must inject failures through the recovery \
              orchestrator seam (FailureEvent / inject_event), not raw \
              fail_link calls, so retries, flap damping, and orphan \
              accounting stay consistent across failure regimes",
        patterns: &[".fail_link("],
        in_scope: scope_experiments,
    },
    Rule {
        name: "raw-spoof",
        why: "byzantine lies belong to the adversarial sweep, whose arms \
              share workload substreams and count every lie in telemetry; \
              spoofing from an honest experiment driver skews its tables \
              without leaving a trace in the instrumentation",
        patterns: &[".inject_false_report(", ".spoof_failure_report("],
        in_scope: scope_honest_experiments,
    },
    Rule {
        name: "spf-alloc",
        why: "SPF hot paths must reuse the generation-stamped SpfWorkspace \
              (one heap + stamped arrays per thread) instead of allocating \
              per search; cold paths waive with a justification",
        patterns: &["BinaryHeap::new", "vec![None;", "vec![false;"],
        in_scope: scope_spf,
    },
    Rule {
        name: "probe-alloc",
        why: "failure-probe hot paths must reuse the generation-stamped \
              ProbeWorkspace (stamped pools + scratch sets per thread) \
              instead of collecting per probe; one-shot setup and report \
              code waives with a justification",
        patterns: &[".collect()", "Vec::with_capacity"],
        in_scope: scope_probe,
    },
];

/// Name of the float-equality rule (token-shape check).
pub const FLOAT_EQ: &str = "float-eq";

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule that fired.
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.excerpt
        )
    }
}

/// Reduces Rust source to a code view: comments (line and nested
/// block), string literals (plain and raw), and char literals are
/// replaced by spaces; everything else — including newlines — is kept,
/// so byte offsets and line numbers survive.
pub fn code_view(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        // Line comment.
        if c == b'/' && b.get(i + 1) == Some(&b'/') {
            while i < b.len() && b[i] != b'\n' {
                out.push(b' ');
                i += 1;
            }
            continue;
        }
        // Nested block comment.
        if c == b'/' && b.get(i + 1) == Some(&b'*') {
            let mut depth = 0usize;
            while i < b.len() {
                if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    out.extend_from_slice(b"  ");
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            continue;
        }
        // Raw string literal: r"..." / r#"..."# (optionally b-prefixed).
        // A preceding identifier character means this `r` is the tail of
        // a name, not a literal prefix.
        let ident_tail = i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_');
        if !ident_tail && (c == b'r' || (c == b'b' && b.get(i + 1) == Some(&b'r'))) {
            let start = if c == b'b' { i + 2 } else { i + 1 };
            let mut hashes = 0;
            let mut j = start;
            while b.get(j) == Some(&b'#') {
                hashes += 1;
                j += 1;
            }
            if b.get(j) == Some(&b'"') {
                // Emit the prefix verbatim, blank the body.
                out.extend_from_slice(&b[i..=j]);
                j += 1;
                loop {
                    match b.get(j) {
                        None => break,
                        Some(&b'"')
                            if b[j + 1..].len() >= hashes
                                && b[j + 1..].iter().take(hashes).all(|&h| h == b'#') =>
                        {
                            out.push(b'"');
                            out.resize(out.len() + hashes, b'#');
                            j += 1 + hashes;
                            break;
                        }
                        Some(&ch) => {
                            out.push(if ch == b'\n' { b'\n' } else { b' ' });
                            j += 1;
                        }
                    }
                }
                i = j;
                continue;
            }
        }
        // Plain string literal.
        if c == b'"' {
            out.push(b'"');
            i += 1;
            while i < b.len() {
                match b[i] {
                    b'\\' => {
                        out.extend_from_slice(b"  ");
                        i += 2;
                    }
                    b'"' => {
                        out.push(b'"');
                        i += 1;
                        break;
                    }
                    b'\n' => {
                        out.push(b'\n');
                        i += 1;
                    }
                    _ => {
                        out.push(b' ');
                        i += 1;
                    }
                }
            }
            continue;
        }
        // Char literal vs lifetime: a quote closing within a couple of
        // tokens is a char literal; otherwise it is a lifetime, kept.
        if c == b'\'' {
            let is_char = match b.get(i + 1) {
                Some(&b'\\') => true,
                Some(_) => b.get(i + 2) == Some(&b'\''),
                None => false,
            };
            if is_char {
                out.push(b'\'');
                i += 1;
                if b.get(i) == Some(&b'\\') {
                    out.extend_from_slice(b"  ");
                    i += 2;
                }
                while i < b.len() && b[i] != b'\'' {
                    out.push(b' ');
                    i += 1;
                }
                if i < b.len() {
                    out.push(b'\'');
                    i += 1;
                }
                continue;
            }
        }
        out.push(c);
        i += 1;
    }
    // The view is built byte-wise from ASCII replacements of a valid
    // UTF-8 source, so it is itself valid UTF-8.
    String::from_utf8_lossy(&out).into_owned()
}

/// `true` when `tok` is shaped like a float literal (`0.0`, `1.5f64`):
/// starts with a digit and contains a dot. Dotted paths and tuple-index
/// chains (`self.x`, `t.0`) start with a letter, so they do not match.
fn is_float_literal(tok: &str) -> bool {
    tok.starts_with(|c: char| c.is_ascii_digit()) && tok.contains('.')
}

fn token_before(line: &str, at: usize) -> &str {
    let head = line[..at].trim_end();
    let start = head
        .rfind(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == '.'))
        .map(|p| p + 1)
        .unwrap_or(0);
    &head[start..]
}

fn token_after(line: &str, at: usize) -> &str {
    let tail = line[at..].trim_start_matches(['=', '!']).trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '-'))
        .unwrap_or(tail.len());
    tail[..end].trim_start_matches('-')
}

/// Lints one file's source text. `path` is the workspace-relative,
/// forward-slash path used for rule scoping and waiver reporting.
pub fn scan_source(path: &str, src: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let view = code_view(src);
    let raw_lines: Vec<&str> = src.lines().collect();
    for (idx, line) in view.lines().enumerate() {
        let raw = raw_lines.get(idx).copied().unwrap_or("");
        // Everything from the first test module onward is test code.
        if raw.trim_start().starts_with("#[cfg(test)]") {
            break;
        }
        let lineno = idx + 1;
        // A waiver comment counts on the offending line or on the line
        // directly above it (rustfmt may move a trailing comment up).
        let waived = |rule: &str| {
            let tag = format!("lint:allow({rule})");
            raw.contains(&tag)
                || (idx > 0
                    && raw_lines
                        .get(idx - 1)
                        .is_some_and(|prev| prev.contains(&tag)))
        };
        for rule in &RULES {
            if !(rule.in_scope)(path) {
                continue;
            }
            if waived(rule.name) {
                continue;
            }
            if rule.patterns.iter().any(|p| line.contains(p)) {
                findings.push(Finding {
                    rule: rule.name,
                    path: path.to_string(),
                    line: lineno,
                    excerpt: raw.trim().to_string(),
                });
            }
        }
        // float-eq: token-shape check around every ==/!= operator.
        if !waived(FLOAT_EQ) {
            let mut from = 0;
            while let Some(rel) = line[from..].find(['=', '!']) {
                let at = from + rel;
                from = at + 1;
                let op = &line[at..];
                if !(op.starts_with("==") || op.starts_with("!=")) {
                    continue;
                }
                // Skip `<=`, `>=`, `!=` already handled; guard `===`
                // cannot occur in Rust. Check both operand shapes.
                if at > 0 && matches!(line.as_bytes()[at - 1], b'<' | b'>' | b'=' | b'!') {
                    continue;
                }
                if is_float_literal(token_before(line, at))
                    || is_float_literal(token_after(line, at))
                {
                    findings.push(Finding {
                        rule: FLOAT_EQ,
                        path: path.to_string(),
                        line: lineno,
                        excerpt: raw.trim().to_string(),
                    });
                    // One finding per line is enough.
                    break;
                }
            }
        }
    }
    findings
}

/// Directories never scanned (generated, vendored, or test-only code).
const SKIP_DIRS: [&str; 6] = ["vendor", "target", "tests", "benches", "examples", ".git"];

fn collect_rs(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default();
            if SKIP_DIRS.contains(&name) {
                continue;
            }
            collect_rs(&path, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every non-test `.rs` file under `root`'s `crates/` and `src/`
/// trees. Findings are sorted by path and line.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    for top in ["crates", "src"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    let mut findings = Vec::new();
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = fs::read_to_string(file)?;
        findings.extend(scan_source(&rel, &src));
    }
    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(findings)
}

/// Number of files [`scan_workspace`] would lint under `root`.
pub fn count_files(root: &Path) -> io::Result<usize> {
    let mut files = Vec::new();
    for top in ["crates", "src"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    Ok(files.len())
}
