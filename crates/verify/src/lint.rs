//! Source-level determinism and safety lint: legacy substring rules,
//! the semantic passes, and the orchestrator that runs them all.
//!
//! The legacy rules are plain substring (or, for float equality,
//! token-shape) checks against each file's *code view* — the
//! lexer-derived rendering with comments, string bodies, and char
//! bodies blanked out ([`crate::lex::code_view`]). They enforce
//! repo-wide hygiene `clippy` has no lints for:
//!
//! | rule | scope | forbids |
//! |------|-------|---------|
//! | `nondet` | everywhere but the seeded-RNG module | `thread_rng`, `from_entropy`, `Instant::now`, `SystemTime` — ambient nondeterminism that breaks run reproducibility |
//! | `hash-collections` | routing + protocol crates | `HashMap`, `HashSet` — iteration order varies across runs and platforms |
//! | `proto-panics` | protocol crate | `.unwrap()`, `.expect(` — message handlers must degrade, not crash the router |
//! | `raw-fail-link` | experiments crate | `.fail_link(` — experiments inject failures through the recovery-orchestrator seam ([`drt_core`]'s `FailureEvent` / `inject_event`), so retries, flap damping, and orphan accounting stay consistent across regimes |
//! | `raw-spoof` | experiments crate minus the adversarial module | `.inject_false_report(`, `.spoof_failure_report(` — byzantine lies belong to the adversarial sweep, where both arms share workload substreams and every lie is counted in telemetry; a stray spoof elsewhere silently skews an honest-regime table |
//! | `journal-choke` | protocol crate minus `journal.rs` / `router.rs` | raw router-mutator calls (`.gate_walk(`, `.reserve_primary(`, …) — every state mutation must go through the `Journals` choke point so the write-ahead journal records it before it acts; a bypassed mutation silently breaks crash recovery |
//! | `spf-alloc` | SPF-threaded algo files | `BinaryHeap::new`, `vec![None;`, `vec![false;` — hot search paths must reuse the generation-stamped `SpfWorkspace` instead of allocating per call |
//! | `spf-cache` | core crate minus `route_cache.rs` | raw `.route_cache.` field access — every mutation of the backup-candidate cache and its masks must go through the `route_cache.rs` choke wrappers (`note_*`, `take_cached_backup`, `remember_candidate`) so delta-invalidation can never be skipped at a call site |
//! | `probe-alloc` | failure-analysis files | `.collect()`, `Vec::with_capacity` — the per-probe loop must reuse the generation-stamped `ProbeWorkspace`; one-shot setup/report code waives |
//! | `float-eq` | whole workspace | `==` / `!=` against a float literal — bandwidth accounting must not rely on exact float equality |
//!
//! On top of them, [`run_on`] adds the call-graph passes:
//!
//! | rule | engine | reports |
//! |------|--------|---------|
//! | `nondet-taint` | [`crate::taint`] | a routing/protocol/experiment function that *indirectly* reaches an ambient nondeterminism source, with the full call chain |
//! | `rng-substream` | [`crate::semantic`] | a parallel-driver closure consuming an RNG it did not derive per unit |
//! | `baseline-parity` | [`crate::semantic`] | a `*_baseline` function no test or bench references |
//! | `stale-waiver` | [`run_on`] | a `lint:allow(…)` comment that suppresses nothing (or names an unknown rule) |
//!
//! Test code is exempt from every rule except waiver collection:
//! `tests/`, `benches/`, `examples/` directories, and everything from
//! the first `#[cfg(test)]` line of a file onward. A justified
//! exception is waived in place with a `lint:allow(rule-name)` comment
//! — in a plain `//` comment (doc comments are prose, not grants) on
//! the offending line or the line directly above it, followed by a
//! one-line rationale. The stale-waiver audit keeps the waiver set
//! honest: a waiver that stops suppressing anything becomes an error
//! itself.

use std::io;
use std::path::Path;

use crate::model::Workspace;
use crate::{semantic, taint};

pub use crate::lex::code_view;

/// One legacy lint rule: substring patterns searched in the code view
/// of every in-scope file.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Rule name, as used by `lint:allow(...)` waivers.
    pub name: &'static str,
    /// One-line rationale, shown in reports.
    pub why: &'static str,
    /// Substrings that trigger the rule.
    pub patterns: &'static [&'static str],
    /// Whether the rule applies to a (forward-slash, workspace-relative)
    /// path.
    pub in_scope: fn(&str) -> bool,
}

fn scope_nondet(path: &str) -> bool {
    !path.ends_with("crates/sim/src/rng.rs")
}

fn scope_hash(path: &str) -> bool {
    path.contains("crates/core/src/routing") || path.contains("crates/proto/src")
}

fn scope_proto(path: &str) -> bool {
    path.contains("crates/proto/src")
}

fn scope_experiments(path: &str) -> bool {
    path.contains("crates/experiments/src")
}

fn scope_honest_experiments(path: &str) -> bool {
    // The adversarial sweep is the one sanctioned consumer of the
    // byzantine seams; every other experiment driver is honest.
    scope_experiments(path) && !path.ends_with("adversarial.rs")
}

fn scope_journal_choke(path: &str) -> bool {
    // `journal.rs` *is* the choke point (append-before-act wrappers and
    // replay both dispatch the raw mutators); `router.rs` owns the
    // mutators and may compose them internally. Everything else in the
    // protocol crate — the engine above all — must go through `Journals`.
    path.contains("crates/proto/src")
        && !path.ends_with("journal.rs")
        && !path.ends_with("router.rs")
}

fn scope_spf(path: &str) -> bool {
    // The files `SpfWorkspace` is threaded through (plus the dynamic
    // SPT, whose repair path is equally hot); cold paths waive.
    path.ends_with("crates/net/src/algo/dijkstra.rs")
        || path.ends_with("crates/net/src/algo/disjoint.rs")
        || path.ends_with("crates/net/src/algo/yen.rs")
        || path.ends_with("crates/net/src/algo/dynamic_spt.rs")
}

fn scope_spf_cache(path: &str) -> bool {
    // `route_cache.rs` *is* the choke point: every candidate-cache and
    // mask mutation lives there, next to the audit that checks them.
    // The rest of the core crate goes through the note_*/take_*
    // wrappers so invalidation can never be forgotten at a call site.
    path.contains("crates/core/src") && !path.ends_with("route_cache.rs")
}

fn scope_probe(path: &str) -> bool {
    // The files `ProbeWorkspace` is threaded through; setup and report
    // code (unit enumeration, destructive injection, rankings) waives.
    path.ends_with("crates/core/src/failure.rs") || path.ends_with("crates/core/src/analysis.rs")
}

/// The legacy rule table. `float-eq` is additionally special-cased in
/// [`scan_source`] (it is a token-shape check, not a substring).
pub const RULES: [Rule; 9] = [
    Rule {
        name: "nondet",
        why: "ambient randomness / wall-clock reads break reproducibility; \
              use the seeded streams in drt-sim's rng module",
        patterns: &["thread_rng", "from_entropy", "Instant::now", "SystemTime"],
        in_scope: scope_nondet,
    },
    Rule {
        name: "hash-collections",
        why: "HashMap/HashSet iteration order is unstable across runs; \
              routing and protocol state must iterate deterministically",
        patterns: &["HashMap", "HashSet"],
        in_scope: scope_hash,
    },
    Rule {
        name: "proto-panics",
        why: "protocol message handlers must degrade gracefully on \
              unexpected input, not panic the router",
        patterns: &[".unwrap()", ".expect("],
        in_scope: scope_proto,
    },
    Rule {
        name: "raw-fail-link",
        why: "experiments must inject failures through the recovery \
              orchestrator seam (FailureEvent / inject_event), not raw \
              fail_link calls, so retries, flap damping, and orphan \
              accounting stay consistent across failure regimes",
        patterns: &[".fail_link("],
        in_scope: scope_experiments,
    },
    Rule {
        name: "raw-spoof",
        why: "byzantine lies belong to the adversarial sweep, whose arms \
              share workload substreams and count every lie in telemetry; \
              spoofing from an honest experiment driver skews its tables \
              without leaving a trace in the instrumentation",
        patterns: &[".inject_false_report(", ".spoof_failure_report("],
        in_scope: scope_honest_experiments,
    },
    Rule {
        name: "journal-choke",
        why: "router state mutations must go through the Journals choke \
              point so the write-ahead journal records them before they \
              act; a raw mutator call bypasses the journal and the \
              replayed router silently diverges from the live one after \
              a crash",
        patterns: &[
            ".gate_walk(",
            ".mark_applied(",
            ".poison_walk(",
            ".revoke_walk(",
            ".reserve_primary(",
            ".release_primary(",
            ".register_backup(",
            ".unregister_backup(",
            ".activate_backup(",
        ],
        in_scope: scope_journal_choke,
    },
    Rule {
        name: "spf-alloc",
        why: "SPF hot paths must reuse the generation-stamped SpfWorkspace \
              (one heap + stamped arrays per thread) instead of allocating \
              per search; cold paths waive with a justification",
        patterns: &["BinaryHeap::new", "vec![None;", "vec![false;"],
        in_scope: scope_spf,
    },
    Rule {
        name: "spf-cache",
        why: "the backup-candidate route cache is delta-invalidated: its \
              masks and candidate lists are only correct if every mutation \
              funnels through the route_cache.rs choke point (note_* / \
              take_cached_backup / remember_candidate), where the audit \
              can cross-check them; a raw field access elsewhere can \
              install a stale route after the links under it failed",
        patterns: &[".route_cache."],
        in_scope: scope_spf_cache,
    },
    Rule {
        name: "probe-alloc",
        why: "failure-probe hot paths must reuse the generation-stamped \
              ProbeWorkspace (stamped pools + scratch sets per thread) \
              instead of collecting per probe; one-shot setup and report \
              code waives with a justification",
        patterns: &[".collect()", "Vec::with_capacity"],
        in_scope: scope_probe,
    },
];

/// Name of the float-equality rule (token-shape check).
pub const FLOAT_EQ: &str = "float-eq";

/// Name of the stale-waiver audit rule.
pub const STALE_WAIVER: &str = "stale-waiver";

/// Every rule name the engine knows (legacy + semantic). A waiver
/// naming anything else is itself a `stale-waiver` finding.
pub fn known_rules() -> Vec<&'static str> {
    let mut names: Vec<&'static str> = RULES.iter().map(|r| r.name).collect();
    names.extend([
        FLOAT_EQ,
        taint::RULE,
        semantic::RNG_SUBSTREAM,
        semantic::BASELINE_PARITY,
        STALE_WAIVER,
    ]);
    names
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule that fired.
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub excerpt: String,
    /// Extra diagnostic lines: the source→sink call chain for taint
    /// findings, the rationale for semantic findings. Empty for legacy
    /// substring findings.
    pub detail: Vec<String>,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.excerpt
        )
    }
}

/// The result of a full engine run.
#[derive(Debug)]
pub struct Report {
    /// Number of files modelled (test files included).
    pub files: usize,
    /// Surviving findings (waivers applied), sorted by path and line.
    pub findings: Vec<Finding>,
}

/// `true` when `tok` is shaped like a float literal (`0.0`, `1.5f64`):
/// starts with a digit and contains a dot. Dotted paths and tuple-index
/// chains (`self.x`, `t.0`) start with a letter, so they do not match.
fn is_float_literal(tok: &str) -> bool {
    tok.starts_with(|c: char| c.is_ascii_digit()) && tok.contains('.')
}

fn token_before(line: &str, at: usize) -> &str {
    let head = line[..at].trim_end();
    let start = head
        .rfind(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == '.'))
        .map(|p| p + 1)
        .unwrap_or(0);
    &head[start..]
}

fn token_after(line: &str, at: usize) -> &str {
    let tail = line[at..].trim_start_matches(['=', '!']).trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '-'))
        .unwrap_or(tail.len());
    tail[..end].trim_start_matches('-')
}

/// Lints one file's source text with the legacy rules, *ignoring*
/// waivers. `path` is the workspace-relative, forward-slash path used
/// for rule scoping.
pub fn scan_source_raw(path: &str, src: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let view = code_view(src);
    let raw_lines: Vec<&str> = src.lines().collect();
    for (idx, line) in view.lines().enumerate() {
        let raw = raw_lines.get(idx).copied().unwrap_or("");
        // Everything from the first test module onward is test code.
        if raw.trim_start().starts_with("#[cfg(test)]") {
            break;
        }
        let lineno = idx + 1;
        for rule in &RULES {
            if !(rule.in_scope)(path) {
                continue;
            }
            if rule.patterns.iter().any(|p| line.contains(p)) {
                findings.push(Finding {
                    rule: rule.name,
                    path: path.to_string(),
                    line: lineno,
                    excerpt: raw.trim().to_string(),
                    detail: Vec::new(),
                });
            }
        }
        // float-eq: token-shape check around every ==/!= operator.
        let mut from = 0;
        while let Some(rel) = line[from..].find(['=', '!']) {
            let at = from + rel;
            from = at + 1;
            let op = &line[at..];
            if !(op.starts_with("==") || op.starts_with("!=")) {
                continue;
            }
            // Skip `<=`, `>=`, `!=` already handled; `===` cannot occur
            // in Rust. Check both operand shapes.
            if at > 0 && matches!(line.as_bytes()[at - 1], b'<' | b'>' | b'=' | b'!') {
                continue;
            }
            if is_float_literal(token_before(line, at)) || is_float_literal(token_after(line, at)) {
                findings.push(Finding {
                    rule: FLOAT_EQ,
                    path: path.to_string(),
                    line: lineno,
                    excerpt: raw.trim().to_string(),
                    detail: Vec::new(),
                });
                // One finding per line is enough.
                break;
            }
        }
    }
    findings
}

/// Lints one file's source text with the legacy rules, applying the
/// file's own waivers (the single-file convenience used by fixture
/// tests; the workspace run goes through [`run_on`] so waiver usage can
/// be audited).
pub fn scan_source(path: &str, src: &str) -> Vec<Finding> {
    let ws = Workspace::from_sources(&[(path, src)]);
    let raw = scan_source_raw(path, src);
    apply_waivers(raw, &ws).0
}

/// Applies every waiver in `ws` to `findings`. Returns the surviving
/// findings and, for each waiver index, whether it suppressed anything.
fn apply_waivers(findings: Vec<Finding>, ws: &Workspace) -> (Vec<Finding>, Vec<bool>) {
    let mut used = vec![false; ws.waivers.len()];
    let kept = findings
        .into_iter()
        .filter(|f| {
            let mut suppressed = false;
            for (wi, w) in ws.waivers.iter().enumerate() {
                // A waiver counts on the offending line or the line
                // directly above it (rustfmt may move a trailing comment
                // up).
                if w.rule == f.rule
                    && ws.files[w.file].path == f.path
                    && (w.line == f.line || w.line + 1 == f.line)
                {
                    used[wi] = true;
                    suppressed = true;
                }
            }
            !suppressed
        })
        .collect();
    (kept, used)
}

/// Runs the full engine — legacy rules, taint, semantic rules, waiver
/// application, stale-waiver audit — on an already-built model.
pub fn run_on(ws: &Workspace) -> Report {
    let mut raw = Vec::new();
    for file in &ws.files {
        if !file.all_test {
            raw.extend(scan_source_raw(&file.path, &file.src));
        }
    }
    let taint_result = taint::scan(ws);
    raw.extend(taint_result.findings);
    raw.extend(semantic::rng_substream(ws));
    raw.extend(semantic::baseline_parity(ws));
    // Excerpts for findings produced without file access in hand.
    for f in &mut raw {
        if f.excerpt.is_empty() {
            if let Some(fi) = ws.files.iter().position(|s| s.path == f.path) {
                f.excerpt = ws.line_text(fi, f.line).to_string();
            }
        }
    }

    let (mut findings, used) = apply_waivers(raw, ws);

    // Stale-waiver audit: every waiver must either have suppressed a
    // finding or have neutralised a taint seed; and must name a rule
    // the engine knows.
    let known = known_rules();
    for (wi, w) in ws.waivers.iter().enumerate() {
        let reason = if !known.contains(&w.rule.as_str()) {
            Some(format!(
                "waiver names unknown rule `{}` (known: {})",
                w.rule,
                known.join(", ")
            ))
        } else if !used[wi] && !taint_result.used_seed_waivers.contains(&wi) {
            Some(format!(
                "waiver `lint:allow({})` no longer suppresses any finding; delete it \
                 (or re-justify it against the rule that should fire here)",
                w.rule
            ))
        } else {
            None
        };
        if let Some(reason) = reason {
            findings.push(Finding {
                rule: STALE_WAIVER,
                path: ws.files[w.file].path.clone(),
                line: w.line,
                excerpt: ws.line_text(w.file, w.line).to_string(),
                detail: vec![reason],
            });
        }
    }

    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Report {
        files: ws.files.len(),
        findings,
    }
}

/// Builds the model for `root` and runs the full engine.
pub fn run_full(root: &Path) -> io::Result<Report> {
    let ws = Workspace::load(root)?;
    Ok(run_on(&ws))
}

/// Full-engine workspace scan; kept as the historical entry point.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    run_full(root).map(|r| r.findings)
}

/// Number of files [`run_full`] models under `root` (test files
/// included).
pub fn count_files(root: &Path) -> io::Result<usize> {
    Ok(Workspace::load(root)?.files.len())
}

/// Documentation for `--explain`: every rule, semantic ones included.
#[derive(Debug, Clone, Copy)]
pub struct RuleDoc {
    /// Rule name.
    pub name: &'static str,
    /// Where it applies.
    pub scope: &'static str,
    /// Why it exists.
    pub why: &'static str,
    /// How to fix or justify a finding.
    pub fix: &'static str,
}

/// The `--explain` table.
pub const RULE_DOCS: [RuleDoc; 14] = [
    RuleDoc {
        name: "nondet",
        scope: "everywhere but crates/sim/src/rng.rs",
        why: "thread_rng/from_entropy/Instant::now/SystemTime are ambient \
              nondeterminism: they break replayability and byte-identical output",
        fix: "draw from a named seeded stream (drt_sim::rng::stream / \
              indexed_stream); sim time comes from the DES clock",
    },
    RuleDoc {
        name: "hash-collections",
        scope: "crates/core/src/routing + crates/proto/src",
        why: "HashMap/HashSet iteration order varies across runs and platforms; \
              routing and protocol decisions must not depend on it",
        fix: "use BTreeMap/BTreeSet, or a Vec with an explicit sort",
    },
    RuleDoc {
        name: "proto-panics",
        scope: "crates/proto/src",
        why: "a router must degrade on unexpected input, not crash the control plane",
        fix: "return an error / drop the message instead of .unwrap()/.expect()",
    },
    RuleDoc {
        name: "raw-fail-link",
        scope: "crates/experiments/src",
        why: "raw fail_link bypasses the recovery orchestrator: retries, flap \
              damping, and orphan accounting silently diverge between regimes",
        fix: "inject through FailureEvent / inject_event (one waived seam exists)",
    },
    RuleDoc {
        name: "raw-spoof",
        scope: "crates/experiments/src minus adversarial.rs",
        why: "byzantine lies outside the adversarial sweep skew honest tables \
              without appearing in telemetry",
        fix: "move the spoof into the adversarial sweep where both arms share \
              substreams and every lie is counted",
    },
    RuleDoc {
        name: "journal-choke",
        scope: "crates/proto/src minus journal.rs and router.rs",
        why: "the crash-recovery guarantee is append-before-act: every \
              router mutation is journaled before it happens, so replaying \
              the journal reproduces the live router bit-for-bit. A raw \
              mutator call (.gate_walk(, .reserve_primary(, …) outside the \
              Journals choke point mutates state the journal never saw — \
              the divergence only surfaces as a wrong router after a crash",
        fix: "call the matching Journals wrapper (gate/applied/poison/\
              reserve/release/register/unregister/activate) instead of the \
              raw Router mutator",
    },
    RuleDoc {
        name: "spf-alloc",
        scope: "dijkstra.rs / disjoint.rs / yen.rs / dynamic_spt.rs",
        why: "per-search allocation on the SPF hot path defeats the \
              generation-stamped SpfWorkspace (and the dynamic SPT's \
              reusable repair scratch)",
        fix: "reuse the workspace arrays/heap; waive cold paths with a rationale",
    },
    RuleDoc {
        name: "spf-cache",
        scope: "crates/core/src minus route_cache.rs",
        why: "the backup-candidate cache's correctness claim is \"a cached \
              route never crosses a failed link\"; that holds only because \
              every mutation of the cache and its conflict-vector masks \
              goes through the route_cache.rs choke point, where the \
              invariant audit rebuilds and cross-checks them. A raw \
              `.route_cache.` access elsewhere can skip invalidation and \
              the stale route only surfaces as a dead backup after the \
              next failure",
        fix: "call the choke wrappers instead: note_backup_installed / \
              note_backup_removed / note_backups_cleared / \
              note_links_failed / note_links_repaired / \
              note_connection_released / remember_candidate / \
              take_cached_backup",
    },
    RuleDoc {
        name: "probe-alloc",
        scope: "failure.rs / analysis.rs",
        why: "per-probe collection defeats the generation-stamped ProbeWorkspace",
        fix: "reuse the probe workspace; waive one-shot setup/report code with a \
              rationale",
    },
    RuleDoc {
        name: "float-eq",
        scope: "whole workspace",
        why: "exact float equality in bandwidth accounting is brittle",
        fix: "compare against an epsilon or restructure to integers; waive \
              literal-zero sentinels with a rationale",
    },
    RuleDoc {
        name: "nondet-taint",
        scope: "reported in crates/core, crates/proto, crates/experiments; \
                propagated workspace-wide",
        why: "a helper that wraps an ambient source (clock, OS entropy, hash \
              iteration) taints every caller: routing code calling it breaks \
              byte-identical --jobs output even though no forbidden name \
              appears at the call site. The diagnostic prints the full \
              source→sink call chain",
        fix: "push the nondeterminism out to a seeded stream or the DES clock \
              at the source; if the source line is legitimately waived for \
              `nondet`, the taint disappears with it; a frontier call site \
              can be waived with lint:allow(nondet-taint) + rationale",
    },
    RuleDoc {
        name: "rng-substream",
        scope: "closures passed to parallel_map / for_each_ordered",
        why: "an RNG shared across parallel work units is consumed in worker \
              completion order: output differs between --jobs levels. The \
              jobs-1-vs-8 integration tests catch this after the fact; the \
              rule catches it at the closure",
        fix: "derive a per-unit keyed substream inside the closure: \
              drt_sim::rng::indexed_stream(master, tag, unit_index)",
    },
    RuleDoc {
        name: "baseline-parity",
        scope: "every non-test fn named *_baseline",
        why: "baselines exist to prove the optimised path bit-for-bit \
              equivalent; an unreferenced baseline is dead code wearing a \
              safety vest",
        fix: "reference it from an equivalence proptest or a criterion/bench \
              target, or delete it",
    },
    RuleDoc {
        name: "stale-waiver",
        scope: "every lint:allow(…) comment",
        why: "a waiver that suppresses nothing misleads readers and hides \
              future regressions at the same line",
        fix: "delete the waiver, or fix the drift that made it dead; \
              stale-waiver findings cannot themselves be waived",
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stale_waiver_flagged_live_waiver_not() {
        let ws = Workspace::from_sources(&[(
            "crates/proto/src/x.rs",
            "fn f(m: &M) {\n    let a = m.get().unwrap(); // lint:allow(proto-panics) — invariant: always present\n    let b = 1; // lint:allow(proto-panics) — stale: nothing fires here\n}\n",
        )]);
        let report = run_on(&ws);
        let stale: Vec<&Finding> = report
            .findings
            .iter()
            .filter(|f| f.rule == STALE_WAIVER)
            .collect();
        assert_eq!(stale.len(), 1, "{:?}", report.findings);
        assert_eq!(stale[0].line, 3);
        // The live waiver suppressed its finding.
        assert!(!report.findings.iter().any(|f| f.rule == "proto-panics"));
    }

    #[test]
    fn unknown_rule_waiver_is_flagged() {
        let ws = Workspace::from_sources(&[(
            "crates/core/src/x.rs",
            "fn f() {} // lint:allow(no-such-rule)\n",
        )]);
        let report = run_on(&ws);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, STALE_WAIVER);
        assert!(report.findings[0].detail[0].contains("unknown rule"));
    }

    #[test]
    fn nondet_waiver_used_by_seed_neutralisation_is_not_stale() {
        // In bench-style code the `nondet` legacy finding and the taint
        // seed share the waiver; it must count as used.
        let ws = Workspace::from_sources(&[(
            "crates/experiments/src/bench.rs",
            "pub fn timed() -> u64 {\n    let t0 = Instant::now(); // lint:allow(nondet) — bench harness\n    stamp(t0)\n}\n",
        )]);
        let report = run_on(&ws);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }
}
