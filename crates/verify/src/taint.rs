//! Fixpoint nondeterminism-taint propagation over the workspace call
//! graph.
//!
//! Ambient nondeterminism — OS entropy, wall-clock reads, unstable
//! hash-collection iteration — is *seeded* at the function that touches
//! it directly (see [`crate::model::SeedKind`]) and then propagated
//! caller-ward along call edges until nothing changes: any function
//! that can reach a seed through calls is *tainted*. The substring
//! `nondet` rule catches the direct touch; this pass catches the
//! indirect one — a helper two crates away that wraps `Instant::now`
//! and is called from routing — which is exactly the class of
//! regression that silently breaks byte-identical `--jobs` output and
//! bit-for-bit baseline equivalence.
//!
//! A finding is reported at the *frontier*: a function in a policed
//! crate (`crates/core`, `crates/proto`, `crates/experiments`) whose
//! taint arrives through a call into a function that is not itself a
//! reported policed frontier. The diagnostic carries the full
//! source→sink call chain down to the ambient source line, so the fix
//! site is always visible. Seeds whose line carries a `nondet` waiver do
//! not seed (the waiver's rationale covers the transitive uses, and the
//! orchestrator counts such a waiver as *used* so it never reads as
//! stale); a frontier call site can itself be waived with
//! `lint:allow(nondet-taint)` through the ordinary waiver mechanism.
//!
//! Call edges are resolved by name (with a one-segment `Type::`
//! qualifier when the source spells one), which over-approximates:
//! same-named functions alias. That errs toward reporting and is the
//! price of staying dependency-free; the waiver mechanism and the
//! stale-waiver audit keep the noise bounded and honest.

use std::collections::{BTreeMap, VecDeque};

use crate::lint::Finding;
use crate::model::{SeedKind, Workspace};

/// Rule name for taint findings and their waivers.
pub const RULE: &str = "nondet-taint";

/// `true` for paths the taint pass reports findings in: routing,
/// protocol, and experiment-driver code.
pub fn policed(path: &str) -> bool {
    path.starts_with("crates/core/src")
        || path.starts_with("crates/proto/src")
        || path.starts_with("crates/experiments/src")
}

/// How taint reached a function.
#[derive(Debug, Clone, Copy)]
enum Via {
    /// The function contains the seed itself.
    Seed(SeedKind, usize),
    /// Taint arrived through the call at `line` into fn `callee`.
    Call { line: usize, callee: usize },
}

/// What the taint pass produced: the frontier findings plus the indices
/// (into `Workspace::waivers`) of `nondet` waivers that neutralised a
/// seed — the orchestrator counts those as used in the stale audit.
#[derive(Debug, Default)]
pub struct TaintResult {
    /// Frontier findings, sorted by path and line.
    pub findings: Vec<Finding>,
    /// Waiver indices consumed by seed neutralisation.
    pub used_seed_waivers: Vec<usize>,
}

/// Runs the fixpoint and renders frontier findings, sorted by path and
/// line. `Finding::detail` holds the call chain, one hop per line.
pub fn scan(ws: &Workspace) -> TaintResult {
    // Seeds, minus waived ones. A `nondet` waiver (the legacy direct
    // rule) neutralises a seed on its line or the line above.
    let mut waived_seed_lines: BTreeMap<usize, Vec<(usize, usize)>> = BTreeMap::new();
    for (wi, w) in ws.waivers.iter().enumerate() {
        if w.rule == "nondet" {
            waived_seed_lines
                .entry(w.file)
                .or_default()
                .push((w.line, wi));
        }
    }
    let mut used_seed_waivers = Vec::new();
    let mut seed_waived = |file: usize, line: usize| {
        let mut hit = false;
        if let Some(ws_lines) = waived_seed_lines.get(&file) {
            for &(l, wi) in ws_lines {
                if l == line || l + 1 == line {
                    used_seed_waivers.push(wi);
                    hit = true;
                }
            }
        }
        hit
    };

    let n = ws.fns.len();
    // Reverse adjacency: callee -> (caller, call line).
    let mut callers: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
    for (ci, f) in ws.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        for call in &f.calls {
            for target in resolve(ws, call) {
                if !ws.fns[target].is_test {
                    callers[target].push((ci, call.line));
                }
            }
        }
    }

    // BFS from seeds, caller-ward; first arrival wins, giving each
    // tainted fn a shortest chain toward a seed. Iteration over fn
    // indices is deterministic.
    let mut via: Vec<Option<Via>> = vec![None; n];
    let mut queue = VecDeque::new();
    for (i, f) in ws.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        // Evaluate every seed (not just up to the first live one) so
        // each consumed waiver is recorded for the stale audit.
        let mut live: Option<&crate::model::Seed> = None;
        for s in &f.seeds {
            if !seed_waived(f.file, s.line) && live.is_none() {
                live = Some(s);
            }
        }
        if let Some(seed) = live {
            via[i] = Some(Via::Seed(seed.kind, seed.line));
            queue.push_back(i);
        }
    }
    while let Some(cur) = queue.pop_front() {
        for &(caller, line) in &callers[cur] {
            if via[caller].is_none() {
                via[caller] = Some(Via::Call { line, callee: cur });
                queue.push_back(caller);
            }
        }
    }

    // Frontier: policed, tainted via call, and the next hop is not
    // itself a policed fn tainted via call (those get their own finding
    // closer to the source; reporting every transitive caller is noise).
    let mut findings = Vec::new();
    for (i, f) in ws.fns.iter().enumerate() {
        let Some(Via::Call { line, callee }) = via[i] else {
            continue;
        };
        if f.is_test || !policed(&ws.file_of(f).path) {
            continue;
        }
        let next_is_policed_frontier = matches!(via[callee], Some(Via::Call { .. }))
            && policed(&ws.file_of(&ws.fns[callee]).path);
        if next_is_policed_frontier {
            continue;
        }
        findings.push(Finding {
            rule: RULE,
            path: ws.file_of(f).path.clone(),
            line,
            excerpt: ws.line_text(f.file, line).to_string(),
            detail: render_chain(ws, i, &via),
        });
    }
    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    findings.dedup_by(|a, b| a.path == b.path && a.line == b.line && a.detail == b.detail);
    used_seed_waivers.sort_unstable();
    used_seed_waivers.dedup();
    TaintResult {
        findings,
        used_seed_waivers,
    }
}

/// Renders the call chain from fn `start` down to its ambient source.
fn render_chain(ws: &Workspace, start: usize, via: &[Option<Via>]) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = start;
    // The chain is acyclic by construction (BFS tree), but cap it
    // defensively anyway.
    for _ in 0..ws.fns.len() + 1 {
        let f = &ws.fns[cur];
        match via[cur] {
            Some(Via::Call { line, callee }) => {
                out.push(format!(
                    "{} ({}:{}) calls {} at line {}",
                    f.qual,
                    ws.file_of(f).path,
                    f.line,
                    ws.fns[callee].qual,
                    line,
                ));
                cur = callee;
            }
            Some(Via::Seed(kind, line)) => {
                out.push(format!(
                    "{} ({}:{}) reads ambient source: {} at line {}",
                    f.qual,
                    ws.file_of(f).path,
                    f.line,
                    kind.describe(),
                    line,
                ));
                break;
            }
            None => break,
        }
    }
    out
}

/// Resolves a call site by name, narrowed by call style:
///
/// * an explicit `Type::` qualifier narrows to matching `Type::name`
///   functions when any exist (falling back below otherwise, since the
///   qualifier may be a module path segment rather than an impl type);
/// * a dot-method call (`recv.name(…)`) can only invoke an impl-block
///   function, never a free one;
/// * a bare `name(…)` can only invoke a free function — associated
///   functions require a `Type::` path in Rust.
///
/// What remains is an over-approximation (same-named methods on
/// different types alias), which errs toward reporting; the waiver
/// mechanism and stale-waiver audit keep that honest.
fn resolve(ws: &Workspace, call: &crate::model::CallSite) -> Vec<usize> {
    let Some(all) = ws.by_name.get(&call.name) else {
        return Vec::new();
    };
    if let Some(q) = call.qual.as_deref() {
        let wanted = format!("{q}::{}", call.name);
        let narrowed: Vec<usize> = all
            .iter()
            .copied()
            .filter(|&i| ws.fns[i].qual == wanted)
            .collect();
        if !narrowed.is_empty() {
            return narrowed;
        }
    }
    if call.method {
        all.iter()
            .copied()
            .filter(|&i| ws.fns[i].qual != ws.fns[i].name)
            .collect()
    } else if call.qual.is_none() {
        all.iter()
            .copied()
            .filter(|&i| ws.fns[i].qual == ws.fns[i].name)
            .collect()
    } else {
        all.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indirect_clock_read_two_calls_deep_is_reported_with_chain() {
        let ws = Workspace::from_sources(&[
            (
                "crates/net/src/helper.rs",
                "pub fn stamp() -> u64 { raw_clock() }\npub fn raw_clock() -> u64 { Instant::now().elapsed().as_nanos() as u64 }\n",
            ),
            (
                "crates/core/src/routing/pick.rs",
                "pub fn pick_route() -> u64 { stamp() }\n",
            ),
        ]);
        let result = scan(&ws);
        assert_eq!(result.findings.len(), 1, "{:?}", result.findings);
        let f = &result.findings[0];
        assert_eq!(f.rule, RULE);
        assert_eq!(f.path, "crates/core/src/routing/pick.rs");
        // Full chain: pick_route -> stamp -> raw_clock -> Instant::now.
        assert_eq!(f.detail.len(), 3);
        assert!(f.detail[0].contains("pick_route"));
        assert!(f.detail[2].contains("Instant::now"));
    }

    #[test]
    fn waived_seed_does_not_propagate() {
        let ws = Workspace::from_sources(&[
            (
                "crates/experiments/src/bench.rs",
                "pub fn timed() -> u64 { Instant::now().elapsed().as_nanos() as u64 } // lint:allow(nondet) — bench harness\n",
            ),
            (
                "crates/experiments/src/campaign.rs",
                "pub fn run() { let _ = timed(); }\n",
            ),
        ]);
        let result = scan(&ws);
        assert!(result.findings.is_empty(), "{:?}", result.findings);
        // The waiver was consumed by seed neutralisation.
        assert_eq!(result.used_seed_waivers.len(), 1);
    }

    #[test]
    fn unpoliced_sink_is_not_reported() {
        let ws = Workspace::from_sources(&[(
            "crates/sim/src/stats.rs",
            "pub fn wrap() -> u64 { tick() }\npub fn tick() -> u64 { Instant::now().elapsed().as_nanos() as u64 }\n",
        )]);
        assert!(scan(&ws).findings.is_empty());
    }
}
