//! Bounded exhaustive exploration of delivery schedules.
//!
//! # State-space model
//!
//! A run of a [`Scenario`] under a quiet control plane is fully
//! deterministic; its only nondeterminism is the *fate* of each
//! multi-hop control-packet delivery. The checker therefore identifies
//! a run with its **fate script**: decision `i` of the run takes
//! `script[i]`, and every decision past the script's end delivers
//! cleanly. The explored space is all scripts that
//!
//! * assign a fault ([`Fate::Drop`] / [`Fate::Duplicate`] /
//!   [`Fate::Delay`]) to positions `< depth`, and
//! * contain at most `max_faults` faults.
//!
//! Scripts are enumerated breadth-first by fault count: the root (clean)
//! run first, then every 1-fault run, and so on. Each parent run's
//! recorded decision log tells the checker which positions exist, so
//! children are generated as `parent ++ clean-padding ++ [fault]` — one
//! new fault strictly after the parent's last. Every fault set is
//! generated exactly once, and the first counterexample found has a
//! minimum number of injected faults.
//!
//! Every run asserts [`ProtocolSim::check_invariants`] at **every**
//! event boundary — always-on ledger/APLV/dedup invariants in each
//! intermediate state, plus exact-accounting invariants at quiescence.
//!
//! # Reductions
//!
//! * **Partial-order reduction.** Result and ack deliveries
//!   (`setup-result`, `release-result`, `switch-result`, `report-ack`)
//!   are *absorbed* when duplicated: the handler removes the
//!   transaction on the first copy and returns without side effects on
//!   the second, so the `Duplicate` branch at those positions is
//!   state-equivalent to `Deliver` and is skipped.
//! * **Fingerprint pruning.** Once a run has consumed its script it is
//!   on a deterministic tail. At every subsequent boundary the engine
//!   state is fingerprinted; if an earlier run visited the same
//!   fingerprint (at the same op index) with at least as much remaining
//!   fault budget *and* remaining branch depth, everything reachable
//!   from here is reachable from that run too, so the current run is
//!   abandoned. Branch positions before the pruned boundary are still
//!   expanded from the decisions recorded so far.
//!
//! Both reductions are sound: disabling them (see
//! [`CheckConfig::baseline`]) explores more runs but can flag no
//! additional violation.

use std::collections::{HashMap, VecDeque};

use drt_core::invariants::Violation;
use drt_proto::{Decision, Fate, SeededBug};

use crate::scenario::Scenario;

/// Delivery kinds whose duplicate copy is provably absorbed by
/// transaction gating (`txns.remove` then return): duplicating them is
/// state-equivalent to delivering them once.
pub const ABSORBED_KINDS: [&str; 5] = [
    "setup-result",
    "release-result",
    "switch-result",
    "report-ack",
    "resync-digest",
];

/// The three injectable faults, tried in this order at each position.
const FAULTS: [Fate; 3] = [Fate::Drop, Fate::Duplicate, Fate::Delay];

/// Bounds and toggles for one exploration.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Faults may be injected at decision positions `0..depth`.
    pub depth: usize,
    /// Maximum number of injected faults per run.
    pub max_faults: usize,
    /// Skip `Duplicate` branches at absorbed delivery kinds.
    pub por: bool,
    /// Abandon runs whose state fingerprint is dominated.
    pub prune: bool,
    /// Per-run event budget; exceeding it is reported as a violation
    /// (`step-limit`), since a quiet-plane run must quiesce.
    pub max_steps: u64,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            depth: 12,
            max_faults: 3,
            por: true,
            prune: true,
            max_steps: 100_000,
        }
    }
}

impl CheckConfig {
    /// The same bounds with every reduction disabled — the comparison
    /// point for measuring state-space reduction.
    pub fn baseline(&self) -> CheckConfig {
        CheckConfig {
            por: false,
            prune: false,
            ..self.clone()
        }
    }
}

/// Exploration counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct CheckStats {
    /// Runs executed (including pruned ones).
    pub runs: u64,
    /// Engine events processed across all runs.
    pub steps: u64,
    /// Runs abandoned by fingerprint domination.
    pub pruned: u64,
    /// `Duplicate` branches skipped by partial-order reduction.
    pub por_skips: u64,
    /// Distinct state fingerprints recorded.
    pub distinct_states: usize,
    /// Longest decision log observed in a completed run.
    pub max_decisions: usize,
}

/// A violating run: the fate script that reaches the violation, the
/// violation itself, and the decision log of the failing run.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Minimal fate script reproducing the violation.
    pub script: Vec<Fate>,
    /// The invariant that failed.
    pub violation: Violation,
    /// The failing run's full decision log (kinds, hops, fates).
    pub decisions: Vec<Decision>,
}

impl Counterexample {
    /// Number of injected faults in the script.
    pub fn faults(&self) -> usize {
        self.script.iter().filter(|f| f.is_fault()).count()
    }

    /// Re-executes the script through the ordinary scripted-chaos seam
    /// and returns the violation it reproduces, if any. A genuine
    /// counterexample replays to the same violation rule.
    pub fn replay(&self, scenario: &Scenario, bug: SeededBug) -> Option<Violation> {
        replay(scenario, bug, &self.script)
    }
}

/// The result of one exploration.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Name of the checked scenario.
    pub scenario: &'static str,
    /// Exploration counters.
    pub stats: CheckStats,
    /// First (minimal-fault) violating run found, if any.
    pub counterexample: Option<Counterexample>,
}

impl CheckReport {
    /// `true` when no violation was found.
    pub fn ok(&self) -> bool {
        self.counterexample.is_none()
    }
}

/// How one run ended.
enum RunEnd {
    /// Drained every op to quiescence without violating anything.
    Quiescent { decisions: Vec<Decision> },
    /// An invariant failed.
    Violated {
        violation: Violation,
        decisions: Vec<Decision>,
    },
    /// Abandoned: state dominated by an earlier run.
    Pruned { decisions: Vec<Decision> },
    /// Exceeded the per-run event budget.
    StepLimit,
}

/// One recorded visit: remaining fault budget, remaining branch depth,
/// and the id of the run that recorded it.
type VisitBudget = (usize, usize, u64);

/// Visited-state table: `(op index, fingerprint)` maps to the budgets
/// it was visited with. An entry `(f, p)` dominates a revisit with
/// budgets `(f', p')` when `f >= f'` and `p >= p'` — everything the
/// revisit could still explore, the recorded run could too.
#[derive(Debug, Default)]
struct Visited {
    map: HashMap<(usize, u64), Vec<VisitBudget>>,
}

impl Visited {
    /// Returns `true` (prune) when dominated by another run's entry;
    /// otherwise records the visit. `run_id` keeps a run from pruning
    /// against its own earlier boundaries.
    fn check_and_insert(
        &mut self,
        key: (usize, u64),
        rem_faults: usize,
        rem_pos: usize,
        run_id: u64,
    ) -> bool {
        let entries = self.map.entry(key).or_default();
        if entries
            .iter()
            .any(|&(f, p, r)| r != run_id && f >= rem_faults && p >= rem_pos)
        {
            return true;
        }
        entries.retain(|&(f, p, _)| !(rem_faults >= f && rem_pos >= p));
        entries.push((rem_faults, rem_pos, run_id));
        false
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

struct Search<'a> {
    scenario: &'a Scenario,
    bug: SeededBug,
    cfg: &'a CheckConfig,
    visited: Visited,
    stats: CheckStats,
}

impl Search<'_> {
    /// Executes one run under `script`, checking invariants at every
    /// event boundary and (when pruning) fingerprinting every boundary
    /// past the script's end.
    fn run(&mut self, script: &[Fate], rem_faults: usize, run_id: u64) -> RunEnd {
        let (mut sim, log) = self.scenario.spawn(script.to_vec(), self.bug);
        let mut local_steps = 0u64;
        for (op_idx, op) in self.scenario.ops.iter().enumerate() {
            self.scenario.apply(&mut sim, op);
            loop {
                if let Err(violation) = sim.check_invariants() {
                    return RunEnd::Violated {
                        violation,
                        decisions: log.borrow().decisions.clone(),
                    };
                }
                if self.cfg.prune {
                    let consumed = log.borrow().len();
                    if consumed >= script.len() {
                        let key = (op_idx, sim.fingerprint());
                        let rem_pos = self.cfg.depth.saturating_sub(consumed);
                        if self
                            .visited
                            .check_and_insert(key, rem_faults, rem_pos, run_id)
                        {
                            return RunEnd::Pruned {
                                decisions: log.borrow().decisions.clone(),
                            };
                        }
                    }
                }
                if !sim.step() {
                    break;
                }
                local_steps += 1;
                self.stats.steps += 1;
                if local_steps > self.cfg.max_steps {
                    return RunEnd::StepLimit;
                }
            }
        }
        let decisions = log.borrow().decisions.clone();
        RunEnd::Quiescent { decisions }
    }

    /// Enqueues every child of `script`: one additional fault at each
    /// position in `script.len()..min(decisions, depth)`.
    fn expand(
        &mut self,
        script: &[Fate],
        decisions: &[Decision],
        faults: usize,
        queue: &mut VecDeque<Vec<Fate>>,
    ) {
        if faults >= self.cfg.max_faults {
            return;
        }
        let hi = decisions.len().min(self.cfg.depth);
        for (pos, decision) in decisions.iter().enumerate().take(hi).skip(script.len()) {
            let kind = decision.kind;
            for alt in FAULTS {
                if alt == Fate::Duplicate && self.cfg.por && ABSORBED_KINDS.contains(&kind) {
                    self.stats.por_skips += 1;
                    continue;
                }
                let mut child = Vec::with_capacity(pos + 1);
                child.extend_from_slice(script);
                child.resize(pos, Fate::Deliver);
                child.push(alt);
                queue.push_back(child);
            }
        }
    }
}

/// Exhaustively explores `scenario` under `cfg`, asserting every
/// invariant in every reachable state. Returns on the first violation
/// (minimal in injected-fault count) or after the whole bounded space
/// is covered.
pub fn check(scenario: &Scenario, bug: SeededBug, cfg: &CheckConfig) -> CheckReport {
    let mut search = Search {
        scenario,
        bug,
        cfg,
        visited: Visited::default(),
        stats: CheckStats::default(),
    };
    let mut queue: VecDeque<Vec<Fate>> = VecDeque::new();
    queue.push_back(Vec::new());
    while let Some(script) = queue.pop_front() {
        let faults = script.iter().filter(|f| f.is_fault()).count();
        let rem_faults = cfg.max_faults.saturating_sub(faults);
        search.stats.runs += 1;
        let run_id = search.stats.runs;
        match search.run(&script, rem_faults, run_id) {
            RunEnd::Violated {
                violation,
                decisions,
            } => {
                search.stats.distinct_states = search.visited.len();
                return CheckReport {
                    scenario: scenario.name,
                    stats: search.stats,
                    counterexample: Some(Counterexample {
                        script,
                        violation,
                        decisions,
                    }),
                };
            }
            RunEnd::StepLimit => {
                search.stats.distinct_states = search.visited.len();
                return CheckReport {
                    scenario: scenario.name,
                    stats: search.stats,
                    counterexample: Some(Counterexample {
                        script,
                        violation: Violation {
                            rule: "step-limit",
                            detail: format!(
                                "run exceeded {} events without quiescing",
                                cfg.max_steps
                            ),
                        },
                        decisions: Vec::new(),
                    }),
                };
            }
            RunEnd::Pruned { decisions } => {
                search.stats.pruned += 1;
                search.expand(&script, &decisions, faults, &mut queue);
            }
            RunEnd::Quiescent { decisions } => {
                search.stats.max_decisions = search.stats.max_decisions.max(decisions.len());
                search.expand(&script, &decisions, faults, &mut queue);
            }
        }
    }
    search.stats.distinct_states = search.visited.len();
    CheckReport {
        scenario: scenario.name,
        stats: search.stats,
        counterexample: None,
    }
}

/// Replays one fate script (no pruning, no reduction) and returns the
/// violation it reaches, if any.
pub fn replay(scenario: &Scenario, bug: SeededBug, script: &[Fate]) -> Option<Violation> {
    let cfg = CheckConfig {
        prune: false,
        ..CheckConfig::default()
    };
    let mut search = Search {
        scenario,
        bug,
        cfg: &cfg,
        visited: Visited::default(),
        stats: CheckStats::default(),
    };
    match search.run(script, 0, 0) {
        RunEnd::Violated { violation, .. } => Some(violation),
        RunEnd::StepLimit => Some(Violation {
            rule: "step-limit",
            detail: format!("replay exceeded {} events without quiescing", cfg.max_steps),
        }),
        _ => None,
    }
}
