//! A token-level Rust lexer for the semantic lint engine.
//!
//! This is deliberately *not* a full Rust parser: it recognises exactly
//! the token classes the lint rules need to be sound against adversarial
//! source — identifiers (including raw `r#ident`s), lifetimes vs. char
//! literals (`'a` vs `'a'`), every string-literal family (plain, raw,
//! byte, raw-byte, C, with any number of `#` guards), byte chars,
//! numbers, line/block/doc comments (block comments nest), and
//! single-character punctuation. Everything the substring rules must
//! never match inside — comment text, string bodies, char bodies — is
//! carried as an opaque token with a span, so [`code_view`] can blank it
//! while preserving byte offsets and line numbers exactly.
//!
//! The lexer is the shared front end: the legacy substring rules run on
//! the [`code_view`] it produces, and the call-graph model
//! ([`crate::model`]) and the taint/semantic passes ([`crate::taint`],
//! [`crate::semantic`]) walk the token stream itself.

/// Token classes distinguished by the lexer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `thread_rng`, `HashMap`).
    Ident,
    /// A raw identifier (`r#match`); the span includes the `r#` prefix.
    RawIdent,
    /// A lifetime or loop label (`'a`, `'static`, `'_`).
    Lifetime,
    /// Any string literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`,
    /// `c"…"`. The span covers prefix, guards, and quotes.
    Str,
    /// A char or byte-char literal (`'x'`, `'\n'`, `b'x'`).
    Char,
    /// A numeric literal (`42`, `0xFF`, `1_000`, `2.5e-3`).
    Num,
    /// A single punctuation byte (`{`, `|`, `:` …). Multi-byte operators
    /// are delivered as consecutive punct tokens with adjacent spans.
    Punct,
    /// A comment. `doc` is true for `///`, `//!`, `/**`, `/*!` forms.
    Comment {
        /// Whether this is a doc comment rather than a plain one.
        doc: bool,
    },
}

/// One lexed token: kind plus byte span and 1-based start line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Byte offset of the first byte of the token.
    pub start: usize,
    /// Byte offset one past the last byte of the token.
    pub end: usize,
    /// 1-based line number of the token's first byte.
    pub line: usize,
}

/// A lexed source file: the token stream plus the source it indexes.
#[derive(Debug)]
pub struct Lexed<'s> {
    src: &'s str,
    /// The token stream, in source order.
    pub tokens: Vec<Token>,
}

impl<'s> Lexed<'s> {
    /// The source text of a token.
    pub fn text(&self, t: &Token) -> &'s str {
        &self.src[t.start..t.end]
    }

    /// The identifier name of an `Ident`/`RawIdent` token (`r#` prefix
    /// stripped), or the token text for anything else.
    pub fn name(&self, t: &Token) -> &'s str {
        let s = self.text(t);
        if t.kind == TokenKind::RawIdent {
            &s[2..]
        } else {
            s
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_cont(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Length in bytes of the UTF-8 codepoint starting at `b`.
fn cp_len(b: u8) -> usize {
    match b {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// String-literal prefixes: (`prefix`, may the body be raw).
const STR_PREFIXES: [&str; 5] = ["r", "br", "b", "cr", "c"];

/// Lexes `src` into a token stream. Never fails: malformed or
/// unterminated constructs degrade to the longest token that can be
/// formed, and lexing always consumes the whole input.
pub fn lex(src: &str) -> Lexed<'_> {
    let b = src.as_bytes();
    let mut tokens = Vec::with_capacity(src.len() / 4);
    let mut i = 0;
    let mut line = 1;
    while i < b.len() {
        let c = b[i];
        if c == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        let start_line = line;
        // Line comment (`//`, `///`, `//!`).
        if c == b'/' && b.get(i + 1) == Some(&b'/') {
            let doc = matches!(b.get(i + 2), Some(&b'/') | Some(&b'!'))
                // `////…` separators are plain comments, not docs.
                && b.get(i + 3) != Some(&b'/');
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            tokens.push(Token {
                kind: TokenKind::Comment { doc },
                start,
                end: i,
                line: start_line,
            });
            continue;
        }
        // Block comment, nesting.
        if c == b'/' && b.get(i + 1) == Some(&b'*') {
            let doc = (b.get(i + 2) == Some(&b'*') && b.get(i + 3) != Some(&b'/'))
                || b.get(i + 2) == Some(&b'!');
            let mut depth = 0usize;
            while i < b.len() {
                if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    if b[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            tokens.push(Token {
                kind: TokenKind::Comment { doc },
                start,
                end: i,
                line: start_line,
            });
            continue;
        }
        // Identifier, keyword, or a prefixed literal (r"…", b'…', r#id).
        if is_ident_start(c) {
            let mut j = i + 1;
            while j < b.len() && is_ident_cont(b[j]) {
                j += 1;
            }
            let word = &src[i..j];
            // Raw / byte / C string: prefix + optional `#` guards + `"`.
            if STR_PREFIXES.contains(&word) {
                let mut k = j;
                let raw_ok = word.contains('r');
                let mut hashes = 0usize;
                while raw_ok && b.get(k) == Some(&b'#') {
                    hashes += 1;
                    k += 1;
                }
                if b.get(k) == Some(&b'"') {
                    i = scan_string_body(b, k + 1, hashes, word.contains('r'), &mut line);
                    tokens.push(Token {
                        kind: TokenKind::Str,
                        start,
                        end: i,
                        line: start_line,
                    });
                    continue;
                }
                // Byte char: `b'x'`, `b'\n'`.
                if word == "b" && b.get(j) == Some(&b'\'') {
                    if let Some(end) = scan_char_body(b, j + 1) {
                        i = end;
                        tokens.push(Token {
                            kind: TokenKind::Char,
                            start,
                            end: i,
                            line: start_line,
                        });
                        continue;
                    }
                }
            }
            // Raw identifier: `r#ident`.
            if word == "r"
                && b.get(j) == Some(&b'#')
                && b.get(j + 1).copied().is_some_and(is_ident_start)
            {
                let mut k = j + 2;
                while k < b.len() && is_ident_cont(b[k]) {
                    k += 1;
                }
                i = k;
                tokens.push(Token {
                    kind: TokenKind::RawIdent,
                    start,
                    end: i,
                    line: start_line,
                });
                continue;
            }
            i = j;
            tokens.push(Token {
                kind: TokenKind::Ident,
                start,
                end: i,
                line: start_line,
            });
            continue;
        }
        // Plain string literal.
        if c == b'"' {
            i = scan_string_body(b, i + 1, 0, false, &mut line);
            tokens.push(Token {
                kind: TokenKind::Str,
                start,
                end: i,
                line: start_line,
            });
            continue;
        }
        // `'`: char literal or lifetime. A char closes after one escape
        // or one codepoint; otherwise an identifier head means lifetime.
        if c == b'\'' {
            if let Some(end) = scan_char_body(b, i + 1) {
                i = end;
                tokens.push(Token {
                    kind: TokenKind::Char,
                    start,
                    end: i,
                    line: start_line,
                });
                continue;
            }
            if b.get(i + 1).copied().is_some_and(is_ident_start) {
                let mut j = i + 2;
                while j < b.len() && is_ident_cont(b[j]) {
                    j += 1;
                }
                i = j;
                tokens.push(Token {
                    kind: TokenKind::Lifetime,
                    start,
                    end: i,
                    line: start_line,
                });
                continue;
            }
            // Lone quote (malformed): deliver as punct, keep going.
            i += 1;
            tokens.push(Token {
                kind: TokenKind::Punct,
                start,
                end: i,
                line: start_line,
            });
            continue;
        }
        // Number: digits, then suffix/hex/underscore runs, then one
        // fraction part if a digit follows the dot (`1.5`, not `1..n`).
        if c.is_ascii_digit() {
            let mut j = i + 1;
            while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                j += 1;
            }
            if b.get(j) == Some(&b'.') && b.get(j + 1).is_some_and(|d| d.is_ascii_digit()) {
                j += 1;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                // Exponent sign: `2.5e-3`.
                if j > 0
                    && matches!(b[j - 1], b'e' | b'E')
                    && matches!(b.get(j), Some(&b'+') | Some(&b'-'))
                {
                    j += 1;
                    while j < b.len() && b[j].is_ascii_digit() {
                        j += 1;
                    }
                }
            }
            i = j;
            tokens.push(Token {
                kind: TokenKind::Num,
                start,
                end: i,
                line: start_line,
            });
            continue;
        }
        // Anything else: one punctuation byte.
        i += 1;
        tokens.push(Token {
            kind: TokenKind::Punct,
            start,
            end: i,
            line: start_line,
        });
    }
    Lexed { src, tokens }
}

/// Scans a string body starting just past the opening quote; returns the
/// offset one past the closing quote (and its `#` guards). `raw` bodies
/// ignore escapes; non-raw bodies honour `\"` and `\\`.
fn scan_string_body(b: &[u8], mut j: usize, hashes: usize, raw: bool, line: &mut usize) -> usize {
    while j < b.len() {
        match b[j] {
            b'\\' if !raw => {
                // Skip the escaped byte (if any) — counting an escaped
                // newline (string line-continuation) like any other.
                if b.get(j + 1) == Some(&b'\n') {
                    *line += 1;
                }
                j += 2;
            }
            b'"' => {
                let guards = &b[j + 1..];
                if guards.len() >= hashes && guards.iter().take(hashes).all(|&h| h == b'#') {
                    return j + 1 + hashes;
                }
                j += 1;
            }
            b'\n' => {
                *line += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    j.min(b.len())
}

/// Tries to scan a char-literal body starting just past the opening
/// quote. Returns the offset one past the closing quote, or `None` if
/// this is not a char literal (so the caller treats `'` as a lifetime).
fn scan_char_body(b: &[u8], j: usize) -> Option<usize> {
    match b.get(j) {
        Some(&b'\\') => {
            // Escape: skip `\`, the escape head, then any `u{…}` payload,
            // up to the closing quote.
            let mut k = j + 2;
            if b.get(j + 1) == Some(&b'u') && b.get(k) == Some(&b'{') {
                while k < b.len() && b[k] != b'}' {
                    k += 1;
                }
                k += 1;
            } else if matches!(b.get(j + 1), Some(&b'x')) {
                k += 2;
            }
            (b.get(k) == Some(&b'\'')).then_some(k + 1)
        }
        Some(&c) if c != b'\'' && c != b'\n' => {
            let k = j + cp_len(c);
            (b.get(k) == Some(&b'\'')).then_some(k + 1)
        }
        _ => None,
    }
}

/// Reduces Rust source to a *code view*: comment text, string bodies,
/// and char bodies are replaced by spaces (newlines kept), while
/// delimiters — quotes, raw-string prefixes and `#` guards — and all
/// remaining code survive verbatim. Byte offsets and line numbers are
/// identical to the input, so findings located in the view map straight
/// back to the source.
pub fn code_view(src: &str) -> String {
    let lexed = lex(src);
    let mut out = src.as_bytes().to_vec();
    for t in &lexed.tokens {
        match t.kind {
            TokenKind::Comment { .. } => blank(&mut out, t.start, t.end),
            TokenKind::Str => {
                // Keep the prefix/guards and both quotes; blank the body.
                let bytes = src.as_bytes();
                let open = (t.start..t.end).find(|&k| bytes[k] == b'"');
                let hashes = if bytes[t.end.saturating_sub(1)..t.end]
                    .iter()
                    .all(|&c| c == b'#')
                {
                    bytes[t.start..t.end]
                        .iter()
                        .rev()
                        .take_while(|&&c| c == b'#')
                        .count()
                } else {
                    0
                };
                if let Some(open) = open {
                    let close = t.end.saturating_sub(1 + hashes).max(open + 1);
                    blank(&mut out, open + 1, close);
                }
            }
            TokenKind::Char => {
                // Keep the quotes (and a `b` prefix); blank the body.
                let open = t.start + usize::from(src.as_bytes()[t.start] == b'b');
                blank(&mut out, open + 1, t.end.saturating_sub(1));
            }
            _ => {}
        }
    }
    // Built byte-wise from ASCII blanks over valid UTF-8 source.
    String::from_utf8_lossy(&out).into_owned()
}

fn blank(out: &mut [u8], from: usize, to: usize) {
    for b in out.iter_mut().take(to).skip(from) {
        if *b != b'\n' {
            *b = b' ';
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        let l = lex(src);
        l.tokens
            .iter()
            .map(|t| (t.kind, l.text(t).to_string()))
            .collect()
    }

    #[test]
    fn lifetimes_and_chars_disambiguate() {
        let got = kinds("fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; }");
        assert!(got.contains(&(TokenKind::Lifetime, "'a".into())));
        assert!(got.contains(&(TokenKind::Char, "'a'".into())));
        assert!(got.contains(&(TokenKind::Char, "'\\n'".into())));
    }

    #[test]
    fn raw_identifiers() {
        let l = lex("fn r#match(r#type: u8) {}");
        let raw: Vec<&str> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::RawIdent)
            .map(|t| l.name(t))
            .collect();
        assert_eq!(raw, ["match", "type"]);
    }

    #[test]
    fn string_families() {
        for src in [
            "\"plain\"",
            "r\"raw\"",
            "r#\"guarded \" quote\"#",
            "b\"bytes\"",
            "br#\"raw bytes\"#",
            "c\"c string\"",
        ] {
            let l = lex(src);
            assert_eq!(l.tokens.len(), 1, "{src}");
            assert_eq!(l.tokens[0].kind, TokenKind::Str, "{src}");
            assert_eq!(l.tokens[0].end, src.len(), "{src}");
        }
    }

    #[test]
    fn nested_block_comment_inside_raw_string_is_string() {
        let src = "let s = r#\"/* not /* a comment */\"#; done()";
        let l = lex(src);
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Ident && l.text(t) == "done"));
        assert!(!l
            .tokens
            .iter()
            .any(|t| matches!(t.kind, TokenKind::Comment { .. })));
    }

    #[test]
    fn line_numbers_survive_multiline_tokens() {
        let src = "a\n/* b\nc */\nd \"x\ny\" e";
        let l = lex(src);
        let line_of = |name: &str| {
            l.tokens
                .iter()
                .find(|t| l.text(t) == name)
                .map(|t| t.line)
                .unwrap()
        };
        assert_eq!(line_of("a"), 1);
        assert_eq!(line_of("d"), 4);
        assert_eq!(line_of("e"), 5);
    }

    #[test]
    fn escaped_newline_string_continuation_counts_its_line() {
        // `"…\` at end of line continues the literal on the next line;
        // the newline is consumed by the escape but must still count.
        let src = "let a = \"one \\\n    two\";\nlet b = 1;\n";
        let l = lex(src);
        let b_tok = l
            .tokens
            .iter()
            .find(|t| t.kind == TokenKind::Ident && l.text(t) == "b")
            .unwrap();
        assert_eq!(b_tok.line, 3);
    }

    #[test]
    fn unterminated_constructs_do_not_hang_or_panic() {
        for src in ["\"open", "r#\"open", "/* open", "'", "b'", "r#"] {
            let _ = lex(src);
            let _ = code_view(src);
        }
    }
}
