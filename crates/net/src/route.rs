//! Validated directed routes (the paper's `LSET`).

use crate::{LinkId, NetError, Network, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A validated, contiguous directed route through a [`Network`].
///
/// A `Route` is exactly the paper's `LSET_r` — "the set of links in route
/// `r`" — except that it also preserves link *order*, which the protocol
/// needs for hop-by-hop signalling (backup-path register packets walk the
/// route). Construction always validates contiguity against a network, so a
/// `Route` in hand is structurally sound.
///
/// # Example
///
/// ```
/// use drt_net::{topology, Route, NodeId, Bandwidth};
///
/// # fn main() -> Result<(), drt_net::NetError> {
/// let net = topology::mesh(3, 3, Bandwidth::from_mbps(10))?;
/// let route = Route::from_nodes(
///     &net,
///     &[NodeId::new(0), NodeId::new(1), NodeId::new(2)],
/// )?;
/// assert_eq!(route.len(), 2);
/// assert_eq!(route.source(), NodeId::new(0));
/// assert_eq!(route.dest(), NodeId::new(2));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Route {
    links: Vec<LinkId>,
    src: NodeId,
    dst: NodeId,
}

impl Route {
    /// Builds a route from an ordered list of link ids.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidRoute`] when the list is empty or the
    /// links are not contiguous, and [`NetError::UnknownLink`] when a link
    /// id does not exist in `net`.
    pub fn new(net: &Network, links: Vec<LinkId>) -> Result<Self, NetError> {
        let (src, dst) = net.validate_walk(&links)?;
        Ok(Route { links, src, dst })
    }

    /// Builds a route by resolving consecutive node pairs to links.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidRoute`] when fewer than two nodes are
    /// given or some consecutive pair has no connecting link.
    pub fn from_nodes(net: &Network, nodes: &[NodeId]) -> Result<Self, NetError> {
        if nodes.len() < 2 {
            return Err(NetError::InvalidRoute(
                "a route needs at least two nodes".into(),
            ));
        }
        let mut links = Vec::with_capacity(nodes.len() - 1);
        for pair in nodes.windows(2) {
            let link = net.find_link(pair[0], pair[1]).ok_or_else(|| {
                NetError::InvalidRoute(format!("no link {} -> {}", pair[0], pair[1]))
            })?;
            links.push(link);
        }
        Route::new(net, links)
    }

    /// The node the route starts at.
    pub fn source(&self) -> NodeId {
        self.src
    }

    /// The node the route ends at.
    pub fn dest(&self) -> NodeId {
        self.dst
    }

    /// Number of links (hops) in the route.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Routes are never empty, so this always returns `false`; provided for
    /// API completeness alongside [`Route::len`].
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The ordered links of the route.
    pub fn links(&self) -> &[LinkId] {
        &self.links
    }

    /// Iterates over the links in hop order.
    pub fn iter(&self) -> std::slice::Iter<'_, LinkId> {
        self.links.iter()
    }

    /// Returns `true` if `link` is part of this route.
    pub fn contains_link(&self, link: LinkId) -> bool {
        self.links.contains(&link)
    }

    /// The ordered node sequence of the route (`len() + 1` nodes).
    pub fn nodes(&self, net: &Network) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.links.len() + 1);
        out.push(self.src);
        for l in &self.links {
            out.push(net.link(*l).dst());
        }
        out
    }

    /// Number of links shared with `other` (order-insensitive).
    ///
    /// This is the "overlap" the routing schemes minimise: an ideal backup
    /// "overlaps minimally with its primary".
    pub fn overlap(&self, other: &Route) -> usize {
        self.links
            .iter()
            .filter(|l| other.links.contains(l))
            .count()
    }

    /// Returns `true` if the two routes share no links.
    pub fn is_link_disjoint(&self, other: &Route) -> bool {
        self.overlap(other) == 0
    }

    /// Returns `true` if no node repeats along the route (a *simple* path).
    pub fn is_simple(&self, net: &Network) -> bool {
        let nodes = self.nodes(net);
        let mut seen = vec![false; net.num_nodes()];
        for n in nodes {
            if seen[n.index()] {
                return false;
            }
            seen[n.index()] = true;
        }
        true
    }
}

impl fmt::Display for Route {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {} via [", self.src, self.dst)?;
        for (i, l) in self.links.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, "]")
    }
}

impl<'a> IntoIterator for &'a Route {
    type Item = &'a LinkId;
    type IntoIter = std::slice::Iter<'a, LinkId>;

    fn into_iter(self) -> Self::IntoIter {
        self.links.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{topology, Bandwidth};

    fn mesh3() -> Network {
        topology::mesh(3, 3, Bandwidth::from_mbps(10)).unwrap()
    }

    #[test]
    fn from_nodes_resolves_links() {
        let net = mesh3();
        // 0 - 1 - 2 across the top row of the mesh.
        let r = Route::from_nodes(&net, &[NodeId::new(0), NodeId::new(1), NodeId::new(2)]).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(
            r.nodes(&net),
            vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)]
        );
        assert!(r.is_simple(&net));
    }

    #[test]
    fn from_nodes_rejects_non_adjacent() {
        let net = mesh3();
        // 0 and 8 are opposite corners of the 3x3 mesh — not adjacent.
        let err = Route::from_nodes(&net, &[NodeId::new(0), NodeId::new(8)]).unwrap_err();
        assert!(matches!(err, NetError::InvalidRoute(_)));
    }

    #[test]
    fn from_nodes_rejects_single_node() {
        let net = mesh3();
        assert!(Route::from_nodes(&net, &[NodeId::new(0)]).is_err());
    }

    #[test]
    fn new_rejects_discontiguous_links() {
        let net = mesh3();
        let l01 = net.find_link(NodeId::new(0), NodeId::new(1)).unwrap();
        let l34 = net.find_link(NodeId::new(3), NodeId::new(4)).unwrap();
        assert!(Route::new(&net, vec![l01, l34]).is_err());
    }

    #[test]
    fn overlap_counts_shared_links() {
        let net = mesh3();
        let a = Route::from_nodes(&net, &[NodeId::new(0), NodeId::new(1), NodeId::new(2)]).unwrap();
        let b = Route::from_nodes(&net, &[NodeId::new(0), NodeId::new(1), NodeId::new(4)]).unwrap();
        assert_eq!(a.overlap(&b), 1);
        assert!(!a.is_link_disjoint(&b));
        let c = Route::from_nodes(&net, &[NodeId::new(0), NodeId::new(3), NodeId::new(6)]).unwrap();
        assert!(a.is_link_disjoint(&c));
    }

    #[test]
    fn reverse_direction_is_a_different_link() {
        let net = mesh3();
        let fwd = Route::from_nodes(&net, &[NodeId::new(0), NodeId::new(1)]).unwrap();
        let rev = Route::from_nodes(&net, &[NodeId::new(1), NodeId::new(0)]).unwrap();
        // Unidirectional links: opposite directions do not overlap.
        assert_eq!(fwd.overlap(&rev), 0);
    }

    #[test]
    fn simple_detects_node_repeats() {
        let net = mesh3();
        let r = Route::from_nodes(
            &net,
            &[
                NodeId::new(0),
                NodeId::new(1),
                NodeId::new(4),
                NodeId::new(3),
                NodeId::new(0),
                NodeId::new(1),
            ],
        );
        // Walk revisits nodes 0 and 1: valid walk, but not simple.
        let r = r.unwrap();
        assert!(!r.is_simple(&net));
    }

    #[test]
    fn display_lists_links() {
        let net = mesh3();
        let r = Route::from_nodes(&net, &[NodeId::new(0), NodeId::new(1)]).unwrap();
        let s = r.to_string();
        assert!(s.starts_with("n0 -> n1 via ["));
    }
}
