//! Incremental construction of [`Network`]s.

use crate::{Bandwidth, Link, LinkId, NetError, Network, NodeId, SrlgId};

/// Builder for [`Network`] ([C-BUILDER]).
///
/// Node and link ids are assigned densely in insertion order. Self-loops are
/// rejected; parallel links in the same direction are rejected (the paper's
/// model has at most one link per direction between two routers).
///
/// # Example
///
/// ```
/// use drt_net::{NetworkBuilder, Bandwidth};
///
/// # fn main() -> Result<(), drt_net::NetError> {
/// let mut b = NetworkBuilder::new();
/// let n0 = b.add_node_at([0.0, 0.0]);
/// let n1 = b.add_node_at([1.0, 0.0]);
/// let (fwd, rev) = b.add_duplex_link(n0, n1, Bandwidth::from_mbps(100))?;
/// let net = b.build();
/// assert_eq!(net.link(fwd).reverse(), Some(rev));
/// # Ok(())
/// # }
/// ```
///
/// [C-BUILDER]: https://rust-lang.github.io/api-guidelines/type-safety.html
#[derive(Debug, Clone, Default)]
pub struct NetworkBuilder {
    positions: Vec<[f64; 2]>,
    links: Vec<Link>,
    out_adj: Vec<Vec<LinkId>>,
    in_adj: Vec<Vec<LinkId>>,
    srlgs: Vec<Vec<LinkId>>,
}

impl NetworkBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder pre-populated with `n` nodes at the origin.
    pub fn with_nodes(n: usize) -> Self {
        let mut b = Self::new();
        for _ in 0..n {
            b.add_node();
        }
        b
    }

    /// Number of nodes added so far.
    pub fn num_nodes(&self) -> usize {
        self.positions.len()
    }

    /// Number of links added so far.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Adds a node at the origin and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        self.add_node_at([0.0, 0.0])
    }

    /// Adds a node at the given 2-D position and returns its id.
    pub fn add_node_at(&mut self, pos: [f64; 2]) -> NodeId {
        let id = NodeId::new(self.positions.len() as u32);
        self.positions.push(pos);
        self.out_adj.push(Vec::new());
        self.in_adj.push(Vec::new());
        id
    }

    /// Adds one unidirectional link and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownNode`] when an endpoint does not exist,
    /// [`NetError::SelfLoop`] when `src == dst`, and
    /// [`NetError::ParallelLink`] when a `src -> dst` link already exists.
    pub fn add_link(
        &mut self,
        src: NodeId,
        dst: NodeId,
        capacity: Bandwidth,
    ) -> Result<LinkId, NetError> {
        self.check_endpoints(src, dst)?;
        let id = LinkId::new(self.links.len() as u32);
        self.links.push(Link::new(id, src, dst, capacity, None));
        self.out_adj[src.index()].push(id);
        self.in_adj[dst.index()].push(id);
        Ok(id)
    }

    /// Adds a duplex pair of links (one in each direction, equal capacity,
    /// each recorded as the other's [`Link::reverse`]) and returns
    /// `(a_to_b, b_to_a)`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`NetworkBuilder::add_link`], checked for both
    /// directions before either link is inserted.
    pub fn add_duplex_link(
        &mut self,
        a: NodeId,
        b: NodeId,
        capacity: Bandwidth,
    ) -> Result<(LinkId, LinkId), NetError> {
        self.check_endpoints(a, b)?;
        self.check_endpoints(b, a)?;
        let fwd = self.add_link(a, b, capacity)?;
        let rev = self.add_link(b, a, capacity)?;
        self.links[fwd.index()].set_reverse(rev);
        self.links[rev.index()].set_reverse(fwd);
        Ok((fwd, rev))
    }

    /// Registers a shared-risk link group over already-added links and
    /// returns its id. Members are sorted and deduplicated; registering the
    /// duplex twin of each member is the caller's choice (a conduit cut
    /// usually takes both directions, a line-card fault may not).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownLink`] when a member does not exist, and
    /// [`NetError::Infeasible`] for an empty group.
    pub fn add_srlg(&mut self, members: &[LinkId]) -> Result<SrlgId, NetError> {
        if members.is_empty() {
            return Err(NetError::Infeasible("SRLG with no member links".into()));
        }
        for &l in members {
            if l.index() >= self.links.len() {
                return Err(NetError::UnknownLink(l));
            }
        }
        let mut sorted: Vec<LinkId> = members.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let id = SrlgId::new(self.srlgs.len() as u32);
        self.srlgs.push(sorted);
        Ok(id)
    }

    /// Returns `true` if a link `src -> dst` already exists.
    pub fn has_link(&self, src: NodeId, dst: NodeId) -> bool {
        src.index() < self.out_adj.len()
            && self.out_adj[src.index()]
                .iter()
                .any(|l| self.links[l.index()].dst() == dst)
    }

    /// Finalises the builder into an immutable [`Network`].
    pub fn build(self) -> Network {
        Network {
            positions: self.positions,
            links: self.links,
            out_adj: self.out_adj,
            in_adj: self.in_adj,
            srlgs: self.srlgs,
        }
    }

    fn check_endpoints(&self, src: NodeId, dst: NodeId) -> Result<(), NetError> {
        if src.index() >= self.positions.len() {
            return Err(NetError::UnknownNode(src));
        }
        if dst.index() >= self.positions.len() {
            return Err(NetError::UnknownNode(dst));
        }
        if src == dst {
            return Err(NetError::SelfLoop(src));
        }
        if self.has_link(src, dst) {
            return Err(NetError::ParallelLink(src, dst));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_empty() {
        let net = NetworkBuilder::new().build();
        assert!(net.is_empty());
        assert_eq!(net.num_links(), 0);
    }

    #[test]
    fn dense_ids_in_insertion_order() {
        let mut b = NetworkBuilder::new();
        assert_eq!(b.add_node(), NodeId::new(0));
        assert_eq!(b.add_node(), NodeId::new(1));
        let l = b
            .add_link(NodeId::new(0), NodeId::new(1), Bandwidth::from_mbps(1))
            .unwrap();
        assert_eq!(l, LinkId::new(0));
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = NetworkBuilder::with_nodes(1);
        let err = b
            .add_link(NodeId::new(0), NodeId::new(0), Bandwidth::ZERO)
            .unwrap_err();
        assert_eq!(err, NetError::SelfLoop(NodeId::new(0)));
    }

    #[test]
    fn rejects_unknown_node() {
        let mut b = NetworkBuilder::with_nodes(1);
        let err = b
            .add_link(NodeId::new(0), NodeId::new(5), Bandwidth::ZERO)
            .unwrap_err();
        assert_eq!(err, NetError::UnknownNode(NodeId::new(5)));
    }

    #[test]
    fn rejects_parallel_link_same_direction() {
        let mut b = NetworkBuilder::with_nodes(2);
        b.add_link(NodeId::new(0), NodeId::new(1), Bandwidth::ZERO)
            .unwrap();
        let err = b
            .add_link(NodeId::new(0), NodeId::new(1), Bandwidth::ZERO)
            .unwrap_err();
        assert_eq!(err, NetError::ParallelLink(NodeId::new(0), NodeId::new(1)));
        // The opposite direction is fine.
        b.add_link(NodeId::new(1), NodeId::new(0), Bandwidth::ZERO)
            .unwrap();
    }

    #[test]
    fn duplex_links_know_their_twin() {
        let mut b = NetworkBuilder::with_nodes(2);
        let (f, r) = b
            .add_duplex_link(NodeId::new(0), NodeId::new(1), Bandwidth::from_mbps(5))
            .unwrap();
        let net = b.build();
        assert_eq!(net.link(f).reverse(), Some(r));
        assert_eq!(net.link(r).reverse(), Some(f));
        assert_eq!(net.link(f).capacity(), net.link(r).capacity());
    }

    #[test]
    fn srlg_members_sorted_and_deduped() {
        let mut b = NetworkBuilder::with_nodes(3);
        let (f, r) = b
            .add_duplex_link(NodeId::new(0), NodeId::new(1), Bandwidth::ZERO)
            .unwrap();
        let l = b
            .add_link(NodeId::new(1), NodeId::new(2), Bandwidth::ZERO)
            .unwrap();
        let g = b.add_srlg(&[l, f, r, f]).unwrap();
        assert_eq!(g, SrlgId::new(0));
        let net = b.build();
        assert_eq!(net.srlg(g), &[f, r, l]);
        assert_eq!(net.num_srlgs(), 1);
    }

    #[test]
    fn srlg_rejects_empty_and_unknown() {
        let mut b = NetworkBuilder::with_nodes(2);
        assert!(b.add_srlg(&[]).is_err());
        let err = b.add_srlg(&[LinkId::new(7)]).unwrap_err();
        assert_eq!(err, NetError::UnknownLink(LinkId::new(7)));
    }

    #[test]
    fn duplex_rejects_existing_direction_atomically() {
        let mut b = NetworkBuilder::with_nodes(2);
        b.add_link(NodeId::new(1), NodeId::new(0), Bandwidth::ZERO)
            .unwrap();
        let before = b.num_links();
        let err = b
            .add_duplex_link(NodeId::new(0), NodeId::new(1), Bandwidth::ZERO)
            .unwrap_err();
        assert_eq!(err, NetError::ParallelLink(NodeId::new(1), NodeId::new(0)));
        assert_eq!(b.num_links(), before, "no partial insertion");
    }
}
