//! Bellman–Ford single-source shortest paths.
//!
//! The paper notes that the bounded-flooding distance tables "can be
//! calculated using the Dijkstra's algorithm or the Bellman–Ford
//! distance-vector algorithm"; this module provides the latter, and the
//! test-suite cross-checks the two implementations against each other.

use crate::{LinkId, Network, NodeId, Route};

/// Result of a [`bellman_ford`] run.
#[derive(Debug, Clone)]
pub struct BellmanFordOutcome {
    source: NodeId,
    dist: Vec<Option<f64>>,
    parent_link: Vec<Option<LinkId>>,
    negative_cycle: bool,
}

impl BellmanFordOutcome {
    /// The source node.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Cost of the cheapest route to `node`, or `None` if unreachable.
    ///
    /// Distances are meaningless when [`BellmanFordOutcome::has_negative_cycle`]
    /// is `true`.
    pub fn distance(&self, node: NodeId) -> Option<f64> {
        self.dist.get(node.index()).copied().flatten()
    }

    /// Returns `true` when a negative-cost cycle reachable from the source
    /// was detected.
    pub fn has_negative_cycle(&self) -> bool {
        self.negative_cycle
    }

    /// Reconstructs the cheapest route to `dest` (see
    /// [`crate::algo::ShortestPathTree::route_to`] for semantics).
    pub fn route_to(&self, net: &Network, dest: NodeId) -> Option<Route> {
        if self.negative_cycle || dest == self.source {
            return None;
        }
        self.dist.get(dest.index()).copied().flatten()?;
        let mut links = Vec::new();
        let mut cur = dest;
        while cur != self.source {
            let link = self.parent_link[cur.index()]?;
            links.push(link);
            cur = net.link(link).src();
            if links.len() > net.num_links() {
                return None; // defensive: malformed parent chain
            }
        }
        links.reverse();
        Route::new(net, links).ok()
    }
}

/// Runs Bellman–Ford from `src`. Unlike Dijkstra, negative link costs are
/// allowed; a reachable negative cycle is reported through
/// [`BellmanFordOutcome::has_negative_cycle`].
///
/// Links for which `cost` returns `None` are excluded.
pub fn bellman_ford(
    net: &Network,
    src: NodeId,
    mut cost: impl FnMut(LinkId) -> Option<f64>,
) -> BellmanFordOutcome {
    let n = net.num_nodes();
    let mut dist: Vec<Option<f64>> = vec![None; n];
    let mut parent_link: Vec<Option<LinkId>> = vec![None; n];
    if src.index() < n {
        dist[src.index()] = Some(0.0);
    }

    // Pre-resolve costs once: the closure may be stateful, and Bellman–Ford
    // relaxes each link many times.
    let costs: Vec<Option<f64>> = net.links().map(|l| cost(l.id())).collect();

    let mut changed = true;
    for _round in 0..n.saturating_sub(1) {
        if !changed {
            break;
        }
        changed = false;
        for link in net.links() {
            let Some(c) = costs[link.id().index()] else {
                continue;
            };
            let Some(du) = dist[link.src().index()] else {
                continue;
            };
            let cand = du + c;
            let better = match dist[link.dst().index()] {
                None => true,
                Some(cur) => cand < cur - 1e-12,
            };
            if better {
                dist[link.dst().index()] = Some(cand);
                parent_link[link.dst().index()] = Some(link.id());
                changed = true;
            }
        }
    }

    // One more pass detects negative cycles.
    let mut negative_cycle = false;
    if changed {
        for link in net.links() {
            let Some(c) = costs[link.id().index()] else {
                continue;
            };
            let Some(du) = dist[link.src().index()] else {
                continue;
            };
            if let Some(dv) = dist[link.dst().index()] {
                if du + c < dv - 1e-9 {
                    negative_cycle = true;
                    break;
                }
            }
        }
    }

    BellmanFordOutcome {
        source: src,
        dist,
        parent_link,
        negative_cycle,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::shortest_path_tree;
    use crate::{topology, Bandwidth, NetworkBuilder};

    const CAP: Bandwidth = Bandwidth::from_mbps(10);

    #[test]
    fn agrees_with_dijkstra_on_unit_costs() {
        let net = topology::mesh(4, 5, CAP).unwrap();
        let bf = bellman_ford(&net, NodeId::new(0), |_| Some(1.0));
        let dj = shortest_path_tree(&net, NodeId::new(0), |_| Some(1.0));
        for node in net.nodes() {
            assert_eq!(bf.distance(node), dj.distance(node), "node {node}");
        }
        assert!(!bf.has_negative_cycle());
    }

    #[test]
    fn handles_negative_costs_without_cycle() {
        // 0 -> 1 -> 2 with a negative middle edge; plain directed line.
        let mut b = NetworkBuilder::with_nodes(3);
        let l01 = b.add_link(NodeId::new(0), NodeId::new(1), CAP).unwrap();
        let l12 = b.add_link(NodeId::new(1), NodeId::new(2), CAP).unwrap();
        let net = b.build();
        let bf = bellman_ford(&net, NodeId::new(0), |l| {
            Some(if l == l01 {
                2.0
            } else if l == l12 {
                -1.0
            } else {
                1.0
            })
        });
        assert_eq!(bf.distance(NodeId::new(2)), Some(1.0));
        assert!(!bf.has_negative_cycle());
    }

    #[test]
    fn detects_negative_cycle() {
        let net = topology::ring(3, CAP).unwrap();
        let bf = bellman_ford(&net, NodeId::new(0), |_| Some(-1.0));
        assert!(bf.has_negative_cycle());
        assert!(bf.route_to(&net, NodeId::new(1)).is_none());
    }

    #[test]
    fn route_reconstruction() {
        let net = topology::ring(5, CAP).unwrap();
        let bf = bellman_ford(&net, NodeId::new(0), |_| Some(1.0));
        let r = bf.route_to(&net, NodeId::new(2)).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.dest(), NodeId::new(2));
        assert!(bf.route_to(&net, NodeId::new(0)).is_none());
    }

    #[test]
    fn excluded_links_unreachable() {
        let net = topology::ring(4, CAP).unwrap();
        let bf = bellman_ford(&net, NodeId::new(0), |_| None);
        for node in net.nodes().skip(1) {
            assert_eq!(bf.distance(node), None);
        }
    }
}
