//! Path algorithms over [`crate::Network`].
//!
//! All search functions take the link cost as a closure
//! `Fn(LinkId) -> Option<f64>`: returning `None` excludes the link entirely
//! (used for bandwidth-infeasible or failed links), mirroring how the
//! paper's routing schemes assign the large constant `Q` — except that an
//! explicit exclusion is available for *hard* constraints while `Q` remains
//! available for *soft* ones, as the schemes require.
//!
//! * [`shortest_path`] / [`shortest_path_tree`] — Dijkstra (non-negative
//!   costs), the workhorse of both link-state schemes;
//! * [`DynamicSpt`] — a materialised Dijkstra tree repaired incrementally
//!   after link fail/restore/reweight deltas instead of recomputed;
//! * [`bellman_ford`] — distance-vector style relaxation, mentioned by the
//!   paper as the alternative way to build distance tables;
//! * [`AllPairsHops`] / [`DistanceTable`] — the per-node `D^j_{i,k}` tables
//!   the bounded-flooding scheme consults;
//! * [`k_shortest_paths`] — Yen's algorithm, used by baseline schemes;
//! * [`suurballe`] / [`two_step_disjoint_pair`] — link-disjoint path pairs,
//!   used by the dedicated-backup baseline;
//! * [`is_strongly_connected`] and friends — reachability utilities.

mod bellman_ford;
mod connectivity;
mod dijkstra;
mod disjoint;
mod distance_table;
mod dynamic_spt;
mod flow;
mod yen;

pub use bellman_ford::{bellman_ford, BellmanFordOutcome};
pub use connectivity::{
    bfs_hops, bfs_hops_filtered, bridges, is_strongly_connected, reachable_from,
    weakly_connected_components,
};
pub use dijkstra::{
    shortest_path, shortest_path_hops, shortest_path_in, shortest_path_tree, ShortestPathTree,
    SpfWorkspace,
};
pub use disjoint::{suurballe, two_step_disjoint_pair, DisjointPair};
pub use distance_table::{AllPairsHops, DistanceTable};
pub use dynamic_spt::DynamicSpt;
pub use flow::{edge_connectivity, max_flow, MaxFlow};
pub use yen::k_shortest_paths;
