//! Incremental single-source shortest-path tree repair.
//!
//! [`DynamicSpt`] materialises one Dijkstra tree and *repairs* it after a
//! batch of link deltas — fail, restore, or reweight — instead of
//! re-running the search from scratch. The repair is the Ramalingam–Reps
//! recipe specialised to the failure model of the paper:
//!
//! 1. **Detach** the subtree hanging below every changed link that no
//!    longer supports its tree distance (the link vanished or its new
//!    cost breaks `dist[src] + w = dist[dst]`), marking those nodes
//!    unreachable-for-now.
//! 2. **Seed** a repair frontier: every intact→detached boundary link
//!    offers its `dist[src] + w` back in, and every changed link with a
//!    finite new cost offers a possible improvement (this is what makes
//!    restores and cost decreases repairable by the same pass).
//! 3. **Relax** the frontier with a lazy-deletion Dijkstra loop until it
//!    drains; nodes the frontier never reaches stay unreachable.
//!
//! A delta that misses the tree costs `O(|changed|)`; a delta that hits
//! it costs `O(affected subtree + its frontier)` — on the paper's sparse
//! topologies, orders of magnitude below the full `O((n + N) log n)`
//! recompute the per-event hop-table refresh used to pay.
//!
//! The full recompute survives as [`DynamicSpt::rebuild_baseline`]
//! (running on the generation-stamped [`SpfWorkspace`] scratch), and the
//! delta-trace property tests prove the repaired tree bit-for-bit equal
//! to it: identical reachable sets, identical distances, and a parent
//! structure that certifies those distances.

use crate::algo::dijkstra::with_scratch;
use crate::{LinkId, Network, NodeId, Route};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A min-heap entry of the repair frontier, ordered by cost with ties
/// broken by node id then link id so the repair is deterministic.
#[derive(Debug, Clone, PartialEq)]
struct RepairEntry {
    cost: f64,
    node: NodeId,
    via: LinkId,
}

impl Eq for RepairEntry {}

impl Ord for RepairEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; costs are finite by construction.
        other
            .cost
            .partial_cmp(&self.cost)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.index().cmp(&self.node.index()))
            .then_with(|| other.via.index().cmp(&self.via.index()))
    }
}

impl PartialOrd for RepairEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A repairable single-source shortest-path tree.
///
/// Unlike the transient [`SpfWorkspace`] search this struct *owns* its
/// distances and parent links, so it can be held for the lifetime of a
/// topology and patched with [`DynamicSpt::update_links`] as links fail,
/// restore, or change cost. Unreachable nodes carry an infinite
/// distance.
#[derive(Debug, Clone)]
pub struct DynamicSpt {
    source: NodeId,
    dist: Vec<f64>,
    parent_link: Vec<Option<LinkId>>,
    // Repair scratch, persistent so updates are allocation-free.
    heap: BinaryHeap<RepairEntry>,
    detached: Vec<bool>,
    work: Vec<NodeId>,
    torn: Vec<NodeId>,
}

impl DynamicSpt {
    /// Builds the tree with a full Dijkstra run from `src` (through the
    /// thread-local [`SpfWorkspace`] scratch). Links for which `cost`
    /// returns `None` are excluded; negative costs are clamped to zero,
    /// as in every search of this module.
    pub fn build(net: &Network, src: NodeId, cost: impl FnMut(LinkId) -> Option<f64>) -> Self {
        let n = net.num_nodes();
        let mut spt = DynamicSpt {
            source: src,
            dist: vec![f64::INFINITY; n],
            // lint:allow(spf-alloc) — one-shot construction of the owned tree
            parent_link: vec![None; n],
            // lint:allow(spf-alloc) — repair scratch, reused across updates
            heap: BinaryHeap::new(),
            // lint:allow(spf-alloc) — repair scratch, reused across updates
            detached: vec![false; n],
            work: Vec::new(),
            torn: Vec::new(),
        };
        spt.rebuild_baseline(net, cost);
        spt
    }

    /// Recomputes the whole tree from scratch — the reference the
    /// incremental repair is proven bit-for-bit equivalent to by the
    /// delta-trace property tests, and the before-arm of the `spt_repair`
    /// benchmark.
    pub fn rebuild_baseline(&mut self, net: &Network, cost: impl FnMut(LinkId) -> Option<f64>) {
        let n = net.num_nodes();
        with_scratch(|ws| {
            ws.run(net, self.source, cost);
            for i in 0..n {
                let node = NodeId::new(i as u32);
                match ws.distance(node) {
                    Some(d) => {
                        self.dist[i] = d;
                        self.parent_link[i] = ws.parent_link(node);
                    }
                    None => {
                        self.dist[i] = f64::INFINITY;
                        self.parent_link[i] = None;
                    }
                }
            }
        });
    }

    /// The source node the tree is grown from.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Cost of the cheapest route to `node`, or `None` if unreachable.
    pub fn distance(&self, node: NodeId) -> Option<f64> {
        let d = self.dist[node.index()];
        d.is_finite().then_some(d)
    }

    /// The tree link reaching `node`; `None` for the source and
    /// unreachable nodes.
    pub fn parent(&self, node: NodeId) -> Option<LinkId> {
        self.parent_link[node.index()]
    }

    /// Reconstructs the cheapest route from the source to `dest`, or
    /// `None` when `dest` is unreachable or equal to the source.
    pub fn route_to(&self, net: &Network, dest: NodeId) -> Option<Route> {
        if dest == self.source {
            return None;
        }
        self.distance(dest)?;
        let mut links = Vec::new();
        let mut cur = dest;
        while cur != self.source {
            let link = self.parent_link[cur.index()]?;
            links.push(link);
            cur = net.link(link).src();
        }
        links.reverse();
        Route::new(net, links).ok()
    }

    /// Repairs the tree after the links in `changed` switched to the
    /// state described by `cost` (which must reflect the *new* topology:
    /// `None` for a failed link, the new weight otherwise). Handles
    /// fails, restores, and reweights — in any mix — in one pass, and
    /// returns `true` when any distance or parent may have moved (the
    /// caller's cue to refresh projections such as hop-table rows).
    pub fn update_links(
        &mut self,
        net: &Network,
        changed: &[LinkId],
        mut cost: impl FnMut(LinkId) -> Option<f64>,
    ) -> bool {
        // Phase 1: find the detach roots — changed tree links that no
        // longer support the distance of the node they reach.
        self.work.clear();
        self.torn.clear();
        for &l in changed {
            let v = net.link(l).dst();
            if self.parent_link[v.index()] != Some(l) {
                continue;
            }
            let u = net.link(l).src();
            let supported = match cost(l) {
                Some(w) => self.dist[u.index()] + w.max(0.0) == self.dist[v.index()],
                None => false,
            };
            if !supported {
                self.work.push(v);
            }
        }
        // Collapse each root's whole tree descendance: a detached node's
        // children lose their distance certificate with it.
        while let Some(x) = self.work.pop() {
            if self.detached[x.index()] {
                continue;
            }
            self.detached[x.index()] = true;
            self.torn.push(x);
            for &e in net.out_links(x) {
                let child = net.link(e).dst();
                if self.parent_link[child.index()] == Some(e) {
                    self.work.push(child);
                }
            }
        }
        for &x in &self.torn {
            self.dist[x.index()] = f64::INFINITY;
            self.parent_link[x.index()] = None;
        }

        // Phase 2: seed the repair frontier. Intact neighbours offer the
        // detached nodes a way back in; changed links with a finite new
        // cost may improve even fully intact nodes (restores, decreases).
        self.heap.clear();
        for &x in &self.torn {
            for &e in net.in_links(x) {
                let u = net.link(e).src();
                if self.detached[u.index()] || !self.dist[u.index()].is_finite() {
                    continue;
                }
                if let Some(w) = cost(e) {
                    self.heap.push(RepairEntry {
                        cost: self.dist[u.index()] + w.max(0.0),
                        node: x,
                        via: e,
                    });
                }
            }
        }
        for &l in changed {
            let u = net.link(l).src();
            if self.detached[u.index()] || !self.dist[u.index()].is_finite() {
                continue;
            }
            if let Some(w) = cost(l) {
                let cand = self.dist[u.index()] + w.max(0.0);
                if cand < self.dist[net.link(l).dst().index()] {
                    self.heap.push(RepairEntry {
                        cost: cand,
                        node: net.link(l).dst(),
                        via: l,
                    });
                }
            }
        }

        // Phase 3: lazy-deletion relaxation until the frontier drains.
        let mut moved = !self.torn.is_empty();
        while let Some(RepairEntry { cost: d, node, via }) = self.heap.pop() {
            let i = node.index();
            if d >= self.dist[i] {
                continue;
            }
            self.dist[i] = d;
            self.parent_link[i] = Some(via);
            moved = true;
            for &e in net.out_links(node) {
                if let Some(w) = cost(e) {
                    let cand = d + w.max(0.0);
                    if cand < self.dist[net.link(e).dst().index()] {
                        self.heap.push(RepairEntry {
                            cost: cand,
                            node: net.link(e).dst(),
                            via: e,
                        });
                    }
                }
            }
        }
        for &x in &self.torn {
            self.detached[x.index()] = false;
        }
        moved
    }

    /// First node where this tree's *distances* diverge from `other`'s
    /// (different reachability or a different cost), or `None` when the
    /// two agree bit-for-bit. Parent links are deliberately not compared:
    /// equal-cost ties may resolve differently between a repair and a
    /// fresh run, and either certificate is a valid shortest-path tree —
    /// which [`DynamicSpt::certify`] checks structurally.
    pub fn first_divergence(&self, other: &DynamicSpt) -> Option<NodeId> {
        if self.source != other.source {
            return Some(self.source);
        }
        (0..self.dist.len().min(other.dist.len()))
            .find(|&i| {
                let (a, b) = (self.dist[i], other.dist[i]);
                a.is_finite() != b.is_finite() || (a.is_finite() && a.to_bits() != b.to_bits())
            })
            .map(|i| NodeId::new(i as u32))
    }

    /// Checks that the parent structure certifies the stored distances
    /// under `cost`: every reachable non-source node has a parent link
    /// with `dist[src] + w = dist[node]` exactly, the source sits at
    /// distance zero, and unreachable nodes have no parent. Returns the
    /// first violating node, `None` when the tree is sound.
    pub fn certify(
        &self,
        net: &Network,
        mut cost: impl FnMut(LinkId) -> Option<f64>,
    ) -> Option<NodeId> {
        for i in 0..self.dist.len() {
            let node = NodeId::new(i as u32);
            if node == self.source {
                // Exactly +0.0 (all-zero bits), never a parent.
                if self.dist[i].to_bits() != 0 || self.parent_link[i].is_some() {
                    return Some(node);
                }
                continue;
            }
            match self.parent_link[i] {
                Some(l) => {
                    let u = net.link(l).src();
                    let ok = net.link(l).dst() == node
                        && matches!(cost(l), Some(w) if self.dist[u.index()] + w.max(0.0) == self.dist[i]);
                    if !ok {
                        return Some(node);
                    }
                }
                None => {
                    if self.dist[i].is_finite() {
                        return Some(node);
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{topology, Bandwidth};

    const CAP: Bandwidth = Bandwidth::from_mbps(10);

    fn unit_if(alive: &[bool]) -> impl FnMut(LinkId) -> Option<f64> + '_ {
        move |l| alive[l.index()].then_some(1.0)
    }

    #[test]
    fn build_matches_workspace_dijkstra() {
        let net = topology::mesh(4, 4, CAP).unwrap();
        let spt = DynamicSpt::build(&net, NodeId::new(0), |_| Some(1.0));
        let tree = crate::algo::shortest_path_tree(&net, NodeId::new(0), |_| Some(1.0));
        for node in net.nodes() {
            assert_eq!(spt.distance(node), tree.distance(node));
            assert_eq!(spt.route_to(&net, node), tree.route_to(&net, node));
        }
        assert_eq!(spt.source(), NodeId::new(0));
        assert!(spt.certify(&net, |_| Some(1.0)).is_none());
    }

    #[test]
    fn fail_and_restore_round_trip() {
        let net = topology::mesh(4, 4, CAP).unwrap();
        let mut alive = vec![true; net.num_links()];
        let mut spt = DynamicSpt::build(&net, NodeId::new(0), unit_if(&alive));
        let baseline = spt.clone();

        // Fail a tree link: distances must match a fresh run on the
        // masked topology.
        let l = spt.parent(NodeId::new(15)).unwrap();
        alive[l.index()] = false;
        assert!(spt.update_links(&net, &[l], unit_if(&alive)));
        let fresh = DynamicSpt::build(&net, NodeId::new(0), unit_if(&alive));
        assert_eq!(spt.first_divergence(&fresh), None);
        assert!(spt.certify(&net, unit_if(&alive)).is_none());

        // Restore it: the tree must return to the original distances.
        alive[l.index()] = true;
        spt.update_links(&net, &[l], unit_if(&alive));
        assert_eq!(spt.first_divergence(&baseline), None);
        assert!(spt.certify(&net, unit_if(&alive)).is_none());
    }

    #[test]
    fn disconnecting_batch_marks_unreachable() {
        // Cutting both links out of node 0 in a ring strands everything.
        let net = topology::ring(6, CAP).unwrap();
        let mut alive = vec![true; net.num_links()];
        let mut spt = DynamicSpt::build(&net, NodeId::new(0), unit_if(&alive));
        let out: Vec<LinkId> = net.out_links(NodeId::new(0)).to_vec();
        for &l in &out {
            alive[l.index()] = false;
        }
        assert!(spt.update_links(&net, &out, unit_if(&alive)));
        assert_eq!(spt.distance(NodeId::new(0)), Some(0.0));
        for i in 1..6 {
            assert_eq!(spt.distance(NodeId::new(i)), None, "node {i}");
            assert!(spt.route_to(&net, NodeId::new(i)).is_none());
        }
        assert!(spt.certify(&net, unit_if(&alive)).is_none());
    }

    #[test]
    fn miss_deltas_are_cheap_no_ops() {
        let net = topology::mesh(4, 4, CAP).unwrap();
        let mut spt = DynamicSpt::build(&net, NodeId::new(0), |_| Some(1.0));
        let baseline = spt.clone();
        // Reweighting a non-tree link to a worse cost changes nothing.
        let non_tree: Vec<LinkId> = net
            .links()
            .map(|l| l.id())
            .filter(|&l| spt.parent(net.link(l).dst()) != Some(l))
            .take(3)
            .collect();
        let moved = spt.update_links(&net, &non_tree, |l| {
            Some(if non_tree.contains(&l) { 9.0 } else { 1.0 })
        });
        assert!(!moved);
        assert_eq!(spt.first_divergence(&baseline), None);
    }

    #[test]
    fn reweight_decrease_reroutes_through_shortcut() {
        // Ring 0-1-2-3-4-5: make the long-way-around links free so node 3
        // becomes cheaper counter-clockwise.
        let net = topology::ring(6, CAP).unwrap();
        let l05 = net.find_link(NodeId::new(0), NodeId::new(5)).unwrap();
        let l54 = net.find_link(NodeId::new(5), NodeId::new(4)).unwrap();
        let l43 = net.find_link(NodeId::new(4), NodeId::new(3)).unwrap();
        let cheap = [l05, l54, l43];
        let weight = |l: LinkId| Some(if cheap.contains(&l) { 0.25 } else { 1.0 });
        let mut spt = DynamicSpt::build(&net, NodeId::new(0), |_| Some(1.0));
        assert_eq!(spt.distance(NodeId::new(3)), Some(3.0));
        assert!(spt.update_links(&net, &cheap, weight));
        let fresh = DynamicSpt::build(&net, NodeId::new(0), weight);
        assert_eq!(spt.first_divergence(&fresh), None);
        assert_eq!(spt.distance(NodeId::new(3)), Some(0.75));
        assert!(spt.certify(&net, weight).is_none());
    }

    #[test]
    fn random_delta_traces_match_baseline() {
        // Deterministic pseudo-random fail/restore churn over a mesh:
        // after every batch the repaired tree must equal a from-scratch
        // rebuild bit-for-bit and certify its own distances.
        let net = topology::mesh(5, 5, CAP).unwrap();
        let n = net.num_links();
        let mut alive = vec![true; n];
        let mut spt = DynamicSpt::build(&net, NodeId::new(7), unit_if(&alive));
        let mut state = 0x9E3779B97F4A7C15u64;
        for round in 0..200 {
            let mut batch = Vec::new();
            for _ in 0..(1 + round % 3) {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let l = (state >> 33) as usize % n;
                alive[l] = !alive[l];
                batch.push(LinkId::new(l as u32));
            }
            spt.update_links(&net, &batch, unit_if(&alive));
            let mut fresh = spt.clone();
            fresh.rebuild_baseline(&net, unit_if(&alive));
            assert_eq!(spt.first_divergence(&fresh), None, "round {round}");
            assert!(
                spt.certify(&net, unit_if(&alive)).is_none(),
                "round {round}"
            );
        }
    }
}
