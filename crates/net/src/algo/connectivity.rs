//! Reachability and connectivity utilities.

use crate::{Network, NodeId};
use std::collections::VecDeque;

/// Breadth-first hop counts from `src` along directed links; `None` for
/// unreachable nodes.
pub fn bfs_hops(net: &Network, src: NodeId) -> Vec<Option<u32>> {
    bfs_hops_filtered(net, src, |_| true)
}

/// [`bfs_hops`] restricted to links for which `usable` returns `true`
/// (e.g. masking failed links).
pub fn bfs_hops_filtered(
    net: &Network,
    src: NodeId,
    mut usable: impl FnMut(crate::LinkId) -> bool,
) -> Vec<Option<u32>> {
    let mut dist = vec![None; net.num_nodes()];
    if src.index() >= net.num_nodes() {
        return dist;
    }
    dist[src.index()] = Some(0);
    let mut queue = VecDeque::from([src]);
    while let Some(node) = queue.pop_front() {
        let d = dist[node.index()].expect("queued nodes have distances");
        for &lid in net.out_links(node) {
            if !usable(lid) {
                continue;
            }
            let next = net.link(lid).dst();
            if dist[next.index()].is_none() {
                dist[next.index()] = Some(d + 1);
                queue.push_back(next);
            }
        }
    }
    dist
}

/// The set of nodes reachable from `src` along directed links (including
/// `src` itself), as a boolean mask indexed by node.
pub fn reachable_from(net: &Network, src: NodeId) -> Vec<bool> {
    bfs_hops(net, src)
        .into_iter()
        .map(|d| d.is_some())
        .collect()
}

/// Returns `true` when every node can reach every other node along directed
/// links.
///
/// Uses the standard double-BFS check (forward from node 0, then along
/// reversed links), which is exact for strong connectivity.
pub fn is_strongly_connected(net: &Network) -> bool {
    let n = net.num_nodes();
    if n <= 1 {
        return true;
    }
    let start = NodeId::new(0);
    if reachable_from(net, start).iter().any(|r| !r) {
        return false;
    }
    // Reverse reachability via in-links.
    let mut seen = vec![false; n];
    seen[start.index()] = true;
    let mut queue = VecDeque::from([start]);
    while let Some(node) = queue.pop_front() {
        for &lid in net.in_links(node) {
            let prev = net.link(lid).src();
            if !seen[prev.index()] {
                seen[prev.index()] = true;
                queue.push_back(prev);
            }
        }
    }
    seen.into_iter().all(|s| s)
}

/// Finds all bridges of the network's *undirected view* (each unordered
/// node pair with at least one link in either direction counts as one
/// edge). Returns the bridge endpoints as `(lower, higher)` node-id pairs,
/// sorted.
///
/// A bridge is an edge whose removal disconnects its component. For DRTP,
/// bridges mark exactly the links for which *no* connection crossing them
/// can ever have a link-disjoint backup — a structural cap on fault
/// tolerance that the topology generators therefore avoid.
pub fn bridges(net: &Network) -> Vec<(NodeId, NodeId)> {
    let n = net.num_nodes();
    // Undirected simple adjacency with edge multiplicity.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut multiplicity = std::collections::HashMap::<(usize, usize), u32>::new();
    for link in net.links() {
        let (a, b) = (link.src().index(), link.dst().index());
        let key = (a.min(b), a.max(b));
        let m = multiplicity.entry(key).or_insert(0);
        *m += 1;
        if *m == 1 {
            adj[a].push(b);
            adj[b].push(a);
        }
    }
    // A duplex pair (two directed links) is still ONE undirected edge.
    // Count an undirected edge as parallel only if > 2 directed links or
    // two independent directed links in the same direction cannot exist
    // (builder forbids), so: multiplicity 2 == duplex pair == single edge.
    let is_parallel = |a: usize, b: usize| multiplicity[&(a.min(b), a.max(b))] > 2;

    let mut disc = vec![0usize; n];
    let mut low = vec![0usize; n];
    let mut visited = vec![false; n];
    let mut out = Vec::new();
    let mut timer = 1usize;

    // Iterative DFS to keep stack depth independent of graph size.
    for start in 0..n {
        if visited[start] {
            continue;
        }
        // (node, parent, next child index)
        let mut stack: Vec<(usize, usize, usize)> = vec![(start, usize::MAX, 0)];
        visited[start] = true;
        disc[start] = timer;
        low[start] = timer;
        timer += 1;
        while let Some(frame) = stack.last_mut() {
            let (u, parent) = (frame.0, frame.1);
            if frame.2 < adj[u].len() {
                let v = adj[u][frame.2];
                frame.2 += 1;
                if !visited[v] {
                    visited[v] = true;
                    disc[v] = timer;
                    low[v] = timer;
                    timer += 1;
                    stack.push((v, u, 0));
                } else if v != parent || is_parallel(u, v) {
                    low[u] = low[u].min(disc[v]);
                }
            } else {
                stack.pop();
                if let Some(pframe) = stack.last_mut() {
                    let p = pframe.0;
                    low[p] = low[p].min(low[u]);
                    if low[u] > disc[p] && !is_parallel(p, u) {
                        out.push((NodeId::new(p.min(u) as u32), NodeId::new(p.max(u) as u32)));
                    }
                }
            }
        }
    }
    out.sort();
    out
}

/// Partitions nodes into weakly connected components (direction ignored).
/// Returns one sorted vector of node ids per component, ordered by smallest
/// member.
pub fn weakly_connected_components(net: &Network) -> Vec<Vec<NodeId>> {
    let n = net.num_nodes();
    let mut comp = vec![usize::MAX; n];
    let mut count = 0;
    for start in net.nodes() {
        if comp[start.index()] != usize::MAX {
            continue;
        }
        comp[start.index()] = count;
        let mut queue = VecDeque::from([start]);
        while let Some(node) = queue.pop_front() {
            let mut visit = |next: NodeId| {
                if comp[next.index()] == usize::MAX {
                    comp[next.index()] = count;
                    queue.push_back(next);
                }
            };
            for &lid in net.out_links(node) {
                visit(net.link(lid).dst());
            }
            for &lid in net.in_links(node) {
                visit(net.link(lid).src());
            }
        }
        count += 1;
    }
    let mut out = vec![Vec::new(); count];
    for node in net.nodes() {
        out[comp[node.index()]].push(node);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{topology, Bandwidth, NetworkBuilder};

    const CAP: Bandwidth = Bandwidth::from_mbps(10);

    #[test]
    fn bfs_on_ring() {
        let net = topology::ring(6, CAP).unwrap();
        let d = bfs_hops(&net, NodeId::new(0));
        assert_eq!(d[0], Some(0));
        assert_eq!(d[3], Some(3));
        assert_eq!(d[4], Some(2));
    }

    #[test]
    fn disconnected_components_detected() {
        let mut b = NetworkBuilder::with_nodes(5);
        b.add_duplex_link(NodeId::new(0), NodeId::new(1), CAP)
            .unwrap();
        b.add_duplex_link(NodeId::new(2), NodeId::new(3), CAP)
            .unwrap();
        let net = b.build();
        assert!(!is_strongly_connected(&net));
        let comps = weakly_connected_components(&net);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], vec![NodeId::new(0), NodeId::new(1)]);
        assert_eq!(comps[1], vec![NodeId::new(2), NodeId::new(3)]);
        assert_eq!(comps[2], vec![NodeId::new(4)]);
    }

    #[test]
    fn one_way_link_breaks_strong_connectivity() {
        let mut b = NetworkBuilder::with_nodes(2);
        b.add_link(NodeId::new(0), NodeId::new(1), CAP).unwrap();
        let net = b.build();
        assert!(!is_strongly_connected(&net));
        assert_eq!(weakly_connected_components(&net).len(), 1);
    }

    #[test]
    fn empty_and_singleton_are_connected() {
        assert!(is_strongly_connected(&NetworkBuilder::new().build()));
        assert!(is_strongly_connected(
            &NetworkBuilder::with_nodes(1).build()
        ));
    }

    #[test]
    fn bridges_on_path_graph() {
        let mut b = NetworkBuilder::with_nodes(4);
        for i in 0..3u32 {
            b.add_duplex_link(NodeId::new(i), NodeId::new(i + 1), CAP)
                .unwrap();
        }
        let net = b.build();
        assert_eq!(
            bridges(&net),
            vec![
                (NodeId::new(0), NodeId::new(1)),
                (NodeId::new(1), NodeId::new(2)),
                (NodeId::new(2), NodeId::new(3)),
            ]
        );
    }

    #[test]
    fn ring_has_no_bridges() {
        let net = topology::ring(6, CAP).unwrap();
        assert!(bridges(&net).is_empty());
    }

    #[test]
    fn barbell_bridge() {
        // Two triangles joined by one edge: exactly that edge is a bridge.
        let mut b = NetworkBuilder::with_nodes(6);
        for (x, y) in [(0u32, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)] {
            b.add_duplex_link(NodeId::new(x), NodeId::new(y), CAP)
                .unwrap();
        }
        let net = b.build();
        assert_eq!(bridges(&net), vec![(NodeId::new(2), NodeId::new(3))]);
    }

    #[test]
    fn bridges_across_disconnected_components() {
        let mut b = NetworkBuilder::with_nodes(5);
        b.add_duplex_link(NodeId::new(0), NodeId::new(1), CAP)
            .unwrap();
        b.add_duplex_link(NodeId::new(2), NodeId::new(3), CAP)
            .unwrap();
        b.add_duplex_link(NodeId::new(3), NodeId::new(4), CAP)
            .unwrap();
        b.add_duplex_link(NodeId::new(4), NodeId::new(2), CAP)
            .unwrap();
        let net = b.build();
        assert_eq!(bridges(&net), vec![(NodeId::new(0), NodeId::new(1))]);
    }

    #[test]
    fn mesh_has_no_bridges() {
        let net = topology::mesh(3, 3, CAP).unwrap();
        assert!(bridges(&net).is_empty());
    }

    #[test]
    fn reachable_mask() {
        let mut b = NetworkBuilder::with_nodes(3);
        b.add_link(NodeId::new(0), NodeId::new(1), CAP).unwrap();
        let net = b.build();
        let mask = reachable_from(&net, NodeId::new(0));
        assert_eq!(mask, vec![true, true, false]);
    }
}
