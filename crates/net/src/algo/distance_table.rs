//! All-pairs hop counts and the per-node distance tables of the
//! bounded-flooding scheme.
//!
//! Section 4.1 of the paper: "Each network node maintains a distance table
//! (DT). … The distance table at node `i` is a 2-dimensional matrix
//! containing, for each destination `j` and for each neighbor `k ∈ NB_i`,
//! the minimum hop count from `i` to `j` via `k`, denoted `D^j_{i,k}`. So
//! the minimum distance from node `i` to destination `j` is
//! `D^j_i = min_{k∈NB_i} D^j_{i,k} + 1` … updated only upon change of the
//! network topology."

use crate::{LinkId, Network, NodeId};

/// Precomputed minimum hop counts between every ordered node pair.
///
/// This is the global view from which every node's [`DistanceTable`] is
/// derived; it is recomputed only when the topology changes, exactly as the
/// paper prescribes.
#[derive(Debug, Clone)]
pub struct AllPairsHops {
    n: usize,
    // dist[src][dst], u32::MAX = unreachable
    dist: Vec<u32>,
}

const UNREACHABLE: u32 = u32::MAX;

impl AllPairsHops {
    /// Computes hop counts with one BFS per node (`O(n · (n + N))`).
    pub fn compute(net: &Network) -> Self {
        Self::compute_filtered(net, |_| true)
    }

    /// [`AllPairsHops::compute`] restricted to links for which `usable`
    /// returns `true` (e.g. masking failed links, as the paper's distance
    /// tables are "updated only upon change of the network topology").
    pub fn compute_filtered(net: &Network, mut usable: impl FnMut(LinkId) -> bool) -> Self {
        let n = net.num_nodes();
        let mut dist = vec![UNREACHABLE; n * n];
        for src in net.nodes() {
            let row = crate::algo::bfs_hops_filtered(net, src, &mut usable);
            for (j, d) in row.into_iter().enumerate() {
                if let Some(d) = d {
                    dist[src.index() * n + j] = d;
                }
            }
        }
        AllPairsHops { n, dist }
    }

    /// Minimum hop count from `src` to `dst`, or `None` when unreachable.
    pub fn hops(&self, src: NodeId, dst: NodeId) -> Option<u32> {
        let d = self.dist[src.index() * self.n + dst.index()];
        (d != UNREACHABLE).then_some(d)
    }

    /// Overwrites the `src` row with per-destination hop counts supplied
    /// by `hops_to` (`None` = unreachable) — how the incremental
    /// hop-table maintenance writes back only the rows whose dynamic SPT
    /// actually moved after a delta, instead of recomputing every row.
    ///
    /// # Panics
    ///
    /// Panics when `src` is out of range for the table.
    pub fn set_row(&mut self, src: NodeId, mut hops_to: impl FnMut(NodeId) -> Option<u32>) {
        let base = src.index() * self.n;
        for j in 0..self.n {
            self.dist[base + j] = hops_to(NodeId::new(j as u32)).unwrap_or(UNREACHABLE);
        }
    }

    /// First ordered pair where this table diverges from `other`
    /// (different hop count or reachability), or `None` when the two are
    /// bit-for-bit identical — the probe the manager's invariant audit
    /// uses to hold the incrementally maintained table against a full
    /// recompute.
    pub fn first_divergence(&self, other: &AllPairsHops) -> Option<(NodeId, NodeId)> {
        if self.n != other.n {
            return Some((NodeId::new(0), NodeId::new(0)));
        }
        self.dist
            .iter()
            .zip(other.dist.iter())
            .position(|(a, b)| a != b)
            .map(|at| {
                (
                    NodeId::new((at / self.n) as u32),
                    NodeId::new((at % self.n) as u32),
                )
            })
    }

    /// The average hop count over all ordered reachable pairs with
    /// `src != dst` (useful for calibrating hop-count limits).
    pub fn average_hops(&self) -> f64 {
        let mut total = 0u64;
        let mut count = 0u64;
        for i in 0..self.n {
            for j in 0..self.n {
                if i == j {
                    continue;
                }
                let d = self.dist[i * self.n + j];
                if d != UNREACHABLE {
                    total += u64::from(d);
                    count += 1;
                }
            }
        }
        if count == 0 {
            0.0
        } else {
            total as f64 / count as f64
        }
    }

    /// The largest finite hop count (network diameter); 0 for empty or
    /// fully disconnected networks.
    pub fn diameter(&self) -> u32 {
        self.dist
            .iter()
            .copied()
            .filter(|&d| d != UNREACHABLE)
            .max()
            .unwrap_or(0)
    }
}

/// Node `i`'s distance table: for each outgoing link (neighbor `k`) and
/// destination `j`, the minimum hop count of a route `i -> k -> … -> j`.
///
/// Built from a shared [`AllPairsHops`]; entries satisfy
/// `via(k, j) = 1 + hops(k, j)`.
#[derive(Debug, Clone)]
pub struct DistanceTable {
    node: NodeId,
    /// Outgoing links of `node`, in adjacency order.
    links: Vec<LinkId>,
    /// `rows[a][j]` = hops from `node` to `j` via `links[a]`; `UNREACHABLE`
    /// when `j` cannot be reached through that neighbor.
    rows: Vec<Vec<u32>>,
}

impl DistanceTable {
    /// Builds node `i`'s table from the global hop counts.
    pub fn for_node(net: &Network, hops: &AllPairsHops, node: NodeId) -> Self {
        let links: Vec<LinkId> = net.out_links(node).to_vec();
        let n = net.num_nodes();
        let rows = links
            .iter()
            .map(|&lid| {
                let k = net.link(lid).dst();
                (0..n)
                    .map(|j| {
                        hops.hops(k, NodeId::new(j as u32))
                            .map_or(UNREACHABLE, |d| d + 1)
                    })
                    .collect()
            })
            .collect();
        DistanceTable { node, links, rows }
    }

    /// The node this table belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Minimum hop count from this node to `dest` when the first hop is
    /// `via` (an outgoing link of this node); `None` when `via` is not an
    /// outgoing link or `dest` is unreachable through it.
    ///
    /// This is the `D^j_{i,k}` the bounded-flooding distance test consults.
    pub fn via(&self, via: LinkId, dest: NodeId) -> Option<u32> {
        let row = self.links.iter().position(|&l| l == via)?;
        let d = self.rows[row][dest.index()];
        (d != UNREACHABLE).then_some(d)
    }

    /// Minimum hop count from this node to `dest` over all neighbors
    /// (`D^j_i` in the paper), or `None` when unreachable.
    pub fn min_dist(&self, dest: NodeId) -> Option<u32> {
        self.rows
            .iter()
            .map(|row| row[dest.index()])
            .filter(|&d| d != UNREACHABLE)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{topology, Bandwidth};

    const CAP: Bandwidth = Bandwidth::from_mbps(10);

    #[test]
    fn hops_match_manhattan_distance_on_mesh() {
        let net = topology::mesh(3, 3, CAP).unwrap();
        let hops = AllPairsHops::compute(&net);
        // corner to opposite corner
        assert_eq!(hops.hops(NodeId::new(0), NodeId::new(8)), Some(4));
        assert_eq!(hops.hops(NodeId::new(0), NodeId::new(0)), Some(0));
        assert_eq!(hops.diameter(), 4);
    }

    #[test]
    fn table_via_equals_one_plus_neighbor_distance() {
        let net = topology::mesh(3, 3, CAP).unwrap();
        let hops = AllPairsHops::compute(&net);
        let center = NodeId::new(4);
        let table = DistanceTable::for_node(&net, &hops, center);
        assert_eq!(table.node(), center);
        for &lid in net.out_links(center) {
            let k = net.link(lid).dst();
            for dest in net.nodes() {
                let expected = hops.hops(k, dest).map(|d| d + 1);
                assert_eq!(table.via(lid, dest), expected);
            }
        }
    }

    #[test]
    fn min_dist_matches_global_hops() {
        let net = topology::mesh(3, 4, CAP).unwrap();
        let hops = AllPairsHops::compute(&net);
        for node in net.nodes() {
            let table = DistanceTable::for_node(&net, &hops, node);
            for dest in net.nodes() {
                if dest == node {
                    continue;
                }
                assert_eq!(
                    table.min_dist(dest),
                    hops.hops(node, dest),
                    "node {node} dest {dest}"
                );
            }
        }
    }

    #[test]
    fn via_unknown_link_is_none() {
        let net = topology::mesh(2, 2, CAP).unwrap();
        let hops = AllPairsHops::compute(&net);
        let table = DistanceTable::for_node(&net, &hops, NodeId::new(0));
        // A link not incident to node 0:
        let foreign = net.find_link(NodeId::new(1), NodeId::new(3)).unwrap();
        assert_eq!(table.via(foreign, NodeId::new(3)), None);
    }

    #[test]
    fn set_row_and_divergence_round_trip() {
        let net = topology::mesh(3, 3, CAP).unwrap();
        let full = AllPairsHops::compute(&net);
        let mut patched = full.clone();
        assert_eq!(patched.first_divergence(&full), None);
        // Corrupt one row, detect it, then write the true row back.
        patched.set_row(NodeId::new(4), |_| None);
        assert_eq!(
            patched.first_divergence(&full),
            Some((NodeId::new(4), NodeId::new(0)))
        );
        patched.set_row(NodeId::new(4), |j| full.hops(NodeId::new(4), j));
        assert_eq!(patched.first_divergence(&full), None);
        assert_eq!(patched.hops(NodeId::new(4), NodeId::new(8)), Some(2));
    }

    #[test]
    fn average_hops_positive_on_connected_net() {
        let net = topology::ring(8, CAP).unwrap();
        let hops = AllPairsHops::compute(&net);
        assert!(hops.average_hops() > 1.0);
        assert_eq!(hops.diameter(), 4);
    }
}
