//! Maximum flow and edge connectivity.
//!
//! The number of link-disjoint paths between two nodes (their *edge
//! connectivity*, by Menger's theorem the max flow under unit capacities)
//! is the hard ceiling on how many disjoint channels — one primary plus
//! `k` backups — a DR-connection between them can ever have. The
//! evaluation uses it to separate topology-imposed fault-tolerance limits
//! from routing-scheme behaviour.

use crate::{LinkId, Network, NodeId};
use std::collections::VecDeque;

/// Result of a [`max_flow`] computation.
#[derive(Debug, Clone)]
pub struct MaxFlow {
    /// The maximum flow value (= number of link-disjoint paths under unit
    /// capacities).
    pub value: u64,
    /// Links carrying one unit of flow in the solution.
    pub saturated: Vec<LinkId>,
}

/// Computes the maximum `src → dst` flow with *unit* capacity per directed
/// link (Edmonds–Karp: BFS augmenting paths), restricted to links for
/// which `usable` returns `true`.
///
/// By Menger's theorem the value equals the maximum number of pairwise
/// link-disjoint directed paths. Runs in `O(V · E²)` worst case; trivial
/// at this crate's network sizes.
///
/// # Example
///
/// ```
/// use drt_net::{algo, topology, Bandwidth, NodeId};
///
/// let net = topology::mesh(3, 3, Bandwidth::from_mbps(10))?;
/// // The corner node 0 has degree 2, so at most 2 disjoint paths exist.
/// let flow = algo::max_flow(&net, NodeId::new(0), NodeId::new(8), |_| true);
/// assert_eq!(flow.value, 2);
/// # Ok::<(), drt_net::NetError>(())
/// ```
pub fn max_flow(
    net: &Network,
    src: NodeId,
    dst: NodeId,
    mut usable: impl FnMut(LinkId) -> bool,
) -> MaxFlow {
    let m = net.num_links();
    if src == dst || src.index() >= net.num_nodes() || dst.index() >= net.num_nodes() {
        return MaxFlow {
            value: 0,
            saturated: Vec::new(),
        };
    }
    // flow[l] ∈ {0, 1} on each directed link.
    let mut flow = vec![0u8; m];
    let enabled: Vec<bool> = net.links().map(|l| usable(l.id())).collect();
    let mut value = 0;

    loop {
        // BFS over the residual graph: forward through unused enabled
        // links, backward through used ones.
        #[derive(Clone, Copy)]
        enum Step {
            Forward(LinkId),
            Backward(LinkId),
        }
        let mut pred: Vec<Option<(NodeId, Step)>> = vec![None; net.num_nodes()];
        let mut queue = VecDeque::from([src]);
        'bfs: while let Some(u) = queue.pop_front() {
            for &l in net.out_links(u) {
                let v = net.link(l).dst();
                if enabled[l.index()]
                    && flow[l.index()] == 0
                    && pred[v.index()].is_none()
                    && v != src
                {
                    pred[v.index()] = Some((u, Step::Forward(l)));
                    if v == dst {
                        break 'bfs;
                    }
                    queue.push_back(v);
                }
            }
            for &l in net.in_links(u) {
                let v = net.link(l).src();
                if flow[l.index()] == 1 && pred[v.index()].is_none() && v != src {
                    pred[v.index()] = Some((u, Step::Backward(l)));
                    if v == dst {
                        break 'bfs;
                    }
                    queue.push_back(v);
                }
            }
        }
        if pred[dst.index()].is_none() {
            break;
        }
        // Augment along the found path.
        let mut cur = dst;
        while cur != src {
            let (prev, step) = pred[cur.index()].expect("path exists");
            match step {
                Step::Forward(l) => flow[l.index()] = 1,
                Step::Backward(l) => flow[l.index()] = 0,
            }
            cur = prev;
        }
        value += 1;
    }

    MaxFlow {
        value,
        saturated: (0..m)
            .filter(|&i| flow[i] == 1)
            .map(|i| LinkId::new(i as u32))
            .collect(),
    }
}

/// The maximum number of pairwise link-disjoint directed paths from `src`
/// to `dst` (0 when equal or unreachable).
pub fn edge_connectivity(net: &Network, src: NodeId, dst: NodeId) -> u64 {
    max_flow(net, src, dst, |_| true).value
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{topology, Bandwidth, NetworkBuilder};

    const CAP: Bandwidth = Bandwidth::from_mbps(10);

    #[test]
    fn ring_has_two_disjoint_paths() {
        let net = topology::ring(6, CAP).unwrap();
        assert_eq!(edge_connectivity(&net, NodeId::new(0), NodeId::new(3)), 2);
    }

    #[test]
    fn path_graph_has_one() {
        let mut b = NetworkBuilder::with_nodes(3);
        b.add_duplex_link(NodeId::new(0), NodeId::new(1), CAP)
            .unwrap();
        b.add_duplex_link(NodeId::new(1), NodeId::new(2), CAP)
            .unwrap();
        let net = b.build();
        assert_eq!(edge_connectivity(&net, NodeId::new(0), NodeId::new(2)), 1);
    }

    #[test]
    fn complete_graph_connectivity_is_degree() {
        let net = topology::complete(5, CAP).unwrap();
        assert_eq!(edge_connectivity(&net, NodeId::new(0), NodeId::new(4)), 4);
    }

    #[test]
    fn mesh_interior_has_more_paths_than_corners() {
        let net = topology::mesh(3, 3, CAP).unwrap();
        // corner (deg 2) to corner: 2; edge-middle (deg 3) to edge-middle: 3.
        assert_eq!(edge_connectivity(&net, NodeId::new(0), NodeId::new(8)), 2);
        assert_eq!(edge_connectivity(&net, NodeId::new(3), NodeId::new(5)), 3);
    }

    #[test]
    fn flow_respects_link_filter() {
        let net = topology::ring(4, CAP).unwrap();
        let l01 = net.find_link(NodeId::new(0), NodeId::new(1)).unwrap();
        let flow = max_flow(&net, NodeId::new(0), NodeId::new(1), |l| l != l01);
        assert_eq!(flow.value, 1, "only the long way remains");
        assert_eq!(flow.saturated.len(), 3);
    }

    #[test]
    fn degenerate_cases() {
        let net = topology::ring(4, CAP).unwrap();
        assert_eq!(edge_connectivity(&net, NodeId::new(1), NodeId::new(1)), 0);
        let mut b = NetworkBuilder::with_nodes(4);
        b.add_duplex_link(NodeId::new(0), NodeId::new(1), CAP)
            .unwrap();
        let net = b.build();
        assert_eq!(edge_connectivity(&net, NodeId::new(0), NodeId::new(3)), 0);
    }

    #[test]
    fn saturated_links_form_disjoint_paths() {
        let net = topology::mesh(4, 4, CAP).unwrap();
        let flow = max_flow(&net, NodeId::new(5), NodeId::new(10), |_| true);
        assert_eq!(flow.value, 4); // interior degree
                                   // Saturated links decompose into `value` link-disjoint paths: walk
                                   // them off.
        let mut pool: std::collections::HashSet<LinkId> = flow.saturated.iter().copied().collect();
        for _ in 0..flow.value {
            let mut cur = NodeId::new(5);
            let mut hops = 0;
            while cur != NodeId::new(10) {
                let l = net
                    .out_links(cur)
                    .iter()
                    .copied()
                    .find(|l| pool.contains(l))
                    .expect("flow decomposes into paths");
                pool.remove(&l);
                cur = net.link(l).dst();
                hops += 1;
                assert!(hops <= net.num_links(), "walk must terminate");
            }
        }
    }

    #[test]
    fn agrees_with_suurballe_feasibility() {
        // Wherever edge connectivity >= 2, Suurballe must find a pair, and
        // vice versa.
        for seed in 0..3 {
            let net = topology::random_connected(12, 18, CAP, seed).unwrap();
            for s in 0..4u32 {
                for d in 8..12u32 {
                    let k = edge_connectivity(&net, NodeId::new(s), NodeId::new(d));
                    let pair =
                        crate::algo::suurballe(&net, NodeId::new(s), NodeId::new(d), |_| Some(1.0));
                    assert_eq!(k >= 2, pair.is_some(), "seed {seed} {s}->{d} k={k}");
                }
            }
        }
    }
}
