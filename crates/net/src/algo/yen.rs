//! Yen's algorithm for k shortest loopless paths.

use crate::algo::{shortest_path_in, SpfWorkspace};
use crate::{LinkId, Network, NodeId, Route};
use std::collections::HashSet;

/// Finds up to `k` cheapest *simple* routes from `src` to `dst` under
/// `cost`, in nondecreasing cost order.
///
/// Links for which `cost` returns `None` are excluded. Returns fewer than
/// `k` routes when the graph does not contain that many simple paths.
///
/// Used by the baseline backup schemes ("choose the shortest candidate that
/// minimally overlaps the primary" requires enumerating candidates) and by
/// tests as an oracle for the flooding scheme's candidate discovery.
///
/// # Example
///
/// ```
/// use drt_net::{algo, topology, Bandwidth, NodeId};
///
/// let net = topology::ring(5, Bandwidth::from_mbps(10))?;
/// let routes = algo::k_shortest_paths(&net, NodeId::new(0), NodeId::new(2), 2, |_| Some(1.0));
/// assert_eq!(routes.len(), 2);
/// assert_eq!(routes[0].1.len(), 2); // clockwise
/// assert_eq!(routes[1].1.len(), 3); // counter-clockwise
/// # Ok::<(), drt_net::NetError>(())
/// ```
pub fn k_shortest_paths(
    net: &Network,
    src: NodeId,
    dst: NodeId,
    k: usize,
    cost: impl Fn(LinkId) -> Option<f64>,
) -> Vec<(f64, Route)> {
    let mut accepted: Vec<(f64, Route)> = Vec::new();
    if k == 0 || src == dst {
        return accepted;
    }
    // One workspace for the whole enumeration: the initial search plus
    // every spur search reuse the same stamped arrays and heap.
    let mut ws = SpfWorkspace::new();
    let Some(first) = shortest_path_in(&mut ws, net, src, dst, &cost) else {
        return accepted;
    };
    accepted.push(first);

    // Candidate pool of (cost, route), deduplicated by link sequence.
    let mut candidates: Vec<(f64, Route)> = Vec::new();
    let mut seen: HashSet<Vec<LinkId>> = HashSet::new();
    seen.insert(accepted[0].1.links().to_vec());

    while accepted.len() < k {
        let (_, prev) = accepted.last().expect("accepted is nonempty").clone();
        let prev_nodes = prev.nodes(net);

        for i in 0..prev.len() {
            let spur_node = prev_nodes[i];
            let root_links = &prev.links()[..i];

            // Links to exclude: the i-th link of every accepted/candidate
            // route sharing this root.
            let mut banned_links: HashSet<LinkId> = HashSet::new();
            for (_, r) in accepted.iter().chain(candidates.iter()) {
                if r.len() > i && &r.links()[..i] == root_links {
                    banned_links.insert(r.links()[i]);
                }
            }
            // Nodes of the root path (except the spur node) are banned to
            // keep paths simple.
            let banned_nodes: HashSet<NodeId> = prev_nodes[..i].iter().copied().collect();

            let spur = shortest_path_in(&mut ws, net, spur_node, dst, |l| {
                if banned_links.contains(&l) {
                    return None;
                }
                let link = net.link(l);
                if banned_nodes.contains(&link.src()) || banned_nodes.contains(&link.dst()) {
                    return None;
                }
                cost(l)
            });
            let Some((_, spur_route)) = spur else {
                continue;
            };

            let mut links = root_links.to_vec();
            links.extend_from_slice(spur_route.links());
            if !seen.insert(links.clone()) {
                continue;
            }
            let Ok(route) = Route::new(net, links) else {
                continue;
            };
            let total: f64 = route
                .links()
                .iter()
                .map(|&l| cost(l).unwrap_or(f64::INFINITY))
                .sum();
            if total.is_finite() {
                candidates.push((total, route));
            }
        }

        if candidates.is_empty() {
            break;
        }
        // Extract the cheapest candidate (stable tie-break on link ids).
        let best = candidates
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.0.partial_cmp(&b.0)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.1.links().cmp(b.1.links()))
            })
            .map(|(i, _)| i)
            .expect("candidates is nonempty");
        accepted.push(candidates.swap_remove(best));
    }

    accepted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{topology, Bandwidth};

    const CAP: Bandwidth = Bandwidth::from_mbps(10);

    #[test]
    fn ring_has_exactly_two_simple_paths() {
        let net = topology::ring(6, CAP).unwrap();
        let routes = k_shortest_paths(&net, NodeId::new(0), NodeId::new(2), 10, |_| Some(1.0));
        assert_eq!(routes.len(), 2);
        assert_eq!(routes[0].1.len(), 2);
        assert_eq!(routes[1].1.len(), 4);
        assert!(routes[0].1.is_link_disjoint(&routes[1].1));
    }

    #[test]
    fn costs_are_nondecreasing() {
        let net = topology::mesh(3, 3, CAP).unwrap();
        let routes = k_shortest_paths(&net, NodeId::new(0), NodeId::new(8), 8, |_| Some(1.0));
        assert!(routes.len() >= 6); // many monotone staircase paths exist
        for w in routes.windows(2) {
            assert!(w[0].0 <= w[1].0 + 1e-12);
        }
    }

    #[test]
    fn all_paths_simple_and_distinct() {
        let net = topology::mesh(3, 3, CAP).unwrap();
        let routes = k_shortest_paths(&net, NodeId::new(0), NodeId::new(8), 12, |_| Some(1.0));
        let mut seen = HashSet::new();
        for (_, r) in &routes {
            assert!(r.is_simple(&net), "{r}");
            assert!(seen.insert(r.links().to_vec()), "duplicate {r}");
            assert_eq!(r.source(), NodeId::new(0));
            assert_eq!(r.dest(), NodeId::new(8));
        }
    }

    #[test]
    fn k_zero_and_same_endpoints() {
        let net = topology::ring(4, CAP).unwrap();
        assert!(
            k_shortest_paths(&net, NodeId::new(0), NodeId::new(1), 0, |_| Some(1.0)).is_empty()
        );
        assert!(
            k_shortest_paths(&net, NodeId::new(1), NodeId::new(1), 3, |_| Some(1.0)).is_empty()
        );
    }

    #[test]
    fn respects_link_exclusion() {
        let net = topology::ring(4, CAP).unwrap();
        let l01 = net.find_link(NodeId::new(0), NodeId::new(1)).unwrap();
        let routes = k_shortest_paths(&net, NodeId::new(0), NodeId::new(1), 5, |l| {
            (l != l01).then_some(1.0)
        });
        assert_eq!(routes.len(), 1);
        assert!(!routes[0].1.contains_link(l01));
    }
}
