//! Link-disjoint path pairs.
//!
//! The dedicated-backup baseline ("equipping each DR-connection even with a
//! single backup disjoint from its primary reduces the network capacity by
//! at least 50%") needs a disjoint primary/backup pair. Two algorithms are
//! provided:
//!
//! * [`two_step_disjoint_pair`] — shortest path, remove its links, shortest
//!   path again. Fast and simple but fails on *trap* topologies where the
//!   greedy first path blocks every second path.
//! * [`suurballe`] — Suurballe/Bhandari's algorithm for the minimum-total-
//!   cost pair of link-disjoint paths. Succeeds whenever two link-disjoint
//!   paths exist at all.

use crate::algo::{shortest_path_in, SpfWorkspace};
use crate::{LinkId, Network, NodeId, Route};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// A pair of link-disjoint routes with the same endpoints.
#[derive(Debug, Clone, PartialEq)]
pub struct DisjointPair {
    /// The (typically shorter) route intended as the primary channel.
    pub primary: Route,
    /// The link-disjoint route intended as the backup channel.
    pub backup: Route,
    /// Sum of both routes' costs under the cost function used to find them.
    pub total_cost: f64,
}

/// Finds a link-disjoint pair greedily: shortest route, then the shortest
/// route avoiding the first one's links. Returns `None` when either search
/// fails.
pub fn two_step_disjoint_pair(
    net: &Network,
    src: NodeId,
    dst: NodeId,
    cost: impl Fn(LinkId) -> Option<f64>,
) -> Option<DisjointPair> {
    // Both searches share one workspace: the second bumps the generation
    // and reuses the first's arrays and heap.
    let mut ws = SpfWorkspace::new();
    let (c1, primary) = shortest_path_in(&mut ws, net, src, dst, &cost)?;
    let (c2, backup) = shortest_path_in(&mut ws, net, src, dst, |l| {
        if primary.contains_link(l) {
            None
        } else {
            cost(l)
        }
    })?;
    Some(DisjointPair {
        primary,
        backup,
        total_cost: c1 + c2,
    })
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum ModEdge {
    /// An original link, traversed forward at its reduced cost.
    Orig(LinkId),
    /// A link of the first path, traversed *backward* at zero cost.
    RevP1(LinkId),
}

#[derive(Debug, PartialEq)]
struct ModHeapEntry {
    cost: f64,
    node: NodeId,
}

impl Eq for ModHeapEntry {}
impl Ord for ModHeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .cost
            .partial_cmp(&self.cost)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.index().cmp(&self.node.index()))
    }
}
impl PartialOrd for ModHeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Finds the minimum-total-cost pair of link-disjoint routes from `src` to
/// `dst` (Suurballe's algorithm with Bhandari's edge reversal). Returns
/// `None` when no two link-disjoint routes exist.
///
/// Costs must be non-negative (as produced by all the paper's schemes);
/// negative values are clamped to zero.
///
/// # Example
///
/// ```
/// use drt_net::{algo, topology, Bandwidth, NodeId};
///
/// let net = topology::ring(6, Bandwidth::from_mbps(10))?;
/// let pair = algo::suurballe(&net, NodeId::new(0), NodeId::new(3), |_| Some(1.0)).unwrap();
/// assert!(pair.primary.is_link_disjoint(&pair.backup));
/// assert_eq!(pair.total_cost, 6.0); // 3 hops each way around the ring
/// # Ok::<(), drt_net::NetError>(())
/// ```
pub fn suurballe(
    net: &Network,
    src: NodeId,
    dst: NodeId,
    cost: impl Fn(LinkId) -> Option<f64>,
) -> Option<DisjointPair> {
    if src == dst {
        return None;
    }
    // Pass 1: ordinary shortest-path search for potentials and P1, run in
    // a workspace whose distances serve as the reduced-cost potentials of
    // pass 2 (borrowed immutably there — no owned-tree copy needed).
    let mut ws = SpfWorkspace::new();
    ws.run(net, src, |l| cost(l).map(|c| c.max(0.0)));
    ws.distance(dst)?;
    let p1 = ws.route_to(net, dst)?;
    let p1_links: HashSet<LinkId> = p1.links().iter().copied().collect();

    // Pass 2: Dijkstra on the modified graph — original links (minus P1's)
    // at reduced cost, P1's links reversed at zero cost. The modified-edge
    // parent type doesn't fit SpfWorkspace, and dedicated-baseline setup is
    // not a steady-state hot path, so this pass keeps its own scratch.
    let n = net.num_nodes();
    // lint:allow(spf-alloc) — cold path: suurballe pass 2 tracks ModEdge parents
    let mut dist: Vec<Option<f64>> = vec![None; n];
    // lint:allow(spf-alloc) — cold path: suurballe pass 2 distance array
    let mut parent: Vec<Option<(ModEdge, NodeId)>> = vec![None; n];
    // lint:allow(spf-alloc) — cold path: suurballe pass 2 visited mask
    let mut done = vec![false; n];
    // lint:allow(spf-alloc) — cold path: suurballe pass 2 ModHeapEntry heap
    let mut heap = BinaryHeap::new();
    dist[src.index()] = Some(0.0);
    heap.push(ModHeapEntry {
        cost: 0.0,
        node: src,
    });

    let reduced = |l: LinkId| -> Option<f64> {
        let c = cost(l)?.max(0.0);
        let link = net.link(l);
        let du = ws.distance(link.src())?;
        let dv = ws.distance(link.dst())?;
        Some((c + du - dv).max(0.0))
    };

    while let Some(ModHeapEntry { cost: d, node }) = heap.pop() {
        if done[node.index()] {
            continue;
        }
        done[node.index()] = true;
        if node == dst {
            break;
        }
        // Forward edges at reduced cost, skipping P1's links.
        for &lid in net.out_links(node) {
            if p1_links.contains(&lid) {
                continue;
            }
            let Some(step) = reduced(lid) else { continue };
            let next = net.link(lid).dst();
            relax(
                &mut dist,
                &mut parent,
                &mut heap,
                &done,
                node,
                next,
                d + step,
                ModEdge::Orig(lid),
            );
        }
        // Reversed P1 edges at zero cost: a P1 link (u -> v) is traversable
        // here as (v -> u).
        for &lid in net.in_links(node) {
            if !p1_links.contains(&lid) {
                continue;
            }
            let prev = net.link(lid).src();
            relax(
                &mut dist,
                &mut parent,
                &mut heap,
                &done,
                node,
                prev,
                d,
                ModEdge::RevP1(lid),
            );
        }
    }

    dist[dst.index()]?;

    // Collect P2's modified edges.
    let mut p2_edges = Vec::new();
    let mut cur = dst;
    while cur != src {
        let (edge, prev) = parent[cur.index()]?;
        p2_edges.push(edge);
        cur = prev;
    }

    // Union-minus-cancellation: P1 links survive unless P2 reversed them;
    // P2's forward links are added.
    let mut final_links: HashSet<LinkId> = p1_links.clone();
    for edge in &p2_edges {
        match edge {
            ModEdge::Orig(l) => {
                final_links.insert(*l);
            }
            ModEdge::RevP1(l) => {
                final_links.remove(l);
            }
        }
    }

    // The surviving links form exactly two link-disjoint src -> dst paths;
    // peel them off by walking out-edges.
    let mut pool = final_links;
    let first = walk_off(net, &mut pool, src, dst)?;
    let second = walk_off(net, &mut pool, src, dst)?;
    // In degenerate zero-cost-tie cases the union may additionally contain
    // cost-zero cycles; they are simply not part of either returned route.

    let route_cost = |r: &Route| -> f64 {
        r.links()
            .iter()
            .map(|&l| cost(l).unwrap_or(0.0).max(0.0))
            .sum()
    };
    let (ca, cb) = (route_cost(&first), route_cost(&second));
    let (primary, backup, total) = if ca <= cb {
        (first, second, ca + cb)
    } else {
        (second, first, ca + cb)
    };
    Some(DisjointPair {
        primary,
        backup,
        total_cost: total,
    })
}

#[allow(clippy::too_many_arguments)]
fn relax(
    dist: &mut [Option<f64>],
    parent: &mut [Option<(ModEdge, NodeId)>],
    heap: &mut BinaryHeap<ModHeapEntry>,
    done: &[bool],
    from: NodeId,
    to: NodeId,
    cand: f64,
    edge: ModEdge,
) {
    if done[to.index()] {
        return;
    }
    let better = match dist[to.index()] {
        None => true,
        Some(cur) => cand < cur,
    };
    if better {
        dist[to.index()] = Some(cand);
        parent[to.index()] = Some((edge, from));
        heap.push(ModHeapEntry {
            cost: cand,
            node: to,
        });
    }
}

/// Extracts one src -> dst path from `pool`, removing its links.
fn walk_off(net: &Network, pool: &mut HashSet<LinkId>, src: NodeId, dst: NodeId) -> Option<Route> {
    let mut links = Vec::new();
    let mut cur = src;
    while cur != dst {
        let next_link = net
            .out_links(cur)
            .iter()
            .copied()
            .find(|l| pool.contains(l))?;
        pool.remove(&next_link);
        links.push(next_link);
        cur = net.link(next_link).dst();
        if links.len() > net.num_links() {
            return None; // defensive: malformed pool
        }
    }
    Route::new(net, links).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{topology, Bandwidth, NetworkBuilder};

    const CAP: Bandwidth = Bandwidth::from_mbps(10);

    #[test]
    fn ring_pair_goes_both_ways() {
        let net = topology::ring(6, CAP).unwrap();
        for f in [two_step_disjoint_pair, suurballe] {
            let pair = f(&net, NodeId::new(0), NodeId::new(2), &|_| Some(1.0)).unwrap();
            assert!(pair.primary.is_link_disjoint(&pair.backup));
            assert_eq!(pair.primary.len() + pair.backup.len(), 6);
            assert_eq!(pair.total_cost, 6.0);
        }
    }

    /// The classic trap graph where greedy two-step fails but Suurballe
    /// succeeds:
    ///
    /// ```text
    ///   s -> a -> b -> t     (cost 3, the unique shortest path)
    ///   s -> c ------> b     a -> d -> t
    ///        c -> d (bridge used by the greedy path's complement)
    /// ```
    #[test]
    fn suurballe_beats_two_step_on_trap_graph() {
        let mut b = NetworkBuilder::with_nodes(6);
        let s = NodeId::new(0);
        let a = NodeId::new(1);
        let bb = NodeId::new(2);
        let t = NodeId::new(3);
        let c = NodeId::new(4);
        let d = NodeId::new(5);
        // Directed links only (costs via closure below).
        let sa = b.add_link(s, a, CAP).unwrap();
        let ab = b.add_link(a, bb, CAP).unwrap();
        let bt = b.add_link(bb, t, CAP).unwrap();
        let sc = b.add_link(s, c, CAP).unwrap();
        let cb = b.add_link(c, bb, CAP).unwrap();
        let ad = b.add_link(a, d, CAP).unwrap();
        let dt = b.add_link(d, t, CAP).unwrap();
        let net = b.build();
        let costs = move |l: LinkId| -> Option<f64> {
            Some(match l {
                x if x == sa => 1.0,
                x if x == ab => 1.0,
                x if x == bt => 1.0,
                x if x == sc => 2.0,
                x if x == cb => 2.0,
                x if x == ad => 2.0,
                x if x == dt => 2.0,
                _ => 1.0,
            })
        };
        // Greedy takes s-a-b-t, leaving no second path through a or b's
        // used links... in this construction a second path still exists
        // (s-c-b is blocked at b-t). Verify two-step fails:
        assert!(two_step_disjoint_pair(&net, s, t, costs).is_none());
        // ...while Suurballe reroutes: s-a-d-t and s-c-b-t.
        let pair = suurballe(&net, s, t, costs).unwrap();
        assert!(pair.primary.is_link_disjoint(&pair.backup));
        assert_eq!(pair.total_cost, 10.0);
        let mut all: Vec<LinkId> = pair
            .primary
            .links()
            .iter()
            .chain(pair.backup.links())
            .copied()
            .collect();
        all.sort();
        let mut expected = vec![sa, ad, dt, sc, cb, bt];
        expected.sort();
        assert_eq!(all, expected);
    }

    #[test]
    fn no_pair_on_bridge_graph() {
        // s - x - t as a path graph: the bridge x kills disjointness.
        let mut b = NetworkBuilder::with_nodes(3);
        b.add_duplex_link(NodeId::new(0), NodeId::new(1), CAP)
            .unwrap();
        b.add_duplex_link(NodeId::new(1), NodeId::new(2), CAP)
            .unwrap();
        let net = b.build();
        assert!(suurballe(&net, NodeId::new(0), NodeId::new(2), |_| Some(1.0)).is_none());
        assert!(
            two_step_disjoint_pair(&net, NodeId::new(0), NodeId::new(2), |_| Some(1.0)).is_none()
        );
    }

    #[test]
    fn suurballe_total_cost_is_minimal_on_mesh() {
        // On a mesh, compare against brute force via Yen enumeration.
        let net = topology::mesh(3, 3, CAP).unwrap();
        let src = NodeId::new(0);
        let dst = NodeId::new(8);
        let pair = suurballe(&net, src, dst, |_| Some(1.0)).unwrap();
        let routes = crate::algo::k_shortest_paths(&net, src, dst, 50, |_| Some(1.0));
        let mut best = f64::INFINITY;
        for (ci, ri) in &routes {
            for (cj, rj) in &routes {
                if ri.is_link_disjoint(rj) && ri.links() != rj.links() {
                    best = best.min(ci + cj);
                }
            }
        }
        assert_eq!(pair.total_cost, best);
    }

    #[test]
    fn same_endpoints_rejected() {
        let net = topology::ring(4, CAP).unwrap();
        assert!(suurballe(&net, NodeId::new(1), NodeId::new(1), |_| Some(1.0)).is_none());
    }
}
