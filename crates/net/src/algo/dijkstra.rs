//! Dijkstra shortest paths with closure-supplied link costs.
//!
//! All searches run inside a reusable [`SpfWorkspace`] whose arrays are
//! generation-stamped: starting a new search bumps a generation counter
//! instead of clearing (or worse, reallocating) the `dist`/`parent`/`done`
//! arrays and the heap. The module-level entry points
//! ([`shortest_path_tree`], [`shortest_path`]) borrow a thread-local
//! workspace, so every caller — including Yen spur searches and Suurballe
//! pass 1 — is allocation-free on the hot path without signature changes;
//! the `_in` variants accept an explicit workspace for callers that manage
//! their own.

use crate::{LinkId, Network, NodeId, Route};
use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A min-heap entry ordered by cost (ties broken by node id for
/// determinism).
#[derive(Debug, PartialEq)]
struct HeapEntry {
    cost: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; costs are finite by construction.
        other
            .cost
            .partial_cmp(&self.cost)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.index().cmp(&self.node.index()))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The result of a single-source Dijkstra run; query it with
/// [`ShortestPathTree::distance`] and [`ShortestPathTree::route_to`].
#[derive(Debug, Clone)]
pub struct ShortestPathTree {
    source: NodeId,
    dist: Vec<Option<f64>>,
    parent_link: Vec<Option<LinkId>>,
}

impl ShortestPathTree {
    /// The source node the tree was grown from.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Cost of the cheapest route to `node`, or `None` if unreachable.
    pub fn distance(&self, node: NodeId) -> Option<f64> {
        self.dist.get(node.index()).copied().flatten()
    }

    /// Reconstructs the cheapest route from the source to `dest`, or `None`
    /// when `dest` is unreachable or equal to the source.
    pub fn route_to(&self, net: &Network, dest: NodeId) -> Option<Route> {
        if dest == self.source {
            return None;
        }
        self.dist.get(dest.index()).copied().flatten()?;
        let mut links = Vec::new();
        let mut cur = dest;
        while cur != self.source {
            let link = self.parent_link[cur.index()]?;
            links.push(link);
            cur = net.link(link).src();
        }
        links.reverse();
        Route::new(net, links).ok()
    }
}

/// Reusable single-source shortest-path scratch state.
///
/// The arrays are *generation-stamped*: an entry is meaningful only when
/// its stamp equals the workspace's current generation, so starting a new
/// search is O(1) — bump the generation, clear the heap (capacity kept).
/// One workspace serves searches over networks of any size; arrays grow
/// monotonically to the largest node count seen.
#[derive(Debug)]
pub struct SpfWorkspace {
    gen: u32,
    source: NodeId,
    stamp: Vec<u32>,
    dist: Vec<f64>,
    parent_link: Vec<Option<LinkId>>,
    done: Vec<bool>,
    heap: BinaryHeap<HeapEntry>,
}

impl Default for SpfWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

impl SpfWorkspace {
    /// Creates an empty workspace; arrays grow on first use.
    pub fn new() -> Self {
        SpfWorkspace {
            gen: 0,
            source: NodeId::new(0),
            stamp: Vec::new(),
            dist: Vec::new(),
            parent_link: Vec::new(),
            done: Vec::new(),
            heap: BinaryHeap::new(), // lint:allow(spf-alloc) — workspace construction
        }
    }

    /// Starts a new generation sized for `n` nodes.
    fn begin(&mut self, n: usize, src: NodeId) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.dist.resize(n, 0.0);
            self.parent_link.resize(n, None);
            self.done.resize(n, false);
        }
        self.gen = match self.gen.checked_add(1) {
            Some(g) => g,
            None => {
                // Generation counter wrapped: stale stamps could collide,
                // so clear them once every 2^32 searches.
                self.stamp.iter_mut().for_each(|s| *s = 0);
                1
            }
        };
        self.heap.clear();
        self.source = src;
    }

    /// Runs Dijkstra from `src` with per-link costs given by `cost`,
    /// replacing whatever search the workspace held before.
    ///
    /// Links for which `cost` returns `None` are excluded from the search.
    /// Negative costs are treated as zero (Dijkstra's invariant requires
    /// non-negative costs; the routing schemes of the paper only produce
    /// non-negative ones).
    pub fn run(&mut self, net: &Network, src: NodeId, mut cost: impl FnMut(LinkId) -> Option<f64>) {
        let n = net.num_nodes();
        self.begin(n, src);
        if src.index() < n {
            self.stamp[src.index()] = self.gen;
            self.done[src.index()] = false;
            self.dist[src.index()] = 0.0;
            self.parent_link[src.index()] = None;
            self.heap.push(HeapEntry {
                cost: 0.0,
                node: src,
            });
        }

        while let Some(HeapEntry { cost: d, node }) = self.heap.pop() {
            let i = node.index();
            if self.done[i] {
                continue;
            }
            self.done[i] = true;
            for &lid in net.out_links(node) {
                let Some(step) = cost(lid) else { continue };
                let step = step.max(0.0);
                let next = net.link(lid).dst();
                let j = next.index();
                let seen = self.stamp[j] == self.gen;
                if seen && self.done[j] {
                    continue;
                }
                let cand = d + step;
                if !seen || cand < self.dist[j] {
                    self.stamp[j] = self.gen;
                    self.done[j] = false;
                    self.dist[j] = cand;
                    self.parent_link[j] = Some(lid);
                    self.heap.push(HeapEntry {
                        cost: cand,
                        node: next,
                    });
                }
            }
        }
    }

    /// The source of the workspace's current search.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Cost of the cheapest route to `node` in the current search, or
    /// `None` if unreachable.
    pub fn distance(&self, node: NodeId) -> Option<f64> {
        let i = node.index();
        (i < self.stamp.len() && self.stamp[i] == self.gen).then(|| self.dist[i])
    }

    /// Reconstructs the cheapest route of the current search to `dest`, or
    /// `None` when `dest` is unreachable or equal to the source.
    pub fn route_to(&self, net: &Network, dest: NodeId) -> Option<Route> {
        if dest == self.source {
            return None;
        }
        self.distance(dest)?;
        let mut links = Vec::new();
        let mut cur = dest;
        while cur != self.source {
            let link = self.parent_link[cur.index()]?;
            links.push(link);
            cur = net.link(link).src();
        }
        links.reverse();
        Route::new(net, links).ok()
    }

    /// The tree link that reaches `node` in the current search, or `None`
    /// for the source and unreached nodes. Together with
    /// [`SpfWorkspace::distance`] this lets callers copy a finished search
    /// out into their own storage (the dynamic-SPT engine builds its
    /// repairable tree this way).
    pub fn parent_link(&self, node: NodeId) -> Option<LinkId> {
        let i = node.index();
        (i < self.stamp.len() && self.stamp[i] == self.gen)
            .then(|| self.parent_link[i])
            .flatten()
    }

    /// Copies the current search out as an owned [`ShortestPathTree`] for
    /// callers that hold the result across later searches.
    pub fn extract_tree(&self, n: usize) -> ShortestPathTree {
        // lint:allow(spf-alloc) — cold path: the owned-tree API must allocate its result
        let mut dist: Vec<Option<f64>> = vec![None; n];
        // lint:allow(spf-alloc) — cold path: owned-tree parent array
        let mut parent_link: Vec<Option<LinkId>> = vec![None; n];
        for i in 0..n.min(self.stamp.len()) {
            if self.stamp[i] == self.gen {
                dist[i] = Some(self.dist[i]);
                parent_link[i] = self.parent_link[i];
            }
        }
        ShortestPathTree {
            source: self.source,
            dist,
            parent_link,
        }
    }
}

thread_local! {
    /// Per-thread scratch shared by the workspace-less entry points below,
    /// so existing callers get allocation reuse without signature changes.
    static SCRATCH: RefCell<SpfWorkspace> = RefCell::new(SpfWorkspace::new());
}

pub(crate) fn with_scratch<R>(f: impl FnOnce(&mut SpfWorkspace) -> R) -> R {
    SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut ws) => f(&mut ws),
        // Re-entrant search (a cost closure running Dijkstra): fall back to
        // a fresh one-shot workspace rather than aliasing the scratch.
        Err(_) => f(&mut SpfWorkspace::new()),
    })
}

/// Runs Dijkstra from `src` with per-link costs given by `cost`, returning
/// an owned tree.
///
/// Links for which `cost` returns `None` are excluded from the search.
/// Negative costs are treated as zero (Dijkstra's invariant requires
/// non-negative costs; the routing schemes of the paper only produce
/// non-negative ones).
pub fn shortest_path_tree(
    net: &Network,
    src: NodeId,
    cost: impl FnMut(LinkId) -> Option<f64>,
) -> ShortestPathTree {
    with_scratch(|ws| {
        ws.run(net, src, cost);
        ws.extract_tree(net.num_nodes())
    })
}

/// Finds the cheapest route from `src` to `dst` under `cost`, returning
/// `(total_cost, route)`, or `None` when unreachable or `src == dst`.
///
/// # Example
///
/// ```
/// use drt_net::{algo, topology, Bandwidth, NodeId};
///
/// let net = topology::ring(5, Bandwidth::from_mbps(10))?;
/// let (cost, route) =
///     algo::shortest_path(&net, NodeId::new(0), NodeId::new(2), |_| Some(1.0)).unwrap();
/// assert_eq!(cost, 2.0);
/// assert_eq!(route.len(), 2);
/// # Ok::<(), drt_net::NetError>(())
/// ```
pub fn shortest_path(
    net: &Network,
    src: NodeId,
    dst: NodeId,
    cost: impl FnMut(LinkId) -> Option<f64>,
) -> Option<(f64, Route)> {
    with_scratch(|ws| shortest_path_in(ws, net, src, dst, cost))
}

/// [`shortest_path`] into a caller-managed [`SpfWorkspace`] — the zero-
/// allocation variant threaded through Yen spur searches and the disjoint-
/// pair algorithms.
pub fn shortest_path_in(
    ws: &mut SpfWorkspace,
    net: &Network,
    src: NodeId,
    dst: NodeId,
    cost: impl FnMut(LinkId) -> Option<f64>,
) -> Option<(f64, Route)> {
    ws.run(net, src, cost);
    let d = ws.distance(dst)?;
    let route = ws.route_to(net, dst)?;
    Some((d, route))
}

/// Finds a minimum-hop route from `src` to `dst` (unit link costs), or
/// `None` when unreachable or `src == dst`.
pub fn shortest_path_hops(net: &Network, src: NodeId, dst: NodeId) -> Option<Route> {
    shortest_path(net, src, dst, |_| Some(1.0)).map(|(_, r)| r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{topology, Bandwidth};

    const CAP: Bandwidth = Bandwidth::from_mbps(10);

    #[test]
    fn ring_hop_counts() {
        let net = topology::ring(6, CAP).unwrap();
        let tree = shortest_path_tree(&net, NodeId::new(0), |_| Some(1.0));
        assert_eq!(tree.distance(NodeId::new(0)), Some(0.0));
        assert_eq!(tree.distance(NodeId::new(3)), Some(3.0));
        assert_eq!(tree.distance(NodeId::new(5)), Some(1.0));
        assert_eq!(tree.source(), NodeId::new(0));
    }

    #[test]
    fn route_reconstruction_is_contiguous() {
        let net = topology::mesh(4, 4, CAP).unwrap();
        let route = shortest_path_hops(&net, NodeId::new(0), NodeId::new(15)).unwrap();
        assert_eq!(route.len(), 6); // manhattan distance in a 4x4 mesh
        assert_eq!(route.source(), NodeId::new(0));
        assert_eq!(route.dest(), NodeId::new(15));
        assert!(route.is_simple(&net));
    }

    #[test]
    fn excluded_links_are_avoided() {
        let net = topology::ring(4, CAP).unwrap();
        let l01 = net.find_link(NodeId::new(0), NodeId::new(1)).unwrap();
        // Exclude the direct 0 -> 1 link: forced the long way around.
        let (cost, route) = shortest_path(&net, NodeId::new(0), NodeId::new(1), |l| {
            if l == l01 {
                None
            } else {
                Some(1.0)
            }
        })
        .unwrap();
        assert_eq!(cost, 3.0);
        assert!(!route.contains_link(l01));
    }

    #[test]
    fn unreachable_returns_none() {
        // Two disconnected duplex pairs.
        let mut b = crate::NetworkBuilder::with_nodes(4);
        b.add_duplex_link(NodeId::new(0), NodeId::new(1), CAP)
            .unwrap();
        b.add_duplex_link(NodeId::new(2), NodeId::new(3), CAP)
            .unwrap();
        let net = b.build();
        assert!(shortest_path_hops(&net, NodeId::new(0), NodeId::new(2)).is_none());
    }

    #[test]
    fn src_equals_dst_returns_none() {
        let net = topology::ring(4, CAP).unwrap();
        assert!(shortest_path_hops(&net, NodeId::new(1), NodeId::new(1)).is_none());
    }

    #[test]
    fn weighted_costs_divert_route() {
        let net = topology::ring(4, CAP).unwrap();
        let l01 = net.find_link(NodeId::new(0), NodeId::new(1)).unwrap();
        // Make the direct hop expensive but not excluded.
        let (cost, route) = shortest_path(&net, NodeId::new(0), NodeId::new(1), |l| {
            if l == l01 {
                Some(10.0)
            } else {
                Some(1.0)
            }
        })
        .unwrap();
        assert_eq!(cost, 3.0);
        assert_eq!(route.len(), 3);
    }

    #[test]
    fn negative_costs_clamped_to_zero() {
        let net = topology::ring(4, CAP).unwrap();
        let (cost, _) =
            shortest_path(&net, NodeId::new(0), NodeId::new(2), |_| Some(-5.0)).unwrap();
        assert_eq!(cost, 0.0);
    }

    #[test]
    fn deterministic_tie_breaking() {
        let net = topology::mesh(3, 3, CAP).unwrap();
        let a = shortest_path_hops(&net, NodeId::new(0), NodeId::new(8)).unwrap();
        let b = shortest_path_hops(&net, NodeId::new(0), NodeId::new(8)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn workspace_reuse_matches_fresh_runs() {
        // Interleave searches over two different networks through ONE
        // workspace; each result must equal a fresh single-use run.
        let small = topology::ring(5, CAP).unwrap();
        let big = topology::mesh(4, 4, CAP).unwrap();
        let mut ws = SpfWorkspace::new();
        for round in 0..3 {
            for (net, dst) in [(&small, 3), (&big, 15)] {
                let src = NodeId::new(round % 2);
                let got = shortest_path_in(&mut ws, net, src, NodeId::new(dst), |_| Some(1.0));
                let fresh = shortest_path(net, src, NodeId::new(dst), |_| Some(1.0));
                assert_eq!(got, fresh);
            }
        }
    }

    #[test]
    fn workspace_stale_state_is_invisible() {
        // A search that reaches many nodes followed by one that reaches
        // few: the second must not see the first's distances.
        let net = topology::mesh(4, 4, CAP).unwrap();
        let mut ws = SpfWorkspace::new();
        ws.run(&net, NodeId::new(0), |_| Some(1.0));
        assert!(ws.distance(NodeId::new(15)).is_some());
        let l01 = net.find_link(NodeId::new(0), NodeId::new(1)).unwrap();
        // Now exclude everything: only the source is reachable.
        ws.run(&net, NodeId::new(1), |_| None::<f64>);
        assert_eq!(ws.source(), NodeId::new(1));
        assert_eq!(ws.distance(NodeId::new(1)), Some(0.0));
        for i in [0u32, 2, 5, 15] {
            assert_eq!(ws.distance(NodeId::new(i)), None, "stale dist at {i}");
        }
        assert!(ws.route_to(&net, NodeId::new(2)).is_none());
        let _ = l01;
    }

    #[test]
    fn extract_tree_matches_workspace_queries() {
        let net = topology::mesh(3, 3, CAP).unwrap();
        let mut ws = SpfWorkspace::new();
        ws.run(&net, NodeId::new(0), |_| Some(1.0));
        let tree = ws.extract_tree(net.num_nodes());
        for i in 0..9u32 {
            let node = NodeId::new(i);
            assert_eq!(tree.distance(node), ws.distance(node));
            assert_eq!(tree.route_to(&net, node), ws.route_to(&net, node));
        }
        assert_eq!(tree.source(), ws.source());
    }
}
