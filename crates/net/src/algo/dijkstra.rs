//! Dijkstra shortest paths with closure-supplied link costs.

use crate::{LinkId, Network, NodeId, Route};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A min-heap entry ordered by cost (ties broken by node id for
/// determinism).
#[derive(Debug, PartialEq)]
struct HeapEntry {
    cost: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; costs are finite by construction.
        other
            .cost
            .partial_cmp(&self.cost)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.index().cmp(&self.node.index()))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The result of a single-source Dijkstra run; query it with
/// [`ShortestPathTree::distance`] and [`ShortestPathTree::route_to`].
#[derive(Debug, Clone)]
pub struct ShortestPathTree {
    source: NodeId,
    dist: Vec<Option<f64>>,
    parent_link: Vec<Option<LinkId>>,
}

impl ShortestPathTree {
    /// The source node the tree was grown from.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Cost of the cheapest route to `node`, or `None` if unreachable.
    pub fn distance(&self, node: NodeId) -> Option<f64> {
        self.dist.get(node.index()).copied().flatten()
    }

    /// Reconstructs the cheapest route from the source to `dest`, or `None`
    /// when `dest` is unreachable or equal to the source.
    pub fn route_to(&self, net: &Network, dest: NodeId) -> Option<Route> {
        if dest == self.source {
            return None;
        }
        self.dist.get(dest.index()).copied().flatten()?;
        let mut links = Vec::new();
        let mut cur = dest;
        while cur != self.source {
            let link = self.parent_link[cur.index()]?;
            links.push(link);
            cur = net.link(link).src();
        }
        links.reverse();
        Route::new(net, links).ok()
    }
}

/// Runs Dijkstra from `src` with per-link costs given by `cost`.
///
/// Links for which `cost` returns `None` are excluded from the search.
/// Negative costs are treated as zero (Dijkstra's invariant requires
/// non-negative costs; the routing schemes of the paper only produce
/// non-negative ones).
pub fn shortest_path_tree(
    net: &Network,
    src: NodeId,
    mut cost: impl FnMut(LinkId) -> Option<f64>,
) -> ShortestPathTree {
    let n = net.num_nodes();
    let mut dist: Vec<Option<f64>> = vec![None; n];
    let mut parent_link: Vec<Option<LinkId>> = vec![None; n];
    let mut done = vec![false; n];
    let mut heap = BinaryHeap::new();

    if src.index() < n {
        dist[src.index()] = Some(0.0);
        heap.push(HeapEntry {
            cost: 0.0,
            node: src,
        });
    }

    while let Some(HeapEntry { cost: d, node }) = heap.pop() {
        if done[node.index()] {
            continue;
        }
        done[node.index()] = true;
        for &lid in net.out_links(node) {
            let Some(step) = cost(lid) else { continue };
            let step = step.max(0.0);
            let next = net.link(lid).dst();
            if done[next.index()] {
                continue;
            }
            let cand = d + step;
            let better = match dist[next.index()] {
                None => true,
                Some(cur) => cand < cur,
            };
            if better {
                dist[next.index()] = Some(cand);
                parent_link[next.index()] = Some(lid);
                heap.push(HeapEntry {
                    cost: cand,
                    node: next,
                });
            }
        }
    }

    ShortestPathTree {
        source: src,
        dist,
        parent_link,
    }
}

/// Finds the cheapest route from `src` to `dst` under `cost`, returning
/// `(total_cost, route)`, or `None` when unreachable or `src == dst`.
///
/// # Example
///
/// ```
/// use drt_net::{algo, topology, Bandwidth, NodeId};
///
/// let net = topology::ring(5, Bandwidth::from_mbps(10))?;
/// let (cost, route) =
///     algo::shortest_path(&net, NodeId::new(0), NodeId::new(2), |_| Some(1.0)).unwrap();
/// assert_eq!(cost, 2.0);
/// assert_eq!(route.len(), 2);
/// # Ok::<(), drt_net::NetError>(())
/// ```
pub fn shortest_path(
    net: &Network,
    src: NodeId,
    dst: NodeId,
    cost: impl FnMut(LinkId) -> Option<f64>,
) -> Option<(f64, Route)> {
    let tree = shortest_path_tree(net, src, cost);
    let d = tree.distance(dst)?;
    let route = tree.route_to(net, dst)?;
    Some((d, route))
}

/// Finds a minimum-hop route from `src` to `dst` (unit link costs), or
/// `None` when unreachable or `src == dst`.
pub fn shortest_path_hops(net: &Network, src: NodeId, dst: NodeId) -> Option<Route> {
    shortest_path(net, src, dst, |_| Some(1.0)).map(|(_, r)| r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{topology, Bandwidth};

    const CAP: Bandwidth = Bandwidth::from_mbps(10);

    #[test]
    fn ring_hop_counts() {
        let net = topology::ring(6, CAP).unwrap();
        let tree = shortest_path_tree(&net, NodeId::new(0), |_| Some(1.0));
        assert_eq!(tree.distance(NodeId::new(0)), Some(0.0));
        assert_eq!(tree.distance(NodeId::new(3)), Some(3.0));
        assert_eq!(tree.distance(NodeId::new(5)), Some(1.0));
        assert_eq!(tree.source(), NodeId::new(0));
    }

    #[test]
    fn route_reconstruction_is_contiguous() {
        let net = topology::mesh(4, 4, CAP).unwrap();
        let route = shortest_path_hops(&net, NodeId::new(0), NodeId::new(15)).unwrap();
        assert_eq!(route.len(), 6); // manhattan distance in a 4x4 mesh
        assert_eq!(route.source(), NodeId::new(0));
        assert_eq!(route.dest(), NodeId::new(15));
        assert!(route.is_simple(&net));
    }

    #[test]
    fn excluded_links_are_avoided() {
        let net = topology::ring(4, CAP).unwrap();
        let l01 = net.find_link(NodeId::new(0), NodeId::new(1)).unwrap();
        // Exclude the direct 0 -> 1 link: forced the long way around.
        let (cost, route) = shortest_path(&net, NodeId::new(0), NodeId::new(1), |l| {
            if l == l01 {
                None
            } else {
                Some(1.0)
            }
        })
        .unwrap();
        assert_eq!(cost, 3.0);
        assert!(!route.contains_link(l01));
    }

    #[test]
    fn unreachable_returns_none() {
        // Two disconnected duplex pairs.
        let mut b = crate::NetworkBuilder::with_nodes(4);
        b.add_duplex_link(NodeId::new(0), NodeId::new(1), CAP)
            .unwrap();
        b.add_duplex_link(NodeId::new(2), NodeId::new(3), CAP)
            .unwrap();
        let net = b.build();
        assert!(shortest_path_hops(&net, NodeId::new(0), NodeId::new(2)).is_none());
    }

    #[test]
    fn src_equals_dst_returns_none() {
        let net = topology::ring(4, CAP).unwrap();
        assert!(shortest_path_hops(&net, NodeId::new(1), NodeId::new(1)).is_none());
    }

    #[test]
    fn weighted_costs_divert_route() {
        let net = topology::ring(4, CAP).unwrap();
        let l01 = net.find_link(NodeId::new(0), NodeId::new(1)).unwrap();
        // Make the direct hop expensive but not excluded.
        let (cost, route) = shortest_path(&net, NodeId::new(0), NodeId::new(1), |l| {
            if l == l01 {
                Some(10.0)
            } else {
                Some(1.0)
            }
        })
        .unwrap();
        assert_eq!(cost, 3.0);
        assert_eq!(route.len(), 3);
    }

    #[test]
    fn negative_costs_clamped_to_zero() {
        let net = topology::ring(4, CAP).unwrap();
        let (cost, _) =
            shortest_path(&net, NodeId::new(0), NodeId::new(2), |_| Some(-5.0)).unwrap();
        assert_eq!(cost, 0.0);
    }

    #[test]
    fn deterministic_tie_breaking() {
        let net = topology::mesh(3, 3, CAP).unwrap();
        let a = shortest_path_hops(&net, NodeId::new(0), NodeId::new(8)).unwrap();
        let b = shortest_path_hops(&net, NodeId::new(0), NodeId::new(8)).unwrap();
        assert_eq!(a, b);
    }
}
