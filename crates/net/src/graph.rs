//! The directed, capacitated network graph.

use crate::{Bandwidth, Link, LinkId, NetError, NodeId, SrlgId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A directed, capacitated network of routers and unidirectional links.
///
/// `Network` is immutable after construction (via [`crate::NetworkBuilder`]
/// or one of the [`crate::topology`] generators): the paper's protocol state
/// (reservations, APLVs, spare pools) changes constantly, but the topology
/// changes only via the failure model, which `drt-core` layers on top by
/// *masking* links rather than mutating the graph. Keeping the graph frozen
/// makes dense [`LinkId`]-indexed vectors safe to hold across the whole
/// simulation.
///
/// # Example
///
/// ```
/// use drt_net::{NetworkBuilder, Bandwidth};
///
/// # fn main() -> Result<(), drt_net::NetError> {
/// let mut b = NetworkBuilder::new();
/// let a = b.add_node();
/// let c = b.add_node();
/// b.add_duplex_link(a, c, Bandwidth::from_mbps(100))?;
/// let net = b.build();
/// assert_eq!(net.num_nodes(), 2);
/// assert_eq!(net.num_links(), 2); // one duplex pair = two links
/// assert!(net.find_link(a, c).is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    pub(crate) positions: Vec<[f64; 2]>,
    pub(crate) links: Vec<Link>,
    pub(crate) out_adj: Vec<Vec<LinkId>>,
    pub(crate) in_adj: Vec<Vec<LinkId>>,
    /// Shared-risk link groups: members of one group fail together (a cut
    /// conduit, a shared line card). Members are sorted and deduplicated.
    #[serde(default)]
    pub(crate) srlgs: Vec<Vec<LinkId>>,
}

impl Network {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.positions.len()
    }

    /// Number of unidirectional links (`N` in the paper's notation).
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Returns `true` if the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Returns the link record for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range; ids obtained from this network are
    /// always in range.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// Returns the link record for `id`, or `None` if out of range.
    pub fn get_link(&self, id: LinkId) -> Option<&Link> {
        self.links.get(id.index())
    }

    /// Returns `true` if `node` exists in this network.
    pub fn contains_node(&self, node: NodeId) -> bool {
        node.index() < self.positions.len()
    }

    /// The 2-D position of a node (used by the Waxman generator and by the
    /// bounded-flooding ellipse visualisations; generators that have no
    /// geometric embedding place nodes at the origin).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn node_position(&self, node: NodeId) -> [f64; 2] {
        self.positions[node.index()]
    }

    /// Iterates over all node ids in increasing order.
    pub fn nodes(&self) -> NodeIter {
        NodeIter {
            next: 0,
            total: self.positions.len() as u32,
        }
    }

    /// Iterates over all links in id order.
    pub fn links(&self) -> LinkIter<'_> {
        LinkIter {
            inner: self.links.iter(),
        }
    }

    /// Outgoing links of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn out_links(&self, node: NodeId) -> &[LinkId] {
        &self.out_adj[node.index()]
    }

    /// Incoming links of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn in_links(&self, node: NodeId) -> &[LinkId] {
        &self.in_adj[node.index()]
    }

    /// Out-neighbors of `node` (one entry per outgoing link).
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out_adj[node.index()]
            .iter()
            .map(move |l| self.links[l.index()].dst())
    }

    /// Number of registered shared-risk link groups.
    pub fn num_srlgs(&self) -> usize {
        self.srlgs.len()
    }

    /// The member links of an SRLG (sorted, deduplicated).
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range; ids obtained from this network
    /// are always in range.
    pub fn srlg(&self, group: SrlgId) -> &[LinkId] {
        &self.srlgs[group.index()]
    }

    /// The member links of an SRLG, or `None` if out of range.
    pub fn get_srlg(&self, group: SrlgId) -> Option<&[LinkId]> {
        self.srlgs.get(group.index()).map(Vec::as_slice)
    }

    /// Iterates over all SRLG ids in increasing order.
    pub fn srlg_ids(&self) -> impl Iterator<Item = SrlgId> {
        (0..self.srlgs.len() as u32).map(SrlgId::new)
    }

    /// Returns this network with additional shared-risk link groups
    /// registered — the post-build counterpart of
    /// [`crate::NetworkBuilder::add_srlg`], for topologies that come out
    /// of a generator rather than a hand-driven builder (an experiment
    /// harness derives conduit groups on a Waxman graph it did not build
    /// link by link). Members are sorted and deduplicated per group.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownLink`] when a member does not exist,
    /// and [`NetError::Infeasible`] for an empty group.
    pub fn with_srlgs(mut self, groups: &[Vec<LinkId>]) -> Result<Network, NetError> {
        for members in groups {
            if members.is_empty() {
                return Err(NetError::Infeasible("SRLG with no member links".into()));
            }
            for &l in members {
                if l.index() >= self.links.len() {
                    return Err(NetError::UnknownLink(l));
                }
            }
            let mut sorted = members.clone();
            sorted.sort_unstable();
            sorted.dedup();
            self.srlgs.push(sorted);
        }
        Ok(self)
    }

    /// The SRLGs that contain `link` (risk groups a backup route planner
    /// should treat as correlated with the primary's links).
    pub fn srlgs_of_link(&self, link: LinkId) -> impl Iterator<Item = SrlgId> + '_ {
        self.srlgs
            .iter()
            .enumerate()
            .filter(move |(_, members)| members.binary_search(&link).is_ok())
            .map(|(i, _)| SrlgId::new(i as u32))
    }

    /// All links incident to `node` — outgoing then incoming, each in id
    /// order. This is exactly the set a node crash takes down, and the set
    /// neighbours monitor to *detect* such a crash.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn incident_links(&self, node: NodeId) -> impl Iterator<Item = LinkId> + '_ {
        self.out_adj[node.index()]
            .iter()
            .chain(self.in_adj[node.index()].iter())
            .copied()
    }

    /// Finds the link from `src` to `dst`, if one exists.
    pub fn find_link(&self, src: NodeId, dst: NodeId) -> Option<LinkId> {
        self.out_adj
            .get(src.index())?
            .iter()
            .copied()
            .find(|l| self.links[l.index()].dst() == dst)
    }

    /// The opposite-direction twin of `link` when it is half of a duplex
    /// pair, falling back to a lookup of any `dst -> src` link.
    pub fn reverse_link(&self, link: LinkId) -> Option<LinkId> {
        let l = self.get_link(link)?;
        l.reverse().or_else(|| self.find_link(l.dst(), l.src()))
    }

    /// Average *node degree* `E` counting each duplex pair once, as the
    /// paper does: a 60-node network with `E = 3` has 90 duplex pairs, i.e.
    /// 180 unidirectional links.
    pub fn average_node_degree(&self) -> f64 {
        if self.positions.is_empty() {
            return 0.0;
        }
        // Each unidirectional link contributes 1 to its source's out-degree;
        // a duplex pair contributes 1 to the undirected degree of each
        // endpoint, i.e. `num_links / num_nodes` overall.
        self.links.len() as f64 / self.positions.len() as f64
    }

    /// Total capacity over all unidirectional links.
    pub fn total_capacity(&self) -> Bandwidth {
        self.links.iter().map(|l| l.capacity()).sum()
    }

    /// Euclidean distance between two node positions.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn euclidean_distance(&self, a: NodeId, b: NodeId) -> f64 {
        let pa = self.positions[a.index()];
        let pb = self.positions[b.index()];
        ((pa[0] - pb[0]).powi(2) + (pa[1] - pb[1]).powi(2)).sqrt()
    }

    /// Returns `true` if every node can reach every other node along
    /// directed links.
    ///
    /// For the duplex topologies produced by the generators this coincides
    /// with undirected connectivity.
    pub fn is_connected(&self) -> bool {
        crate::algo::is_strongly_connected(self)
    }

    /// Renders the network in Graphviz DOT format (duplex pairs are drawn as
    /// single undirected edges where possible).
    pub fn to_dot(&self) -> String {
        let mut out = String::from("graph network {\n");
        for n in self.nodes() {
            let [x, y] = self.node_position(n);
            out.push_str(&format!("  {} [pos=\"{:.4},{:.4}!\"];\n", n.index(), x, y));
        }
        for l in self.links() {
            // Draw each duplex pair once (from the lower-id half); draw
            // genuinely unidirectional links as directed edges.
            match l.reverse() {
                Some(rev) if rev < l.id() => continue,
                Some(_) => out.push_str(&format!(
                    "  {} -- {} [label=\"{}\"];\n",
                    l.src().index(),
                    l.dst().index(),
                    l.capacity()
                )),
                None => out.push_str(&format!(
                    "  {} -- {} [dir=forward, label=\"{}\"];\n",
                    l.src().index(),
                    l.dst().index(),
                    l.capacity()
                )),
            }
        }
        out.push_str("}\n");
        out
    }

    /// Validates that a sequence of link ids forms a contiguous directed
    /// walk in this network, returning its endpoints.
    pub(crate) fn validate_walk(&self, links: &[LinkId]) -> Result<(NodeId, NodeId), NetError> {
        let first = links
            .first()
            .ok_or_else(|| NetError::InvalidRoute("route has no links".into()))?;
        let mut cur = self
            .get_link(*first)
            .ok_or(NetError::UnknownLink(*first))?
            .src();
        for id in links {
            let link = self.get_link(*id).ok_or(NetError::UnknownLink(*id))?;
            if link.src() != cur {
                return Err(NetError::InvalidRoute(format!(
                    "link {} starts at {} but previous hop ended at {}",
                    id,
                    link.src(),
                    cur
                )));
            }
            cur = link.dst();
        }
        let src = self.links[first.index()].src();
        Ok((src, cur))
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "network of {} nodes, {} links (E = {:.2})",
            self.num_nodes(),
            self.num_links(),
            self.average_node_degree()
        )
    }
}

/// Iterator over all node ids of a [`Network`]; created by
/// [`Network::nodes`].
#[derive(Debug, Clone)]
pub struct NodeIter {
    next: u32,
    total: u32,
}

impl Iterator for NodeIter {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if self.next < self.total {
            let id = NodeId::new(self.next);
            self.next += 1;
            Some(id)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.total - self.next) as usize;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for NodeIter {}

/// Iterator over all links of a [`Network`]; created by [`Network::links`].
#[derive(Debug, Clone)]
pub struct LinkIter<'a> {
    inner: std::slice::Iter<'a, Link>,
}

impl<'a> Iterator for LinkIter<'a> {
    type Item = &'a Link;

    fn next(&mut self) -> Option<&'a Link> {
        self.inner.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl ExactSizeIterator for LinkIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetworkBuilder;

    fn triangle() -> Network {
        let mut b = NetworkBuilder::new();
        let n0 = b.add_node();
        let n1 = b.add_node();
        let n2 = b.add_node();
        b.add_duplex_link(n0, n1, Bandwidth::from_mbps(10)).unwrap();
        b.add_duplex_link(n1, n2, Bandwidth::from_mbps(10)).unwrap();
        b.add_duplex_link(n2, n0, Bandwidth::from_mbps(10)).unwrap();
        b.build()
    }

    #[test]
    fn counts_and_degree() {
        let net = triangle();
        assert_eq!(net.num_nodes(), 3);
        assert_eq!(net.num_links(), 6);
        assert!((net.average_node_degree() - 2.0).abs() < 1e-12);
        assert!(!net.is_empty());
        assert_eq!(net.total_capacity(), Bandwidth::from_mbps(60));
    }

    #[test]
    fn adjacency_is_consistent() {
        let net = triangle();
        for n in net.nodes() {
            assert_eq!(net.out_links(n).len(), 2);
            assert_eq!(net.in_links(n).len(), 2);
            for &l in net.out_links(n) {
                assert_eq!(net.link(l).src(), n);
            }
            for &l in net.in_links(n) {
                assert_eq!(net.link(l).dst(), n);
            }
        }
    }

    #[test]
    fn find_and_reverse_link() {
        let net = triangle();
        let l = net.find_link(NodeId::new(0), NodeId::new(1)).unwrap();
        let r = net.reverse_link(l).unwrap();
        assert_eq!(net.link(r).src(), NodeId::new(1));
        assert_eq!(net.link(r).dst(), NodeId::new(0));
        assert_eq!(net.reverse_link(r), Some(l));
        assert_eq!(net.find_link(NodeId::new(0), NodeId::new(0)), None);
    }

    #[test]
    fn neighbors_iterate_out_edges() {
        let net = triangle();
        let mut nbrs: Vec<_> = net.neighbors(NodeId::new(0)).collect();
        nbrs.sort();
        assert_eq!(nbrs, vec![NodeId::new(1), NodeId::new(2)]);
    }

    #[test]
    fn triangle_is_connected() {
        assert!(triangle().is_connected());
    }

    #[test]
    fn dot_output_has_all_edges() {
        let dot = triangle().to_dot();
        assert!(dot.starts_with("graph network {"));
        // Three duplex pairs drawn once each.
        assert_eq!(dot.matches(" -- ").count(), 3);
    }

    #[test]
    fn walk_validation() {
        let net = triangle();
        let l01 = net.find_link(NodeId::new(0), NodeId::new(1)).unwrap();
        let l12 = net.find_link(NodeId::new(1), NodeId::new(2)).unwrap();
        let (s, d) = net.validate_walk(&[l01, l12]).unwrap();
        assert_eq!((s, d), (NodeId::new(0), NodeId::new(2)));
        assert!(net.validate_walk(&[l12, l01]).is_err());
        assert!(net.validate_walk(&[]).is_err());
    }

    #[test]
    fn iterators_have_exact_size() {
        let net = triangle();
        assert_eq!(net.nodes().len(), 3);
        assert_eq!(net.links().len(), 6);
    }

    #[test]
    fn with_srlgs_registers_groups_post_build() {
        let net = triangle();
        assert_eq!(net.num_srlgs(), 0);
        let l0 = LinkId::new(0);
        let l1 = LinkId::new(1);
        let net = net
            .with_srlgs(&[vec![l1, l0, l1], vec![LinkId::new(2)]])
            .unwrap();
        assert_eq!(net.num_srlgs(), 2);
        // Sorted and deduplicated, like the builder path.
        assert_eq!(net.srlg(SrlgId::new(0)), &[l0, l1]);
        let bad = triangle().with_srlgs(&[vec![LinkId::new(99)]]);
        assert!(bad.is_err());
        let empty = triangle().with_srlgs(&[Vec::new()]);
        assert!(empty.is_err());
    }
}
