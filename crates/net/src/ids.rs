//! Dense integer identifiers for nodes and links.
//!
//! Both identifiers are newtypes over `u32` ([C-NEWTYPE]) so that a node
//! index can never be confused with a link index. They are dense: a network
//! with `n` nodes uses ids `0..n`, which lets per-link state (APLVs, conflict
//! vectors) be stored in plain vectors indexed by id.
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a network node (router/switch).
///
/// Ids are assigned densely by [`crate::NetworkBuilder`] in insertion order.
///
/// # Example
///
/// ```
/// use drt_net::NodeId;
/// let n = NodeId::new(3);
/// assert_eq!(n.index(), 3);
/// assert_eq!(n.to_string(), "n3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from its dense index.
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// Returns the dense index as a `usize`, suitable for vector indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Identifier of a unidirectional network link.
///
/// A bidirectional physical connection is modelled as *two* links with
/// distinct ids, mirroring the paper ("each connection between two nodes has
/// two unidirectional links").
///
/// # Example
///
/// ```
/// use drt_net::LinkId;
/// let l = LinkId::new(7);
/// assert_eq!(l.index(), 7);
/// assert_eq!(l.to_string(), "L7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(u32);

impl LinkId {
    /// Creates a link id from its dense index.
    pub const fn new(index: u32) -> Self {
        LinkId(index)
    }

    /// Returns the dense index as a `usize`, suitable for vector indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

impl From<u32> for LinkId {
    fn from(v: u32) -> Self {
        LinkId(v)
    }
}

/// Identifier of a shared-risk link group (SRLG).
///
/// Links that share physical substrate (a fiber conduit, a line card, a
/// building) fail *together*; an SRLG names such a set so the failure model
/// can cut every member in one event. Ids are dense in registration order.
///
/// # Example
///
/// ```
/// use drt_net::SrlgId;
/// let g = SrlgId::new(2);
/// assert_eq!(g.index(), 2);
/// assert_eq!(g.to_string(), "G2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SrlgId(u32);

impl SrlgId {
    /// Creates an SRLG id from its dense index.
    pub const fn new(index: u32) -> Self {
        SrlgId(index)
    }

    /// Returns the dense index as a `usize`, suitable for vector indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for SrlgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "G{}", self.0)
    }
}

impl From<u32> for SrlgId {
    fn from(v: u32) -> Self {
        SrlgId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn node_id_roundtrip() {
        let n = NodeId::new(42);
        assert_eq!(n.index(), 42);
        assert_eq!(n.as_u32(), 42);
        assert_eq!(NodeId::from(42u32), n);
    }

    #[test]
    fn link_id_roundtrip() {
        let l = LinkId::new(9);
        assert_eq!(l.index(), 9);
        assert_eq!(l.as_u32(), 9);
        assert_eq!(LinkId::from(9u32), l);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        let mut set = HashSet::new();
        set.insert(NodeId::new(1));
        set.insert(NodeId::new(1));
        set.insert(NodeId::new(2));
        assert_eq!(set.len(), 2);
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(LinkId::new(0) < LinkId::new(1));
    }

    #[test]
    fn srlg_id_roundtrip() {
        let g = SrlgId::new(4);
        assert_eq!(g.index(), 4);
        assert_eq!(g.as_u32(), 4);
        assert_eq!(SrlgId::from(4u32), g);
        assert!(SrlgId::new(0) < SrlgId::new(1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", NodeId::new(0)), "n0");
        assert_eq!(format!("{}", LinkId::new(13)), "L13");
        assert_eq!(format!("{}", SrlgId::new(2)), "G2");
        // Debug representation is never empty (C-DEBUG-NONEMPTY).
        assert!(!format!("{:?}", NodeId::new(0)).is_empty());
    }
}
