//! Network substrate for the DRTP (Dependable Real-Time Protocol)
//! reproduction.
//!
//! This crate provides everything the routing layer needs to know about the
//! network *itself*, independent of any real-time connection state:
//!
//! * [`Network`] — a directed, capacitated multigraph whose links are
//!   identified by dense [`LinkId`]s, suitable for the per-link state vectors
//!   (APLV, conflict vectors) the paper's routing schemes maintain.
//! * [`topology`] — generators for the topologies used in the paper's
//!   evaluation (Waxman random graphs with a target average node degree) and
//!   in its worked examples (meshes), plus rings, tori and complete graphs
//!   for testing.
//! * [`algo`] — path algorithms: Dijkstra with arbitrary per-link costs,
//!   Bellman–Ford, all-pairs hop counts, per-node distance tables (as used by
//!   the bounded-flooding scheme), Yen's k-shortest paths, and disjoint path
//!   pairs.
//! * [`Route`] — an immutable, validated sequence of links, the `LSET` of
//!   the paper.
//!
//! # Example
//!
//! ```
//! use drt_net::{topology, algo, Bandwidth, NodeId};
//!
//! # fn main() -> Result<(), drt_net::NetError> {
//! // A 60-node Waxman graph with average node degree ~3, as in the paper.
//! let net = topology::WaxmanConfig::new(60, 3.0)
//!     .capacity(Bandwidth::from_mbps(100))
//!     .seed(7)
//!     .build()?;
//! assert!(net.is_connected());
//!
//! // Min-hop route between two nodes.
//! let route = algo::shortest_path_hops(&net, NodeId::new(0), NodeId::new(59))
//!     .expect("connected graph has a route");
//! assert!(route.len() >= 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![deny(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod algo;
mod bandwidth;
mod builder;
mod error;
mod graph;
mod ids;
mod link;
mod route;
mod textio;
pub mod topology;

pub use bandwidth::Bandwidth;
pub use builder::NetworkBuilder;
pub use error::NetError;
pub use graph::{LinkIter, Network, NodeIter};
pub use ids::{LinkId, NodeId, SrlgId};
pub use link::Link;
pub use route::Route;
