//! Unidirectional capacitated links.

use crate::{Bandwidth, LinkId, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A unidirectional link of the network.
///
/// Bidirectional physical connections are represented as two `Link`s that
/// point at each other through [`Link::reverse`], mirroring the paper's
/// model ("links are assumed to be bi-directional, with an identical
/// bandwidth capacity in both directions").
///
/// `Link` is a passive record; mutable per-link *resource* state
/// (primary/spare reservations, APLV) lives in `drt-core`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Link {
    id: LinkId,
    src: NodeId,
    dst: NodeId,
    capacity: Bandwidth,
    reverse: Option<LinkId>,
}

impl Link {
    /// Creates a new link record. Intended for use by
    /// [`crate::NetworkBuilder`]; library users normally obtain links from
    /// [`crate::Network::link`].
    pub(crate) fn new(
        id: LinkId,
        src: NodeId,
        dst: NodeId,
        capacity: Bandwidth,
        reverse: Option<LinkId>,
    ) -> Self {
        Link {
            id,
            src,
            dst,
            capacity,
            reverse,
        }
    }

    /// The link's identifier.
    pub fn id(&self) -> LinkId {
        self.id
    }

    /// The node this link leaves from.
    pub fn src(&self) -> NodeId {
        self.src
    }

    /// The node this link arrives at.
    pub fn dst(&self) -> NodeId {
        self.dst
    }

    /// The total bandwidth capacity of the link.
    pub fn capacity(&self) -> Bandwidth {
        self.capacity
    }

    /// The opposite-direction twin of this link, when the link was created
    /// as half of a duplex pair.
    pub fn reverse(&self) -> Option<LinkId> {
        self.reverse
    }

    /// Returns the endpoint other than `node`, or `None` if `node` is not an
    /// endpoint of this link.
    pub fn opposite(&self, node: NodeId) -> Option<NodeId> {
        if node == self.src {
            Some(self.dst)
        } else if node == self.dst {
            Some(self.src)
        } else {
            None
        }
    }

    pub(crate) fn set_reverse(&mut self, rev: LinkId) {
        self.reverse = Some(rev);
    }
}

impl fmt::Display for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} -> {} ({})",
            self.id, self.src, self.dst, self.capacity
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Link {
        Link::new(
            LinkId::new(5),
            NodeId::new(1),
            NodeId::new(2),
            Bandwidth::from_mbps(100),
            Some(LinkId::new(6)),
        )
    }

    #[test]
    fn accessors() {
        let l = sample();
        assert_eq!(l.id(), LinkId::new(5));
        assert_eq!(l.src(), NodeId::new(1));
        assert_eq!(l.dst(), NodeId::new(2));
        assert_eq!(l.capacity(), Bandwidth::from_mbps(100));
        assert_eq!(l.reverse(), Some(LinkId::new(6)));
    }

    #[test]
    fn opposite_endpoint() {
        let l = sample();
        assert_eq!(l.opposite(NodeId::new(1)), Some(NodeId::new(2)));
        assert_eq!(l.opposite(NodeId::new(2)), Some(NodeId::new(1)));
        assert_eq!(l.opposite(NodeId::new(9)), None);
    }

    #[test]
    fn display_mentions_everything() {
        assert_eq!(sample().to_string(), "L5: n1 -> n2 (100 Mb/s)");
    }
}
