//! Error type for network construction and queries.

use crate::{LinkId, NodeId};
use std::error::Error;
use std::fmt;

/// Errors produced while building or querying a [`crate::Network`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetError {
    /// A node id referenced a node that does not exist.
    UnknownNode(NodeId),
    /// A link id referenced a link that does not exist.
    UnknownLink(LinkId),
    /// A link was declared with identical endpoints.
    SelfLoop(NodeId),
    /// A link between the two nodes in this direction already exists and the
    /// builder was configured to reject parallel links.
    ParallelLink(NodeId, NodeId),
    /// A topology generator could not satisfy its constraints
    /// (e.g. a target average degree too large for the node count).
    Infeasible(String),
    /// A route failed structural validation (discontiguous, empty, or
    /// containing an unknown link).
    InvalidRoute(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownNode(n) => write!(f, "unknown node {n}"),
            NetError::UnknownLink(l) => write!(f, "unknown link {l}"),
            NetError::SelfLoop(n) => write!(f, "self-loop at {n} is not allowed"),
            NetError::ParallelLink(a, b) => {
                write!(f, "parallel link {a} -> {b} is not allowed")
            }
            NetError::Infeasible(why) => write!(f, "infeasible topology request: {why}"),
            NetError::InvalidRoute(why) => write!(f, "invalid route: {why}"),
        }
    }
}

impl Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let e = NetError::SelfLoop(NodeId::new(2));
        assert_eq!(e.to_string(), "self-loop at n2 is not allowed");
        let e = NetError::ParallelLink(NodeId::new(0), NodeId::new(1));
        assert_eq!(e.to_string(), "parallel link n0 -> n1 is not allowed");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetError>();
    }
}
