//! Topology generators.
//!
//! The paper evaluates on 60-node Waxman graphs with average node degree
//! `E ∈ {3, 4}` and illustrates the protocol on small meshes, so this module
//! provides:
//!
//! * [`WaxmanConfig`] — the Waxman random-graph model with automatic tuning
//!   to a target average node degree and guaranteed connectivity;
//! * [`mesh`] / [`torus`] — rectangular grids (Figure 1 of the paper uses a
//!   3×3 mesh);
//! * [`ring`], [`complete`], [`random_connected`] — regular and random
//!   topologies used throughout the test suites.
//!
//! All generators produce *duplex* links: every physical connection becomes
//! two unidirectional [`crate::Link`]s with equal capacity, as in the paper.

mod regular;
mod waxman;

pub use regular::{complete, mesh, random_connected, ring, torus};
pub use waxman::WaxmanConfig;
