//! The Waxman random-graph model with exact degree targeting and
//! (optional, default-on) 2-edge-connectivity.

use crate::{Bandwidth, NetError, Network, NetworkBuilder, NodeId};
use rand::Rng;
use rand::SeedableRng;
use std::collections::HashSet;

/// Configuration for generating Waxman random topologies.
///
/// In the classic Waxman model (Waxman 1988, the paper's reference \[11\])
/// nodes are placed uniformly in the unit square and each pair `(u, v)` is
/// connected with probability `a · exp(−d(u,v) / (b·L))`, where `d` is
/// Euclidean distance and `L` the maximum inter-node distance. The DSN
/// paper requires topologies with an *exact* average node degree (`E = 3`
/// or `E = 4` on 60 nodes), which raw sampling cannot guarantee, so this
/// generator instead:
///
/// 1. places nodes uniformly at random in the unit square;
/// 2. draws a random spanning tree whose attachment choices are weighted
///    by the Waxman kernel `exp(−d/(b·L))` (guaranteeing connectivity
///    while preserving the model's locality bias);
/// 3. eliminates bridges by adding kernel-weighted edges across each
///    remaining cut (see below), while the degree budget allows;
/// 4. adds further links by weighted sampling without replacement until
///    exactly `round(E·n/2)` duplex pairs exist.
///
/// Step 3 (on by default, [`WaxmanConfig::two_edge_connected`]) exists
/// because a DR-connection whose route crosses a *bridge* can never have a
/// link-disjoint backup: the failure of that bridge is unrecoverable no
/// matter the routing scheme. Spanning-tree-seeded random graphs otherwise
/// retain degree-1 nodes and cuts that put a topology-imposed ceiling on
/// `P_act-bk`, drowning the routing-scheme differences the evaluation is
/// about. With `E ≥ 2` the budget virtually always suffices; leftover
/// bridges (tiny graphs, degree targets near the spanning-tree minimum)
/// are tolerated.
///
/// The overall density parameter `a` of the classic model is therefore
/// implied by the degree target rather than set directly; the locality
/// parameter `b` is exposed as [`WaxmanConfig::locality`].
///
/// # Example
///
/// ```
/// use drt_net::{topology::WaxmanConfig, algo, Bandwidth};
///
/// let net = WaxmanConfig::new(60, 3.0)
///     .capacity(Bandwidth::from_mbps(100))
///     .seed(1)
///     .build()?;
/// assert_eq!(net.num_nodes(), 60);
/// assert_eq!(net.num_links(), 180); // E = 3 -> 90 duplex pairs
/// assert!(net.is_connected());
/// assert!(algo::bridges(&net).is_empty());
/// # Ok::<(), drt_net::NetError>(())
/// ```
#[derive(Debug, Clone)]
pub struct WaxmanConfig {
    nodes: usize,
    target_degree: f64,
    locality: f64,
    capacity: Bandwidth,
    seed: u64,
    two_edge_connected: bool,
}

impl WaxmanConfig {
    /// Starts a configuration for `nodes` nodes with the given target
    /// average node degree (duplex pairs counted once per endpoint).
    pub fn new(nodes: usize, target_degree: f64) -> Self {
        WaxmanConfig {
            nodes,
            target_degree,
            locality: 0.6,
            capacity: Bandwidth::from_mbps(100),
            seed: 0,
            two_edge_connected: true,
        }
    }

    /// Sets the Waxman locality parameter `b` (default `0.6`). Smaller
    /// values bias links toward geometrically close node pairs.
    pub fn locality(mut self, b: f64) -> Self {
        self.locality = b;
        self
    }

    /// Sets the capacity assigned to every link (default 100 Mb/s, the
    /// calibration used for the paper's Table 1).
    pub fn capacity(mut self, capacity: Bandwidth) -> Self {
        self.capacity = capacity;
        self
    }

    /// Sets the RNG seed; the generator is fully deterministic per seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables/disables best-effort bridge elimination (default enabled);
    /// see the type-level docs for why DRTP evaluations want it.
    pub fn two_edge_connected(mut self, yes: bool) -> Self {
        self.two_edge_connected = yes;
        self
    }

    /// Number of duplex pairs the generated network will contain.
    pub fn target_pairs(&self) -> usize {
        (self.target_degree * self.nodes as f64 / 2.0).round() as usize
    }

    /// Generates the network.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Infeasible`] when fewer than 2 nodes are
    /// requested, when the degree target implies fewer pairs than a
    /// spanning tree needs, when it exceeds the complete graph, or when
    /// the locality parameter is not positive.
    pub fn build(&self) -> Result<Network, NetError> {
        let n = self.nodes;
        if n < 2 {
            return Err(NetError::Infeasible("need at least 2 nodes".into()));
        }
        if self.locality <= 0.0 {
            return Err(NetError::Infeasible(
                "waxman locality parameter must be positive".into(),
            ));
        }
        let pairs = self.target_pairs();
        if pairs < n - 1 {
            return Err(NetError::Infeasible(format!(
                "target degree {} gives {} pairs, below the {} needed for connectivity",
                self.target_degree,
                pairs,
                n - 1
            )));
        }
        if pairs > n * (n - 1) / 2 {
            return Err(NetError::Infeasible(format!(
                "target degree {} exceeds the complete graph on {n} nodes",
                self.target_degree
            )));
        }

        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        let mut pos = Vec::with_capacity(n);
        for _ in 0..n {
            pos.push([rng.gen::<f64>(), rng.gen::<f64>()]);
        }

        // Maximum inter-node distance L and the Waxman kernel.
        let mut max_d: f64 = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                max_d = max_d.max(dist(pos[i], pos[j]));
            }
        }
        let scale = self.locality * max_d.max(f64::MIN_POSITIVE);
        let kernel = |i: usize, j: usize| (-dist(pos[i], pos[j]) / scale).exp();

        // Undirected edge set under construction.
        let mut edges: HashSet<(usize, usize)> = HashSet::new();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        let add_edge =
            |edges: &mut HashSet<(usize, usize)>, adj: &mut Vec<Vec<usize>>, a: usize, b: usize| {
                debug_assert!(a != b);
                let key = (a.min(b), a.max(b));
                if edges.insert(key) {
                    adj[a].push(b);
                    adj[b].push(a);
                    true
                } else {
                    false
                }
            };

        // 1. Spanning tree with Waxman-weighted attachment.
        let mut attached: Vec<usize> = vec![0];
        let mut detached: Vec<usize> = (1..n).collect();
        while let Some(next) = pick_weighted(&mut rng, &detached, |&j| {
            attached
                .iter()
                .map(|&i| kernel(i, j))
                .fold(0.0f64, f64::max)
        }) {
            let j = detached.swap_remove(next);
            let pi = pick_weighted(&mut rng, &attached, |&i| kernel(i, j))
                .expect("attached set is never empty");
            let i = attached[pi];
            add_edge(&mut edges, &mut adj, i, j);
            attached.push(j);
        }

        // 2. Bridge elimination (best-effort within the degree budget).
        if self.two_edge_connected {
            while edges.len() < pairs {
                let Some((u, v)) = first_bridge(&adj) else {
                    break;
                };
                // Component of u when the bridge is removed.
                let side = component_without_edge(&adj, u, (u, v));
                // Candidate cross-cut pairs, kernel-weighted.
                let mut candidates: Vec<(usize, usize, f64)> = Vec::new();
                for a in 0..n {
                    if !side[a] {
                        continue;
                    }
                    for (b, in_side) in side.iter().enumerate() {
                        if *in_side || edges.contains(&(a.min(b), a.max(b))) {
                            continue;
                        }
                        candidates.push((a, b, kernel(a, b)));
                    }
                }
                let Some(ci) = pick_weighted(&mut rng, &candidates, |c| c.2) else {
                    break; // cut already complete toward the other side
                };
                let (a, b, _) = candidates[ci];
                add_edge(&mut edges, &mut adj, a, b);
            }
        }

        // 3. Remaining pairs: weighted sampling without replacement among
        //    absent edges.
        let mut candidates: Vec<(usize, usize, f64)> = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if !edges.contains(&(i, j)) {
                    candidates.push((i, j, kernel(i, j)));
                }
            }
        }
        while edges.len() < pairs {
            let idx = pick_weighted(&mut rng, &candidates, |c| c.2)
                .expect("enough candidate edges exist by the feasibility check");
            let (i, j, _) = candidates.swap_remove(idx);
            add_edge(&mut edges, &mut adj, i, j);
        }

        // Materialise deterministically (sorted edge order).
        let mut b = NetworkBuilder::new();
        for p in &pos {
            b.add_node_at(*p);
        }
        // lint:allow(nondet) — hash-set drain is sorted on the next line
        let mut sorted: Vec<(usize, usize)> = edges.into_iter().collect();
        sorted.sort();
        for (i, j) in sorted {
            b.add_duplex_link(NodeId::new(i as u32), NodeId::new(j as u32), self.capacity)?;
        }
        Ok(b.build())
    }
}

fn dist(a: [f64; 2], b: [f64; 2]) -> f64 {
    ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2)).sqrt()
}

/// First bridge of the undirected graph in `adj`, or `None`.
fn first_bridge(adj: &[Vec<usize>]) -> Option<(usize, usize)> {
    let n = adj.len();
    let mut disc = vec![0usize; n];
    let mut low = vec![0usize; n];
    let mut visited = vec![false; n];
    let mut timer = 1usize;
    for start in 0..n {
        if visited[start] {
            continue;
        }
        let mut stack: Vec<(usize, usize, usize)> = vec![(start, usize::MAX, 0)];
        visited[start] = true;
        disc[start] = timer;
        low[start] = timer;
        timer += 1;
        while let Some(frame) = stack.last_mut() {
            let (u, parent) = (frame.0, frame.1);
            if frame.2 < adj[u].len() {
                let v = adj[u][frame.2];
                frame.2 += 1;
                if !visited[v] {
                    visited[v] = true;
                    disc[v] = timer;
                    low[v] = timer;
                    timer += 1;
                    stack.push((v, u, 0));
                } else if v != parent {
                    low[u] = low[u].min(disc[v]);
                }
            } else {
                stack.pop();
                if let Some(pframe) = stack.last_mut() {
                    let p = pframe.0;
                    low[p] = low[p].min(low[u]);
                    if low[u] > disc[p] {
                        return Some((p, u));
                    }
                }
            }
        }
    }
    None
}

/// Nodes reachable from `src` when edge `(banned.0, banned.1)` is removed.
fn component_without_edge(adj: &[Vec<usize>], src: usize, banned: (usize, usize)) -> Vec<bool> {
    let mut seen = vec![false; adj.len()];
    seen[src] = true;
    let mut queue = vec![src];
    while let Some(u) = queue.pop() {
        for &v in &adj[u] {
            if (u, v) == banned || (v, u) == banned {
                continue;
            }
            if !seen[v] {
                seen[v] = true;
                queue.push(v);
            }
        }
    }
    seen
}

/// Picks an index into `items` with probability proportional to `weight`,
/// or `None` when `items` is empty (uniform pick when all weights vanish).
fn pick_weighted<T>(rng: &mut impl Rng, items: &[T], weight: impl Fn(&T) -> f64) -> Option<usize> {
    if items.is_empty() {
        return None;
    }
    let total: f64 = items.iter().map(&weight).sum();
    if total <= 0.0 {
        return Some(rng.gen_range(0..items.len()));
    }
    let mut target = rng.gen::<f64>() * total;
    for (i, item) in items.iter().enumerate() {
        target -= weight(item);
        if target <= 0.0 {
            return Some(i);
        }
    }
    Some(items.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::bridges;

    #[test]
    fn paper_configurations_are_exact() {
        for (e, links) in [(3.0, 180), (4.0, 240)] {
            let net = WaxmanConfig::new(60, e).seed(11).build().unwrap();
            assert_eq!(net.num_nodes(), 60);
            assert_eq!(net.num_links(), links);
            assert!((net.average_node_degree() - e).abs() < 1e-9);
            assert!(net.is_connected());
        }
    }

    #[test]
    fn paper_configurations_have_no_bridges() {
        for e in [3.0, 4.0] {
            for seed in 0..5 {
                let net = WaxmanConfig::new(60, e).seed(seed).build().unwrap();
                assert!(bridges(&net).is_empty(), "E={e} seed={seed} left bridges");
            }
        }
    }

    #[test]
    fn bridge_elimination_can_be_disabled() {
        // With elimination off, spanning-tree-seeded low-degree graphs
        // typically keep bridges (check a few seeds; at least one must).
        let any_bridges = (0..5).any(|seed| {
            let net = WaxmanConfig::new(40, 2.2)
                .seed(seed)
                .two_edge_connected(false)
                .build()
                .unwrap();
            !bridges(&net).is_empty()
        });
        assert!(any_bridges, "expected some bridge without elimination");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = WaxmanConfig::new(30, 3.0).seed(5).build().unwrap();
        let b = WaxmanConfig::new(30, 3.0).seed(5).build().unwrap();
        assert_eq!(a, b);
        let c = WaxmanConfig::new(30, 3.0).seed(6).build().unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn locality_bias_shortens_links() {
        // With a small locality parameter, sampled links should be shorter
        // on average than with a large one.
        let tight = WaxmanConfig::new(50, 4.0)
            .locality(0.1)
            .seed(3)
            .build()
            .unwrap();
        let loose = WaxmanConfig::new(50, 4.0)
            .locality(10.0)
            .seed(3)
            .build()
            .unwrap();
        let avg_len = |net: &crate::Network| {
            let total: f64 = net
                .links()
                .map(|l| net.euclidean_distance(l.src(), l.dst()))
                .sum();
            total / net.num_links() as f64
        };
        assert!(avg_len(&tight) < avg_len(&loose));
    }

    #[test]
    fn infeasible_targets_rejected() {
        assert!(WaxmanConfig::new(1, 3.0).build().is_err());
        assert!(WaxmanConfig::new(60, 0.5).build().is_err()); // < spanning tree
        assert!(WaxmanConfig::new(10, 20.0).build().is_err()); // > complete
        assert!(WaxmanConfig::new(10, 3.0).locality(0.0).build().is_err());
    }

    #[test]
    fn minimum_viable_graph() {
        // n=2, E=1: a single duplex pair; the budget cannot remove the
        // bridge, which best-effort elimination tolerates.
        let net = WaxmanConfig::new(2, 1.0).build().unwrap();
        assert_eq!(net.num_links(), 2);
        assert!(net.is_connected());
    }

    #[test]
    fn positions_are_in_unit_square() {
        let net = WaxmanConfig::new(40, 3.0).seed(9).build().unwrap();
        for node in net.nodes() {
            let [x, y] = net.node_position(node);
            assert!((0.0..=1.0).contains(&x));
            assert!((0.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn min_degree_is_two_with_elimination() {
        let net = WaxmanConfig::new(60, 3.0).seed(4).build().unwrap();
        for node in net.nodes() {
            assert!(
                net.out_links(node).len() >= 2,
                "{node} has degree {}",
                net.out_links(node).len()
            );
        }
    }
}
